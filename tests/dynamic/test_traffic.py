"""Traffic workloads: partition exactness, liveness, determinism, models.

A workload must (1) partition the scenario's event stream exactly into its
ticks, (2) only ever dial nodes that are alive (degree > 0) on the graph
the requests will be served against, (3) be bit-for-bit reproducible from
its seed, and (4) actually exhibit its request model — hotspots for zipf,
bounded G-distance for locality.
"""

import pytest

from repro.dynamic import (
    SCENARIO_NAMES,
    WORKLOAD_NAMES,
    make_scenario,
    make_workload,
)
from repro.errors import ParameterError
from repro.graph import ball


def replay_graphs(workload):
    """The graph each tick's queries were sampled against."""
    from repro.dynamic import apply_events

    g = workload.scenario.initial.copy()
    yield g
    for tick in workload.ticks[1:]:
        apply_events(g, tick.events)
        yield g


class TestWorkloadStructure:
    @pytest.mark.parametrize("kind", WORKLOAD_NAMES)
    @pytest.mark.parametrize("scenario_name", SCENARIO_NAMES)
    def test_ticks_partition_the_event_stream(self, kind, scenario_name):
        sc = make_scenario(scenario_name, 40, 22, seed=3)
        wl = make_workload(kind, sc, queries_per_tick=10, tick=5, seed=1)
        assert wl.ticks[0].events == ()
        replayed = tuple(e for tick in wl.ticks for e in tick.events)
        assert replayed == sc.events
        assert wl.num_events == sc.num_events
        assert wl.num_queries == sum(len(t.queries) for t in wl.ticks)
        assert list(wl.queries()) == [q for t in wl.ticks for q in t.queries]

    @pytest.mark.parametrize("kind", WORKLOAD_NAMES)
    def test_queries_reference_live_distinct_nodes(self, kind):
        sc = make_scenario("nodechurn", 40, 25, seed=9)
        wl = make_workload(kind, sc, queries_per_tick=15, tick=5, seed=2)
        for tick, g in zip(wl.ticks, replay_graphs(wl)):
            for s, t in tick.queries:
                assert s != t
                assert 0 <= s < g.num_nodes and 0 <= t < g.num_nodes
                assert g.degree(s) > 0, "source is a dormant id"
                assert g.degree(t) > 0, "target is a dormant id"

    def test_deterministic_per_seed(self):
        sc = make_scenario("failure", 30, 12, seed=5)
        a = make_workload("zipf", sc, queries_per_tick=20, tick=4, seed=7)
        b = make_workload("zipf", sc, queries_per_tick=20, tick=4, seed=7)
        c = make_workload("zipf", sc, queries_per_tick=20, tick=4, seed=8)
        assert a.ticks == b.ticks
        assert a.ticks != c.ticks

    def test_kinds_differ(self):
        sc = make_scenario("failure", 30, 12, seed=5)
        streams = {
            kind: tuple(make_workload(kind, sc, queries_per_tick=30, tick=6, seed=1).queries())
            for kind in WORKLOAD_NAMES
        }
        assert len(set(streams.values())) == len(WORKLOAD_NAMES)

    def test_validation(self):
        sc = make_scenario("failure", 30, 10, seed=5)
        with pytest.raises(ParameterError):
            make_workload("tsunami", sc)
        with pytest.raises(ParameterError):
            make_workload("uniform", sc, queries_per_tick=0)
        with pytest.raises(ParameterError):
            make_workload("zipf", sc, zipf_exponent=0.0)
        with pytest.raises(ParameterError):
            make_workload("locality", sc, locality_radius=0)
        with pytest.raises(ParameterError):
            make_workload("uniform", sc, tick=0)


class TestRequestModels:
    def test_zipf_concentrates_on_hotspots(self):
        sc = make_scenario("failure", 60, 10, seed=11)
        zipf = make_workload("zipf", sc, queries_per_tick=200, tick=10, seed=3)
        uniform = make_workload("uniform", sc, queries_per_tick=200, tick=10, seed=3)

        def top_share(wl):
            counts: dict = {}
            total = 0
            for _s, t in wl.queries():
                counts[t] = counts.get(t, 0) + 1
                total += 1
            return max(counts.values()) / total

        # With exponent 1.3 over ~60 live nodes the hottest destination
        # draws a large constant share; uniform traffic spreads out.
        assert top_share(zipf) > 2.5 * top_share(uniform)
        assert top_share(zipf) > 0.1

    def test_zipf_ranking_persists_across_ticks(self):
        sc = make_scenario("failure", 50, 20, seed=13)
        wl = make_workload("zipf", sc, queries_per_tick=150, tick=5, seed=5)
        per_tick_top = []
        for tick in wl.ticks:
            counts: dict = {}
            for _s, t in tick.queries:
                counts[t] = counts.get(t, 0) + 1
            per_tick_top.append(max(counts, key=counts.get))
        # The same hidden hotspot should top most ticks (it only moves if
        # the hottest node loses all its links).
        assert len(set(per_tick_top)) <= 2

    def test_locality_targets_stay_in_the_ball(self):
        sc = make_scenario("mobility", 40, 20, seed=17)
        radius = 2
        wl = make_workload("locality", sc, queries_per_tick=25, tick=5, seed=7, locality_radius=radius)
        fallbacks = 0
        for tick, g in zip(wl.ticks, replay_graphs(wl)):
            for s, t in tick.queries:
                if t not in ball(g, s, radius):
                    fallbacks += 1  # isolated pocket: uniform fallback
        # The fallback exists for isolated pockets but must be the rare
        # exception on a connected-ish UDG.
        assert fallbacks <= wl.num_queries // 10


class TestFlashCrowd:
    """The seeded hotspot jump the chaos corpus soaks zipf traffic under."""

    def test_deterministic_per_seed(self):
        sc = make_scenario("failure", 40, 12, seed=5)
        a = make_workload("zipf", sc, queries_per_tick=30, tick=4, seed=7, flash_crowd_at=(2,))
        b = make_workload("zipf", sc, queries_per_tick=30, tick=4, seed=7, flash_crowd_at=(2,))
        assert a.ticks == b.ticks

    def test_diverges_exactly_at_the_flash_tick(self):
        sc = make_scenario("failure", 40, 12, seed=5)
        calm = make_workload("zipf", sc, queries_per_tick=30, tick=4, seed=7)
        flash = make_workload("zipf", sc, queries_per_tick=30, tick=4, seed=7, flash_crowd_at=(2,))
        assert [t.queries for t in flash.ticks[:2]] == [t.queries for t in calm.ticks[:2]]
        assert flash.ticks[2].queries != calm.ticks[2].queries

    def test_flash_moves_the_hotspot(self):
        sc = make_scenario("failure", 60, 10, seed=11)
        wl = make_workload("zipf", sc, queries_per_tick=300, tick=10, seed=3, flash_crowd_at=(1,))

        def hottest(tick):
            counts: dict = {}
            for _s, t in tick.queries:
                counts[t] = counts.get(t, 0) + 1
            return max(counts, key=counts.get)

        assert hottest(wl.ticks[0]) != hottest(wl.ticks[1])

    def test_flash_before_any_sample_still_concentrates(self):
        # A flash at tick 0 re-ranks an as-yet-unsampled population; the
        # leading batch must still be a working zipf stream.
        sc = make_scenario("failure", 60, 10, seed=11)
        wl = make_workload("zipf", sc, queries_per_tick=300, tick=10, seed=3, flash_crowd_at=(0,))
        counts: dict = {}
        for _s, t in wl.ticks[0].queries:
            counts[t] = counts.get(t, 0) + 1
        assert max(counts.values()) / len(wl.ticks[0].queries) > 0.1

    def test_params_record_sorted_ticks(self):
        sc = make_scenario("failure", 30, 12, seed=5)
        wl = make_workload("zipf", sc, queries_per_tick=5, tick=4, seed=1, flash_crowd_at=(3, 1))
        assert wl.params["flash_crowd_at"] == (1, 3)
        calm = make_workload("zipf", sc, queries_per_tick=5, tick=4, seed=1)
        assert calm.params["flash_crowd_at"] == ()

    @pytest.mark.parametrize("bad", [(-1,), (True,), (1.5,), ("2",)])
    def test_bad_tick_indices_rejected(self, bad):
        sc = make_scenario("failure", 30, 10, seed=5)
        with pytest.raises(ParameterError, match="flash_crowd_at"):
            make_workload("zipf", sc, flash_crowd_at=bad)

    def test_only_zipf_supports_flash(self):
        sc = make_scenario("failure", 30, 10, seed=5)
        with pytest.raises(ParameterError, match="zipf"):
            make_workload("uniform", sc, flash_crowd_at=(1,))
