"""Event streams: determinism, replay consistency, scenario shapes."""

import pytest

from repro.dynamic import (
    EdgeEvent,
    FAULT_SCENARIO_NAMES,
    NodeEvent,
    SCENARIO_NAMES,
    apply_event,
    apply_events,
    failure_recovery_scenario,
    growth_scenario,
    make_scenario,
    mobility_scenario,
    node_churn_scenario,
    partition_heal_scenario,
    regional_outage_scenario,
)
from repro.errors import GraphError, ParameterError
from repro.graph import Graph


class TestEdgeEvent:
    def test_canonical_orientation(self):
        ev = EdgeEvent.add(7, 3)
        assert (ev.u, ev.v) == (3, 7)
        assert ev.edge == (3, 7)

    def test_inverse_round_trip(self):
        ev = EdgeEvent.remove(1, 2)
        assert ev.inverse() == EdgeEvent.add(1, 2)
        assert ev.inverse().inverse() == ev

    def test_rejects_bad_kind_and_self_loop(self):
        with pytest.raises(ParameterError):
            EdgeEvent("toggle", 0, 1)
        with pytest.raises(ParameterError):
            EdgeEvent.add(4, 4)

    def test_apply_strict_no_op_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            apply_event(g, EdgeEvent.add(0, 1))
        with pytest.raises(GraphError):
            apply_event(g, EdgeEvent.remove(1, 2))
        assert apply_event(g, EdgeEvent.add(0, 1), strict=False) is False

    def test_apply_events_counts_changes(self):
        g = Graph(4)
        events = [EdgeEvent.add(0, 1), EdgeEvent.add(1, 2), EdgeEvent.remove(0, 1)]
        assert apply_events(g, events) == 3
        assert g.edge_set() == {(1, 2)}


class TestNodeEvent:
    def test_kind_and_node_validation(self):
        with pytest.raises(ParameterError):
            NodeEvent("teleport", 3)
        with pytest.raises(ParameterError):
            NodeEvent.join(-1)

    def test_join_appends_dense_id(self):
        g = Graph(3, [(0, 1)])
        assert apply_event(g, NodeEvent.join(3)) is True
        assert g.num_nodes == 4 and g.degree(3) == 0

    def test_join_with_non_dense_id_rejected(self):
        g = Graph(3)
        with pytest.raises(GraphError):
            apply_event(g, NodeEvent.join(5))
        with pytest.raises(GraphError):
            apply_event(g, NodeEvent.join(1))

    def test_leave_isolates_but_keeps_id_slot(self):
        g = Graph(4, [(0, 1), (1, 2), (1, 3)])
        assert apply_event(g, NodeEvent.leave(1)) is True
        assert g.num_nodes == 4 and g.num_edges == 0
        assert g.degree(1) == 0

    def test_leave_of_isolated_node_is_strict_noop(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(GraphError):
            apply_event(g, NodeEvent.leave(2))
        assert apply_event(g, NodeEvent.leave(2), strict=False) is False


@pytest.mark.parametrize("name", SCENARIO_NAMES + FAULT_SCENARIO_NAMES)
class TestScenarioContracts:
    def test_replay_reaches_final(self, name):
        sc = make_scenario(name, 50, 40, seed=11)
        assert sc.replay() == sc.final
        assert sc.num_events == 40

    def test_deterministic_per_seed(self, name):
        a = make_scenario(name, 40, 30, seed=5)
        b = make_scenario(name, 40, 30, seed=5)
        assert a.events == b.events
        assert a.initial == b.initial and a.final == b.final
        c = make_scenario(name, 40, 30, seed=6)
        assert a.events != c.events  # independent streams per seed

    def test_events_apply_strictly_in_order(self, name):
        sc = make_scenario(name, 40, 35, seed=3)
        g = sc.initial.copy()
        apply_events(g, sc.events)  # strict: raises on any no-op
        assert g == sc.final

    def test_prefixes_checkpointing(self, name):
        sc = make_scenario(name, 30, 20, seed=2)
        seen = list(sc.prefixes(every=7))
        assert [i for i, _g in seen] == [7, 14, 20]
        assert seen[-1][1] == sc.final


class TestScenarioShapes:
    def test_growth_starts_empty_and_only_adds(self):
        sc = growth_scenario(40, seed=4)
        assert sc.initial.num_edges == 0
        assert all(ev.kind == "add" for ev in sc.events)
        assert sc.final.num_edges == sc.num_events

    def test_growth_truncation(self):
        full = growth_scenario(40, seed=4)
        part = growth_scenario(40, num_events=10, seed=4)
        assert part.events == full.events[:10]

    def test_failure_recovery_toggles_initial_links_only(self):
        sc = failure_recovery_scenario(60, 80, seed=9)
        assert sc.final.is_spanning_subgraph_of(sc.initial)
        initial_edges = sc.initial.edge_set()
        assert all(ev.edge in initial_edges for ev in sc.events)

    def test_mobility_emits_exact_event_count(self):
        sc = mobility_scenario(50, 33, seed=1)
        assert sc.num_events == 33
        assert sc.initial.num_nodes == sc.final.num_nodes == 50

    def test_node_churn_mixes_joins_leaves_and_wiring(self):
        sc = node_churn_scenario(40, 60, seed=12)
        kinds = {type(ev).__name__ for ev in sc.events}
        assert kinds == {"NodeEvent", "EdgeEvent"}
        joins = [ev for ev in sc.events if isinstance(ev, NodeEvent) and ev.kind == "join"]
        leaves = [ev for ev in sc.events if isinstance(ev, NodeEvent) and ev.kind == "leave"]
        assert joins and leaves
        # Joins claim consecutive dense ids starting at the initial n.
        assert [ev.node for ev in joins] == list(range(40, 40 + len(joins)))
        assert sc.final.num_nodes == 40 + len(joins)
        # Every edge event wires a joined node to an already present one.
        joined = {ev.node for ev in joins}
        assert all(ev.v in joined for ev in sc.events if isinstance(ev, EdgeEvent))

    def test_node_churn_left_ids_stay_isolated(self):
        sc = node_churn_scenario(30, 40, seed=7)
        left: set[int] = set()
        for ev in sc.events:
            if isinstance(ev, NodeEvent):
                # A left id slot stays dormant: it never joins again (joins
                # always claim a fresh dense id) and is never re-wired.
                assert ev.node not in left
                if ev.kind == "leave":
                    left.add(ev.node)
            else:
                assert ev.u not in left and ev.v not in left
        assert left
        for u in left:
            assert sc.final.degree(u) == 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ParameterError):
            make_scenario("tectonic", 10, 5)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            mobility_scenario(1, 5)
        with pytest.raises(ParameterError):
            failure_recovery_scenario(30, 0)
        with pytest.raises(ParameterError):
            failure_recovery_scenario(30, 5, fail_prob=1.5)
        with pytest.raises(ParameterError):
            growth_scenario(20, num_events=0)
        with pytest.raises(ParameterError):
            node_churn_scenario(1, 5)
        with pytest.raises(ParameterError):
            node_churn_scenario(20, 5, leave_prob=0.0)


class TestScenarioTicks:
    def test_ticks_partition_exactly(self):
        sc = make_scenario("failure", 30, 17, seed=3)
        for size in (1, 4, 5, 17, 99):
            chunks = list(sc.ticks(size))
            assert tuple(e for chunk in chunks for e in chunk) == sc.events
            assert all(len(chunk) <= size for chunk in chunks)
            assert all(chunks), "no empty tick chunks"

    def test_tick_size_validated(self):
        sc = make_scenario("failure", 30, 5, seed=3)
        with pytest.raises(ParameterError):
            list(sc.ticks(0))


class TestFaultScenarioShapes:
    """The two scenario-level fault injections the chaos corpus soaks under."""

    def test_outage_kills_a_ball_then_repopulates(self):
        sc = regional_outage_scenario(40, ball_fraction=0.25, seed=7)
        assert sc.name == "outage"
        assert 0 <= sc.params["epicenter"] < 40
        leaves = [e for e in sc.events if isinstance(e, NodeEvent) and e.kind == "leave"]
        joins = [e for e in sc.events if isinstance(e, NodeEvent) and e.kind == "join"]
        assert leaves and joins
        # Recovery is total: a fresh radio per killed position at dense new
        # ids (already-isolated casualties emit no leave, so joins may
        # outnumber leaves) — and the dead slots stay dormant.
        assert len(joins) >= len(leaves)
        assert all(j.node >= 40 for j in joins)
        for e in leaves:
            assert sc.final.degree(e.node) == 0
        # Every leave precedes every join (outage first, then recovery).
        last_leave = max(
            i for i, e in enumerate(sc.events)
            if isinstance(e, NodeEvent) and e.kind == "leave"
        )
        first_join = min(
            i for i, e in enumerate(sc.events)
            if isinstance(e, NodeEvent) and e.kind == "join"
        )
        assert last_leave < first_join

    def test_outage_truncation_and_validation(self):
        full = regional_outage_scenario(40, seed=7)
        cut = regional_outage_scenario(40, num_events=5, seed=7)
        assert cut.events == full.events[:5]
        assert cut.replay() == cut.final
        with pytest.raises(ParameterError):
            regional_outage_scenario(1, 5)
        with pytest.raises(ParameterError):
            regional_outage_scenario(40, num_events=0)
        with pytest.raises(ParameterError):
            regional_outage_scenario(40, ball_fraction=0.0)

    def test_partition_cuts_the_median_then_heals(self):
        sc = partition_heal_scenario(40, seed=7)
        assert sc.name == "partition"
        removes = [e for e in sc.events if isinstance(e, EdgeEvent) and e.kind == "remove"]
        adds = [e for e in sc.events if isinstance(e, EdgeEvent) and e.kind == "add"]
        assert removes and len(removes) == len(adds)
        # The cut and the heal name the same links, in the same order.
        assert [(e.u, e.v) for e in removes] == [(e.u, e.v) for e in adds]
        assert sc.final == sc.initial  # a full cycle heals completely
        cut = partition_heal_scenario(40, num_events=3, seed=7)
        assert cut.events == sc.events[:3]
        with pytest.raises(ParameterError):
            partition_heal_scenario(1, 5)
        with pytest.raises(ParameterError):
            partition_heal_scenario(40, num_events=0)

    def test_registries_are_disjoint_and_dispatched(self):
        assert FAULT_SCENARIO_NAMES == ("outage", "partition")
        assert not set(FAULT_SCENARIO_NAMES) & set(SCENARIO_NAMES)
        assert make_scenario("outage", 30, 8, seed=2).name == "outage"
        assert make_scenario("partition", 30, 8, seed=2).name == "partition"
