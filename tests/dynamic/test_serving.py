"""The serving layer's contract: tables bit-identical to from-scratch.

:class:`~repro.dynamic.serving.RoutingService` claims that after *every*
event its per-node next-hop tables equal a from-scratch
:func:`~repro.routing.tables.routing_table` on the live advertised
sub-graph — entries, omissions and smallest-id tie-breaks included.  The
suite asserts exactly that across all scenario generators (edge *and*
node churn), arbitrary random streams, batched ticks, every supported
construction, and the full-refresh fallback path.
"""

import pytest

from repro.dynamic import (
    EdgeEvent,
    NodeEvent,
    RoutingService,
    SCENARIO_NAMES,
    make_scenario,
)
from repro.errors import NodeNotFound, ParameterError
from repro.graph.generators import random_connected_gnp
from repro.routing import routing_table

from .test_maintainer import random_event_stream


def assert_tables_match_scratch(service, context=""):
    h, g = service.advertised, service.graph
    for u in g.nodes():
        expected = routing_table(h, g, u)
        assert service.table(u) == expected, f"table of {u} diverged {context}"


class TestEveryPrefix:
    """The acceptance property: table agreement after every event."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_scenarios_every_event(self, name):
        sc = make_scenario(name, 35, 50, seed=17)
        service = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        for i, ev in enumerate(sc.events, start=1):
            report = service.apply(ev)
            assert report.events == 1
            assert_tables_match_scratch(service, f"{name} after event {i}")
        assert service.graph == sc.final
        assert service.events_applied == sc.num_events

    def test_arbitrary_stream_every_event(self):
        initial, events = random_event_stream(30, 60, seed=41)
        service = RoutingService(initial, "kcover", rebuild_fraction=1.0)
        for i, ev in enumerate(events, start=1):
            service.apply(ev)
            assert_tables_match_scratch(service, f"after event {i}")

    @pytest.mark.parametrize(
        "method,kwargs",
        [("mis", {"r": 3}), ("greedy", {"r": 2}), ("kmis", {"k": 2})],
    )
    def test_other_constructions_stay_exact(self, method, kwargs):
        sc = make_scenario("nodechurn", 30, 30, seed=21)
        service = RoutingService(sc.initial, method, rebuild_fraction=1.0, **kwargs)
        for i, ev in enumerate(sc.events, start=1):
            service.apply(ev)
            assert_tables_match_scratch(service, f"{method} after event {i}")


class TestBatchedTicks:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_ticks_match_scratch(self, name):
        sc = make_scenario(name, 35, 45, seed=29)
        service = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        events = list(sc.events)
        for lo in range(0, len(events), 6):
            report = service.apply_batch(events[lo : lo + 6])
            assert report.events == len(events[lo : lo + 6])
            assert_tables_match_scratch(service, f"{name} after tick at {lo}")
        assert service.graph == sc.final

    def test_apply_stream_ticked_equals_singles(self):
        sc = make_scenario("failure", 30, 40, seed=5)
        singles = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        singles.apply_stream(sc.events)
        ticked = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        reports = ticked.apply_stream(sc.events, tick=8)
        assert len(reports) == 5
        for u in ticked.graph.nodes():
            assert ticked.table(u) == singles.table(u)

    def test_mid_batch_error_resyncs_tables(self):
        # The maintainer rebuilds over a partially-applied bad tick; the
        # served matrices must resync (and resize) with it.
        from repro.errors import GraphError

        g = random_connected_gnp(25, 0.12, seed=14)
        service = RoutingService(g, "kcover")
        n = g.num_nodes
        with pytest.raises(GraphError):
            service.apply_batch(
                [NodeEvent.join(n), EdgeEvent.add(n, 0), NodeEvent.join(999)]
            )
        assert service.graph.num_nodes == n + 1  # the valid prefix landed
        assert_tables_match_scratch(service, "after failed batch")
        assert service.table(n) != {}  # the joined node is served too

    def test_flapping_tick_is_noop(self):
        g = random_connected_gnp(25, 0.12, seed=3)
        service = RoutingService(g, "kcover")
        u, v = next(iter(g.edges()))
        report = service.apply_batch([EdgeEvent.remove(u, v), EdgeEvent.add(u, v)])
        assert report.changed is False
        assert report.dirty_rows == 0 and report.dirty_tables == 0


class TestFallbackAndCounters:
    def test_full_refresh_path_stays_exact(self):
        sc = make_scenario("nodechurn", 30, 25, seed=13)
        service = RoutingService(sc.initial, "kcover", rebuild_fraction=0.01)
        for i, ev in enumerate(sc.events, start=1):
            service.apply(ev)
            assert_tables_match_scratch(service, f"after event {i}")
        assert service.maintainer.full_rebuilds > 0
        assert service.full_refreshes > 0

    def test_counters_measure_serving_work(self):
        sc = make_scenario("failure", 40, 30, seed=9)
        service = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        assert service.rows_recomputed == 0  # initial population not counted
        reports = service.apply_stream(sc.events)
        assert service.events_applied == 30
        assert service.rows_recomputed == sum(r.dirty_rows for r in reports)
        assert service.tables_recomputed == sum(r.dirty_tables for r in reports)
        assert service.entries_updated == sum(r.entries_updated for r in reports)
        assert all(r.seconds >= 0.0 for r in reports)

    def test_refresh_counts_only_changed_entries(self):
        # entries_updated means "next hop actually changed" — an idempotent
        # refresh (and a fallback that changes few hops) must not inflate it.
        g = random_connected_gnp(30, 0.15, seed=10)
        service = RoutingService(g, "kcover")
        before = service.entries_updated
        service.refresh()
        assert service.entries_updated == before
        assert service.full_refreshes == 1

    def test_incremental_beats_full_width_on_local_event(self):
        # A single flap on a big sparse graph must not touch every table.
        sc = make_scenario("failure", 120, 1, seed=31)
        service = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        report = service.apply(sc.events[0])
        n = service.graph.num_nodes
        assert report.dirty_rows < n
        assert report.dirty_tables < n


class TestReadSide:
    def test_next_hop_matches_table_and_validates(self):
        g = random_connected_gnp(20, 0.2, seed=7)
        service = RoutingService(g, "kcover")
        table = service.table(0)
        for v in g.nodes():
            if v == 0:
                continue
            assert service.next_hop(0, v) == table.get(v)
        with pytest.raises(ParameterError):
            service.next_hop(4, 4)
        with pytest.raises(NodeNotFound):
            service.next_hop(0, 99)
        with pytest.raises(NodeNotFound):
            service.table(99)

    def test_table_after_leave_is_empty(self):
        g = random_connected_gnp(20, 0.2, seed=8)
        service = RoutingService(g, "kcover", rebuild_fraction=1.0)
        service.apply(NodeEvent.leave(3))
        assert service.table(3) == {}
        assert_tables_match_scratch(service, "after leave of 3")
