"""Incremental maintenance vs from-scratch construction — exact agreement.

The maintainer's contract is strong: after *every* event, the maintained
spanner (graph **and** per-node trees) is bit-identical to a from-scratch
build on the current graph.  This holds because every construction is a
deterministic function of each root's induced locality ball, and the dirty
region is a certified superset of the roots whose ball changed — so the
tests compare exact equality, not just stretch validity.
"""

import pytest

from repro.dynamic import (
    EdgeEvent,
    SCENARIO_NAMES,
    SpannerMaintainer,
    locality_radius,
    make_scenario,
    resolve_construction,
)
from repro.errors import ParameterError
from repro.graph import Graph
from repro.graph.generators import gnp_random_graph, random_connected_gnp


def assert_matches_scratch(maintainer, context=""):
    reference = maintainer.rebuilt_from_scratch()
    assert maintainer.spanner.graph == reference.graph, f"spanner diverged {context}"
    assert maintainer.spanner.trees == reference.trees, f"trees diverged {context}"


def random_event_stream(n, num_events, seed, p=0.08):
    """An arbitrary add/remove stream on a G(n, p) base (not a scenario)."""
    from repro.rng import ensure_rng

    rng = ensure_rng(seed)
    g = gnp_random_graph(n, p, seed=rng)
    initial = g.copy()
    events = []
    while len(events) < num_events:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        ev = EdgeEvent.remove(u, v) if g.has_edge(u, v) else EdgeEvent.add(u, v)
        from repro.dynamic.events import apply_event

        apply_event(g, ev)
        events.append(ev)
    return initial, events


class TestEveryPrefix:
    """The acceptance property: agreement after every prefix."""

    def test_arbitrary_stream_every_prefix_kcover(self):
        initial, events = random_event_stream(40, 100, seed=77)
        m = SpannerMaintainer(initial, "kcover", rebuild_fraction=1.0)
        for i, ev in enumerate(events, start=1):
            m.apply(ev)
            assert_matches_scratch(m, f"after event {i}")
        assert m.full_rebuilds == 0 and m.events_applied == 100

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_scenarios_100_events_checkpointed(self, name):
        sc = make_scenario(name, 60, 100, seed=13)
        m = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=1.0)
        for i, ev in enumerate(sc.events, start=1):
            m.apply(ev)
            if i % 5 == 0 or i == sc.num_events:
                assert_matches_scratch(m, f"{name} after event {i}")
        assert m.graph == sc.final

    @pytest.mark.parametrize(
        "method,kwargs",
        [("mis", {"r": 3}), ("greedy", {"r": 2}), ("kmis", {"k": 2})],
    )
    def test_other_constructions_stay_exact(self, method, kwargs):
        sc = make_scenario("failure", 40, 40, seed=21)
        m = SpannerMaintainer(sc.initial, method, rebuild_fraction=1.0, **kwargs)
        for i, ev in enumerate(sc.events, start=1):
            m.apply(ev)
            if i % 4 == 0 or i == sc.num_events:
                assert_matches_scratch(m, f"{method} after event {i}")


class TestFallbackAndReports:
    def test_rebuild_fallback_fires_and_stays_exact(self):
        sc = make_scenario("failure", 50, 30, seed=8)
        m = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=0.01)
        reports = m.apply_stream(sc.events)
        assert m.full_rebuilds > 0
        assert all(r.rebuilt == (r.dirty == m.graph.num_nodes) for r in reports if r.changed)
        assert_matches_scratch(m, "after fallback-heavy stream")

    def test_no_op_event_reports_unchanged(self):
        g = random_connected_gnp(30, 0.1, seed=3)
        m = SpannerMaintainer(g, "kcover")
        before = m.spanner.graph.copy()
        u, v = next(iter(g.edges()))
        report = m.apply(EdgeEvent.add(u, v))  # already present
        assert report.changed is False and report.dirty == 0
        assert m.spanner.graph == before and m.events_applied == 0

    def test_counters_accumulate(self):
        initial, events = random_event_stream(40, 20, seed=5)
        m = SpannerMaintainer(initial, "kcover", rebuild_fraction=1.0)
        reports = m.apply_stream(events)
        assert m.events_applied == 20
        assert m.incremental_repairs == 20
        assert m.trees_recomputed == sum(r.dirty for r in reports)
        assert all(r.seconds >= 0.0 for r in reports)

    def test_maintainer_owns_its_graph(self):
        g = random_connected_gnp(30, 0.1, seed=4)
        m = SpannerMaintainer(g, "kcover")
        u, v = next(iter(g.edges()))
        g.remove_edge(u, v)  # caller mutates their copy...
        assert m.graph.has_edge(u, v)  # ...the maintainer's stays intact


class TestConstructionRegistry:
    def test_locality_radii(self):
        assert locality_radius("kcover") == 2
        assert locality_radius("kmis", k=2) == 2
        assert locality_radius("mis", r=4) == 4
        assert locality_radius("greedy", r=3) == 3
        assert locality_radius("mis", epsilon=0.5) == 3  # r = ceil(1/eps)+1

    def test_resolved_guarantees(self):
        assert resolve_construction("kcover", k=2).guarantee.k == 2
        kmis = resolve_construction("kmis")
        assert (kmis.guarantee.alpha, kmis.guarantee.beta) == (2.0, -1.0)
        mis = resolve_construction("mis", r=3)
        assert mis.guarantee.alpha == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            resolve_construction("voronoi")
        with pytest.raises(ParameterError):
            resolve_construction("kcover", k=0)
        with pytest.raises(ParameterError):
            resolve_construction("mis", r=1)
        with pytest.raises(ParameterError):
            SpannerMaintainer(Graph(4), "kcover", rebuild_fraction=0.0)
