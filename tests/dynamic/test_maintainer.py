"""Incremental maintenance vs from-scratch construction — exact agreement.

The maintainer's contract is strong: after *every* event, the maintained
spanner (graph **and** per-node trees) is bit-identical to a from-scratch
build on the current graph.  This holds because every construction is a
deterministic function of each root's induced locality ball, and the dirty
region is a certified superset of the roots whose ball changed — so the
tests compare exact equality, not just stretch validity.
"""

import pytest

from repro.dynamic import (
    EdgeEvent,
    NodeEvent,
    SCENARIO_NAMES,
    SpannerMaintainer,
    locality_radius,
    make_scenario,
    resolve_construction,
)
from repro.errors import GraphError, ParameterError
from repro.graph import Graph
from repro.graph.generators import gnp_random_graph, random_connected_gnp


def assert_matches_scratch(maintainer, context=""):
    reference = maintainer.rebuilt_from_scratch()
    assert maintainer.spanner.graph == reference.graph, f"spanner diverged {context}"
    assert maintainer.spanner.trees == reference.trees, f"trees diverged {context}"


def random_event_stream(n, num_events, seed, p=0.08):
    """An arbitrary add/remove stream on a G(n, p) base (not a scenario)."""
    from repro.rng import ensure_rng

    rng = ensure_rng(seed)
    g = gnp_random_graph(n, p, seed=rng)
    initial = g.copy()
    events = []
    while len(events) < num_events:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        ev = EdgeEvent.remove(u, v) if g.has_edge(u, v) else EdgeEvent.add(u, v)
        from repro.dynamic.events import apply_event

        apply_event(g, ev)
        events.append(ev)
    return initial, events


class TestEveryPrefix:
    """The acceptance property: agreement after every prefix."""

    def test_arbitrary_stream_every_prefix_kcover(self):
        initial, events = random_event_stream(40, 100, seed=77)
        m = SpannerMaintainer(initial, "kcover", rebuild_fraction=1.0)
        for i, ev in enumerate(events, start=1):
            m.apply(ev)
            assert_matches_scratch(m, f"after event {i}")
        assert m.full_rebuilds == 0 and m.events_applied == 100

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_scenarios_100_events_checkpointed(self, name):
        sc = make_scenario(name, 60, 100, seed=13)
        m = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=1.0)
        for i, ev in enumerate(sc.events, start=1):
            m.apply(ev)
            if i % 5 == 0 or i == sc.num_events:
                assert_matches_scratch(m, f"{name} after event {i}")
        assert m.graph == sc.final

    @pytest.mark.parametrize(
        "method,kwargs",
        [("mis", {"r": 3}), ("greedy", {"r": 2}), ("kmis", {"k": 2})],
    )
    def test_other_constructions_stay_exact(self, method, kwargs):
        sc = make_scenario("failure", 40, 40, seed=21)
        m = SpannerMaintainer(sc.initial, method, rebuild_fraction=1.0, **kwargs)
        for i, ev in enumerate(sc.events, start=1):
            m.apply(ev)
            if i % 4 == 0 or i == sc.num_events:
                assert_matches_scratch(m, f"{method} after event {i}")


class TestFallbackAndReports:
    def test_rebuild_fallback_fires_and_stays_exact(self):
        sc = make_scenario("failure", 50, 30, seed=8)
        m = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=0.01)
        reports = m.apply_stream(sc.events)
        assert m.full_rebuilds > 0
        assert all(r.rebuilt == (r.dirty == m.graph.num_nodes) for r in reports if r.changed)
        assert_matches_scratch(m, "after fallback-heavy stream")

    def test_no_op_event_reports_unchanged_but_counted(self):
        g = random_connected_gnp(30, 0.1, seed=3)
        m = SpannerMaintainer(g, "kcover")
        before = m.spanner.graph.copy()
        u, v = next(iter(g.edges()))
        report = m.apply(EdgeEvent.add(u, v))  # already present
        assert report.changed is False and report.dirty == 0
        assert m.spanner.graph == before
        # No-ops still count as applied events and report real elapsed time
        # (a hardcoded 0.0 would skew churn-report per-event averages).
        assert m.events_applied == 1
        assert report.seconds > 0.0
        assert report.h_added == () and report.h_removed == ()

    def test_counters_accumulate(self):
        initial, events = random_event_stream(40, 20, seed=5)
        m = SpannerMaintainer(initial, "kcover", rebuild_fraction=1.0)
        reports = m.apply_stream(events)
        assert m.events_applied == 20
        assert m.incremental_repairs == 20
        assert m.trees_recomputed == sum(r.dirty for r in reports)
        assert all(r.seconds >= 0.0 for r in reports)

    def test_maintainer_owns_its_graph(self):
        g = random_connected_gnp(30, 0.1, seed=4)
        m = SpannerMaintainer(g, "kcover")
        u, v = next(iter(g.edges()))
        g.remove_edge(u, v)  # caller mutates their copy...
        assert m.graph.has_edge(u, v)  # ...the maintainer's stays intact


class TestNodeEvents:
    def test_join_then_wire_then_leave_stays_exact(self):
        g = random_connected_gnp(25, 0.12, seed=6)
        m = SpannerMaintainer(g, "kcover", rebuild_fraction=1.0)
        report = m.apply(NodeEvent.join(25))
        assert report.changed and report.dirty == 1
        assert m.graph.num_nodes == 26 == m.spanner.graph.num_nodes
        assert_matches_scratch(m, "after join")
        for w in (0, 3, 7):
            m.apply(EdgeEvent.add(25, w))
            assert_matches_scratch(m, f"after wiring 25-{w}")
        report = m.apply(NodeEvent.leave(25))
        assert report.changed and report.dirty >= 1
        assert m.graph.degree(25) == 0  # isolated, id slot kept
        assert m.graph.num_nodes == 26
        assert_matches_scratch(m, "after leave")

    def test_join_requires_dense_id(self):
        m = SpannerMaintainer(Graph(5), "kcover")
        with pytest.raises(GraphError):
            m.apply(NodeEvent.join(7))
        with pytest.raises(GraphError):
            m.apply(NodeEvent.join(3))

    def test_leave_of_isolated_node_is_noop(self):
        g = Graph(6, [(0, 1), (1, 2)])
        m = SpannerMaintainer(g, "kcover")
        report = m.apply(NodeEvent.leave(5))
        assert report.changed is False and report.dirty == 0
        assert m.events_applied == 1

    def test_leave_dirty_region_covers_all_severed_edges(self):
        # A high-degree leaver must dirty roots around *every* former link.
        sc = make_scenario("nodechurn", 50, 60, seed=19)
        m = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=1.0)
        for i, ev in enumerate(sc.events, start=1):
            m.apply(ev)
            if isinstance(ev, NodeEvent) or i == sc.num_events:
                assert_matches_scratch(m, f"nodechurn after event {i}")
        assert m.graph == sc.final


class TestBatchedApplication:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_ticks_match_scratch_after_every_batch(self, name):
        sc = make_scenario(name, 40, 60, seed=23)
        m = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=1.0)
        events = list(sc.events)
        for lo in range(0, len(events), 7):
            report = m.apply_batch(events[lo : lo + 7])
            assert report.events == len(events[lo : lo + 7])
            assert_matches_scratch(m, f"{name} after tick at {lo}")
        assert m.graph == sc.final
        assert m.events_applied == len(events)

    def test_batch_equals_sequential_application(self):
        sc = make_scenario("failure", 40, 50, seed=4)
        seq = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=1.0)
        seq.apply_stream(sc.events)
        bat = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=1.0)
        bat.apply_batch(list(sc.events))
        assert seq.spanner.graph == bat.spanner.graph
        assert seq.spanner.trees == bat.spanner.trees
        # One coalesced repair recomputes each dirty root at most once.
        assert bat.trees_recomputed <= seq.trees_recomputed

    def test_flapping_link_cancels_in_batch(self):
        g = random_connected_gnp(30, 0.12, seed=11)
        m = SpannerMaintainer(g, "kcover")
        u, v = next(iter(g.edges()))
        before = m.trees_recomputed
        report = m.apply_batch([EdgeEvent.remove(u, v), EdgeEvent.add(u, v)])
        assert report.changed is False
        assert report.g_added == () and report.g_removed == ()
        assert m.trees_recomputed == before  # no net change → no tree churn
        assert m.events_applied == 2

    def test_batch_reports_net_deltas(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4)])
        m = SpannerMaintainer(g, "kcover", rebuild_fraction=1.0)
        report = m.apply_batch(
            [
                EdgeEvent.remove(3, 4),
                NodeEvent.join(6),
                EdgeEvent.add(5, 6),
                EdgeEvent.add(0, 6),
            ]
        )
        assert report.g_removed == ((3, 4),)
        assert report.g_added == ((0, 6), (5, 6))
        assert report.nodes_joined == (6,)
        assert_matches_scratch(m, "after mixed batch")

    def test_empty_batch_is_noop(self):
        m = SpannerMaintainer(Graph(4, [(0, 1)]), "kcover")
        report = m.apply_batch([])
        assert report.changed is False and report.events == 0

    def test_mid_batch_error_restores_exactness(self):
        # A malformed event mid-batch must not leave the spanner silently
        # diverged from the (partially mutated) graph.
        g = random_connected_gnp(25, 0.12, seed=14)
        m = SpannerMaintainer(g, "kcover")
        u, v = next((u, v) for u in g.nodes() for v in g.nodes() if u < v and not g.has_edge(u, v))
        with pytest.raises(GraphError):
            m.apply_batch([EdgeEvent.add(u, v), NodeEvent.join(999)])
        assert m.graph.has_edge(u, v)  # the valid prefix was applied
        assert_matches_scratch(m, "after failed batch")

    def test_batch_fallback_stays_exact(self):
        sc = make_scenario("failure", 50, 40, seed=8)
        m = SpannerMaintainer(sc.initial, "kcover", rebuild_fraction=0.01)
        events = list(sc.events)
        for lo in range(0, len(events), 10):
            m.apply_batch(events[lo : lo + 10])
        assert m.full_rebuilds > 0
        assert_matches_scratch(m, "after fallback-heavy batches")


class TestConstructionRegistry:
    def test_locality_radii(self):
        assert locality_radius("kcover") == 2
        assert locality_radius("kmis", k=2) == 2
        assert locality_radius("mis", r=4) == 4
        assert locality_radius("greedy", r=3) == 3
        assert locality_radius("mis", epsilon=0.5) == 3  # r = ceil(1/eps)+1

    def test_resolved_guarantees(self):
        assert resolve_construction("kcover", k=2).guarantee.k == 2
        kmis = resolve_construction("kmis")
        assert (kmis.guarantee.alpha, kmis.guarantee.beta) == (2.0, -1.0)
        mis = resolve_construction("mis", r=3)
        assert mis.guarantee.alpha == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            resolve_construction("voronoi")
        with pytest.raises(ParameterError):
            resolve_construction("kcover", k=0)
        with pytest.raises(ParameterError):
            resolve_construction("mis", r=1)
        with pytest.raises(ParameterError):
            SpannerMaintainer(Graph(4), "kcover", rebuild_fraction=0.0)

    def test_kmis_rejects_k_below_two(self):
        # k=1 used to be silently rewritten to 2; now it is a loud error.
        with pytest.raises(ParameterError, match="k ≥ 2"):
            resolve_construction("kmis", k=1)
        with pytest.raises(ParameterError):
            SpannerMaintainer(Graph(4), "kmis", k=1)
        # The per-method default is still the valid k=2.
        assert resolve_construction("kmis").label == "kmis(k=2)"
