"""Serving-matrix memory control: stats, compaction, bounded long-horizon growth.

Joins grow the id space monotonically (a leave keeps its slot), so the
n×n serving matrices would grow without bound over a long node-churn soak.
:meth:`RoutingService.memory_stats` exposes the footprint (also stamped on
every :class:`ServeReport`) and :meth:`RoutingService.compact` reclaims the
dormant ids; driven periodically it must keep the matrix dimension pinned
to the live population plus one compaction window — asserted here over a
closed-loop churn drive.
"""


from repro.dynamic import EdgeEvent, NodeEvent, RoutingService
from repro.graph.generators import random_connected_gnp
from repro.rng import derive_seed, ensure_rng
from repro.routing import routing_table

from ..conftest import TEST_SEED


def assert_tables_match_scratch(service, context=""):
    h, g = service.advertised, service.graph
    for u in g.nodes():
        assert service.table(u) == routing_table(h, g, u), f"table of {u} diverged {context}"


def churn_step(service, rng, *, join_bias=0.5, wire=3) -> None:
    """One closed-loop node-churn event against the live id space."""
    g = service.graph
    live = [u for u in g.nodes() if g.neighbors(u)]
    if rng.random() >= join_bias and len(live) > 10:
        service.apply(NodeEvent.leave(int(rng.choice(live))))
        return
    nid = g.num_nodes
    service.apply(NodeEvent.join(nid))
    targets = rng.choice(live, size=min(wire, len(live)), replace=False)
    for t in targets:
        service.apply(EdgeEvent.add(nid, int(t)))


class TestMemoryStats:
    def test_stats_shape_and_report_fields(self):
        g = random_connected_gnp(30, 0.12, seed=5)
        service = RoutingService(g, "kcover", rebuild_fraction=1.0)
        stats = service.memory_stats()
        assert stats.nodes == 30 and stats.dormant == 0
        assert stats.dist_bytes == stats.table_bytes == 30 * 30 * 4
        assert stats.total_bytes == stats.dist_bytes + stats.table_bytes
        report = service.apply(NodeEvent.leave(3))
        assert report.dormant_ids == 1
        assert report.matrix_bytes == service.memory_stats().total_bytes

    def test_join_grows_matrices_monotonically(self):
        g = random_connected_gnp(25, 0.15, seed=7)
        service = RoutingService(g, "kcover", rebuild_fraction=1.0)
        before = service.memory_stats().total_bytes
        service.apply(NodeEvent.join(25))
        grown = service.memory_stats().total_bytes
        assert grown > before
        service.apply(NodeEvent.leave(25))  # leave does NOT shrink
        assert service.memory_stats().total_bytes == grown


class TestCompact:
    def test_compact_remaps_and_stays_exact(self):
        g = random_connected_gnp(30, 0.12, seed=9)
        service = RoutingService(g, "kcover", rebuild_fraction=1.0)
        for u in (2, 11, 23):
            service.apply(NodeEvent.leave(u))
        before = service.memory_stats()
        assert before.dormant == 3
        old_edges = service.graph.edge_set()
        mapping = service.compact()
        after = service.memory_stats()
        assert after.nodes == before.nodes - 3 and after.dormant == 0
        assert after.total_bytes < before.total_bytes
        assert sorted(mapping.values()) == list(range(after.nodes))
        # Compaction is a pure renumbering of the live topology.
        assert service.graph.edge_set() == {
            tuple(sorted((mapping[u], mapping[v]))) for u, v in old_edges
        }
        assert_tables_match_scratch(service, "after compact")
        assert service.compactions == 1

    def test_compact_without_dormant_is_noop(self):
        g = random_connected_gnp(20, 0.2, seed=3)
        service = RoutingService(g, "kcover")
        maintainer = service.maintainer
        mapping = service.compact()
        assert mapping == {u: u for u in range(20)}
        assert service.maintainer is maintainer  # untouched
        assert service.compactions == 0

    def test_service_keeps_working_after_compact(self):
        g = random_connected_gnp(25, 0.15, seed=11)
        service = RoutingService(g, "kcover", rebuild_fraction=1.0)
        service.apply(NodeEvent.leave(5))
        service.compact()
        rng = ensure_rng(derive_seed(TEST_SEED, "post-compact"))
        for _ in range(10):
            churn_step(service, rng)
        assert_tables_match_scratch(service, "churn after compact")


class TestLongHorizonBoundedGrowth:
    def test_periodic_compaction_bounds_the_matrices(self):
        interval = 20
        g = random_connected_gnp(30, 0.15, seed=13)
        service = RoutingService(g, "kcover", rebuild_fraction=1.0)
        rng = ensure_rng(derive_seed(TEST_SEED, "long-horizon"))
        peak_nodes = 0
        for step in range(1, 121):
            churn_step(service, rng, join_bias=0.55)
            peak_nodes = max(peak_nodes, service.memory_stats().nodes)
            if step % interval == 0:
                live_before = service.memory_stats()
                service.compact()
                after = service.memory_stats()
                assert after.dormant == 0
                assert after.nodes == live_before.nodes - live_before.dormant
                # Bounded growth: between compactions the dimension can
                # exceed the live population by at most one window of joins.
                assert peak_nodes <= after.nodes + interval
                peak_nodes = 0
        # The per-window invariant above caps the matrix at
        # (live + window)^2; without compaction the dimension would be the
        # initial n plus every join of the whole soak.
        assert_tables_match_scratch(service, "end of soak")
