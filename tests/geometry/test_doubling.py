"""Tests for nets, packings and doubling-dimension estimation —
the proof machinery of Propositions 3 and 7."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.geometry import (
    EuclideanMetric,
    ball_cover_count,
    estimate_doubling_dimension,
    greedy_net,
    packing_number,
    uniform_points,
)


class TestGreedyNet:
    def test_net_is_packing_and_cover(self):
        pts = uniform_points(80, 4.0, seed=1)
        m = EuclideanMetric(2)
        centers = greedy_net(pts, m, radius=1.0)
        # Packing: centers pairwise > 1 apart.
        for i, a in enumerate(centers):
            for b in centers[i + 1 :]:
                assert m.distance(pts, a, b) > 1.0
        # Cover: every point within 1 of a center.
        for i in range(pts.shape[0]):
            assert min(m.distance(pts, i, c) for c in centers) <= 1.0

    def test_net_deterministic(self):
        pts = uniform_points(40, 3.0, seed=2)
        m = EuclideanMetric(2)
        assert greedy_net(pts, m, 0.5) == greedy_net(pts, m, 0.5)

    def test_bad_radius(self):
        with pytest.raises(ParameterError):
            greedy_net(np.zeros((3, 2)), EuclideanMetric(2), 0.0)

    def test_packing_number_monotone_in_radius(self):
        pts = uniform_points(100, 4.0, seed=3)
        m = EuclideanMetric(2)
        assert packing_number(pts, m, 0.25) >= packing_number(pts, m, 0.5)
        assert packing_number(pts, m, 0.5) >= packing_number(pts, m, 1.0)


class TestDoubling:
    def test_cover_count_bounded_for_plane(self):
        # Doubling constant of the plane is ≤ 7 for interior balls
        # (theory: any R-ball covered by 7 R/2-balls); greedy is not
        # optimal so allow slack, but it must stay O(1).
        pts = uniform_points(400, 6.0, seed=4)
        m = EuclideanMetric(2)
        worst = max(
            ball_cover_count(pts, m, center, big_radius=1.5) for center in range(0, 400, 37)
        )
        assert worst <= 16

    def test_estimated_dimension_close_to_two(self):
        pts = uniform_points(500, 6.0, seed=5)
        m = EuclideanMetric(2)
        p_hat = estimate_doubling_dimension(pts, m, samples=24, seed=6)
        assert 1.0 <= p_hat <= 4.0  # plane: true p = 2, greedy slack ≤ 2x

    def test_line_has_lower_dimension_than_plane(self):
        rng_pts_line = np.column_stack(
            [uniform_points(300, 10.0, dim=1, seed=7), np.zeros(300)]
        )
        pts_plane = uniform_points(300, 10.0, seed=8)
        m = EuclideanMetric(2)
        p_line = estimate_doubling_dimension(rng_pts_line, m, samples=24, seed=9)
        p_plane = estimate_doubling_dimension(pts_plane, m, samples=24, seed=10)
        assert p_line < p_plane

    def test_empty_points(self):
        assert estimate_doubling_dimension(np.zeros((0, 2)), EuclideanMetric(2)) == 0.0
