"""Tests for point processes, metrics, and unit-ball-graph builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.geometry import (
    ChebyshevMetric,
    EuclideanMetric,
    SnowflakeMetric,
    TorusMetric,
    brute_force_unit_ball_graph,
    grid_points,
    perturbed_grid_points,
    poisson_points,
    uniform_points,
    unit_ball_graph,
    unit_disk_graph,
)


class TestPoints:
    def test_uniform_shape_and_range(self):
        pts = uniform_points(50, side=3.0, seed=1)
        assert pts.shape == (50, 2)
        assert pts.min() >= 0 and pts.max() <= 3.0

    def test_poisson_count_scales_with_intensity(self):
        counts = [poisson_points(30.0, 2.0, seed=s).shape[0] for s in range(20)]
        mean = sum(counts) / len(counts)
        assert abs(mean - 120.0) / 120.0 < 0.2  # λ·side² = 120

    def test_poisson_deterministic(self):
        a = poisson_points(10.0, 2.0, seed=7)
        b = poisson_points(10.0, 2.0, seed=7)
        assert np.array_equal(a, b)

    def test_grid_points(self):
        pts = grid_points(2, 3, spacing=2.0)
        assert pts.shape == (6, 2)
        assert pts[:, 0].max() == 4.0
        assert pts[:, 1].max() == 2.0

    def test_perturbed_grid_stays_near_lattice(self):
        base = grid_points(4, 4)
        pts = perturbed_grid_points(4, 4, jitter=0.2, seed=3)
        assert np.abs(pts - base).max() <= 0.2

    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            uniform_points(-1, 1.0)
        with pytest.raises(ParameterError):
            poisson_points(1.0, 0.0)
        with pytest.raises(ParameterError):
            grid_points(0, 3)


class TestMetrics:
    def test_euclidean_triangle_inequality_sample(self):
        pts = uniform_points(20, 2.0, seed=2)
        m = EuclideanMetric(2)
        d = m.pairwise(pts)
        for i in range(20):
            for j in range(20):
                for k in range(20):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9

    def test_chebyshev_vs_euclidean_order(self):
        pts = uniform_points(15, 2.0, seed=3)
        de = EuclideanMetric(2).pairwise(pts)
        dc = ChebyshevMetric(2).pairwise(pts)
        assert np.all(dc <= de + 1e-12)

    def test_torus_wraps(self):
        pts = np.array([[0.1, 0.5], [3.9, 0.5]])
        m = TorusMetric(side=4.0)
        assert m.distance(pts, 0, 1) == pytest.approx(0.2)

    def test_torus_pairwise_symmetric(self):
        pts = uniform_points(10, 4.0, seed=4)
        d = TorusMetric(4.0).pairwise(pts)
        assert np.allclose(d, d.T)

    def test_snowflake_dimension_hint(self):
        m = SnowflakeMetric(EuclideanMetric(2), gamma=2 / 3)
        assert m.doubling_dimension_hint == pytest.approx(3.0)
        with pytest.raises(ParameterError):
            SnowflakeMetric(EuclideanMetric(2), gamma=0.0)

    def test_snowflake_preserves_order(self):
        pts = uniform_points(12, 2.0, seed=5)
        base = EuclideanMetric(2)
        snow = SnowflakeMetric(base, 0.5)
        db = base.to_all(pts, 0)
        ds = snow.to_all(pts, 0)
        assert np.array_equal(np.argsort(db), np.argsort(ds))

    def test_to_all_matches_pairwise_row(self):
        pts = uniform_points(10, 3.0, seed=6)
        for metric in (EuclideanMetric(2), ChebyshevMetric(2), TorusMetric(3.0)):
            full = metric.pairwise(pts)
            for i in range(10):
                assert np.allclose(metric.to_all(pts, i), full[i])


class TestUnitBallGraphs:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 60), st.integers(0, 10**6), st.floats(0.3, 2.0))
    def test_grid_builder_matches_brute_force(self, n, seed, radius):
        pts = uniform_points(n, 3.0, seed=seed)
        fast = unit_disk_graph(pts, radius=radius)
        slow = brute_force_unit_ball_graph(pts, radius=radius)
        assert fast == slow

    def test_unit_ball_graph_respects_metric(self):
        pts = np.array([[0.0, 0.0], [0.9, 0.9], [2.5, 2.5]])
        ge = unit_ball_graph(pts, EuclideanMetric(2))
        gc = unit_ball_graph(pts, ChebyshevMetric(2))
        assert not ge.has_edge(0, 1)  # euclidean distance ≈ 1.27
        assert gc.has_edge(0, 1)  # chebyshev distance 0.9

    def test_three_dim_points(self):
        pts = uniform_points(40, 2.0, dim=3, seed=7)
        fast = unit_disk_graph(pts, radius=0.8)
        slow = brute_force_unit_ball_graph(pts, radius=0.8)
        assert fast == slow

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            unit_disk_graph(np.zeros(3))
        with pytest.raises(ParameterError):
            unit_disk_graph(np.zeros((3, 2)), radius=0.0)
        with pytest.raises(ParameterError):
            unit_ball_graph(np.zeros((2, 2)), radius=-1.0)
