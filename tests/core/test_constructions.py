"""Property tests: every construction's output satisfies its definition.

This is the central soundness suite: Algorithms 1, 2, 4, 5 are run on
random and structured graphs and their outputs re-verified with the
independent predicates from ``repro.core.domtree``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    dom_tree_greedy,
    dom_tree_kcover,
    dom_tree_kmis,
    dom_tree_mis,
    is_dominating_tree,
    is_k_connecting_dominating_tree,
    mpr_set,
)
from repro.errors import ParameterError
from repro.graph.generators import (
    complete_bipartite,
    complete_graph,
    grid_graph,
    path_graph,
    star_graph,
)

from ..conftest import small_graphs


class TestDomTreeGreedy:
    @given(small_graphs(min_nodes=2, max_nodes=12), st.integers(2, 4), st.integers(0, 1), st.data())
    @settings(max_examples=80, deadline=None)
    def test_output_is_dominating_tree(self, g, r, beta, data):
        u = data.draw(st.integers(0, g.num_nodes - 1))
        tree = dom_tree_greedy(g, u, r, beta)
        assert tree.root == u
        assert is_dominating_tree(g, tree, r, beta)

    def test_structured_graphs(self, zoo):
        for name, g in zoo.items():
            for r in (2, 3):
                for beta in (0, 1):
                    tree = dom_tree_greedy(g, 0, r, beta)
                    assert is_dominating_tree(g, tree, r, beta), (name, r, beta)

    def test_isolated_root(self):
        g = path_graph(4)
        g.remove_edge(0, 1)
        tree = dom_tree_greedy(g, 0, 3, 1)
        assert tree.nodes() == {0}

    def test_star_center_needs_no_tree(self):
        g = star_graph(8)
        assert dom_tree_greedy(g, 0, 2, 0).num_edges == 0

    def test_star_leaf_covers_siblings_via_center(self):
        g = star_graph(8)
        tree = dom_tree_greedy(g, 1, 2, 0)
        assert tree.nodes() == {1, 0}

    def test_parameters(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            dom_tree_greedy(g, 0, 1, 0)
        with pytest.raises(ParameterError):
            dom_tree_greedy(g, 0, 2, -1)

    def test_deterministic(self):
        g = grid_graph(4, 4)
        a = dom_tree_greedy(g, 5, 3, 1)
        b = dom_tree_greedy(g, 5, 3, 1)
        assert set(a.edges()) == set(b.edges())


class TestDomTreeMIS:
    @given(small_graphs(min_nodes=2, max_nodes=12), st.integers(2, 4), st.data())
    @settings(max_examples=80, deadline=None)
    def test_output_is_r1_dominating_tree(self, g, r, data):
        u = data.draw(st.integers(0, g.num_nodes - 1))
        tree = dom_tree_mis(g, u, r)
        assert is_dominating_tree(g, tree, r, beta=1)

    def test_structured_graphs(self, zoo):
        for name, g in zoo.items():
            for r in (2, 3, 4):
                tree = dom_tree_mis(g, 0, r)
                assert is_dominating_tree(g, tree, r, 1), (name, r)

    def test_mis_members_independent(self):
        # Reconstruct the picked set: non-root tree leaves-of-interest are
        # exactly tree nodes at distance ≥ 2 in G... verify pairwise
        # non-adjacency of nodes the algorithm picked by checking maximal
        # independence over the dominated ball isn't violated structurally:
        # every picked node's neighbors were removed, so no two tree nodes
        # at depth ≥ 2 that were "picked" are adjacent.  We can't recover
        # picks exactly from the tree, so assert the domination property
        # with β = 1 instead (covered above) plus determinism here.
        g = grid_graph(5, 5)
        assert set(dom_tree_mis(g, 12, 3).edges()) == set(dom_tree_mis(g, 12, 3).edges())

    def test_r_must_be_at_least_two(self):
        with pytest.raises(ParameterError):
            dom_tree_mis(path_graph(3), 0, 1)

    def test_bounded_size_on_dense_graph(self):
        # In a clique the 2-ring is empty: tree must be trivial.
        g = complete_graph(10)
        assert dom_tree_mis(g, 0, 3).num_edges == 0


class TestDomTreeKCover:
    @given(
        small_graphs(min_nodes=2, max_nodes=12), st.integers(1, 4), st.data()
    )
    @settings(max_examples=80, deadline=None)
    def test_output_is_k_connecting_star(self, g, k, data):
        u = data.draw(st.integers(0, g.num_nodes - 1))
        tree = dom_tree_kcover(g, u, k)
        assert is_k_connecting_dominating_tree(g, tree, k, beta=0)
        # Depth-1 star rooted at u.
        assert all(p == u for x, p in tree.parent.items() if x != u)

    def test_k1_is_classical_mpr(self):
        # On K_{3,3} a leaf's 2-ring is its own side; one relay suffices.
        g = complete_bipartite(3, 3)
        assert len(mpr_set(g, 0, k=1)) == 1

    def test_k_scaling_monotone(self, zoo):
        for name, g in zoo.items():
            sizes = [len(mpr_set(g, 0, k)) for k in (1, 2, 3)]
            assert sizes == sorted(sizes), name

    def test_k_larger_than_coverage_uses_escape_clause(self):
        # v has a single common neighbor; k=3 still must terminate.
        g = path_graph(3)
        tree = dom_tree_kcover(g, 0, 3)
        assert is_k_connecting_dominating_tree(g, tree, 3, beta=0)
        assert tree.nodes() == {0, 1}

    def test_parameters(self):
        with pytest.raises(ParameterError):
            dom_tree_kcover(path_graph(3), 0, 0)


class TestDomTreeKMIS:
    @given(
        small_graphs(min_nodes=2, max_nodes=12), st.integers(1, 3), st.data()
    )
    @settings(max_examples=80, deadline=None)
    def test_output_is_k_connecting_beta1_tree(self, g, k, data):
        u = data.draw(st.integers(0, g.num_nodes - 1))
        tree = dom_tree_kmis(g, u, k)
        assert is_k_connecting_dominating_tree(g, tree, k, beta=1)

    def test_structured_graphs(self, zoo):
        for name, g in zoo.items():
            for k in (1, 2, 3):
                tree = dom_tree_kmis(g, 0, k)
                assert is_k_connecting_dominating_tree(g, tree, k, 1), (name, k)

    def test_depth_at_most_two(self, zoo):
        for g in zoo.values():
            tree = dom_tree_kmis(g, 0, 2)
            assert all(d <= 2 for d in tree.depths().values())

    def test_direct_edges_for_all_depth1_nodes(self, zoo):
        # Every N(u) member of V(T) must carry a direct edge (clause (a)
        # soundness depends on it).
        for g in zoo.values():
            tree = dom_tree_kmis(g, 0, 2)
            for x, p in tree.parent.items():
                if x != 0 and x in g.neighbors(0):
                    assert p == 0

    def test_parameters(self):
        with pytest.raises(ParameterError):
            dom_tree_kmis(path_graph(3), 0, 0)
