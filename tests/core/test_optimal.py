"""Tests for the exact-optimum module and the approximation guarantees
(Propositions 2 and 6, Theorem 2's ratio)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_k_connecting_spanner,
    dom_tree_greedy,
    dom_tree_kcover,
    k_connecting_spanner_lower_bound,
    optimal_dom_tree_edges,
    optimal_kconnecting_star_size,
)
from repro.errors import ParameterError
from repro.graph.generators import (
    complete_bipartite,
    gnp_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)

from ..conftest import connected_graphs


class TestOptimalDomTree:
    def test_trivial_cases(self):
        g = star_graph(6)
        assert optimal_dom_tree_edges(g, 0, 2, 0) == 0  # no 2-ring
        g2 = path_graph(3)
        assert optimal_dom_tree_edges(g2, 0, 2, 0) == 1  # must take node 1

    def test_grid_center(self):
        g = grid_graph(3, 3)
        opt = optimal_dom_tree_edges(g, 4, 2, 0)  # center
        assert opt == 2  # two adjacent side-centers dominate the corners ring

    def test_pool_limit_enforced(self):
        g = gnp_random_graph(40, 0.6, seed=1)
        with pytest.raises(ParameterError):
            optimal_dom_tree_edges(g, 0, 3, 1)

    def test_parameters(self):
        g = path_graph(4)
        with pytest.raises(ParameterError):
            optimal_dom_tree_edges(g, 0, 1, 0)
        with pytest.raises(ParameterError):
            optimal_dom_tree_edges(g, 0, 2, -1)

    @given(connected_graphs(min_nodes=3, max_nodes=9), st.integers(0, 1), st.data())
    @settings(max_examples=50, deadline=None)
    def test_proposition2_ratio(self, g, beta, data):
        """Greedy ≤ (1+β)(r+β−1)(1+log Δ) × OPT (Proposition 2)."""
        r = data.draw(st.integers(2, 3))
        u = data.draw(st.integers(0, g.num_nodes - 1))
        greedy = dom_tree_greedy(g, u, r, beta).num_edges
        opt = optimal_dom_tree_edges(g, u, r, beta)
        assert greedy >= opt  # OPT is optimal
        if opt == 0:
            assert greedy == 0
            return
        delta = g.max_degree()
        bound = (1 + beta) * (r + beta - 1) * (1 + math.log(max(delta, 2)))
        assert greedy <= bound * opt + 1e-9


class TestOptimalStar:
    def test_bipartite_exact(self):
        g = complete_bipartite(4, 4)
        # From a left node: 2-ring is the other left nodes; one right
        # neighbor covers them all; k=2 needs two.
        assert optimal_kconnecting_star_size(g, 0, 1) == 1
        assert optimal_kconnecting_star_size(g, 0, 2) == 2

    def test_no_two_ring(self):
        assert optimal_kconnecting_star_size(star_graph(5), 0, 3) == 0

    def test_parameters(self):
        with pytest.raises(ParameterError):
            optimal_kconnecting_star_size(path_graph(3), 0, 0)
        with pytest.raises(ParameterError):
            k_connecting_spanner_lower_bound(path_graph(3), 0)

    @given(connected_graphs(min_nodes=3, max_nodes=9), st.integers(1, 3), st.data())
    @settings(max_examples=60, deadline=None)
    def test_proposition6_ratio(self, g, k, data):
        """Greedy star ≤ (1 + log Δ) × OPT (Proposition 6)."""
        u = data.draw(st.integers(0, g.num_nodes - 1))
        greedy = dom_tree_kcover(g, u, k).num_edges
        opt = optimal_kconnecting_star_size(g, u, k)
        assert greedy >= opt
        if opt == 0:
            assert greedy == 0
            return
        delta = g.max_degree()
        assert greedy <= (1 + math.log(max(delta, 2))) * opt + 1e-9

    @given(connected_graphs(min_nodes=3, max_nodes=9), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_theorem2_global_ratio(self, g, k):
        """Union ≤ 2(1+log Δ) × any spanner's edges ≥ the lower bound."""
        rs = build_k_connecting_spanner(g, k=k)
        lb = k_connecting_spanner_lower_bound(g, k)
        assert lb <= g.num_edges + 1e-9
        if lb == 0:
            return
        delta = g.max_degree()
        assert rs.num_edges <= 2 * (1 + math.log(max(delta, 2))) * lb + 1e-9
