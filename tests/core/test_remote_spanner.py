"""Tests for the spanner builders and the stretch verification machinery."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    StretchGuarantee,
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    build_remote_spanner,
    effective_epsilon,
    epsilon_to_radius,
    is_k_connecting_remote_spanner,
    is_remote_spanner,
    k_connecting_stretch_stats,
    remote_spanner_violations,
    remote_stretch_stats,
)
from repro.errors import NotASubgraphError, ParameterError
from repro.graph import Graph
from repro.graph.generators import cycle_graph, grid_graph, path_graph

from ..conftest import connected_graphs, small_graphs


class TestEpsilonRadius:
    def test_canonical_values(self):
        assert epsilon_to_radius(1.0) == 2
        assert epsilon_to_radius(0.5) == 3
        assert epsilon_to_radius(1 / 3) == 4
        assert epsilon_to_radius(0.4) == 4  # ceil(2.5)+1

    def test_effective_epsilon_dominates(self):
        for eps in (1.0, 0.7, 0.5, 0.3, 0.21):
            r = epsilon_to_radius(eps)
            assert effective_epsilon(r) <= eps + 1e-12

    def test_bounds(self):
        with pytest.raises(ParameterError):
            epsilon_to_radius(0.0)
        with pytest.raises(ParameterError):
            epsilon_to_radius(1.5)
        with pytest.raises(ParameterError):
            effective_epsilon(1)


class TestStretchGuarantee:
    def test_bound_formula(self):
        g = StretchGuarantee(2.0, -1.0, k=2)
        assert g.bound(5, k_prime=2) == 8.0
        assert str(g) == "2-connecting (2, -1)"
        assert str(StretchGuarantee(1.0, 0.0)) == "(1, 0)"


class TestIsRemoteSpanner:
    def test_full_graph_is_always_10_remote_spanner(self, zoo):
        for g in zoo.values():
            assert is_remote_spanner(g, g, 1.0, 0.0)

    def test_empty_subgraph_usually_is_not(self):
        g = path_graph(5)
        h = g.spanning_subgraph([])
        assert not is_remote_spanner(h, g, 1.0, 0.0)
        viol = remote_spanner_violations(h, g, 1.0, 0.0)
        assert all(v[3] == math.inf for v in viol)

    def test_rejects_non_subgraph(self):
        g = path_graph(4)
        bad = Graph(4, [(0, 2)])
        with pytest.raises(NotASubgraphError):
            is_remote_spanner(bad, g, 1.0, 0.0)

    def test_asymmetry_of_the_definition(self):
        # H empty on a path 0-1-2: from node 0, H_0 has edge 01 only, so 2
        # unreachable; the pair fails in one direction and the predicate
        # must catch ordered violations.
        g = path_graph(3)
        h = g.spanning_subgraph([(1, 2)])
        # From 0: augmented edges {01}; path 0-1-2 exists in H_0. OK.
        # From 2: augmented {12}; path 2-1-0 needs edge 01 ∈ H — missing.
        viol = remote_spanner_violations(h, g, 1.0, 0.0)
        assert (2, 0, 2, math.inf) in viol
        assert all(v[0] != 0 for v in viol)

    def test_adjacent_pairs_not_constrained(self):
        # On a clique every pair is adjacent: even the empty sub-graph is
        # a (1, 0)-remote-spanner (the augmentation supplies every edge).
        from repro.graph.generators import complete_graph

        g = complete_graph(5)
        h = g.spanning_subgraph([])
        assert is_remote_spanner(h, g, 1.0, 0.0)


class TestBuilders:
    @given(small_graphs(min_nodes=2, max_nodes=11))
    @settings(max_examples=60, deadline=None)
    def test_k1_builder_gives_exact_distances(self, g):
        rs = build_k_connecting_spanner(g, k=1)
        assert is_remote_spanner(rs.graph, g, 1.0, 0.0)
        assert rs.graph.is_spanning_subgraph_of(g)

    @given(small_graphs(min_nodes=2, max_nodes=10), st.sampled_from([1.0, 0.5, 1 / 3]))
    @settings(max_examples=60, deadline=None)
    def test_epsilon_builder_mis(self, g, eps):
        rs = build_remote_spanner(g, epsilon=eps, method="mis")
        assert is_remote_spanner(rs.graph, g, rs.guarantee.alpha, rs.guarantee.beta)

    @given(small_graphs(min_nodes=2, max_nodes=10), st.sampled_from([1.0, 0.5]))
    @settings(max_examples=40, deadline=None)
    def test_epsilon_builder_greedy(self, g, eps):
        rs = build_remote_spanner(g, epsilon=eps, method="greedy")
        assert is_remote_spanner(rs.graph, g, rs.guarantee.alpha, rs.guarantee.beta)

    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError):
            build_remote_spanner(path_graph(4), 0.5, method="magic")
        with pytest.raises(ParameterError):
            build_k_connecting_spanner(path_graph(4), k=0)

    def test_density_and_repr(self):
        g = grid_graph(4, 4)
        rs = build_k_connecting_spanner(g, k=1)
        assert 0 < rs.density(g) <= 1.0
        assert rs.tree_for(0).root == 0

    @given(connected_graphs(min_nodes=3, max_nodes=9), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_k_connecting_builder_full_check(self, g, k):
        rs = build_k_connecting_spanner(g, k=k)
        assert is_k_connecting_remote_spanner(rs.graph, g, k, 1.0, 0.0)

    @given(connected_graphs(min_nodes=3, max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_biconnecting_builder_full_check(self, g):
        rs = build_biconnecting_spanner(g)
        assert is_k_connecting_remote_spanner(rs.graph, g, 2, 2.0, -1.0)


class TestStretchStats:
    def test_exact_spanner_stats(self):
        g = grid_graph(4, 5)
        rs = build_k_connecting_spanner(g, k=1)
        stats = remote_stretch_stats(rs.graph, g)
        assert stats.max_ratio == 1.0
        assert stats.exact_fraction == 1.0
        assert stats.unreachable == 0
        assert stats.satisfies(1.0, 0.0)

    def test_stats_detect_bad_subgraph(self):
        g = path_graph(5)
        h = g.spanning_subgraph([(0, 1)])
        stats = remote_stretch_stats(h, g)
        assert stats.unreachable > 0
        assert not stats.satisfies(10.0, 10.0)

    def test_k_connecting_stats(self):
        g = cycle_graph(6)
        rs = build_k_connecting_spanner(g, k=2)
        stats = k_connecting_stretch_stats(rs.graph, g, k=2)
        assert stats.connectivity_preserved
        assert stats.max_ratio_by_k.get(1, 0.0) <= 1.0
        assert stats.max_ratio_by_k.get(2, 0.0) <= 1.0

    def test_sources_restriction(self):
        g = grid_graph(3, 3)
        rs = build_k_connecting_spanner(g, k=1)
        partial = remote_stretch_stats(rs.graph, g, sources=[0])
        full = remote_stretch_stats(rs.graph, g)
        assert partial.pairs_checked < full.pairs_checked


class TestCycleWorstCase:
    def test_cycle_spanner_keeps_all_edges(self):
        # On a cycle every edge is essential for exact distances: the
        # (1, 0)-remote-spanner is the whole cycle (§1.2's worst case).
        g = cycle_graph(9)
        rs = build_k_connecting_spanner(g, k=1)
        assert rs.num_edges == g.num_edges

    def test_epsilon_one_on_cycle(self):
        g = cycle_graph(12)
        rs = build_remote_spanner(g, epsilon=1.0)
        assert is_remote_spanner(rs.graph, g, 2.0, -1.0)
