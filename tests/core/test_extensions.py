"""Tests for the §4 future-work extensions.

These are *empirical* probes of the paper's conjectures: they must hold
on the instance families we try (their failure would be a publishable
counterexample, which the suite would surface loudly).
"""

import math

import pytest
from hypothesis import given, settings

from repro.core import build_k_connecting_spanner, is_remote_spanner
from repro.core.extensions import (
    build_edge_connecting_spanner,
    build_k_connecting_eps_spanner,
    evaluate_k_connecting_eps,
    is_k_edge_connecting_remote_spanner,
    k_edge_connecting_violations,
)
from repro.errors import ParameterError
from repro.graph.generators import random_connected_gnp

from ..conftest import connected_graphs


class TestEdgeConnectingConjecture:
    def test_counterexample_refutes_naive_transfer(self):
        """The repo's headline negative finding: reusing Algorithm 4's
        union for EDGE-connectivity fails — the exchange argument of
        Lemma 2 genuinely needs node-disjointness.  Pinned as a
        regression so the counterexample is never lost."""
        from repro.core.extensions import edge_conjecture_counterexample

        g, rs, viol = edge_conjecture_counterexample()
        assert viol, "counterexample must exhibit violations"
        # The documented pair: (2, 5) at edge-disjoint 2-distance 6 in G,
        # unreachable twice-edge-disjointly in H_2.
        assert any(v[0] == 2 and v[1] == 5 and v[4] == math.inf for v in viol)
        # While the plain node-disjoint guarantee of Theorem 2 still holds:
        from repro.core import is_k_connecting_remote_spanner

        assert is_k_connecting_remote_spanner(rs.graph, g, 2, 1.0, 0.0)

    @given(connected_graphs(min_nodes=3, max_nodes=9))
    @settings(max_examples=50, deadline=None)
    def test_k1_edge_condition_always_holds(self, g):
        """For k = 1 edge- and node-disjointness coincide, so the naive
        candidate IS correct — the conjecture's failure starts at k = 2."""
        rs = build_edge_connecting_spanner(g, k=1)
        assert is_k_edge_connecting_remote_spanner(rs.graph, g, 1, 1.0, 0.0)

    def test_failure_rate_measurable(self):
        from repro.core.extensions import naive_edge_candidate_failure_rate

        graphs = [random_connected_gnp(8, 0.3, seed=s) for s in range(10)]
        failures, total = naive_edge_candidate_failure_rate(graphs, k=2)
        assert total == 10
        assert 0 <= failures <= total

    def test_k1_coincides_with_plain_condition(self):
        g = random_connected_gnp(15, 0.2, seed=3)
        rs = build_k_connecting_spanner(g, k=1)
        # k = 1: edge-disjoint and node-disjoint single paths coincide.
        assert is_k_edge_connecting_remote_spanner(rs.graph, g, 1, 1.0, 0.0)
        assert is_remote_spanner(rs.graph, g, 1.0, 0.0)

    def test_violations_reported_for_bad_subgraph(self):
        g = random_connected_gnp(10, 0.3, seed=4)
        h = g.spanning_subgraph([])
        viol = k_edge_connecting_violations(h, g, 1, 1.0, 0.0)
        assert viol  # empty sub-graph can't satisfy exact distances

    def test_validation(self):
        g = random_connected_gnp(6, 0.3, seed=5)
        with pytest.raises(ParameterError):
            k_edge_connecting_violations(g, g, 0, 1.0, 0.0)


class TestKConnectingEpsCandidate:
    @given(connected_graphs(min_nodes=3, max_nodes=9))
    @settings(max_examples=30, deadline=None)
    def test_plain_stretch_inherited(self, g):
        """The union contains Theorem 1's trees, so (1+ε, 1−2ε) plain
        stretch is guaranteed — must always verify."""
        rs = build_k_connecting_eps_spanner(g, k=2, epsilon=0.5)
        assert is_remote_spanner(rs.graph, g, rs.guarantee.alpha, rs.guarantee.beta)

    def test_report_fields(self):
        g = random_connected_gnp(14, 0.25, seed=6)
        report = evaluate_k_connecting_eps(g, k=2, epsilon=0.5)
        assert report.plain_stretch_ok
        assert report.edges > 0
        assert report.pairs_checked >= 0
        if report.pairs_checked:
            assert report.max_kconn_ratio >= 1.0 or report.max_kconn_ratio == 0.0

    def test_superset_of_both_ingredients(self):
        g = random_connected_gnp(12, 0.3, seed=7)
        rs = build_k_connecting_eps_spanner(g, k=2, epsilon=0.5)
        from repro.core import dom_tree_mis

        for u in g.nodes():
            for a, b in dom_tree_mis(g, u, 3).edges():
                assert rs.graph.has_edge(a, b)

    def test_validation(self):
        g = random_connected_gnp(6, 0.3, seed=8)
        with pytest.raises(ParameterError):
            build_k_connecting_eps_spanner(g, k=0, epsilon=0.5)
