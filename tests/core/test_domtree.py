"""Tests for the DomTree type and the definition-level predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domtree import (
    DomTree,
    dominating_tree_violations,
    induces_dominating_trees,
    induces_k_connecting_star_trees,
    is_dominating_tree,
    is_k_connecting_dominating_tree,
    k_connecting_violations,
)
from repro.errors import GraphError, ParameterError
from repro.graph import Graph
from repro.graph.generators import complete_graph, path_graph, star_graph

from ..conftest import connected_graphs


class TestDomTreeType:
    def test_root_self_parent_enforced(self):
        t = DomTree(root=3)
        assert t.parent[3] == 3
        with pytest.raises(ParameterError):
            DomTree(root=0, parent={0: 1, 1: 1})

    def test_nodes_edges_depths(self):
        t = DomTree(root=0, parent={0: 0, 1: 0, 2: 1, 3: 1})
        assert t.nodes() == {0, 1, 2, 3}
        assert set(t.edges()) == {(0, 1), (1, 2), (1, 3)}
        assert t.num_edges == 3
        assert t.depth(3) == 2
        assert t.depths() == {0: 0, 1: 1, 2: 2, 3: 2}

    def test_branch(self):
        t = DomTree(root=0, parent={0: 0, 1: 0, 2: 1, 5: 0, 6: 5})
        assert t.branch(2) == 1
        assert t.branch(6) == 5
        assert t.branch(1) == 1
        with pytest.raises(ParameterError):
            t.branch(0)

    def test_cycle_detection(self):
        t = DomTree(root=0, parent={0: 0, 1: 2, 2: 1})
        with pytest.raises(GraphError):
            t.depths()

    def test_add_root_path(self):
        t = DomTree(root=0)
        t.add_root_path([0, 1, 2])
        t.add_root_path([0, 1, 3])
        assert t.depth(2) == 2
        assert t.depth(3) == 2
        with pytest.raises(ParameterError):
            t.add_root_path([1, 2])

    def test_validate_against_graph(self):
        g = path_graph(4)
        good = DomTree(root=0, parent={0: 0, 1: 0, 2: 1})
        good.validate(g)
        bad = DomTree(root=0, parent={0: 0, 2: 0})  # edge 0-2 absent
        with pytest.raises(GraphError):
            bad.validate(g)

    def test_path_to_root_and_contains(self):
        t = DomTree(root=0, parent={0: 0, 1: 0, 2: 1})
        assert t.path_to_root(2) == [2, 1, 0]
        assert 2 in t and 9 not in t

    def test_to_graph(self):
        t = DomTree(root=0, parent={0: 0, 1: 0})
        g = t.to_graph(4)
        assert g.num_nodes == 4
        assert g.has_edge(0, 1)


class TestDominatingPredicate:
    def test_star_dominates_two_ring(self):
        # K4 minus one edge: 0 adjacent to 1,2; 3 adjacent to 1,2.
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3), (1, 2)])
        t = DomTree(root=0, parent={0: 0, 1: 0})
        assert is_dominating_tree(g, t, r=2, beta=0)

    def test_violation_reported_with_detail(self):
        g = path_graph(4)  # node 3 at distance 3... use r=3
        t = DomTree(root=0, parent={0: 0})  # empty tree: nothing dominated
        viol = dominating_tree_violations(g, t, r=3, beta=0)
        assert (2, 2, None) in viol or any(v[0] == 2 for v in viol)
        assert any(v[0] == 3 for v in viol)

    def test_beta_relaxes_depth(self):
        # Path 0-1-2-3: dominate node 3 (distance 3) via node 2 at depth 2
        # requires depth ≤ 2 = r'−1 for β=0 — satisfied; via a depth-3
        # dominator only with β ≥ 1.
        g = path_graph(5)
        t = DomTree(root=0, parent={0: 0, 1: 0, 2: 1, 3: 2})
        # node 4 at distance 4 has neighbor 3 at depth 3 = r'−1 → β=0 ok
        assert is_dominating_tree(g, t, r=4, beta=0)
        shallow = DomTree(root=0, parent={0: 0, 1: 0, 2: 1})
        # node 3 at distance 3: neighbor 2 at depth 2 = r'−1 ✓;
        # node 4 at distance 4: no dominated neighbor in tree → violation.
        assert not is_dominating_tree(g, t.__class__(root=0, parent=dict(shallow.parent)), 4, 0)

    def test_parameter_validation(self):
        g = path_graph(3)
        t = DomTree(root=0)
        with pytest.raises(ParameterError):
            dominating_tree_violations(g, t, r=1, beta=0)
        with pytest.raises(ParameterError):
            dominating_tree_violations(g, t, r=2, beta=-1)


class TestKConnectingPredicate:
    def test_escape_clause_all_common_in_tree(self):
        # v reachable only through w; tree containing edge uw satisfies (a).
        g = path_graph(3)  # u=0, w=1, v=2
        t = DomTree(root=0, parent={0: 0, 1: 0})
        assert is_k_connecting_dominating_tree(g, t, k=5, beta=0)

    def test_branch_counting(self):
        # u=0 with children 1,2; v=3 adjacent to both.
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        t = DomTree(root=0, parent={0: 0, 1: 0, 2: 0})
        assert is_k_connecting_dominating_tree(g, t, k=2, beta=0)
        t_one = DomTree(root=0, parent={0: 0, 1: 0})
        # Only one branch adjacent to v and common neighbor 2 not in tree.
        assert not is_k_connecting_dominating_tree(g, t_one, k=2, beta=0)
        viol = k_connecting_violations(g, t_one, k=2, beta=0)
        assert viol == [(3, 1)]

    def test_beta_one_counts_depth_two_branches(self):
        # v=4 adjacent to 1 (depth 1) and 3 (depth 2, different branch).
        g2 = Graph(5, [(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (3, 4)])
        # v=4: neighbors 1 (depth1), 3; make tree 0-1, 0-2, 2-3:
        t2 = DomTree(root=0, parent={0: 0, 1: 0, 2: 0, 3: 2})
        # v=4 at distance 2 from 0; common neighbor 1 not all in tree? 1 is
        # in tree... N(4)∩N(0) = {1}. 1 in tree with edge 0-1 → clause (a).
        assert is_k_connecting_dominating_tree(g2, t2, k=2, beta=1)

    def test_parameter_validation(self):
        g = path_graph(3)
        t = DomTree(root=0)
        with pytest.raises(ParameterError):
            k_connecting_violations(g, t, k=0, beta=0)
        with pytest.raises(ParameterError):
            k_connecting_violations(g, t, k=1, beta=-1)


class TestInducesPredicates:
    def test_full_graph_always_induces(self):
        g = complete_graph(5)
        assert induces_dominating_trees(g, g, r=2, beta=0)
        assert induces_k_connecting_star_trees(g, g, k=3)

    def test_empty_subgraph_fails_when_two_ring_exists(self):
        g = path_graph(4)
        h = g.spanning_subgraph([])
        assert not induces_dominating_trees(h, g, r=2, beta=1)
        assert not induces_k_connecting_star_trees(h, g, k=1)

    def test_star_graph_trivially_induced(self):
        g = star_graph(6)
        h = g.spanning_subgraph([])  # no 2-ring exists from the center…
        # …but leaves have 2-rings (other leaves via the center).
        assert not induces_dominating_trees(h, g, r=2, beta=1)

    @given(connected_graphs(min_nodes=3, max_nodes=8))
    @settings(max_examples=40, deadline=None)
    def test_induces_monotone_in_beta(self, g):
        h = g.spanning_subgraph(list(g.edges())[::2])
        if induces_dominating_trees(h, g, r=2, beta=0):
            assert induces_dominating_trees(h, g, r=2, beta=1)

    @given(connected_graphs(min_nodes=3, max_nodes=8), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_star_trees_monotone_in_k(self, g, k):
        h = g.spanning_subgraph(list(g.edges())[::2])
        if induces_k_connecting_star_trees(h, g, k + 1):
            assert induces_k_connecting_star_trees(h, g, k)
