"""Property tests of the paper's iff-characterizations (Props 1 and 5).

The strongest soundness evidence in the suite: for random (G, H) pairs the
two *independently implemented* sides of each proposition must agree —
BFS-based stretch checking vs induced-tree distance tests (Prop 1), and
flow-based k-connecting stretch vs the per-node star condition (Prop 5).
A bug in either implementation, or a misreading of the paper, shows up as
a mismatch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_k_connecting_spanner,
    build_remote_spanner,
    induces_dominating_trees,
    induces_k_connecting_star_trees,
    proposition1_holds,
    proposition1_sides,
    proposition5_holds,
    proposition5_sides,
)
from repro.core.remote_spanner import epsilon_to_radius
from repro.graph.generators import cycle_graph, grid_graph

from ..conftest import graph_with_subgraph


class TestProposition1:
    @given(graph_with_subgraph(min_nodes=3, max_nodes=9), st.sampled_from([1.0, 0.5, 1 / 3]))
    @settings(max_examples=120, deadline=None)
    def test_equivalence_on_random_subgraphs(self, pair, eps):
        g, h = pair
        assert proposition1_holds(h, g, eps)

    @given(graph_with_subgraph(min_nodes=3, max_nodes=8))
    @settings(max_examples=60, deadline=None)
    def test_both_sides_true_for_constructed_spanner(self, pair):
        g, _h = pair
        rs = build_remote_spanner(g, epsilon=0.5, method="mis")
        lhs, rhs = proposition1_sides(rs.graph, g, 0.5)
        assert lhs and rhs

    def test_full_graph_both_sides_true(self):
        g = grid_graph(3, 4)
        lhs, rhs = proposition1_sides(g, g, 0.5)
        assert lhs and rhs

    def test_empty_subgraph_both_sides_false(self):
        g = cycle_graph(8)
        h = g.spanning_subgraph([])
        lhs, rhs = proposition1_sides(h, g, 0.5)
        assert not lhs and not rhs

    def test_radius_matches_effective_epsilon(self):
        # The characterization is stated for ε' = 1/(r−1); a direct
        # confirmation that the translation is self-consistent.
        for eps in (1.0, 0.5, 1 / 3, 0.25):
            r = epsilon_to_radius(eps)
            assert r == round(1 / (1 / (r - 1))) + 1


class TestProposition5:
    @given(graph_with_subgraph(min_nodes=3, max_nodes=8), st.integers(1, 3))
    @settings(max_examples=80, deadline=None)
    def test_equivalence_on_random_subgraphs(self, pair, k):
        g, h = pair
        assert proposition5_holds(h, g, k)

    @given(graph_with_subgraph(min_nodes=3, max_nodes=8), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_constructed_spanner_satisfies_both_sides(self, pair, k):
        g, _h = pair
        rs = build_k_connecting_spanner(g, k=k)
        lhs, rhs = proposition5_sides(rs.graph, g, k)
        assert lhs and rhs

    def test_k1_star_condition_is_mpr_condition(self):
        # For k = 1 the star condition is exactly "H contains a (2,0)-
        # dominating star for every node" — the MPR observation of §1.2.
        g = grid_graph(3, 3)
        rs = build_k_connecting_spanner(g, k=1)
        assert induces_k_connecting_star_trees(rs.graph, g, 1)
        assert induces_dominating_trees(rs.graph, g, r=2, beta=0)
