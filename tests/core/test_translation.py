"""Property tests of the §1.2 translation lemma and the remote advantage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import additive_two_spanner, baswana_sen_spanner, greedy_spanner
from repro.core import build_k_connecting_spanner
from repro.core.translation import (
    check_translation_lemma,
    is_spanner,
    remote_advantage,
    spanner_violations,
    translated_guarantee,
)
from repro.errors import ParameterError
from repro.graph.generators import cycle_graph, grid_graph, random_connected_gnp

from ..conftest import connected_graphs, graph_with_subgraph


class TestIsSpanner:
    def test_graph_is_own_10_spanner(self, zoo):
        for g in zoo.values():
            assert is_spanner(g, g, 1.0, 0.0)

    def test_violations_reported(self):
        g = cycle_graph(8)
        h = g.spanning_subgraph([e for e in g.edges() if e != (0, 7)])
        viol = spanner_violations(h, g, 1.0, 0.0)
        assert any(v[0] == 0 and v[1] == 7 for v in viol)
        assert is_spanner(h, g, 7.0, 0.0)  # path around the cycle


class TestTranslationLemma:
    def test_guarantee_arithmetic(self):
        guar = translated_guarantee(3.0, 0.0)
        assert guar.alpha == 3.0
        assert guar.beta == -2.0
        with pytest.raises(ParameterError):
            translated_guarantee(0.5, 0.0)

    @given(graph_with_subgraph(min_nodes=3, max_nodes=9), st.sampled_from([1.0, 2.0, 3.0]))
    @settings(max_examples=80, deadline=None)
    def test_lemma_holds_on_random_subgraphs(self, pair, alpha):
        """Whenever H happens to be an (α, 0)-spanner, the translated
        remote condition (α, 1−α) must hold — the paper's lemma, fuzzed."""
        g, h = pair
        assert check_translation_lemma(h, g, alpha, 0.0)

    @given(connected_graphs(min_nodes=3, max_nodes=10), st.integers(1, 2))
    @settings(max_examples=30, deadline=None)
    def test_lemma_on_greedy_spanners(self, g, k):
        t = 2 * k - 1
        h = greedy_spanner(g, t)
        assert is_spanner(h, g, float(t), 0.0)
        assert check_translation_lemma(h, g, float(t), 0.0)

    @given(connected_graphs(min_nodes=3, max_nodes=10), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_lemma_on_baswana_sen(self, g, seed):
        h = baswana_sen_spanner(g, 2, seed=seed)
        assert check_translation_lemma(h, g, 3.0, 0.0)

    def test_lemma_on_additive(self):
        g = random_connected_gnp(20, 0.25, seed=17)
        h = additive_two_spanner(g)
        # (1, 2)-spanner → (1, 2)-remote-spanner (translation with α = 1
        # keeps β; the stronger translated form is (1, 2−1+1) = (1, 2)).
        assert check_translation_lemma(h, g, 1.0, 2.0)


class TestRemoteAdvantage:
    def test_advantage_positive_on_sparse_spanner(self):
        g = grid_graph(4, 5)
        rs = build_k_connecting_spanner(g, k=1)
        adv = remote_advantage(rs.graph, g)
        # The spanner dropped edges, so some pair must profit from the
        # augmentation (else the spanner would equal the graph).
        if rs.num_edges < g.num_edges:
            assert adv.improved_pairs > 0

    def test_no_advantage_on_full_graph(self):
        g = grid_graph(3, 4)
        adv = remote_advantage(g, g)
        assert adv.improved_pairs == 0
        assert adv.total_savings == 0

    def test_rescued_pairs_counted(self):
        from repro.graph.generators import path_graph

        g = path_graph(4)
        h = g.spanning_subgraph([(2, 3)])
        adv = remote_advantage(h, g)
        # From node 0, H_0 rescues node 1 region... pair (0,2): H_0 has
        # 0-1 but not 1-2 → still unreachable; pair (1,3): H_1 has 1-0,1-2
        # and H has 2-3 → rescued.
        assert adv.rescued_pairs > 0

    @given(graph_with_subgraph(min_nodes=3, max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_savings_nonnegative_invariant(self, pair):
        g, h = pair
        adv = remote_advantage(h, g)
        assert adv.total_savings >= 0
        assert adv.max_savings >= 0
        assert adv.improved_pairs <= adv.pairs
