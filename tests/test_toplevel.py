"""Tests for package-level plumbing: version, errors, rng discipline."""

import numpy as np

import repro
from repro.errors import (
    GraphError,
    InfeasibleError,
    NodeNotFound,
    NotASubgraphError,
    ParameterError,
    ProtocolError,
    ReproError,
)
from repro.rng import derive_seed, ensure_rng, spawn


class TestVersionAndExports:
    def test_version_present(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.distributed
        import repro.experiments
        import repro.geometry
        import repro.graph
        import repro.paths
        import repro.routing
        import repro.setcover

        for pkg in (
            repro.analysis,
            repro.baselines,
            repro.core,
            repro.distributed,
            repro.experiments,
            repro.geometry,
            repro.graph,
            repro.paths,
            repro.routing,
            repro.setcover,
        ):
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"{pkg.__name__}.{name}"


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            GraphError,
            NodeNotFound,
            NotASubgraphError,
            ParameterError,
            InfeasibleError,
            ProtocolError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(NodeNotFound, GraphError)

    def test_node_not_found_message(self):
        err = NodeNotFound(7, 5)
        assert "7" in str(err) and "5" in str(err)
        assert err.node == 7 and err.n == 5


class TestRng:
    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_ensure_rng_seeded_deterministic(self):
        a = ensure_rng(5).integers(0, 10**9)
        b = ensure_rng(5).integers(0, 10**9)
        assert a == b

    def test_derive_seed_tags_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_spawn_streams_independent(self):
        streams = list(spawn(3, 4))
        draws = [g.integers(0, 10**9) for g in streams]
        assert len(set(draws)) == len(draws)  # overwhelmingly likely
