"""Distance cache under interleaved mutate/freeze/query sequences.

The cache key is ``(graph_version, source, cutoff)``: stale hits must be
impossible no matter how mutations, freezes and queries interleave —
asserted here by comparing every cached answer against a fresh BFS on a
pristine copy of the current graph.
"""

import pytest

from repro.errors import ParameterError
from repro.graph import (
    Graph,
    bfs_distances,
    cached_bfs_distances,
    distance_cache_info,
    set_distance_cache_capacity,
)
from repro.graph.cache import DISTANCE_CACHE_SIZE
from repro.graph.generators import gnp_random_graph, path_graph


class TestInterleavedSequences:
    def test_mutate_freeze_query_roundtrips(self):
        g = path_graph(12)
        assert cached_bfs_distances(g, 0)[11] == 11
        g.remove_edge(5, 6)  # split the path
        assert cached_bfs_distances(g, 0)[11] == -1
        g.freeze()  # freezing must not resurrect stale entries
        assert cached_bfs_distances(g, 0)[11] == -1
        g.add_edge(5, 6)
        g.add_edge(0, 11)  # shortcut
        assert cached_bfs_distances(g, 0)[11] == 1
        g.remove_node(11)
        assert cached_bfs_distances(g, 0)[11] == -1

    def test_randomized_interleaving_never_stale(self, rng):
        g = gnp_random_graph(25, 0.12, seed=rng)
        for _step in range(120):
            op = rng.random()
            if op < 0.25:
                u, v = (int(x) for x in rng.integers(0, g.num_nodes, 2))
                if u != v:
                    (g.remove_edge if g.has_edge(u, v) else g.add_edge)(u, v)
            elif op < 0.35:
                g.freeze()
            elif op < 0.40:
                g.remove_node(int(rng.integers(0, g.num_nodes)))
            source = int(rng.integers(0, g.num_nodes))
            cutoff = None if rng.random() < 0.6 else int(rng.integers(0, 5))
            expected = bfs_distances(g.copy(), source, cutoff)  # pristine oracle
            assert cached_bfs_distances(g, source, cutoff) == expected
            # Second lookup is a hit off the same key and must agree too.
            assert cached_bfs_distances(g, source, cutoff) == expected

    def test_cutoff_is_part_of_the_key(self):
        g = path_graph(8)
        assert cached_bfs_distances(g, 0, cutoff=2)[5] == -1
        assert cached_bfs_distances(g, 0)[5] == 5
        assert cached_bfs_distances(g, 0, cutoff=2)[5] == -1  # still capped

    def test_hits_return_fresh_lists(self):
        g = path_graph(6)
        first = cached_bfs_distances(g, 0)
        first[3] = 999  # caller-owned: corrupting it must not poison the cache
        assert cached_bfs_distances(g, 0)[3] == 3


class TestRetentionAndEviction:
    def test_entries_accumulate_across_versions(self):
        g = path_graph(10)
        cached_bfs_distances(g, 0)
        g.add_edge(0, 9)
        cached_bfs_distances(g, 0)
        info = distance_cache_info(g)
        assert info.entries == 2  # distinct versions coexist
        assert info.capacity == DISTANCE_CACHE_SIZE

    def test_lru_eviction_bounds_entries(self):
        n = DISTANCE_CACHE_SIZE + 40
        g = Graph(n, ((i, i + 1) for i in range(n - 1)))
        for s in range(n):
            cached_bfs_distances(g, s)
        info = distance_cache_info(g)
        assert info.entries == info.capacity
        assert info.evictions == n - info.capacity
        # Oldest key evicted, newest retained: both still answer correctly.
        assert cached_bfs_distances(g, 0) == bfs_distances(g, 0)
        assert cached_bfs_distances(g, n - 1) == bfs_distances(g, n - 1)

    def test_frozen_snapshot_has_its_own_cache(self):
        g = path_graph(9)
        csr = g.freeze()
        assert cached_bfs_distances(csr, 0) == bfs_distances(g, 0)
        g.add_edge(0, 8)  # mutating g must not disturb the snapshot's cache
        assert cached_bfs_distances(csr, 0)[8] == 8
        assert cached_bfs_distances(g, 0)[8] == 1


class TestObservabilityAndSizing:
    def test_hit_miss_counters(self):
        g = path_graph(12)
        cached_bfs_distances(g, 0)  # miss
        cached_bfs_distances(g, 0)  # hit
        cached_bfs_distances(g, 1)  # miss
        info = distance_cache_info(g)
        assert (info.hits, info.misses, info.evictions) == (1, 2, 0)
        assert info.hit_rate == pytest.approx(1 / 3)

    def test_counters_survive_mutation_and_count_version_misses(self):
        g = path_graph(8)
        cached_bfs_distances(g, 0)
        g.add_edge(0, 7)  # version bump: same source now misses again
        cached_bfs_distances(g, 0)
        info = distance_cache_info(g)
        assert info.misses == 2 and info.hits == 0

    def test_per_graph_capacity_override(self):
        g = path_graph(40)
        set_distance_cache_capacity(g, 4)
        for s in range(10):
            cached_bfs_distances(g, s)
        info = distance_cache_info(g)
        assert info.entries == info.capacity == 4
        assert info.evictions == 6
        # Another graph keeps the module default.
        assert distance_cache_info(path_graph(3)).capacity == DISTANCE_CACHE_SIZE

    def test_shrinking_capacity_evicts_lru(self):
        g = path_graph(20)
        for s in range(6):
            cached_bfs_distances(g, s)
        set_distance_cache_capacity(g, 2)
        info = distance_cache_info(g)
        assert info.entries == 2 and info.evictions == 4
        # The two most recent keys survive.
        cached_bfs_distances(g, 4)
        cached_bfs_distances(g, 5)
        assert distance_cache_info(g).hits == 2

    def test_capacity_validation(self):
        g = path_graph(5)
        with pytest.raises(ParameterError):
            set_distance_cache_capacity(g, 0)

    def test_untracked_graph_reports_zeros(self):
        info = distance_cache_info(object())
        assert info == (0, DISTANCE_CACHE_SIZE, 0, 0, 0)
