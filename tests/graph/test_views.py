"""Tests for the augmented view H_u — the paper's central object."""

import pytest
from hypothesis import given

from repro.errors import NodeNotFound, NotASubgraphError
from repro.graph import (
    AugmentedView,
    Graph,
    augmented_distances,
    augmented_graph,
    bfs_distances,
)
from repro.graph.generators import path_graph

from ..conftest import graph_with_subgraph


class TestAugmentedView:
    def test_adds_exactly_us_missing_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        h = g.spanning_subgraph([(1, 2), (2, 3)])
        view = AugmentedView(h, g, 0)
        assert view.has_edge(0, 1)  # augmented
        assert view.has_edge(0, 3)  # augmented
        assert view.has_edge(1, 2)  # in H
        assert not view.has_edge(1, 3)  # in neither

    def test_neighbors_at_source_and_elsewhere(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        h = g.spanning_subgraph([(1, 2)])
        view = AugmentedView(h, g, 0)
        assert view.neighbors(0) == {1, 3}
        assert view.neighbors(1) == {2, 0}  # H edge + symmetric augmentation
        assert view.neighbors(2) == {1}

    def test_only_u_is_augmented(self):
        # The augmentation is asymmetric: H_0 ≠ H_2.
        g = path_graph(4)
        h = g.spanning_subgraph([])
        assert AugmentedView(h, g, 0).distances_from(0)[1] == 1
        assert AugmentedView(h, g, 0).distances_from(0)[2] == -1
        assert AugmentedView(h, g, 2).distances_from(2)[1] == 1

    def test_mismatched_node_sets_rejected(self):
        with pytest.raises(NotASubgraphError):
            AugmentedView(Graph(3), Graph(4), 0)

    def test_bad_source_rejected(self):
        with pytest.raises(NodeNotFound):
            AugmentedView(Graph(3), Graph(3), 3)

    def test_distances_cutoff(self):
        g = path_graph(6)
        h = g.copy()
        d = AugmentedView(h, g, 0).distances_from(0, cutoff=2)
        assert d == [0, 1, 2, -1, -1, -1]


class TestAugmentedGraph:
    def test_materialization_matches_view(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        h = g.spanning_subgraph([(1, 2), (3, 4)])
        mat = augmented_graph(h, g, 0)
        view = AugmentedView(h, g, 0)
        for x in g.nodes():
            assert set(mat.neighbors(x)) == view.neighbors(x)

    def test_does_not_mutate_h(self):
        g = Graph(3, [(0, 1), (1, 2)])
        h = g.spanning_subgraph([])
        augmented_graph(h, g, 0)
        assert h.num_edges == 0


class TestViewFreeze:
    def test_frozen_view_equals_materialized_csr(self):
        from repro.graph.csr import CSRGraph

        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        h = g.spanning_subgraph([(1, 2), (3, 4)])
        for u in g.nodes():
            frozen = AugmentedView(h, g, u).freeze()
            assert frozen == CSRGraph.from_graph(augmented_graph(h, g, u))

    def test_nothing_grafted_reuses_h_snapshot(self):
        g = path_graph(5)
        h = g.copy()  # H already carries every edge of G
        snap = h.freeze()
        assert AugmentedView(h, g, 2).freeze() is snap

    def test_freeze_leaves_h_unchanged(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        h = g.spanning_subgraph([(1, 2)])
        AugmentedView(h, g, 0).freeze()
        assert h.edge_set() == {(1, 2)}


@given(graph_with_subgraph())
def test_frozen_view_matches_materialized_csr_property(pair):
    from repro.graph.csr import CSRGraph

    g, h = pair
    for u in g.nodes():
        frozen = AugmentedView(h, g, u).freeze()
        assert frozen == CSRGraph.from_graph(augmented_graph(h, g, u))


@given(graph_with_subgraph())
def test_augmented_distances_equal_materialized_bfs(pair):
    g, h = pair
    for u in g.nodes():
        view_d = augmented_distances(h, g, u)
        mat_d = bfs_distances(augmented_graph(h, g, u), u)
        assert view_d == mat_d


@given(graph_with_subgraph())
def test_augmentation_never_beats_g_distances(pair):
    """H_u ⊆ G, so d_{H_u} ≥ d_G pointwise; and d_{H_u}(u, neighbor) = 1."""
    g, h = pair
    for u in g.nodes():
        dg = bfs_distances(g, u)
        dh = augmented_distances(h, g, u)
        for v in g.nodes():
            if dh[v] >= 0:
                assert dh[v] >= dg[v]
        for v in g.neighbors(u):
            assert dh[v] == 1
