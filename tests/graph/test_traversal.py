"""BFS primitives, cross-checked against networkx as an independent oracle."""

import networkx as nx
import pytest
from hypothesis import given

from repro.errors import ParameterError
from repro.graph import (
    ball,
    bfs_distances,
    bfs_layers,
    bfs_parents,
    connected_components,
    is_connected,
    multi_source_distances,
    path_to_root,
    ring,
)
from repro.graph.generators import cycle_graph, grid_graph, path_graph
from repro.graph.io import to_networkx

from ..conftest import small_graphs


class TestBfsDistances:
    def test_path_graph(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        g = path_graph(3)
        g.remove_edge(1, 2)
        assert bfs_distances(g, 0) == [0, 1, -1]

    def test_cutoff_limits_radius(self):
        g = path_graph(6)
        d = bfs_distances(g, 0, cutoff=2)
        assert d == [0, 1, 2, -1, -1, -1]

    @given(small_graphs())
    def test_matches_networkx(self, g):
        nxg = to_networkx(g)
        for src in g.nodes():
            expected = nx.single_source_shortest_path_length(nxg, src)
            got = bfs_distances(g, src)
            for v in g.nodes():
                assert got[v] == expected.get(v, -1)


class TestBfsParents:
    def test_parent_pointers_form_shortest_paths(self):
        g = grid_graph(3, 4)
        dist, parent = bfs_parents(g, 0)
        for v in g.nodes():
            path = path_to_root(parent, v)
            assert len(path) - 1 == dist[v]
            assert path[-1] == 0
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    def test_source_is_own_parent(self):
        g = path_graph(3)
        _d, parent = bfs_parents(g, 1)
        assert parent[1] == 1

    def test_unreached_raises_in_path_to_root(self):
        g = path_graph(3)
        g.remove_edge(0, 1)
        _d, parent = bfs_parents(g, 0)
        with pytest.raises(ParameterError):
            path_to_root(parent, 2)

    def test_canonical_deterministic(self):
        # Insertion order must not matter (sorted expansion).
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        g1 = __import__("repro").graph.Graph(4, edges)
        g2 = __import__("repro").graph.Graph(4, reversed(edges))
        assert bfs_parents(g1, 0) == bfs_parents(g2, 0)
        # Node 3 has two shortest parents 1 and 2; canonical picks 1.
        assert bfs_parents(g1, 0)[1][3] == 1


class TestLayersBallsRings:
    def test_layers_partition_ball(self):
        g = grid_graph(4, 4)
        layers = bfs_layers(g, 0, cutoff=3)
        flattened = [v for layer in layers for v in layer]
        assert len(flattened) == len(set(flattened))
        assert set(flattened) == ball(g, 0, 3)

    def test_ring_is_layer(self):
        g = cycle_graph(8)
        assert ring(g, 0, 2) == {2, 6}
        assert ring(g, 0, 4) == {4}
        assert ring(g, 0, 5) == set()

    def test_ball_radius_zero(self):
        g = path_graph(4)
        assert ball(g, 2, 0) == {2}

    def test_negative_radius_rejected(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            ball(g, 0, -1)
        with pytest.raises(ParameterError):
            ring(g, 0, -2)

    @given(small_graphs())
    def test_ball_matches_distance_definition(self, g):
        for u in g.nodes():
            d = bfs_distances(g, u)
            for r in range(4):
                assert ball(g, u, r) == {v for v in g.nodes() if 0 <= d[v] <= r}


class TestMultiSource:
    def test_multi_source_is_min_over_sources(self):
        g = path_graph(7)
        d = multi_source_distances(g, [0, 6])
        assert d == [0, 1, 2, 3, 2, 1, 0]

    def test_empty_sources(self):
        g = path_graph(3)
        assert multi_source_distances(g, []) == [-1, -1, -1]


class TestComponents:
    def test_connected_path(self):
        assert is_connected(path_graph(5))

    def test_two_components(self):
        g = path_graph(5)
        g.remove_edge(2, 3)
        comps = connected_components(g)
        assert sorted(map(tuple, comps)) == [(0, 1, 2), (3, 4)]
        assert not is_connected(g)

    def test_empty_graph_connected(self):
        from repro.graph import Graph

        assert is_connected(Graph(0))

    @given(small_graphs())
    def test_matches_networkx_components(self, g):
        nxg = to_networkx(g)
        expected = sorted(tuple(sorted(c)) for c in nx.connected_components(nxg))
        got = sorted(tuple(c) for c in connected_components(g))
        assert got == expected
