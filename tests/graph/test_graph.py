"""Unit tests for the core Graph type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError, NodeNotFound
from repro.graph import Graph, canonical_edge

from ..conftest import small_graphs


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_with_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_edges == 3
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_duplicate_edges_ignored(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(NodeNotFound):
            Graph(3, [(0, 3)])
        with pytest.raises(NodeNotFound):
            Graph(3).has_edge(-1, 0)


class TestMutation:
    def test_add_edge_reports_novelty(self):
        g = Graph(3)
        assert g.add_edge(0, 1) is True
        assert g.add_edge(1, 0) is False
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = Graph(3, [(0, 1)])
        assert g.remove_edge(1, 0) is True
        assert g.remove_edge(0, 1) is False
        assert g.num_edges == 0

    def test_add_edges_counts_new(self):
        g = Graph(4)
        assert g.add_edges([(0, 1), (1, 2), (0, 1)]) == 2

    def test_adjacency_symmetric_after_mutation(self):
        g = Graph(5)
        g.add_edge(0, 4)
        g.add_edge(4, 2)
        g.remove_edge(4, 0)
        for u in g.nodes():
            for v in g.neighbors(u):
                assert u in g.neighbors(v)


class TestAccessors:
    def test_degree_and_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.max_degree() == 3

    def test_max_degree_empty(self):
        assert Graph(0).max_degree() == 0

    def test_edges_canonical_order(self):
        g = Graph(4, [(3, 1), (2, 0)])
        assert all(u < v for u, v in g.edges())
        assert g.edge_set() == {(1, 3), (0, 2)}

    def test_len_and_contains(self):
        g = Graph(5)
        assert len(g) == 5
        assert 4 in g
        assert 5 not in g
        assert "x" not in g

    def test_canonical_edge(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)


class TestDerived:
    def test_copy_is_deep(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g != h

    def test_spanning_subgraph(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        h = g.spanning_subgraph([(1, 2)])
        assert h.num_nodes == 4
        assert h.num_edges == 1
        assert h.is_spanning_subgraph_of(g)

    def test_spanning_subgraph_rejects_foreign_edges(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(GraphError):
            g.spanning_subgraph([(2, 3)])

    def test_subgraph_relation_direction(self):
        g = Graph(3, [(0, 1), (1, 2)])
        h = g.spanning_subgraph([(0, 1)])
        assert h.is_spanning_subgraph_of(g)
        assert not g.is_spanning_subgraph_of(h)

    def test_equality(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 0)])
        c = Graph(3, [(1, 2)])
        assert a == b
        assert a != c
        assert a != "not a graph"


@given(small_graphs())
def test_edge_count_matches_edges_property(g):
    assert g.num_edges == len(list(g.edges()))
    assert g.num_edges == sum(g.degree(u) for u in g.nodes()) // 2


@given(small_graphs())
def test_copy_roundtrip_property(g):
    assert g.copy() == g


@given(small_graphs(), st.randoms())
def test_remove_then_add_restores(g, rnd):
    edges = sorted(g.edges())
    if not edges:
        return
    e = rnd.choice(edges)
    g2 = g.copy()
    g2.remove_edge(*e)
    g2.add_edge(*e)
    assert g2 == g
