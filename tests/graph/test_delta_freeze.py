"""Delta-aware ``Graph.freeze()``: patched snapshots equal full rebuilds.

``CSRGraph.patched`` shares no code with ``CSRGraph.from_graph`` (bulk
span copies + per-dirty-row re-sort vs whole-graph re-sort), so equality
between the two over random mutate/freeze interleavings is a meaningful
differential test of the whole dirty-row tracking pipeline.
"""

import pytest

from repro.errors import NodeNotFound
from repro.graph import CSRGraph, Graph
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import _patch_row_budget


def random_mutation(g, rng):
    op = rng.random()
    if op < 0.40 and g.num_edges:
        edges = sorted(g.edges())
        u, v = edges[int(rng.integers(len(edges)))]
        g.remove_edge(u, v)
    elif op < 0.85:
        u, v = (int(x) for x in rng.integers(0, g.num_nodes, 2))
        if u != v:
            g.add_edge(u, v)
    elif op < 0.93:
        g.add_node()
    else:
        g.remove_node(int(rng.integers(0, g.num_nodes)))


class TestPatchedFreezeAgreement:
    def test_random_interleavings_match_full_rebuild(self, rng):
        for _trial in range(8):
            n = int(rng.integers(2, 70))
            g = gnp_random_graph(n, 0.1, seed=rng)
            g.freeze()
            for _step in range(int(rng.integers(5, 40))):
                random_mutation(g, rng)
                if rng.random() < 0.5:
                    assert g.freeze() == CSRGraph.from_graph(g)

    def test_patch_path_actually_taken(self):
        g = Graph(300, ((i, i + 1) for i in range(299)))
        base = g.freeze()
        g.add_edge(0, 150)
        g.remove_edge(10, 11)
        assert g._csr_base is base  # demoted snapshot is the patch base
        snap = g.freeze()
        assert g._csr_base is None  # base consumed by the patch
        assert snap == CSRGraph.from_graph(g)
        assert base.has_edge(10, 11) and not base.has_edge(0, 150)  # untouched

    def test_budget_overflow_drops_base(self):
        g = Graph(64, ((i, (i + 1) % 64) for i in range(64)))
        g.freeze()
        budget = _patch_row_budget(g.num_nodes)
        for i in range(budget):  # touch more rows than the budget allows
            g.add_edge(i, (i + 2) % 64)
        assert g._csr_base is None and g._csr_dirty is None
        assert g.freeze() == CSRGraph.from_graph(g)

    def test_node_count_change_disables_patching(self):
        g = Graph(10, [(0, 1), (5, 6)])
        g.freeze()
        g.add_node()
        assert g._csr_base is None
        assert g.freeze().num_nodes == 11

    def test_cancelled_mutations_still_correct(self):
        g = Graph(100, ((i, i + 1) for i in range(99)))
        g.freeze()
        g.remove_edge(3, 4)
        g.add_edge(3, 4)  # net zero diff, rows 3 and 4 still dirty
        assert g.freeze() == CSRGraph.from_graph(g)


class TestPatchedConstructor:
    def test_empty_dirty_set_returns_base(self):
        g = Graph(5, [(0, 1), (2, 3)])
        base = CSRGraph.from_graph(g)
        assert CSRGraph.patched(base, g, set()) is base

    def test_node_count_mismatch_falls_back(self):
        small = Graph(3, [(0, 1)])
        base = CSRGraph.from_graph(small)
        grown = Graph(4, [(0, 1), (2, 3)])
        snap = CSRGraph.patched(base, grown, {2, 3})
        assert snap == CSRGraph.from_graph(grown)

    def test_out_of_range_dirty_row_rejected(self):
        g = Graph(4, [(0, 1)])
        base = CSRGraph.from_graph(g)
        with pytest.raises(NodeNotFound):
            CSRGraph.patched(base, g, {7})

    def test_dirty_superset_is_harmless(self):
        g = Graph(6, [(0, 1), (1, 2), (4, 5)])
        base = CSRGraph.from_graph(g)
        g.remove_edge(1, 2)
        # Claiming clean rows dirty costs work, never correctness.
        snap = CSRGraph.patched(base, g, {0, 1, 2, 3, 4, 5})
        assert snap == CSRGraph.from_graph(g)

    def test_base_buffers_never_mutated(self):
        g = Graph(8, ((i, i + 1) for i in range(7)))
        base = CSRGraph.from_graph(g)
        reference = CSRGraph.from_graph(g)
        g.remove_node(3)
        CSRGraph.patched(base, g, {2, 3, 4})
        assert base == reference
