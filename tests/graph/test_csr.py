"""CSR backend: exact agreement with the set backend, round-trips, caching.

The CSR engines (vectorized frontier expansion, batched multi-source BFS,
preallocated-queue parent forests) share no code with the set-backend
loops, so "both backends agree exactly on every primitive" is a meaningful
differential test, run over the ``small_graphs`` / ``connected_graphs``
strategies and over deterministic mid-size graphs large enough to exercise
the vectorized path (the auto threshold keeps toy graphs on sets).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import NodeNotFound, ParameterError
from repro.graph import (
    CSRGraph,
    Graph,
    ball,
    batched_bfs,
    bfs_distances,
    bfs_layers,
    bfs_parents,
    bounded_distance,
    cached_bfs_distances,
    distance_cache_info,
    multi_source_distances,
    ring,
)
from repro.graph.generators import (
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_connected_gnp,
)

from ..conftest import small_graphs


def mid_size_graphs() -> list[Graph]:
    """Graphs past the auto threshold: the vectorized path, both shallow
    (gnp) and deep (path/grid) BFS regimes, plus a disconnected one."""
    disconnected = gnp_random_graph(90, 0.02, seed=5)
    return [
        random_connected_gnp(80, 0.08, seed=1),
        grid_graph(8, 12),
        path_graph(70),
        disconnected,
    ]


# --------------------------------------------------------------------- #
# structural round-trips
# --------------------------------------------------------------------- #


class TestRoundTrip:
    @given(small_graphs())
    def test_edge_set_survives_freeze_thaw(self, g):
        c = g.freeze()
        assert c.edge_set() == g.edge_set()
        assert c.to_graph() == g

    @given(small_graphs())
    def test_protocol_matches_graph(self, g):
        c = CSRGraph.from_graph(g)
        assert c.num_nodes == g.num_nodes
        assert c.num_edges == g.num_edges
        assert c.max_degree() == g.max_degree()
        for u in g.nodes():
            assert c.degree(u) == g.degree(u)
            assert c.neighbors(u) == g.neighbors(u)
            assert list(c.neighbors_csr(u)) == sorted(g.neighbors(u))
            for v in g.nodes():
                assert c.has_edge(u, v) == g.has_edge(u, v)

    def test_freeze_is_cached_until_mutation(self):
        g = path_graph(5)
        c = g.freeze()
        assert g.freeze() is c
        v0 = g.version
        g.add_edge(0, 4)
        assert g.version == v0 + 1
        c2 = g.freeze()
        assert c2 is not c
        assert c2.has_edge(0, 4) and not c.has_edge(0, 4)

    def test_noop_mutation_keeps_snapshot(self):
        g = path_graph(4)
        c = g.freeze()
        assert not g.add_edge(0, 1)  # already present
        assert not g.remove_edge(0, 2)  # never present
        assert g.freeze() is c

    def test_node_bounds_checked(self):
        c = path_graph(3).freeze()
        with pytest.raises(NodeNotFound):
            c.neighbors(3)
        with pytest.raises(NodeNotFound):
            c.has_edge(0, -1)


# --------------------------------------------------------------------- #
# backend agreement on every traversal primitive
# --------------------------------------------------------------------- #


def assert_backends_agree(g: Graph, cutoffs=(None, 0, 1, 2, 3)) -> None:
    csr = g.freeze()
    for u in g.nodes():
        for cut in cutoffs:
            want = bfs_distances(g, u, cutoff=cut, backend="sets")
            assert bfs_distances(g, u, cutoff=cut, backend="csr") == want
            assert bfs_distances(csr, u, cutoff=cut) == want
            got_layers = bfs_layers(g, u, cutoff=cut, backend="csr")
            want_layers = bfs_layers(g, u, cutoff=cut, backend="sets")
            assert [sorted(la) for la in got_layers] == [sorted(la) for la in want_layers]
        assert bfs_parents(g, u, backend="csr") == bfs_parents(g, u, backend="sets")
        assert bfs_parents(g, u, cutoff=2, backend="csr") == bfs_parents(
            g, u, cutoff=2, backend="sets"
        )
        for r in range(4):
            assert ball(g, u, r, backend="csr") == ball(g, u, r, backend="sets")
            assert ring(g, u, r, backend="csr") == ring(g, u, r, backend="sets")


class TestBackendAgreement:
    @settings(max_examples=40)
    @given(small_graphs())
    def test_small_graphs(self, g):
        assert_backends_agree(g, cutoffs=(None, 0, 2))

    @pytest.mark.parametrize("idx", range(4))
    def test_mid_size_graphs(self, idx):
        assert_backends_agree(mid_size_graphs()[idx])

    @pytest.mark.parametrize("g", mid_size_graphs()[:2], ids=["gnp80", "grid8x12"])
    def test_multi_source(self, g):
        n = g.num_nodes
        for srcs in ([], [0], [0, n - 1, n // 2], list(range(0, n, 7))):
            for cut in (None, 1, 3):
                assert multi_source_distances(
                    g, srcs, cutoff=cut, backend="csr"
                ) == multi_source_distances(g, srcs, cutoff=cut, backend="sets")

    def test_auto_uses_fresh_snapshot_only(self):
        g = random_connected_gnp(80, 0.05, seed=2)
        before = bfs_distances(g, 0)  # sets (nothing frozen yet)
        g.freeze()
        assert bfs_distances(g, 0) == before  # csr (fresh snapshot)
        g.add_edge(0, next(v for v in range(1, 80) if not g.has_edge(0, v)))
        after = bfs_distances(g, 0)  # sets again (stale snapshot dropped)
        assert after == bfs_distances(g, 0, backend="sets")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            bfs_distances(path_graph(3), 0, backend="numpy")

    def test_csr_backend_needs_freezable_graph(self):
        class Fake:
            num_nodes = 2

            def _check(self, u):
                pass

        with pytest.raises(ParameterError):
            bfs_distances(Fake(), 0, backend="csr")


# --------------------------------------------------------------------- #
# batched engine
# --------------------------------------------------------------------- #


class TestBatchedBfs:
    @pytest.mark.parametrize("idx", range(4))
    def test_agrees_with_single_source(self, idx):
        g = mid_size_graphs()[idx]
        for cut in (None, 2):
            for chunk in (1, 7, 32):
                got = dict(batched_bfs(g, cutoff=cut, chunk=chunk, backend="csr"))
                for u in g.nodes():
                    assert got[u] == bfs_distances(g, u, cutoff=cut, backend="sets")

    @given(small_graphs())
    def test_small_graph_fallback_agrees(self, g):
        for s, dist in batched_bfs(g):
            assert dist == bfs_distances(g, s, backend="sets")

    def test_source_subset_order_and_repeats(self):
        g = random_connected_gnp(80, 0.06, seed=4)
        srcs = [5, 3, 3, 79, 0]
        out = list(batched_bfs(g, srcs, backend="csr"))
        assert [s for s, _d in out] == srcs
        for s, dist in out:
            assert dist == bfs_distances(g, s, backend="sets")

    def test_backend_sets_is_honored_without_freezing(self):
        g = random_connected_gnp(80, 0.06, seed=8)
        out = dict(batched_bfs(g, [0, 40], backend="sets"))
        assert g._csr is None  # no CSR snapshot was built
        for s, dist in out.items():
            assert dist == bfs_distances(g, s, backend="sets")

    def test_invalid_source_chunk_and_backend_rejected(self):
        g = path_graph(5)
        with pytest.raises(NodeNotFound):
            list(batched_bfs(g, [0, 9]))
        with pytest.raises(ParameterError):
            list(batched_bfs(g, [0], chunk=0))
        with pytest.raises(ParameterError):
            list(batched_bfs(g, [0], backend="bogus"))
        with pytest.raises(ParameterError):
            bfs_distances(g.freeze(), 0, backend="bogus")

    def test_empty_graph_and_empty_sources(self):
        assert list(batched_bfs(Graph(0))) == []
        assert list(batched_bfs(path_graph(3), [])) == []

    def test_arrays_option_matches_lists_on_both_paths(self):
        import numpy as np

        # Engine path (CSR) and small-graph sets fallback must both yield
        # int32 ndarray rows identical to the list form.
        for g in (random_connected_gnp(80, 0.06, seed=4), path_graph(9)):
            for (s, dist), (s2, row) in zip(
                batched_bfs(g, cutoff=3), batched_bfs(g, cutoff=3, arrays=True)
            ):
                assert s == s2
                assert isinstance(row, np.ndarray) and row.dtype == np.int32
                assert row.tolist() == dist


# --------------------------------------------------------------------- #
# bounded_distance and the LRU distance cache
# --------------------------------------------------------------------- #


class TestBoundedDistance:
    @given(small_graphs())
    def test_matches_bfs_up_to_cap(self, g):
        for cap in (0, 1, 3):
            for s in g.nodes():
                dist = bfs_distances(g, s, backend="sets")
                for t in g.nodes():
                    want = dist[t] if 0 <= dist[t] <= cap else cap + 1
                    assert bounded_distance(g, s, t, cap) == want

    def test_rejects_negative_cap(self):
        with pytest.raises(ParameterError):
            bounded_distance(path_graph(3), 0, 2, -1)


class TestDistanceCache:
    def test_hit_returns_equal_fresh_list(self):
        g = random_connected_gnp(30, 0.2, seed=7)
        a = cached_bfs_distances(g, 0)
        b = cached_bfs_distances(g, 0)
        assert a == b == bfs_distances(g, 0)
        assert a is not b  # caller owns the result
        info = distance_cache_info(g)
        assert info.entries == 1 and info.capacity >= 1
        assert info.hits == 1 and info.misses == 1

    def test_mutation_invalidates_by_version(self):
        g = path_graph(6)
        assert cached_bfs_distances(g, 0)[5] == 5
        g.add_edge(0, 5)
        assert cached_bfs_distances(g, 0)[5] == 1
        g.remove_edge(0, 5)
        assert cached_bfs_distances(g, 0)[5] == 5

    def test_cutoff_keys_are_distinct(self):
        g = path_graph(6)
        assert cached_bfs_distances(g, 0, cutoff=2) == [0, 1, 2, -1, -1, -1]
        assert cached_bfs_distances(g, 0) == [0, 1, 2, 3, 4, 5]

    def test_eviction_keeps_cache_bounded(self):
        from repro.graph.cache import DISTANCE_CACHE_SIZE

        g = gnp_random_graph(DISTANCE_CACHE_SIZE + 40, 0.01, seed=3)
        for u in g.nodes():
            cached_bfs_distances(g, u)
        info = distance_cache_info(g)
        assert info.entries == info.capacity == DISTANCE_CACHE_SIZE

    def test_duck_typed_graph_falls_through(self):
        g = random_connected_gnp(20, 0.2, seed=1)
        h = g.spanning_subgraph(sorted(g.edges())[:10])
        from repro.graph import AugmentedView

        view = AugmentedView(h, g, 0)
        assert cached_bfs_distances(view, 0) == view.distances_from(0)


# --------------------------------------------------------------------- #
# AugmentedView fast path
# --------------------------------------------------------------------- #


class TestAugmentedViewCsr:
    def test_frozen_h_agrees_with_set_path(self):
        from repro.graph import AugmentedView

        g = random_connected_gnp(80, 0.06, seed=11)
        h = g.spanning_subgraph(sorted(g.edges())[::2])
        for u in range(0, 80, 13):
            slow = AugmentedView(h.copy(), g, u).distances_from(u)  # unfrozen copy
            h.freeze()
            fast = AugmentedView(h, g, u).distances_from(u)
            assert fast == slow
            for cut in (0, 1, 2):
                assert AugmentedView(h, g, u).distances_from(u, cutoff=cut) == (
                    AugmentedView(h.copy(), g, u).distances_from(u, cutoff=cut)
                )

    def test_batched_numpy_rows_are_plain_ints(self):
        g = random_connected_gnp(80, 0.06, seed=12)
        for _s, dist in batched_bfs(g, [0], backend="csr"):
            assert all(type(d) is int for d in dist)
        assert all(type(d) is int for d in bfs_distances(g.freeze(), 0))
        assert not isinstance(bfs_distances(g.freeze(), 0)[0], np.integer)
