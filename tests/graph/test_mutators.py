"""Churn mutators: ``add_node`` / ``remove_node`` and invalidation contracts.

Every mutator must bump ``Graph.version`` (once per successful call), drop
the cached CSR snapshot, and thereby invalidate the distance cache (keyed
on version) — the invariants the dynamic subsystem leans on.
"""

import pytest

from repro.errors import GraphError, NodeNotFound
from repro.graph import Graph, bfs_distances, cached_bfs_distances
from repro.graph.generators import random_connected_gnp


class TestAddNode:
    def test_returns_new_dense_id(self):
        g = Graph(3, [(0, 1)])
        assert g.add_node() == 3
        assert g.num_nodes == 4
        assert g.degree(3) == 0
        g.add_edge(3, 0)  # fresh id is immediately usable
        assert g.has_edge(0, 3)

    def test_add_nodes_range(self):
        g = Graph(2)
        ids = g.add_nodes(3)
        assert list(ids) == [2, 3, 4]
        assert g.num_nodes == 5
        with pytest.raises(GraphError):
            g.add_nodes(-1)

    def test_bumps_version_and_invalidates_csr(self):
        g = Graph(3, [(0, 1), (1, 2)])
        snap = g.freeze()
        v0 = g.version
        g.add_node()
        assert g.version == v0 + 1
        assert g.freeze() is not snap
        assert g.freeze().num_nodes == 4


class TestRemoveNode:
    def test_isolates_and_returns_edge_count(self):
        g = Graph(5, [(0, 1), (0, 2), (0, 3), (2, 3)])
        assert g.remove_node(0) == 3
        assert g.num_nodes == 5  # id space never shrinks
        assert g.degree(0) == 0
        assert g.edge_set() == {(2, 3)}

    def test_symmetric_adjacency_cleanup(self):
        g = Graph(4, [(0, 1), (1, 2), (1, 3)])
        g.remove_node(1)
        for u in g.nodes():
            assert 1 not in g.neighbors(u)
        assert g.num_edges == 0

    def test_single_version_bump_per_call(self):
        g = Graph(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)])
        v0 = g.version
        g.remove_node(0)
        assert g.version == v0 + 1

    def test_isolated_node_is_a_no_op(self):
        g = Graph(3, [(0, 1)])
        v0 = g.version
        assert g.remove_node(2) == 0
        assert g.version == v0  # nothing changed, nothing invalidated

    def test_id_can_be_repopulated(self):
        g = Graph(3, [(0, 1), (1, 2)])
        g.remove_node(1)
        g.add_edge(1, 0)
        assert g.edge_set() == {(0, 1)}

    def test_out_of_range_rejected(self):
        g = Graph(2)
        with pytest.raises(NodeNotFound):
            g.remove_node(2)


class TestInvalidation:
    def test_every_mutator_bumps_version(self):
        g = Graph(4, [(0, 1)])
        versions = [g.version]
        g.add_edge(1, 2)
        versions.append(g.version)
        g.remove_edge(0, 1)
        versions.append(g.version)
        g.add_node()
        versions.append(g.version)
        g.remove_node(1)
        versions.append(g.version)
        assert versions == sorted(set(versions)), "versions must strictly increase"

    def test_csr_snapshot_tracks_mutators(self):
        g = random_connected_gnp(20, 0.2, seed=1)
        for mutate in (
            lambda: g.add_node(),
            lambda: g.add_edge(0, g.num_nodes - 1),
            lambda: g.remove_node(0),
        ):
            g.freeze()
            mutate()
            assert g.freeze().edge_set() == g.edge_set()
            assert g.freeze().num_nodes == g.num_nodes

    def test_distance_cache_invalidated_by_node_mutators(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert cached_bfs_distances(g, 0) == [0, 1, 2, 3]
        g.remove_node(2)  # cache key (version, ...) rolls over
        assert cached_bfs_distances(g, 0) == [0, 1, -1, -1]
        u = g.add_node()
        g.add_edge(1, u)
        assert cached_bfs_distances(g, 0) == bfs_distances(g, 0) == [0, 1, -1, -1, 2]
