"""Batched canonical parent forests: exact agreement with ``bfs_parents``.

The vectorized engine picks each discovered node's parent by first
occurrence in the flattened frontier×sorted-row expansion — the claim is
that this reproduces the sequential sorted-neighbor BFS *exactly* (same
parents, same distances) for every source, cutoff and chunking.
"""

import pytest
from hypothesis import given, settings

from repro.errors import NodeNotFound, ParameterError
from repro.graph import Graph, batched_bfs_parents, bfs_parents
from repro.graph.generators import (
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_connected_gnp,
)

from ..conftest import small_graphs


def assert_agrees(g, sources=None, cutoff=None, chunk=64, backend="csr"):
    src_list = list(range(g.num_nodes)) if sources is None else list(sources)
    out = list(batched_bfs_parents(g, sources, cutoff=cutoff, chunk=chunk, backend=backend))
    assert [s for s, _d, _p in out] == src_list  # yielded in source order
    for s, dist, parent in out:
        assert (dist, parent) == bfs_parents(g, s, cutoff, backend="sets")


@settings(max_examples=40, deadline=None)
@given(g=small_graphs(max_nodes=9))
def test_small_graphs_exact(g):
    assert_agrees(g, backend="csr", chunk=3)


@pytest.mark.parametrize(
    "g",
    [
        random_connected_gnp(80, 0.08, seed=1),
        grid_graph(8, 12),
        path_graph(70),
        gnp_random_graph(90, 0.02, seed=5),  # disconnected
    ],
    ids=["gnp-connected", "grid", "path", "gnp-sparse"],
)
def test_mid_size_vectorized_path(g):
    assert_agrees(g)  # auto backend takes CSR past the threshold
    assert_agrees(g, sources=range(0, g.num_nodes, 7), chunk=5)
    for cutoff in (0, 1, 3):
        assert_agrees(g, cutoff=cutoff)


def test_matches_csr_single_source_engine():
    g = random_connected_gnp(100, 0.05, seed=9)
    for s, dist, parent in batched_bfs_parents(g, backend="csr"):
        assert (dist, parent) == bfs_parents(g, s, backend="csr")


def test_sets_fallback_below_auto_threshold():
    g = Graph(10, [(0, 1), (1, 2), (2, 3), (0, 4)])
    out = list(batched_bfs_parents(g))  # auto: n < threshold stays on sets
    assert out[0][1:] == bfs_parents(g, 0)


def test_parameter_validation():
    g = Graph(4, [(0, 1)])
    with pytest.raises(ParameterError):
        list(batched_bfs_parents(g, chunk=0))
    with pytest.raises(ParameterError):
        list(batched_bfs_parents(g, backend="simd"))
    with pytest.raises(NodeNotFound):
        list(batched_bfs_parents(g, sources=[9], backend="csr"))
