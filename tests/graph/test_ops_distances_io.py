"""Tests for graph ops, distance aggregates, and serialization."""

import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph import (
    Graph,
    all_pairs_distances,
    diameter,
    difference,
    distance_matrix,
    eccentricity,
    edge_union,
    induced_subgraph,
    intersection,
    nonadjacent_pairs,
    remove_nodes,
    sample_pairs,
    union,
)
from repro.graph import io as gio
from repro.graph.generators import cycle_graph, gnp_random_graph, grid_graph, path_graph

from ..conftest import small_graphs


class TestOps:
    def test_union(self):
        a = Graph(4, [(0, 1)])
        b = Graph(4, [(1, 2)])
        u = union([a, b])
        assert u.edge_set() == {(0, 1), (1, 2)}

    def test_union_rejects_mismatched(self):
        with pytest.raises(GraphError):
            union([Graph(3), Graph(4)])
        with pytest.raises(GraphError):
            union([])

    def test_edge_union(self):
        g = edge_union(5, [[(0, 1)], [(1, 2), (0, 1)]])
        assert g.num_edges == 2

    def test_induced_subgraph_reindexes(self):
        g = path_graph(5)
        h, originals = induced_subgraph(g, [1, 2, 4])
        assert originals == [1, 2, 4]
        assert h.num_nodes == 3
        assert h.edge_set() == {(0, 1)}  # only 1-2 survives

    def test_remove_nodes_keeps_id_space(self):
        g = cycle_graph(5)
        h = remove_nodes(g, [0])
        assert h.num_nodes == 5
        assert h.degree(0) == 0
        assert h.num_edges == 3

    def test_difference_and_intersection(self):
        g = Graph(3, [(0, 1), (1, 2)])
        h = Graph(3, [(1, 2)])
        assert difference(g, h).edge_set() == {(0, 1)}
        assert intersection(g, h).edge_set() == {(1, 2)}
        with pytest.raises(GraphError):
            difference(g, Graph(4))
        with pytest.raises(GraphError):
            intersection(g, Graph(4))


class TestDistances:
    def test_diameter_cycle(self):
        assert diameter(cycle_graph(8)) == 4
        assert diameter(Graph(1)) == 0

    def test_eccentricity(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_all_pairs_vs_matrix(self):
        g = grid_graph(3, 3)
        apsp = all_pairs_distances(g)
        mat = distance_matrix(g)
        for u in g.nodes():
            for v in g.nodes():
                assert apsp[u][v] == mat[u, v]

    def test_nonadjacent_pairs(self):
        g = path_graph(4)
        assert set(nonadjacent_pairs(g)) == {(0, 2), (0, 3), (1, 3)}

    def test_sample_pairs_respects_constraints(self):
        g = gnp_random_graph(30, 0.1, seed=3)
        pairs = sample_pairs(g, 10, seed=1)
        for u, v in pairs:
            assert u < v
            assert not g.has_edge(u, v)

    def test_sample_pairs_small_graph_enumerates(self):
        g = path_graph(4)
        pairs = sample_pairs(g, 100, seed=0)
        assert set(pairs) == {(0, 2), (0, 3), (1, 3)}

    def test_sample_pairs_deterministic(self):
        g = gnp_random_graph(40, 0.1, seed=5)
        assert sample_pairs(g, 12, seed=9) == sample_pairs(g, 12, seed=9)


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = gnp_random_graph(12, 0.3, seed=1)
        path = tmp_path / "g.txt"
        gio.save(g, path)
        assert gio.load(path) == g

    def test_loads_rejects_garbage(self):
        with pytest.raises(GraphError):
            gio.loads("hello")
        with pytest.raises(GraphError):
            gio.loads("n x")
        with pytest.raises(GraphError):
            gio.loads("n 3\nedge 0 1")

    @given(small_graphs())
    def test_roundtrip_property(self, g):
        assert gio.loads(gio.dumps(g)) == g

    def test_networkx_roundtrip(self):
        g = grid_graph(3, 4)
        nxg = gio.to_networkx(g)
        back, labels = gio.from_networkx(nxg)
        assert back.num_edges == g.num_edges
        assert len(labels) == g.num_nodes
