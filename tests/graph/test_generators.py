"""Tests for the deterministic and random graph generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import is_connected
from repro.graph.generators import (
    caterpillar_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    random_connected_gnp,
    random_tree,
    star_graph,
    theta_graph,
)


class TestDeterministic:
    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert g.num_edges == 6
        assert all(g.degree(u) == 2 for u in g.nodes())
        with pytest.raises(ParameterError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.num_edges == 12
        assert g.degree(0) == 4
        assert g.degree(3) == 3

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 6
        assert all(g.degree(i) == 1 for i in range(1, 7))
        with pytest.raises(ParameterError):
            star_graph(0)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.degree(0) == 2  # corner

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_nodes == 16
        assert all(g.degree(u) == 4 for u in g.nodes())
        assert hypercube_graph(0).num_nodes == 1
        with pytest.raises(ParameterError):
            hypercube_graph(-1)

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.num_nodes == 12
        assert g.num_edges == 11
        assert is_connected(g)
        with pytest.raises(ParameterError):
            caterpillar_graph(0, 1)

    def test_theta(self):
        g = theta_graph((2, 3, 4))
        assert not g.has_edge(0, 1)
        assert g.degree(0) == 3
        assert g.degree(1) == 3
        assert g.num_nodes == 2 + 1 + 2 + 3
        with pytest.raises(ParameterError):
            theta_graph((1,))


class TestRandom:
    def test_gnp_extremes(self):
        assert gnp_random_graph(10, 0.0, seed=1).num_edges == 0
        assert gnp_random_graph(10, 1.0, seed=1).num_edges == 45
        with pytest.raises(ParameterError):
            gnp_random_graph(5, 1.5)

    def test_gnp_deterministic_by_seed(self):
        a = gnp_random_graph(20, 0.3, seed=42)
        b = gnp_random_graph(20, 0.3, seed=42)
        c = gnp_random_graph(20, 0.3, seed=43)
        assert a == b
        assert a != c  # overwhelmingly likely

    @given(st.integers(1, 40), st.integers(0, 10**6))
    def test_random_tree_is_tree(self, n, seed):
        g = random_tree(n, seed=seed)
        assert g.num_edges == n - 1 if n > 1 else g.num_edges == 0
        assert is_connected(g)

    def test_random_tree_rejects_zero(self):
        with pytest.raises(ParameterError):
            random_tree(0)

    @given(st.integers(2, 25), st.floats(0.0, 0.4), st.integers(0, 10**6))
    def test_random_connected_gnp_connected(self, n, p, seed):
        assert is_connected(random_connected_gnp(n, p, seed=seed))

    def test_gnp_edge_count_sane(self):
        # Mean edge count over trials should track p·C(n,2) within 20%.
        n, p, trials = 30, 0.25, 30
        mean = sum(
            gnp_random_graph(n, p, seed=s).num_edges for s in range(trials)
        ) / trials
        expected = p * n * (n - 1) / 2
        assert abs(mean - expected) / expected < 0.2
