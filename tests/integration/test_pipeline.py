"""Cross-module pipeline tests: distributed build → routing → failure.

Simulates the full life of a link-state network running remote-spanners:
construct distributedly, route packets, break things, re-stabilize.
"""

import pytest

from repro.core import is_remote_spanner
from repro.distributed import PeriodicLinkState, run_remspan
from repro.experiments import largest_component, scaled_udg
from repro.graph import bfs_distances, sample_pairs
from repro.routing import route, route_all_pairs_stats


@pytest.fixture(scope="module")
def network():
    g_full, _pts = scaled_udg(130, target_degree=10.0, seed=55)
    g, _ids = largest_component(g_full)
    return g


class TestDistributedBuildThenRoute:
    def test_protocol_output_routes_optimally(self, network):
        g = network
        res = run_remspan(g, "kcover", k=1)
        h = res.spanner.graph
        assert is_remote_spanner(h, g, 1.0, 0.0)
        pairs = sample_pairs(g, 40, seed=56, require_nonadjacent=False)
        stats = route_all_pairs_stats(h, g, pairs=pairs)
        assert stats.delivered == stats.pairs
        assert stats.max_stretch == 1.0

    def test_epsilon_protocol_routes_within_guarantee(self, network):
        g = network
        res = run_remspan(g, "mis", r=3)  # (1.5, 0)-remote-spanner
        h = res.spanner.graph
        for s, t in sample_pairs(g, 25, seed=57):
            r = route(h, g, s, t)
            d = bfs_distances(g, s)[t]
            assert r.delivered
            assert r.hops <= 1.5 * d + 1e-9


class TestFailureRecovery:
    def test_link_failure_then_restabilize_then_route(self, network):
        g = network.copy()
        sim = PeriodicLinkState(g, kind="kcover", k=1, period=6)

        def kill_link(graph):
            # Remove the highest-degree node's first edge (a busy link).
            hub = max(graph.nodes(), key=graph.degree)
            v = min(graph.neighbors(hub))
            graph.remove_edge(hub, v)

        report = sim.stabilization_experiment(warmup=30, change=kill_link)
        assert report.within_bound
        # After stabilization, the advertised spanner again preserves
        # exact distances on the changed topology.
        assert is_remote_spanner(report.spanner, sim.graph, 1.0, 0.0)
        pairs = sample_pairs(sim.graph, 20, seed=58)
        stats = route_all_pairs_stats(report.spanner, sim.graph, pairs=pairs)
        assert stats.delivered == stats.pairs
        assert stats.max_stretch == 1.0
