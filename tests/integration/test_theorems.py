"""End-to-end theorem tests: each paper claim on realistic instances.

These integrate the full pipeline — geometric instance generation,
construction (centralized and distributed), and independent verification —
at sizes where the asymptotic statements become visible.
"""


import pytest

from repro.core import (
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    build_remote_spanner,
    is_k_connecting_remote_spanner,
    is_remote_spanner,
    dom_tree_kmis,
    dom_tree_mis,
)
from repro.distributed import run_remspan
from repro.experiments import largest_component, scaled_udg
from repro.geometry import EuclideanMetric, packing_number, uniform_points
from repro.graph import sample_pairs


@pytest.fixture(scope="module")
def udg():
    g_full, pts = scaled_udg(200, target_degree=11.0, seed=77)
    g, ids = largest_component(g_full)
    return g


class TestTheorem1:
    """(1+ε, 1−2ε)-remote-spanner, O(ε^{-1}) time, O(n) edges on UBG."""

    @pytest.mark.parametrize("eps", [1.0, 0.5, 1 / 3])
    def test_stretch_certified_on_udg(self, udg, eps):
        rs = build_remote_spanner(udg, epsilon=eps, method="mis")
        assert is_remote_spanner(udg if False else rs.graph, udg, rs.guarantee.alpha, rs.guarantee.beta)

    def test_linear_size_on_udg(self, udg):
        rs = build_remote_spanner(udg, epsilon=0.5, method="mis")
        # "O(n)" with the (4r)^p MIS constant; at r=3, p=2 the bound is
        # enormous — what matters is edges/n staying far below n.
        assert rs.num_edges / udg.num_nodes < 12
        assert rs.num_edges < udg.num_edges or udg.num_edges < 4 * udg.num_nodes

    def test_constant_rounds_distributed(self, udg):
        res = run_remspan(udg, "mis", r=3)  # ε = 1/2
        assert res.communication_rounds == 7  # 2r−1+2β = 2·3−1+2

    def test_mis_tree_packing_bound(self):
        """Proposition 3's geometric step: MIS of a radius-r ball packs
        ≤ (4r)^p points (verified via the metric packing number)."""
        pts = uniform_points(300, 5.0, seed=78)
        metric = EuclideanMetric(2)
        r = 2.0
        # points within metric distance r of point 0, packed at radius 1:
        import numpy as np

        inside = np.nonzero(metric.to_all(pts, 0) <= r)[0]
        packed = packing_number(pts[inside], metric, 1.0)
        assert packed <= (4 * r) ** 2


class TestTheorem2:
    """k-connecting (1, 0)-remote-spanner, O(1) time, near-optimal size."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_on_udg_sampled(self, udg, k):
        rs = build_k_connecting_spanner(udg, k=k)
        pairs = sample_pairs(udg, 25, seed=79)
        assert is_k_connecting_remote_spanner(rs.graph, udg, k, 1.0, 0.0, pairs=pairs)

    def test_sparser_than_full_topology(self, udg):
        rs = build_k_connecting_spanner(udg, k=1)
        assert rs.num_edges < 0.9 * udg.num_edges

    def test_constant_rounds(self, udg):
        res = run_remspan(udg, "kcover", k=2)
        assert res.communication_rounds == 3

    def test_monotone_in_k(self, udg):
        sizes = [build_k_connecting_spanner(udg, k=k).num_edges for k in (1, 2, 3)]
        assert sizes == sorted(sizes)


class TestTheorem3:
    """2-connecting (2, −1)-remote-spanner, O(1) time, O(n) edges on UBG."""

    def test_stretch_sampled(self, udg):
        rs = build_biconnecting_spanner(udg)
        pairs = sample_pairs(udg, 20, seed=80)
        assert is_k_connecting_remote_spanner(rs.graph, udg, 2, 2.0, -1.0, pairs=pairs)

    def test_linear_size(self, udg):
        rs = build_biconnecting_spanner(udg)
        assert rs.num_edges / udg.num_nodes < 12

    def test_constant_rounds(self, udg):
        res = run_remspan(udg, "kmis", k=2)
        assert res.communication_rounds == 5


class TestProposition3And7TreeSizes:
    def test_mis_tree_grows_polynomially_not_with_n(self):
        """|E(T)| depends on r, not on n (the O(r^{p+1}) bound)."""
        sizes_by_n = []
        for n in (150, 300):
            g_full, _ = scaled_udg(n, target_degree=11.0, seed=81)
            g, _ids = largest_component(g_full)
            sizes = [dom_tree_mis(g, u, 3).num_edges for u in range(0, g.num_nodes, 17)]
            sizes_by_n.append(sum(sizes) / len(sizes))
        # Mean tree size roughly constant as n doubles (within 50%).
        assert abs(sizes_by_n[1] - sizes_by_n[0]) <= 0.5 * max(sizes_by_n)

    def test_kmis_tree_size_independent_of_n(self):
        sizes_by_n = []
        for n in (150, 300):
            g_full, _ = scaled_udg(n, target_degree=11.0, seed=82)
            g, _ids = largest_component(g_full)
            sizes = [dom_tree_kmis(g, u, 2).num_edges for u in range(0, g.num_nodes, 17)]
            sizes_by_n.append(sum(sizes) / len(sizes))
        assert abs(sizes_by_n[1] - sizes_by_n[0]) <= 0.5 * max(sizes_by_n)


class TestPaperWorstCases:
    def test_cycle_deletion_motivation(self):
        """§1.2: on a cycle, deleting one node blows up the survivor
        distance — the reason fault-tolerant *geometric* spanner stretch
        definitions don't transfer to graphs, and d^k does."""
        from repro.graph import remove_nodes, bfs_distances
        from repro.graph.generators import cycle_graph
        from repro.paths import k_connecting_distance

        g = cycle_graph(12)
        # neighbors of node 0: 1 and 11, at distance 2 via node 0.
        crippled = remove_nodes(g, [0])
        assert bfs_distances(crippled, 1)[11] == 10  # 2 → n−2
        # d² between nonadjacent antipodes is the full cycle length:
        assert k_connecting_distance(g, 0, 6, 2) == 12

    def test_clique_remote_spanner_is_empty(self):
        """On K_n the empty sub-graph already preserves everything —
        the starkest (1, 0)-remote-spanner vs (1, 0)-spanner gap."""
        from repro.graph.generators import complete_graph

        g = complete_graph(12)
        rs = build_k_connecting_spanner(g, k=1)
        assert rs.num_edges == 0
        assert is_remote_spanner(rs.graph, g, 1.0, 0.0)
