"""WorkerPool contract: dispatch, shard addressing, restart, start methods.

The pool is the control plane of the parallel subsystem — these tests pin
the properties the sharded serving layer builds on: results come back in
payload order, explicit shard addressing lands on the addressed worker,
published shared objects survive a worker restart, and both ``fork`` and
``spawn`` start methods work (the spawn matrix entry re-imports the
package in the children, which is what CI exercises).
"""

import multiprocessing

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph import bfs_distances
from repro.graph.generators import random_connected_gnp
from repro.parallel import WorkerError, WorkerPool, resolve_workers

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


class TestResolveWorkers:
    def test_resolution_rules(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers("auto", cpu_count=1) == 1
        assert resolve_workers("auto", cpu_count=2) == 2
        assert resolve_workers("auto", cpu_count=64) == 4  # capped
        pool = WorkerPool(2)
        try:
            assert resolve_workers(pool) == 2
        finally:
            pool.close()

    def test_rejects_bad_specs(self):
        for bad in (0, -1, 1.5, "many", True):
            with pytest.raises(ParameterError):
                resolve_workers(bad)


class TestDispatch:
    def test_results_in_payload_order(self):
        with WorkerPool(2) as pool:
            results = pool.run("echo", list(range(10)))
            assert [payload for _w, _pid, payload in results] == list(range(10))

    def test_round_robin_spreads_work(self):
        with WorkerPool(2) as pool:
            results = pool.run("echo", list(range(8)))
            assert {wid for wid, _pid, _p in results} == {0, 1}

    def test_explicit_worker_addressing(self):
        with WorkerPool(3) as pool:
            results = pool.run("echo", ["a", "b", "c"], to=[2, 0, 2])
            assert [wid for wid, _pid, _p in results] == [2, 0, 2]

    def test_workers_are_separate_processes(self):
        import os

        with WorkerPool(2) as pool:
            pids = {pid for _w, pid, _p in pool.run("echo", list(range(6)))}
            assert len(pids) == 2
            assert os.getpid() not in pids

    def test_unknown_task_and_bad_addressing(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ParameterError):
                pool.run("no-such-task", [1])
            with pytest.raises(ParameterError):
                pool.run("echo", [1], to=[5])
            with pytest.raises(ParameterError):
                pool.run("echo", [1, 2], to=[0])

    def test_task_error_carries_remote_traceback(self):
        with WorkerPool(1) as pool:
            # bfs_rows on a never-published graph name raises KeyError remotely.
            with pytest.raises(WorkerError, match="KeyError"):
                pool.run("bfs_rows", [("nope", "nope", [0], [0], None)])
            # The pool stays usable after a failed task.
            assert pool.run("echo", ["still alive"])[0][2] == "still alive"

    def test_empty_run_is_noop(self):
        with WorkerPool(1) as pool:
            assert pool.run("echo", []) == []


class TestSharedObjectsThroughPool:
    def test_bfs_rows_on_published_graph(self):
        g = random_connected_gnp(60, 0.1, seed=4)
        csr = g.freeze()
        with WorkerPool(2) as pool:
            pool.publish_csr("g", csr)
            out = pool.matrix("out", 4, csr.num_nodes)
            pool.run(
                "bfs_rows",
                [("g", "out", [0, 1], [0, 1], None), ("g", "out", [2, 3], [2, 3], None)],
            )
            for s in range(4):
                assert out[s].tolist() == bfs_distances(csr, s)
            del out  # release the export before close

    def test_delta_publish_reaches_workers(self):
        g = random_connected_gnp(50, 0.12, seed=8)
        with WorkerPool(1) as pool:
            pool.publish_csr("g", g.freeze())
            out = pool.matrix("out", 1, g.num_nodes)
            u, v = next(iter(g.edges()))
            g.remove_edge(u, v)
            pool.publish_csr("g", g.freeze(), dirty_rows={u, v})
            pool.run("bfs_rows", [("g", "out", [u], [0], None)])
            assert out[0].tolist() == bfs_distances(g, u, backend="sets")
            del out

    def test_kind_collision_rejected(self):
        g = random_connected_gnp(20, 0.2, seed=1)
        with WorkerPool(1) as pool:
            pool.publish_csr("thing", g.freeze())
            with pytest.raises(ParameterError):
                pool.matrix("thing", 2, 2)


class TestRestartAndTeardown:
    def test_restart_mid_stream_replays_shared_state(self):
        g = random_connected_gnp(40, 0.15, seed=6)
        csr = g.freeze()
        with WorkerPool(2) as pool:
            pool.publish_csr("g", csr)
            out = pool.matrix("out", 2, csr.num_nodes)
            pool.run("bfs_rows", [("g", "out", [0], [0], None)])
            pids_before = {pid for _w, pid, _p in pool.run("echo", [1, 2])}
            pool.restart()
            # Fresh processes, same published objects — no re-publish needed.
            pool.run("bfs_rows", [("g", "out", [1], [1], None)])
            pids_after = {pid for _w, pid, _p in pool.run("echo", [1, 2])}
            assert pids_before.isdisjoint(pids_after)
            assert out[1].tolist() == bfs_distances(csr, 1)
            del out

    def test_killed_worker_is_detected_and_replaced(self):
        with WorkerPool(2, task_timeout=30.0) as pool:
            pool.run("echo", [0, 1])
            pool._procs[0].terminate()
            pool._procs[0].join()
            # Next run notices the dead worker, restarts, and succeeds.
            results = pool.run("echo", ["x", "y", "z"])
            assert [p for _w, _pid, p in results] == ["x", "y", "z"]

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(1)
        pool.run("echo", [1])
        pool.close()
        with pytest.raises(ParameterError):
            pool.run("echo", [2])
        pool.close()  # idempotent


@pytest.mark.parametrize("method", START_METHODS)
class TestStartMethodMatrix:
    def test_bfs_rows_under_start_method(self, method):
        g = random_connected_gnp(40, 0.15, seed=2)
        csr = g.freeze()
        with WorkerPool(2, start_method=method) as pool:
            pool.publish_csr("g", csr)
            out = pool.matrix("out", 3, csr.num_nodes)
            pool.run(
                "bfs_rows", [("g", "out", [0, 1], [0, 1], None), ("g", "out", [2], [2], None)]
            )
            rows = np.array(out)
            del out
            for s in range(3):
                assert rows[s].tolist() == bfs_distances(csr, s)
