"""Shared-memory transport: share/attach exactness, delta publish, matrices.

The data plane's contract is byte-level: an attached snapshot must be
indistinguishable from the original (``share()``/``attach()`` round-trip),
and a delta publish must leave attached readers seeing exactly the new
snapshot while shipping fewer bytes than a full rewrite.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph import CSRGraph, Graph, bfs_distances
from repro.graph.generators import gnp_random_graph, path_graph, random_connected_gnp
from repro.parallel import AttachedMatrix, SharedCSR, SharedMatrix, attach_csr


@pytest.fixture
def shared_cleanup():
    owners = []
    yield owners.append
    for owner in owners:
        owner.close()


class TestShareAttachRoundTrip:
    def test_round_trip_is_exact(self, shared_cleanup):
        g = random_connected_gnp(60, 0.12, seed=5)
        csr = g.freeze()
        shared = csr.share()
        shared_cleanup(shared)
        attached = CSRGraph.attach(shared.handle)
        assert attached == csr
        assert attached.num_nodes == csr.num_nodes
        assert attached.num_edges == csr.num_edges
        assert attached.edge_set() == csr.edge_set()
        for u in csr.nodes():
            assert attached.neighbors(u) == csr.neighbors(u)
            assert list(attached.neighbors_csr(u)) == list(csr.neighbors_csr(u))

    def test_attached_graph_runs_the_csr_engine(self, shared_cleanup):
        g = random_connected_gnp(80, 0.08, seed=9)
        csr = g.freeze()
        shared = csr.share()
        shared_cleanup(shared)
        attached = CSRGraph.attach(shared.handle)
        for s in (0, 7, 41):
            assert bfs_distances(attached, s) == bfs_distances(csr, s)

    def test_attach_is_zero_copy(self, shared_cleanup):
        # Writing through the owner must be visible through the attachment:
        # both alias the same shared buffer.
        csr = path_graph(10).freeze()
        shared = csr.share()
        shared_cleanup(shared)
        attached = CSRGraph.attach(shared.handle)
        indptr, indices = attached.numpy_arrays()
        assert not indices.flags.owndata  # a view, not a copy
        shared._idx_view(1)[0] = 7  # poke the shared buffer directly
        assert indices[0] == 7

    def test_attach_rejects_garbage(self):
        with pytest.raises(ParameterError):
            CSRGraph.attach("not-a-handle")

    def test_empty_and_edgeless_graphs(self, shared_cleanup):
        for g in (Graph(0), Graph(5)):
            shared = g.freeze().share()
            shared_cleanup(shared)
            attached = attach_csr(shared.handle)
            assert attached == g.freeze()


class TestDeltaPublish:
    def _published_pair(self, g, shared_cleanup):
        csr = g.freeze()
        shared = csr.share()
        shared_cleanup(shared)
        return shared, CSRGraph.attach(shared.handle)

    def test_full_publish_updates_readers(self, shared_cleanup):
        g = random_connected_gnp(40, 0.15, seed=3)
        shared, _old = self._published_pair(g, shared_cleanup)
        g.add_edge(0, g.num_nodes - 1) if not g.has_edge(0, g.num_nodes - 1) else g.remove_edge(
            0, g.num_nodes - 1
        )
        stats = shared.publish(g.freeze())
        assert not stats.reallocated
        assert CSRGraph.attach(shared.handle) == g.freeze()

    def test_degree_preserving_delta_writes_only_dirty_rows(self, shared_cleanup):
        # A 2-swap (remove ab, cd; add ac, bd) preserves every degree, so
        # the delta path must write just the four dirty rows' spans.
        g = path_graph(200)
        shared, _ = self._published_pair(g, shared_cleanup)
        g.remove_edge(10, 11)
        g.remove_edge(100, 101)
        g.add_edge(10, 100)
        g.add_edge(11, 101)
        csr = g.freeze()
        full_bytes = csr.numpy_arrays()[0].nbytes + csr.numpy_arrays()[1].nbytes
        stats = shared.publish(csr, dirty_rows=[10, 11, 100, 101])
        assert stats.rows_rewritten == 4
        assert stats.bytes_written == 8 * np.dtype(np.intc).itemsize  # 4 rows × 2 ids
        assert stats.bytes_written < full_bytes // 10
        assert CSRGraph.attach(shared.handle) == csr

    def test_suffix_delta_when_degrees_change(self, shared_cleanup):
        g = path_graph(400)
        shared, _ = self._published_pair(g, shared_cleanup)
        g.add_edge(390, 395)  # late rows: only a short suffix shifts
        csr = g.freeze()
        full_bytes = csr.numpy_arrays()[0].nbytes + csr.numpy_arrays()[1].nbytes
        stats = shared.publish(csr, dirty_rows=[390, 395])
        assert stats.bytes_written < full_bytes // 4
        assert CSRGraph.attach(shared.handle) == csr

    def test_publish_without_hint_is_full_and_exact(self, shared_cleanup):
        g = random_connected_gnp(50, 0.1, seed=11)
        shared, _ = self._published_pair(g, shared_cleanup)
        g.add_edge(0, 2) if not g.has_edge(0, 2) else g.remove_edge(0, 2)
        stats = shared.publish(g.freeze())
        assert stats.rows_rewritten == -1  # full rewrite
        assert CSRGraph.attach(shared.handle) == g.freeze()

    def test_growth_reallocates_and_stays_exact(self, shared_cleanup):
        g = path_graph(30)
        csr = g.freeze()
        shared = SharedCSR(csr, capacity_nodes=31, capacity_indices=60)
        shared_cleanup(shared)
        old_handle = shared.handle
        g.add_nodes(200)
        for i in range(30, 229):
            g.add_edge(i, i + 1)
        stats = shared.publish(g.freeze())
        assert stats.reallocated
        assert shared.handle.indptr_name != old_handle.indptr_name
        assert CSRGraph.attach(shared.handle) == g.freeze()

    def test_publish_sequence_random_churn(self, shared_cleanup, rng):
        # Many rounds of random edits with accurate dirty hints: the
        # attached view must equal a fresh freeze after every publish.
        g = gnp_random_graph(35, 0.1, seed=14)
        shared, _ = self._published_pair(g, shared_cleanup)
        for _round in range(25):
            dirty = set()
            for _ in range(int(rng.integers(1, 4))):
                u, v = (int(x) for x in rng.integers(0, g.num_nodes, 2))
                if u == v:
                    continue
                (g.remove_edge if g.has_edge(u, v) else g.add_edge)(u, v)
                dirty |= {u, v}
            shared.publish(g.freeze(), dirty_rows=dirty)
            assert CSRGraph.attach(shared.handle) == g.freeze()

    def test_closed_owner_rejects_publish(self):
        g = path_graph(5)
        shared = g.freeze().share()
        shared.close()
        with pytest.raises(ParameterError):
            shared.publish(g.freeze())
        shared.close()  # idempotent


class TestSharedMatrix:
    def test_round_trip_and_aliasing(self):
        m = SharedMatrix(4, 6, fill=-1)
        try:
            from repro.parallel import AttachedMatrix

            att = AttachedMatrix(m.handle)
            view = att.array
            assert view.shape == (4, 6)
            assert (view == -1).all()
            m.array[2, 3] = 42
            assert view[2, 3] == 42  # same bytes
            view[0, 0] = 7
            assert m.array[0, 0] == 7
            att.close()
        finally:
            m.close()

    def test_grow_within_capacity_keeps_content(self):
        m = SharedMatrix(3, 3, capacity_rows=10, capacity_cols=10, fill=0)
        try:
            m.array[:] = np.arange(9).reshape(3, 3)
            assert m.resize(5, 5, fill=-1) is False  # no reallocation
            assert (m.array[:3, :3] == np.arange(9).reshape(3, 3)).all()
            assert (m.array[3:, :] == -1).all()
            assert (m.array[:, 3:] == -1).all()
        finally:
            m.close()

    def test_grow_past_capacity_reallocates_and_copies(self):
        m = SharedMatrix(3, 3, capacity_rows=3, capacity_cols=3)
        try:
            m.array[:] = 5
            old_name = m.handle.name
            assert m.resize(8, 8, fill=-1) is True
            assert m.handle.name != old_name
            assert (m.array[:3, :3] == 5).all()
            assert (m.array[3:, :] == -1).all()
        finally:
            m.close()

    def test_shrink_then_grow_refills_border(self):
        m = SharedMatrix(6, 6, fill=9)
        try:
            m.resize(3, 3)
            m.resize(6, 6, fill=-1)
            assert (m.array[:3, :3] == 9).all()
            assert (m.array[3:, :] == -1).all()
        finally:
            m.close()


class TestVersionedMatrix:
    """The seqlock layer concurrent readers ride (repro.parallel.sharded)."""

    def test_unversioned_matrix_has_no_counters(self):
        m = SharedMatrix(3, 3)
        try:
            assert m.handle.versions_name is None
            assert m.row_versions is None
            m.begin_row_write(1)  # no-ops, not errors
            m.end_row_write(1)
            att = AttachedMatrix(m.handle)
            assert att.versions is None
            assert (att.read_row(0) == m.array[0]).all()
            att.close()
        finally:
            m.close()

    def test_write_brackets_flip_parity(self):
        m = SharedMatrix(4, 4, versioned=True, fill=0)
        try:
            att = AttachedMatrix(m.handle)
            assert int(att.versions[2]) == 0
            att.begin_row_write(2)
            assert int(att.versions[2]) == 1  # odd: in progress
            att.array[2] = 7
            att.end_row_write(2)
            assert int(att.versions[2]) == 2  # even: committed
            assert (att.read_row(2) == 7).all()
            assert att.read_cell(2, 3) == 7
            assert att.torn_retries == 0
            att.close()
        finally:
            m.close()

    def test_reader_retries_while_writer_holds_the_row(self):
        import threading
        import time

        m = SharedMatrix(4, 4, versioned=True, fill=0)
        try:
            att = AttachedMatrix(m.handle)
            m.begin_row_write(1)  # writer holds row 1 (odd version)
            m.array[1] = 99

            def commit_soon():
                time.sleep(0.05)
                m.end_row_write(1)

            t = threading.Thread(target=commit_soon)
            t.start()
            row = att.read_row(1)  # must spin until the commit, then succeed
            t.join()
            assert (row == 99).all()
            assert att.torn_retries > 0  # the held row was observed and retried
            att.close()
        finally:
            m.close()

    def test_dead_writer_surfaces_as_torn_read_error(self):
        from repro import tuning
        from repro.analysis import sanitize
        from repro.errors import TornReadError

        m = SharedMatrix(3, 3, versioned=True, fill=0)
        try:
            att = AttachedMatrix(m.handle)
            with sanitize.suspended():  # deliberate dead-writer injection
                m.begin_row_write(0)  # never committed
            with tuning.overridden(read_retries=50):
                with pytest.raises(TornReadError):
                    att.read_row(0)
                with pytest.raises(TornReadError):
                    att.read_cell(0, 0)
            att.close()
        finally:
            m.close()

    def test_reallocation_carries_the_counters_forward(self):
        m = SharedMatrix(3, 3, capacity_rows=3, capacity_cols=3, versioned=True)
        try:
            m.begin_row_write(2)
            m.end_row_write(2)
            old_versions_name = m.handle.versions_name
            assert m.resize(8, 8, fill=-1) is True
            assert m.handle.versions_name != old_versions_name
            assert int(m.row_versions[2]) == 2  # monotone across the swap
            assert int(m.row_versions[7]) == 0
        finally:
            m.close()


class TestSharedDirectory:
    def test_post_read_round_trip(self):
        from repro.parallel import AttachedDirectory, SharedDirectory

        d = SharedDirectory()
        try:
            att = AttachedDirectory(d.name)
            gen0 = att.generation()
            d.post({"hello": [1, 2, 3]})
            payload, gen = att.read()
            assert payload == {"hello": [1, 2, 3]}
            assert gen > gen0 and gen % 2 == 0
            d.post(("second", 42))
            assert att.generation() > gen
            payload2, _ = att.read()
            assert payload2 == ("second", 42)
            att.close()
        finally:
            d.close()

    def test_oversized_payload_is_rejected(self):
        from repro.parallel import SharedDirectory

        d = SharedDirectory()
        try:
            with pytest.raises(ParameterError):
                d.post(b"x" * 8192)
        finally:
            d.close()
