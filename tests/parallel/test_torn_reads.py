"""Concurrent readers never observe a torn row — the serving-read property.

A :class:`~repro.parallel.sharded.RouteReader` in a *separate process*
hammers ``next_hop`` / ``table`` / raw-row lookups while the sharded
service soaks a churn stream.  The parent snapshots the D/T matrices after
initialization and after every event — the complete set of states the
service ever committed — and every observation the reader made must be
bit-identical to (a prefix of) one of those states:

* a row mid-write (odd seqlock version, or moved during the copy) must be
  retried, never returned;
* between directory posts the reader serves the previous committed shape,
  so a row observed at width c must match some committed state's first c
  columns exactly.

Parametrized over W ∈ {1, 2, 4}, all four churn scenarios, and both start
methods (the spawn matrix is kept small — each spawned process re-imports
the package).
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.dynamic import (
    EdgeEvent,
    NodeEvent,
    Scenario,
    SCENARIO_NAMES,
    apply_events,
    make_scenario,
)
from repro.parallel import ShardedRoutingService

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

#: Cap on recorded observations — the reader keeps reading past it (load
#: matters), it just stops accumulating evidence to ship back.
MAX_OBSERVATIONS = 3000


def _reader_main(directory, ready, stop, out_q, seed):
    """Reader-process entry point: look up rows until told to stop."""
    from repro.parallel import RouteReader
    from repro.rng import ensure_rng

    reader = RouteReader(directory)
    ready.set()  # attached — the parent may start churning now
    rng = ensure_rng(seed)
    observations = []
    lookups = 0
    try:
        while not stop.is_set():
            n = reader.num_nodes
            u = int(rng.integers(n))
            roll = rng.random()
            if roll < 0.4:
                row = reader.table_row(u)
                kind = "T"
            elif roll < 0.8:
                row = reader.distance_row(u)
                kind = "D"
            else:
                # Exercise the single-cell API paths too (their values are
                # covered by the row observations bit-wise).
                v = int(rng.integers(n))
                if v != u:
                    reader.next_hop(u, v)
                    reader.distance(u, v)
                lookups += 1
                continue
            lookups += 1
            if len(observations) < MAX_OBSERVATIONS:
                observations.append((kind, u, len(row), row.tobytes()))
        out_q.put(("ok", observations, lookups, reader.torn_retries))
    except BaseException as exc:  # pragma: no cover - surfaced by the test
        out_q.put(("error", repr(exc), lookups, 0))
        raise
    finally:
        reader.close()


def _snapshot(service):
    return (service._dist.copy(), service._tables.copy())


_MINUS_ONE = np.int32(-1).tobytes()


def _matches_some_state(kind, u, width, data, states) -> bool:
    """Does the observed row equal some committed state (−1-extended)?

    A reallocating resize immediately reposts the directory, so around it
    a reader may legitimately observe a committed state *extended* to the
    new dimensions with −1 padding (exactly what the resize writes before
    the rows are recomputed): row u of state S at observed width c matches
    when the overlap agrees bit-for-bit and every observed cell beyond S's
    shape is −1 — including a brand-new row (u ≥ S.rows, all −1).  Any mix
    of two states' *contents* inside the overlap still fails every
    candidate, which is what a torn read looks like.
    """
    for dist, tables in states:
        matrix = dist if kind == "D" else tables
        rows, cols = matrix.shape
        if u < rows:
            overlap = min(width, cols)
            if data[: 4 * overlap] != matrix[u, :overlap].tobytes():
                continue
            tail = data[4 * overlap :]
        else:
            tail = data
        if tail == _MINUS_ONE * (len(tail) // 4):
            return True
    return False


def _join_flood_scenario(n: int, joins: int, seed: int) -> Scenario:
    """A join-heavy stream that outgrows the matrices' capacity headroom."""
    from repro.graph.generators import random_connected_gnp

    initial = random_connected_gnp(n, 3.0 / n, seed=seed)
    events = []
    for new_id in range(n, n + joins):
        events.append(NodeEvent.join(new_id))
        events.append(EdgeEvent.add(new_id, new_id - 1))
    final = initial.copy()
    apply_events(final, events)
    return Scenario(name="joinflood", initial=initial, events=tuple(events), final=final)


def _run_soak(scenario, workers, start_method, *, n=40, events=18, seed=97):
    ctx = multiprocessing.get_context(start_method)
    sc = scenario if isinstance(scenario, Scenario) else make_scenario(scenario, n, events, seed=seed)
    states = []
    block_names = set()
    with ShardedRoutingService(
        sc.initial, "kcover", workers=workers, start_method=start_method
    ) as service:
        block_names.add(service._pool.matrix_owner("serve:dist").handle.name)
        states.append(_snapshot(service))
        ready = ctx.Event()
        stop = ctx.Event()
        out_q = ctx.Queue()
        reader_proc = ctx.Process(
            target=_reader_main,
            args=(service.reader_handle(), ready, stop, out_q, seed + 1),
            daemon=True,
        )
        reader_proc.start()
        # Wait for the attach (a spawned reader re-imports the package) so
        # the lookups genuinely overlap the repairs below.
        assert ready.wait(timeout=60), "reader never attached"
        for ev in sc.events:
            service.apply(ev)
            states.append(_snapshot(service))
            block_names.add(service._pool.matrix_owner("serve:dist").handle.name)
            time.sleep(0.002)  # share the core(s) with the reader
        time.sleep(0.05)  # let the reader catch the final state too
        stop.set()
        status, payload, lookups, retries = out_q.get(timeout=60)
        reader_proc.join(timeout=60)
    assert status == "ok", f"reader died: {payload}"
    assert lookups > 0, "reader never got a lookup in"
    observations = payload
    torn = [
        (kind, u, width)
        for kind, u, width, data in observations
        if not _matches_some_state(kind, u, width, data, states)
    ]
    assert torn == [], (
        f"{len(torn)} observed row states match NO committed state "
        f"({scenario_name}, W={workers}, {start_method}): {torn[:5]}"
    )
    return len(observations), len(block_names)


class TestTornFreeConcurrentReads:
    """The acceptance property of the concurrent query-serving tentpole."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_scenarios_fork(self, name, workers):
        if "fork" not in START_METHODS:  # pragma: no cover - non-POSIX
            pytest.skip("fork start method unavailable")
        observed, _blocks = _run_soak(name, workers, "fork")
        assert observed > 0

    @pytest.mark.parametrize("method", START_METHODS)
    def test_start_method_matrix(self, method):
        observed, _blocks = _run_soak("nodechurn", 2, method, events=10)
        assert observed > 0

    def test_reader_follows_reallocation(self):
        # A join flood outgrows the capacity headroom mid-soak, forcing
        # matrix reallocations (fresh block names); the directory must
        # carry the reader across them.
        sc = _join_flood_scenario(40, 30, seed=5)  # 40 → 70 > headroom 64
        observed, blocks = _run_soak(sc, 2, START_METHODS[0])
        assert observed > 0
        assert blocks > 1, "soak never reallocated the shared matrices"
