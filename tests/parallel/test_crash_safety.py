"""Seqlock crash safety: a task raising mid-write must not wedge readers.

The RL001 invariant (reprolint) in executable form.  ``begin_row_write``
flips a row's version counter odd; only ``end_row_write`` makes it even
again.  Before the try/finally brackets in ``_task_serve_rows`` /
``_task_serve_tables``, a task raising between the two left the counter
odd *forever* — and every subsequent seqlock read of that row spun its
whole retry budget and died with :class:`TornReadError`.

``crash_in_write`` (in the production ``TASKS`` registry, so ``spawn``
workers resolve it after re-import) injects exactly that raise inside a
bracket.  These tests pin, under both start methods:

* the failed task surfaces as :class:`WorkerError` in the parent;
* the row version is even again afterwards (the ``finally`` ran);
* readers — an in-process :class:`AttachedMatrix`, a
  :class:`RouteReader`, and a concurrent reader *process* — keep
  returning clean committed values promptly;
* and the reason the brackets matter: a bracket left open really does
  drive readers to :class:`TornReadError` (terminates, never spins
  forever).
"""

import multiprocessing

import pytest

from repro.errors import TornReadError
from repro.parallel import WorkerError, WorkerPool
from repro.parallel.shm import AttachedMatrix, SharedDirectory

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


def _crash(pool, name, row):
    with pytest.raises(WorkerError, match="injected crash"):
        pool.run("crash_in_write", [(name, row)])


def _reader_loop(directory, ready, stop, out_q):
    """Concurrent reader process: next_hop(0, 1) until told to stop."""
    from repro.parallel import RouteReader

    reader = RouteReader(directory)
    ready.set()
    reads = 0
    try:
        while not stop.is_set():
            assert reader.next_hop(0, 1) == 3
            reads += 1
        out_q.put(("ok", reads))
    except BaseException as exc:  # pragma: no cover - surfaced by the assert
        out_q.put(("error", repr(exc)))
        raise


@pytest.mark.parametrize("method", START_METHODS)
class TestCrashInsideWriteBracket:
    def test_row_version_restored_and_row_readable(self, method):
        with WorkerPool(1, start_method=method) as pool:
            pool.matrix("m", 4, 4, fill=7, versioned=True)
            _crash(pool, "m", 2)
            owner = pool.matrix_owner("m")
            versions = owner.row_versions
            assert versions is not None and versions[2] % 2 == 0
            attached = AttachedMatrix(owner.handle)
            try:
                assert attached.read_row(2).tolist() == [7, 7, 7, 7]
                assert attached.torn_retries == 0
            finally:
                attached.close()

    def test_route_reader_survives_crashed_writer(self, method):
        with WorkerPool(1, start_method=method) as pool:
            pool.matrix("dist", 4, 4, fill=5, versioned=True)
            pool.matrix("tables", 4, 4, fill=3, versioned=True)
            directory = SharedDirectory()
            try:
                directory.post(
                    (pool.matrix_owner("dist").handle, pool.matrix_owner("tables").handle)
                )
                from repro.parallel import RouteReader

                reader = RouteReader(directory.name)
                assert reader.next_hop(0, 1) == 3
                _crash(pool, "tables", 0)
                _crash(pool, "dist", 1)
                # Both lookups terminate promptly with the committed values.
                assert reader.next_hop(0, 1) == 3
                assert reader.distance(1, 2) == 5
                assert reader.torn_retries == 0
            finally:
                directory.close()

    def test_concurrent_reader_process_unaffected(self, method):
        ctx = multiprocessing.get_context(method)
        with WorkerPool(1, start_method=method) as pool:
            pool.matrix("dist", 4, 4, fill=5, versioned=True)
            pool.matrix("tables", 4, 4, fill=3, versioned=True)
            directory = SharedDirectory()
            proc = None
            try:
                directory.post(
                    (pool.matrix_owner("dist").handle, pool.matrix_owner("tables").handle)
                )
                ready, stop = ctx.Event(), ctx.Event()
                out_q = ctx.SimpleQueue()
                proc = ctx.Process(
                    target=_reader_loop, args=(directory.name, ready, stop, out_q)
                )
                proc.start()
                assert ready.wait(timeout=30)
                for _ in range(5):
                    _crash(pool, "tables", 0)
                stop.set()
                status, detail = out_q.get()
                proc.join(timeout=30)
                assert status == "ok", f"reader process failed: {detail}"
                assert detail > 0  # it really was reading while we crashed
                assert proc.exitcode == 0
            finally:
                stop.set()
                if proc is not None and proc.is_alive():  # pragma: no cover
                    proc.terminate()
                    proc.join(timeout=10)
                directory.close()


def test_unbalanced_bracket_reaches_torn_read_error():
    """The counter-factual: an open bracket must *terminate* readers.

    With the retry budget shrunk via the ``read_retries`` tuning knob (the
    production 200k takes ~20s of backoff), a reader of a row whose writer
    died mid-bracket raises TornReadError instead of spinning forever —
    the contract the crash-safety brackets exist to avoid triggering.
    """
    from repro import tuning

    with tuning.overridden(read_retries=2048), WorkerPool(1) as pool:
        pool.matrix("m", 4, 4, fill=7, versioned=True)
        owner = pool.matrix_owner("m")
        owner.begin_row_write(2)  # simulate a writer that died mid-bracket
        try:
            attached = AttachedMatrix(owner.handle)
            try:
                with pytest.raises(TornReadError):
                    attached.read_row(2)
                assert attached.read_row(1).tolist() == [7, 7, 7, 7]  # other rows fine
            finally:
                attached.close()
        finally:
            owner.end_row_write(2)
