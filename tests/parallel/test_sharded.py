"""ShardedRoutingService ≡ RoutingService, bit for bit, event for event.

The sharded service claims it is the serial service with the row/table
stages fanned out — nothing more.  The suite pins that as a bit-level
property: after every event (and every tick), the shared D and T matrices
equal the serial twin's, for W ∈ {1, 2, 4}, across all four churn
scenarios, every construction, the full-refresh fallback, pool restarts
mid-stream, and both start methods.
"""

import multiprocessing

import numpy as np
import pytest

from repro.dynamic import RoutingService, SCENARIO_NAMES, make_scenario
from repro.parallel import ShardedRoutingService, WorkerPool
from repro.routing import routing_table

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


def assert_twins_agree(sharded, serial, context=""):
    assert np.array_equal(sharded._dist, serial._dist), f"D diverged {context}"
    assert np.array_equal(sharded._tables, serial._tables), f"T diverged {context}"


def assert_matches_scratch(service, context=""):
    h, g = service.advertised, service.graph
    for u in g.nodes():
        assert service.table(u) == routing_table(h, g, u), f"table of {u} diverged {context}"


class TestBitIdenticalToSerial:
    """The acceptance property of the parallel serving tentpole."""

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_scenarios_every_event(self, name, workers):
        sc = make_scenario(name, 35, 25, seed=17)
        serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=workers, rebuild_fraction=1.0
        ) as sharded:
            for i, ev in enumerate(sc.events, start=1):
                serial.apply(ev)
                report = sharded.apply(ev)
                assert report.events == 1
                assert_twins_agree(sharded, serial, f"{name} W={workers} after event {i}")
            assert sharded.graph == sc.final
            assert_matches_scratch(sharded, f"{name} W={workers} final")
            # Work accounting is part of "identical": same damage decisions.
            assert sharded.rows_recomputed == serial.rows_recomputed
            assert sharded.tables_recomputed == serial.tables_recomputed
            assert sharded.entries_updated == serial.entries_updated

    @pytest.mark.parametrize(
        "method,kwargs",
        [("mis", {"r": 3}), ("greedy", {"r": 2}), ("kmis", {"k": 2})],
    )
    def test_other_constructions_stay_exact(self, method, kwargs):
        sc = make_scenario("nodechurn", 30, 20, seed=21)
        serial = RoutingService(sc.initial, method, rebuild_fraction=1.0, **kwargs)
        with ShardedRoutingService(
            sc.initial, method, workers=2, rebuild_fraction=1.0, **kwargs
        ) as sharded:
            for i, ev in enumerate(sc.events, start=1):
                serial.apply(ev)
                sharded.apply(ev)
                assert_twins_agree(sharded, serial, f"{method} after event {i}")
            assert_matches_scratch(sharded, f"{method} final")

    def test_batched_ticks_match(self):
        sc = make_scenario("mobility", 35, 30, seed=29)
        serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        events = list(sc.events)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=2, rebuild_fraction=1.0
        ) as sharded:
            for lo in range(0, len(events), 6):
                tick = events[lo : lo + 6]
                serial.apply_batch(tick)
                sharded.apply_batch(tick)
                assert_twins_agree(sharded, serial, f"after tick at {lo}")
            assert_matches_scratch(sharded, "final ticked state")

    def test_fallback_refresh_path_stays_exact(self):
        # A tiny rebuild fraction forces the maintainer rebuild + full
        # refresh on nearly every event — the wholesale-republish path.
        sc = make_scenario("nodechurn", 30, 20, seed=13)
        serial = RoutingService(sc.initial, "kcover", rebuild_fraction=0.01)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=2, rebuild_fraction=0.01
        ) as sharded:
            for i, ev in enumerate(sc.events, start=1):
                serial.apply(ev)
                sharded.apply(ev)
                assert_twins_agree(sharded, serial, f"after event {i}")
            assert sharded.maintainer.full_rebuilds > 0
            assert sharded.full_refreshes == serial.full_refreshes > 0

    def test_compact_drops_dormant_ids_and_stays_exact(self):
        sc = make_scenario("nodechurn", 30, 25, seed=31)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=2, rebuild_fraction=1.0
        ) as sharded:
            for ev in sc.events:
                sharded.apply(ev)
            before = sharded.memory_stats()
            mapping = sharded.compact()
            after = sharded.memory_stats()
            assert after.dormant == 0
            assert after.nodes == before.nodes - before.dormant
            assert len(mapping) == after.nodes
            assert_matches_scratch(sharded, "after compact")


class TestPoolLifecycle:
    def test_pool_restart_mid_stream_is_transparent(self):
        sc = make_scenario("failure", 35, 24, seed=41)
        serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=2, rebuild_fraction=1.0
        ) as sharded:
            for i, ev in enumerate(sc.events, start=1):
                if i % 8 == 0:  # kill the workers mid-stream
                    sharded._pool.restart()
                serial.apply(ev)
                sharded.apply(ev)
                assert_twins_agree(sharded, serial, f"after event {i} (restarts)")
            assert_matches_scratch(sharded, "final after restarts")

    def test_external_pool_is_reused_not_closed(self):
        sc = make_scenario("failure", 30, 10, seed=43)
        pool = WorkerPool(2)
        try:
            with ShardedRoutingService(sc.initial, "kcover", pool=pool) as sharded:
                for ev in sc.events:
                    sharded.apply(ev)
                assert_matches_scratch(sharded, "external pool")
            # The service released its shared objects but left the pool up.
            assert pool.run("echo", ["alive"])[0][2] == "alive"
        finally:
            pool.close()

    def test_workers_property_and_owner_map(self):
        from repro.graph.generators import random_connected_gnp

        g = random_connected_gnp(30, 0.12, seed=1)
        with ShardedRoutingService(g, "kcover", workers=3) as sharded:
            assert sharded.workers == 3
            assert [sharded.owner(u) for u in range(6)] == [0, 1, 2, 0, 1, 2]


@pytest.mark.parametrize("method", START_METHODS)
def test_start_method_matrix_small_stream(method):
    sc = make_scenario("failure", 30, 6, seed=3)
    serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
    with ShardedRoutingService(
        sc.initial, "kcover", workers=2, start_method=method, rebuild_fraction=1.0
    ) as sharded:
        for ev in sc.events:
            serial.apply(ev)
            sharded.apply(ev)
        assert_twins_agree(sharded, serial, f"start method {method}")
        assert_matches_scratch(sharded, f"start method {method}")
