"""``workers=`` dispatch: batched BFS, APSP and routing tables fan out.

The one-shot fan-out path must be invisible except for speed: identical
rows, identical matrices, identical tables; ``"auto"`` must stay serial
below the engagement thresholds, and an explicit pool must be reusable.
"""

import numpy as np
import pytest

from repro import tuning
from repro.core import build_k_connecting_spanner
from repro.errors import ParameterError
from repro.graph import all_pairs_distances, batched_bfs, distance_matrix
from repro.graph.generators import random_connected_gnp
from repro.parallel import WorkerPool
from repro.parallel.fanout import maybe_parallel_bfs
from repro.routing import routing_table


@pytest.fixture
def graph():
    return random_connected_gnp(90, 0.06, seed=12)


class TestBatchedBfsWorkers:
    def test_explicit_workers_match_serial(self, graph):
        serial = list(batched_bfs(graph))
        fanned = list(batched_bfs(graph, workers=2))
        assert fanned == serial

    def test_subset_sources_and_cutoff(self, graph):
        sources = [3, 1, 41, 7]
        serial = list(batched_bfs(graph, sources, cutoff=3))
        fanned = list(batched_bfs(graph, sources, cutoff=3, workers=2))
        assert fanned == serial

    def test_arrays_mode(self, graph):
        serial = {s: row.tolist() for s, row in batched_bfs(graph, arrays=True)}
        for s, row in batched_bfs(graph, arrays=True, workers=2):
            assert isinstance(row, np.ndarray)
            assert row.tolist() == serial[s]

    def test_auto_stays_serial_below_threshold(self, graph, monkeypatch):
        # parallel_min_nodes default is far above 90 nodes: auto must not
        # engage (observable: no pool is ever constructed).
        import repro.parallel.fanout as fanout

        class Boom(fanout.WorkerPool):
            def __init__(self, *a, **k):
                raise AssertionError("auto engaged below the threshold")

        monkeypatch.setattr(fanout, "WorkerPool", Boom)
        assert list(batched_bfs(graph, workers="auto")) == list(batched_bfs(graph))

    def test_auto_engages_past_threshold(self, graph):
        with tuning.overridden(parallel_min_nodes=50):
            rows = maybe_parallel_bfs(graph.freeze(), list(range(20)), None, "auto")
        if rows is None:  # single-core host: auto resolves to 1 worker
            import os

            assert (os.cpu_count() or 1) < 2
        else:
            for s in range(20):
                assert rows[s].tolist() == list(batched_bfs(graph, [s]))[0][1]

    def test_existing_pool_is_reused(self, graph):
        with WorkerPool(2) as pool:
            a = list(batched_bfs(graph, workers=pool))
            b = list(batched_bfs(graph, [5, 6], cutoff=2, workers=pool))
        assert a == list(batched_bfs(graph))
        assert b == list(batched_bfs(graph, [5, 6], cutoff=2))

    def test_bad_workers_spec_raises(self, graph):
        with pytest.raises(ParameterError):
            list(batched_bfs(graph, workers=-2))


class TestApspAndTables:
    def test_distance_helpers_match(self, graph):
        assert all_pairs_distances(graph, workers=2) == all_pairs_distances(graph)
        assert np.array_equal(distance_matrix(graph, workers=2), distance_matrix(graph))

    def test_routing_table_workers_match(self, graph):
        h = build_k_connecting_spanner(graph, k=1).graph
        for u in (0, 17, 55):
            assert routing_table(h, graph, u, workers=2) == routing_table(h, graph, u)
