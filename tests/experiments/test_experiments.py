"""Tests for the experiment harnesses (small parameterizations)."""

import math

import pytest

from repro.core import is_k_connecting_remote_spanner, is_remote_spanner
from repro.errors import ParameterError
from repro.experiments import (
    ablate_beta,
    ablate_first_fit,
    ablate_greedy_vs_mis,
    ablate_mis_order,
    ascii_scene,
    build_figure1,
    build_table1,
    figure1_points,
    largest_component,
    poisson_udg,
    scaled_udg,
    side_for_degree,
    udg_edge_scaling,
)
from repro.graph import is_connected


class TestRunner:
    def test_side_for_degree_math(self):
        side = side_for_degree(100, 10.0)
        assert side == pytest.approx(math.sqrt(100 * math.pi / 10.0))
        with pytest.raises(ParameterError):
            side_for_degree(0, 5.0)

    def test_scaled_udg_degree_near_target(self):
        g, pts = scaled_udg(400, target_degree=10.0, seed=1)
        mean_deg = 2 * g.num_edges / g.num_nodes
        assert 6.0 < mean_deg < 12.0  # boundary effects reduce it

    def test_poisson_udg_deterministic(self):
        g1, _ = poisson_udg(30.0, 3.0, seed=9)
        g2, _ = poisson_udg(30.0, 3.0, seed=9)
        assert g1 == g2

    def test_largest_component_connected(self):
        g, _ = scaled_udg(120, target_degree=6.0, seed=2)
        sub, ids = largest_component(g)
        assert is_connected(sub)
        assert len(ids) == sub.num_nodes


class TestFigure1:
    def test_panels_certified(self):
        fig = build_figure1()
        g = fig.graph
        assert is_remote_spanner(fig.spanner_b.graph, g, 1.0, 0.0)
        assert is_remote_spanner(fig.graph_c, g, 2.0, -1.0)
        assert is_k_connecting_remote_spanner(fig.spanner_d.graph, g, 2, 2.0, -1.0)

    def test_witnesses_match_captions(self):
        fig = build_figure1()
        u, x, d = fig.exact_pair
        assert d >= 2
        s, t, dg, dh = fig.stretch_pair
        assert dh == 2 * dg - 1  # extremal stretch realized on this layout
        s2, t2, paths = fig.disjoint_witness
        assert len(paths) == 2
        internals = [set(p[1:-1]) for p in paths]
        assert not (internals[0] & internals[1])

    def test_minimal_spanner_is_minimal(self):
        fig = build_figure1()
        g = fig.graph
        h = fig.graph_c
        # No single edge can be dropped.
        for e in list(h.edges()):
            h2 = h.copy()
            h2.remove_edge(*e)
            assert not is_remote_spanner(h2, g, 2.0, -1.0)

    def test_ascii_scene_renders(self):
        fig = build_figure1()
        out = ascii_scene(figure1_points(), fig.graph, fig.spanner_b.graph)
        assert "*u" in out and "edges:" in out


class TestTable1:
    def test_reduced_table_builds_and_verifies(self):
        rows = build_table1(n_any=25, n_udg=60, verify_pairs=8, seed=5)
        assert len(rows) == 9
        for row in rows:
            assert row.stretch_ok in (True, "-"), f"row {row.row} failed"
        # External rows are citation-only.
        assert rows[5].edges == "-"
        assert rows[7].edges == "-"


class TestAblations:
    def test_greedy_vs_mis_reports_both(self):
        rep = ablate_greedy_vs_mis(r=3, seed=1, n=80)
        assert set(rep.variants) == {"greedy", "mis"}
        assert rep.variants["greedy"]["union_edges"] > 0

    def test_beta_reports_both_settings(self):
        rep = ablate_beta(r=3, seed=2, n=80)
        # β = 1 widens the candidate pool to same-ring dominators but the
        # paths to them are one hop longer, so tree sizes can move either
        # way — the ablation records both; we assert both ran and produced
        # valid positive sizes with sane max ≥ mean.
        for variant in ("beta=0", "beta=1"):
            v = rep.variants[variant]
            assert v["mean_tree_edges"] > 0
            assert v["max_tree_edges"] >= v["mean_tree_edges"]

    def test_first_fit_never_beats_greedy_union(self):
        rep = ablate_first_fit(seed=3, n=80)
        assert (
            rep.variants["max_gain"]["mean_star"]
            <= rep.variants["first_fit"]["mean_star"] + 1e-9
        )

    def test_mis_order_matters(self):
        rep = ablate_mis_order(r=4, seed=4, n=120)
        assert rep.variants["nearest_first"]["violations"] == 0
        # farthest-first may or may not violate on a given instance, but
        # never fewer violations than the correct ordering.
        assert rep.variants["farthest_first"]["violations"] >= 0


class TestScalingSmoke:
    def test_udg_scaling_shapes(self):
        res = udg_edge_scaling(intensities=(20.0, 40.0), side=3.0, trials=1, seed=6)
        # full topology grows strictly faster than the spanner
        assert res.exponent("full_edges") > res.exponent("spanner_edges")
        assert res.exponent("spanner_edges") > 1.0
