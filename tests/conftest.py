"""Shared fixtures and hypothesis strategies for the test suite.

The strategies produce small random graphs (and sub-graph pairs) — the
regime where brute-force oracles (path enumeration, exhaustive set cover,
networkx cross-checks) stay instant, which is what lets the property tests
assert *exact* agreement rather than loose sanity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph import Graph
from repro.rng import derive_seed, ensure_rng
from repro.graph.generators import (
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_connected_gnp,
)


# --------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------- #


@st.composite
def small_graphs(draw, min_nodes: int = 2, max_nodes: int = 10) -> Graph:
    """An arbitrary small graph via a random edge subset."""
    n = draw(st.integers(min_nodes, max_nodes))
    all_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    mask = draw(st.lists(st.booleans(), min_size=len(all_edges), max_size=len(all_edges)))
    return Graph(n, (e for e, keep in zip(all_edges, mask) if keep))


@st.composite
def connected_graphs(draw, min_nodes: int = 2, max_nodes: int = 10) -> Graph:
    """A connected small graph: random tree + random extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**32 - 1))
    p = draw(st.floats(0.0, 0.5))
    return random_connected_gnp(n, p, seed=seed)


@st.composite
def graph_with_subgraph(draw, min_nodes: int = 2, max_nodes: int = 9):
    """A (G, H) pair with H a spanning sub-graph of G."""
    g = draw(connected_graphs(min_nodes, max_nodes))
    edges = sorted(g.edges())
    mask = draw(st.lists(st.booleans(), min_size=len(edges), max_size=len(edges)))
    h = g.spanning_subgraph(e for e, keep in zip(edges, mask) if keep)
    return g, h


# --------------------------------------------------------------------- #
# pytest fixtures: a small zoo of deterministic graphs
# --------------------------------------------------------------------- #


@pytest.fixture
def petersen() -> Graph:
    """The Petersen graph: 3-regular, girth 5, vertex-transitive."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(10, outer + inner + spokes)


@pytest.fixture
def zoo() -> dict:
    """Named structured graphs exercising different regimes."""
    return {
        "path": path_graph(8),
        "cycle": cycle_graph(9),
        "grid": grid_graph(4, 5),
        "gnp": gnp_random_graph(16, 0.3, seed=7),
        "connected_gnp": random_connected_gnp(14, 0.15, seed=8),
    }


#: Root seed for the fixture below — all test randomness derives from it
#: through :mod:`repro.rng`, never the global :mod:`random` state.
TEST_SEED = 12345


@pytest.fixture
def rng(request) -> np.random.Generator:
    """A deterministic per-test generator (stream keyed by the test id),
    routed through ``repro.rng``."""
    return ensure_rng(derive_seed(TEST_SEED, request.node.nodeid))
