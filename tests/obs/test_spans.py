"""repro.obs spans, tracer, timing helpers, and the REPRO_OBS gate."""

import json

from repro import obs, tuning


class TestTiming:
    def test_stopwatch_elapsed_and_restart(self):
        sw = obs.Stopwatch()
        first = sw.elapsed()
        assert first >= 0.0
        sw.restart()
        assert sw.elapsed() <= sw.elapsed()  # monotone after restart

    def test_time_best_returns_positive_minimum(self):
        t = obs.time_best(lambda: sum(range(500)), repeats=3)
        assert 0.0 < t < 1.0


class TestGating:
    def test_helpers_record_when_enabled(self):
        assert obs.enabled()
        obs.inc("t.counter", 3)
        obs.gauge("t.gauge", 1.5)
        obs.observe("t.hist", 7.0, obs.COUNT_BOUNDS)
        snap = obs.snapshot()
        assert snap["counters"]["t.counter"] == 3
        assert snap["gauges"]["t.gauge"] == 1.5
        assert snap["histograms"]["t.hist"]["count"] == 1

    def test_helpers_are_noops_when_disabled(self):
        with tuning.overridden(obs=0):
            assert not obs.enabled()
            obs.inc("t.counter")
            obs.gauge("t.gauge", 1.0)
            obs.observe("t.hist", 1.0)
        assert obs.snapshot() == obs.empty_snapshot()

    def test_span_seconds_valid_even_when_disabled(self):
        with tuning.overridden(obs=0):
            with obs.span("gated.region") as sp:
                sum(range(100))
        assert sp.seconds > 0.0  # report seconds fields rely on this
        assert obs.snapshot()["histograms"] == {}

    def test_span_observes_us_histogram_when_enabled(self):
        with obs.span("hot.region"):
            sum(range(100))
        hist = obs.snapshot()["histograms"]["hot.region.us"]
        assert hist["count"] == 1 and hist["sum"] > 0.0

    def test_registry_methods_ignore_the_knob(self):
        # SimStats-style always-on accounting writes at registry level.
        with tuning.overridden(obs=0):
            obs.metrics().inc("always.on")
        assert obs.snapshot()["counters"]["always.on"] == 1


class TestTracer:
    def test_inactive_tracer_records_nothing(self):
        with obs.span("untraced"):
            pass
        assert obs.tracer().trace_events() == []

    def test_nested_spans_carry_depth(self):
        obs.tracer().start()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        events = {e["name"]: e for e in obs.tracer().trace_events()}
        assert events["outer"]["args"]["depth"] == 1
        assert events["inner"]["args"]["depth"] == 2
        # inner closed first: complete events are appended at exit
        assert obs.tracer().trace_events()[0]["name"] == "inner"

    def test_chrome_trace_file_is_loadable(self, tmp_path):
        obs.tracer().start()
        with obs.span("traced.region"):
            sum(range(100))
        out = tmp_path / "run.trace.json"
        count = obs.tracer().write(out)
        assert count == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "traced.region"
        assert event["dur"] > 0.0
        assert isinstance(event["pid"], int)


class TestMetricsDocument:
    def test_document_shape_and_merge(self):
        obs.inc("parent.counter", 2)
        shard = obs.MetricsRegistry()
        shard.inc("parent.counter", 3)
        shard.inc("shard.only", 1)
        doc = obs.metrics_document({1: shard.snapshot()})
        assert doc["schema"] == obs.SCHEMA
        assert set(doc) == {"schema", "process", "shards", "merged"}
        assert list(doc["shards"]) == ["1"]  # JSON-safe string keys
        assert doc["merged"]["counters"]["parent.counter"] == 5
        assert doc["merged"]["counters"]["shard.only"] == 1

    def test_document_without_shards(self):
        obs.inc("solo", 1)
        doc = obs.metrics_document()
        assert doc["shards"] == {}
        assert doc["merged"] == doc["process"]
