"""Observability wired through the serving stack and the CLI artifacts."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.distributed.metrics import SimStats
from repro.dynamic import (
    RoutingService,
    failure_recovery_scenario,
    serve_queries,
)
from repro.graph import sample_pairs
from repro.graph.cache import cached_bfs_distances
from repro.graph.generators import random_connected_gnp


def _small_service(n=80, events=6, seed=11):
    sc = failure_recovery_scenario(n, events, seed=seed)
    return RoutingService(sc.initial, "kcover"), sc


class TestServeReportWall:
    def test_wall_seconds_covers_apply_seconds(self):
        service, sc = _small_service()
        reports = service.apply_stream(sc.events)
        assert reports
        for r in reports:
            # The tick span opens before apply's stopwatch and closes
            # after it, so the containment is structural, not statistical.
            assert r.wall_seconds >= r.seconds > 0.0

    def test_single_apply_leaves_wall_at_default(self):
        service, sc = _small_service()
        report = service.apply(sc.events[0])
        assert report.wall_seconds == 0.0  # only apply_stream stamps it


class TestServeCounters:
    def test_refresh_and_row_accounting(self):
        service, sc = _small_service()
        before = obs.snapshot()
        for ev in sc.events[:3]:
            service.apply(ev)
        delta = obs.diff_snapshots(before, obs.snapshot())
        assert delta["counters"].get("serve.rows_recomputed", 0) > 0

    def test_cache_hit_and_miss_counters(self):
        g = random_connected_gnp(24, 0.2, seed=5)
        before = obs.snapshot()
        cached_bfs_distances(g, 0)
        cached_bfs_distances(g, 0)
        delta = obs.diff_snapshots(before, obs.snapshot())
        assert delta["counters"]["cache.misses"] == 1
        assert delta["counters"]["cache.hits"] == 1


class TestServeQueries:
    def test_report_and_histograms(self):
        service, _sc = _small_service()
        pairs = sample_pairs(service.graph, 12, seed=3, require_nonadjacent=False)
        before = obs.snapshot()
        report = serve_queries(service, pairs)
        assert report.served == len(pairs)
        assert report.delivered >= 1
        assert report.mean_hops >= 1.0
        assert report.qps > 0.0
        delta = obs.diff_snapshots(before, obs.snapshot())
        assert delta["counters"]["traffic.requests"] == len(pairs)
        assert delta["histograms"]["traffic.request.us"]["count"] == len(pairs)
        assert delta["histograms"]["traffic.hops"]["count"] == report.delivered

    def test_disabled_obs_still_serves_and_counts_nothing(self):
        from repro import tuning

        service, _sc = _small_service()
        pairs = sample_pairs(service.graph, 6, seed=4, require_nonadjacent=False)
        with tuning.overridden(obs=0):
            before = obs.snapshot()
            report = serve_queries(service, pairs)
            delta = obs.diff_snapshots(before, obs.snapshot())
        assert report.served == len(pairs)
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}


class TestSimStats:
    def test_counter_backed_attributes(self):
        stats = SimStats()
        stats.record_round(messages=10, broadcasts=4, links=25)
        stats.record_round(messages=6, broadcasts=2, links=9)
        assert stats.rounds == 2
        assert stats.messages == 16
        assert stats.broadcasts == 6
        assert stats.links_advertised == 34
        assert stats.per_round_messages == [10, 6]
        assert "rounds=2" in repr(stats)

    def test_snapshot_speaks_the_obs_schema(self):
        stats = SimStats()
        stats.record_round(messages=3, broadcasts=1, links=5)
        snap = stats.snapshot()
        assert snap["counters"]["sim.rounds"] == 1
        assert snap["histograms"]["sim.round_messages"]["count"] == 1
        # Mergeable with any other obs snapshot — one format everywhere.
        merged = obs.merge_snapshots(snap, snap)
        assert merged["counters"]["sim.messages"] == 6

    def test_registry_is_knob_proof(self):
        from repro import tuning

        with tuning.overridden(obs=0):
            stats = SimStats()
            stats.record_round(messages=1, broadcasts=1, links=1)
        assert stats.rounds == 1  # simulation accounting is never gated


class TestCliArtifacts:
    def test_traffic_writes_metrics_and_trace(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.trace.json"
        rc = main(
            [
                "traffic", "--n", "60", "--events", "6", "--queries", "5",
                "--workload", "uniform", "--compare-bfs", "0",
                "--metrics", str(metrics), "--trace", str(trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out and "trace with" in out
        doc = json.loads(metrics.read_text(encoding="utf-8"))
        assert doc["schema"] == obs.SCHEMA
        assert doc["merged"]["counters"]["traffic.requests"] >= 5
        tdoc = json.loads(trace.read_text(encoding="utf-8"))
        assert tdoc["traceEvents"], "trace must carry span events"
        assert {e["ph"] for e in tdoc["traceEvents"]} == {"X"}

    def test_serve_with_workers_writes_per_shard_breakdown(self, tmp_path):
        metrics = tmp_path / "m.json"
        rc = main(
            [
                "serve", "--scenario", "failure", "--n", "120", "--events", "8",
                "--workers", "2", "--metrics", str(metrics),
            ]
        )
        assert rc == 0
        doc = json.loads(metrics.read_text(encoding="utf-8"))
        assert sorted(doc["shards"]) == ["0", "1"]
        shard_rows = sum(
            s["counters"].get("serve.rows_recomputed", 0) for s in doc["shards"].values()
        )
        assert shard_rows > 0
        assert doc["merged"]["counters"]["serve.rows_recomputed"] >= shard_rows

    def test_obs_command_prints_and_diffs(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert (
            main(
                [
                    "churn", "--scenario", "failure", "--n", "80", "--events", "6",
                    "--metrics", str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out and "maintainer" in out
        assert main(["obs", str(metrics), str(metrics)]) == 0
        assert "(no differences)" in capsys.readouterr().out

    def test_obs_command_rejects_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            main(["obs", str(tmp_path / "absent.json")])
