"""Shared hygiene for the observability tests.

Every test starts from an empty default registry, a stopped tracer, and
pristine tuning — and leaves the process the same way, so obs state never
leaks between tests (or into the rest of the suite).
"""

import pytest

from repro import obs, tuning


@pytest.fixture(autouse=True)
def _clean_obs():
    tuning.reset()
    obs.reset()
    obs.tracer().stop()
    yield
    obs.tracer().stop()
    obs.reset()
    tuning.reset()
