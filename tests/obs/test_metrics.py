"""repro.obs.metrics: registry semantics and exact snapshot algebra."""

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (
    COUNT_BOUNDS,
    TIME_BOUNDS_US,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    empty_snapshot,
    format_diff,
    format_snapshot,
    merge_snapshots,
)


class TestRegistry:
    def test_counters_add_and_default_to_zero(self):
        reg = MetricsRegistry()
        assert reg.counter("never.touched") == 0
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2.5)
        assert reg.counter("a") == 5
        assert reg.counter("b") == 2.5

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1)
        reg.gauge("g", 9.5)
        assert reg.snapshot()["gauges"] == {"g": 9.5}

    def test_histogram_bucket_placement(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        # bucket i counts values <= bounds[i]; last cell is overflow
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.0)
        assert snap["min"] == 0.5 and snap["max"] == 100.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ParameterError):
            Histogram(bounds=())
        with pytest.raises(ParameterError):
            Histogram(bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ParameterError):
            Histogram(bounds=(2.0, 1.0))

    def test_observe_bounds_honoured_only_at_creation(self):
        reg = MetricsRegistry()
        reg.observe("h", 3.0, COUNT_BOUNDS)
        reg.observe("h", 5.0, (100.0, 200.0))  # ignored: histogram exists
        hist = reg.histogram("h")
        assert hist.bounds == COUNT_BOUNDS
        assert hist.count == 2

    def test_observe_default_bounds_are_time_buckets(self):
        reg = MetricsRegistry()
        reg.observe("lat", 42.0)
        assert reg.histogram("lat").bounds == TIME_BOUNDS_US

    def test_snapshot_schema_and_reset(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.gauge("g", 1.0)
        reg.observe("h", 5.0, COUNT_BOUNDS)
        snap = reg.snapshot_and_reset()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert set(snap["histograms"]["h"]) == {
            "bounds", "counts", "count", "sum", "min", "max",
        }
        assert reg.snapshot() == empty_snapshot()


def _filled(values):
    reg = MetricsRegistry()
    for v in values:
        reg.inc("ops", 1)
        reg.inc("bytes", 10 * v)
        reg.observe("size", v, COUNT_BOUNDS)
        reg.gauge("last", v)
    return reg


class TestMergeAndDiff:
    def test_merge_is_exact(self):
        # Splitting a stream over two registries and merging must be
        # bit-identical to one registry seeing the whole stream.
        values = [1.0, 3.0, 7.0, 9.0, 200.0, 5000.0]
        whole = _filled(values).snapshot()
        parts = merge_snapshots(
            _filled(values[:2]).snapshot(), _filled(values[2:]).snapshot()
        )
        assert parts == whole

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots() == empty_snapshot()

    def test_merge_with_empty_is_identity(self):
        snap = _filled([2.0, 4.0]).snapshot()
        assert merge_snapshots(snap, empty_snapshot()) == snap

    def test_merge_rejects_mismatched_bounds(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.observe("h", 1.0, (1.0, 2.0))
        b.observe("h", 1.0, (1.0, 3.0))
        with pytest.raises(ParameterError):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_diff_counters_gauges_histograms(self):
        old = _filled([1.0]).snapshot()
        new = _filled([1.0, 8.0]).snapshot()
        delta = diff_snapshots(old, new)
        assert delta["counters"]["ops"] == 1
        assert delta["counters"]["bytes"] == 80.0
        assert delta["gauges"]["last"] == {"old": 1.0, "new": 8.0}
        assert delta["histograms"]["size"] == {"count": 1, "sum": 8.0}

    def test_diff_of_identical_snapshots_is_empty(self):
        snap = _filled([3.0]).snapshot()
        delta = diff_snapshots(snap, snap)
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_format_smoke(self):
        snap = _filled([2.0, 6.0]).snapshot()
        text = format_snapshot(snap)
        assert "counters:" in text and "ops" in text and "histograms:" in text
        assert format_snapshot(empty_snapshot()) == "(empty snapshot)"
        assert format_diff(snap, snap) == "(no differences)"
        assert "+1" in format_diff(_filled([2.0]).snapshot(), snap)
