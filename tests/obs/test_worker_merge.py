"""Cross-process merge property: W shards merge to the single-process truth.

The exact-merge design claim of :mod:`repro.obs.metrics`: splitting an
observation stream over worker processes and folding their shipped
snapshots back together is bit-identical to one process recording the
whole stream.  Exercised over the real :class:`~repro.parallel.pool.\
WorkerPool` shipping channel — W ∈ {1, 2, 4}, both start methods, and
across a pool restart (the graceful-stop final snapshot path).
"""

import multiprocessing

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.parallel.pool import WorkerPool

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


def _ops(count=36):
    """A deterministic observation stream touching every metric kind."""
    ops = []
    for i in range(count):
        ops.append(("inc", f"prop.counter{i % 3}", float(i + 1)))
        ops.append(("observe", "prop.size", float((7 * i) % 300 + 1)))
        if i % 2:
            ops.append(("observe", "prop.lat_us", float(13 * i + 1)))
    ops.append(("gauge", "prop.level", 42.0))  # same value on every shard
    return ops


def _serial_twin(ops):
    reg = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "inc":
            reg.inc(name, value)
        elif kind == "gauge":
            reg.gauge(name, value)
        else:
            reg.observe(name, value)
    return reg.snapshot()


def _chunks(ops, pieces):
    return [ops[i::pieces] for i in range(pieces)]


@pytest.mark.parametrize("method", START_METHODS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_merged_worker_snapshots_equal_single_process(workers, method):
    ops = _ops()
    expected = _serial_twin(ops)
    with WorkerPool(workers, start_method=method) as pool:
        # Two dispatch rounds so every worker accumulates across tasks.
        for payloads in (_chunks(ops[: len(ops) // 2], workers),
                         _chunks(ops[len(ops) // 2 :], workers)):
            counts = pool.run("obs_record", payloads, to=list(range(workers)))
            assert counts == [len(p) for p in payloads]
        collected = pool.metrics()
        assert sorted(collected["shards"]) == list(range(workers))
        assert collected["merged"] == expected


def test_merge_survives_pool_restart():
    ops = _ops()
    expected = _serial_twin(ops)
    head, tail = ops[: len(ops) // 2], ops[len(ops) // 2 :]
    with WorkerPool(2) as pool:
        pool.run("obs_record", _chunks(head, 2), to=[0, 1])
        pool.restart()  # workers ship their final snapshots on graceful stop
        pool.run("obs_record", _chunks(tail, 2), to=[0, 1])
        assert pool.metrics()["merged"] == expected


def test_metrics_still_available_after_close():
    ops = _ops(count=10)
    expected = _serial_twin(ops)
    pool = WorkerPool(2)
    try:
        pool.run("obs_record", _chunks(ops, 2), to=[0, 1])
    finally:
        pool.close()
    # Final snapshots shipped on graceful stop were drained before the
    # queues closed; the accumulated view survives the pool.
    assert pool.metrics()["merged"] == expected
