"""Graceful degradation: bounded staleness, hop fallback, reconvergence.

The serving contract under faults, in three clauses:

* **Bounded staleness** — every committed row carries a generation stamp;
  a reader with ``max_staleness=k`` never serves a row more than *k*
  committed generations behind the newest started repair, and a reader
  observing a mid-flight (or died-mid-flight) repair sees staleness
  exactly 1, never unbounded drift.
* **Degraded serving** — while a repair is in flight or its writer has
  crashed, readers keep answering from committed state: old values, per
  -hop fallbacks from committed distance rows, or an explicit refusal —
  never an exception, never a block.
* **Reconvergence** — after the faults stop and the supervisor (or a
  resync) heals the pool, the shared matrices are bit-identical to a
  serial twin that never saw a fault.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro import faults
from repro.dynamic import RoutingService, make_scenario
from repro.errors import ParameterError
from repro.faults import EXIT_TASK_CRASH, FaultPlan, FaultRule
from repro.parallel import RouteReader, ShardedRoutingService

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]

#: First task of the first delta repair: the two build stages (serve_rows,
#: serve_tables) are exactly two task starts per worker, so ``after=2``
#: skips the build and fires on the worker's first post-build task.
MID_DELTA_CRASH = FaultPlan(
    "mid-delta", 5, (FaultRule("task.crash", p=1.0, count=1, after=2, fresh_only=True),)
)


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.uninstall()


def _arm(monkeypatch, plan):
    monkeypatch.setenv(faults.ENV_GATE, "1")
    monkeypatch.setenv(faults.ENV_PLAN, plan.spec())
    faults.install(plan)


class TestMaxStalenessValidation:
    @pytest.mark.parametrize("bad", [True, -1, 0.5, "2"])
    def test_rejected(self, bad, tmp_path):
        with pytest.raises(ParameterError, match="max_staleness"):
            RouteReader("irrelevant", max_staleness=bad)

    def test_quiescent_service_serves_under_zero_budget(self):
        # max_staleness=0 refuses rows only *mid-repair*; at quiescence
        # every row's stamp equals the pending generation.
        sc = make_scenario("mobility", 25, 5, seed=3)
        with ShardedRoutingService(sc.initial, "kcover", workers=2) as service:
            with RouteReader(service.reader_handle(), max_staleness=0) as reader:
                assert all(reader.staleness(u) == 0 for u in range(reader.num_nodes))
                serial = RoutingService(sc.initial, "kcover")
                for u in sc.initial.nodes():
                    for v in sc.initial.nodes():
                        if u != v:
                            assert reader.next_hop(u, v) == serial.next_hop(u, v)


class TestBareDirectoryCompat:
    def test_two_tuple_payload_means_no_staleness_protocol(self):
        # Directories posted outside ShardedRoutingService (the crash-
        # safety suite, ad-hoc deployments) carry no stamp matrix; the
        # reader serves them with staleness pinned to 0.
        from repro.parallel import WorkerPool
        from repro.parallel.shm import SharedDirectory

        with WorkerPool(1) as pool:
            pool.matrix("dist", 4, 4, fill=1, versioned=True)
            pool.matrix("tables", 4, 4, fill=3, versioned=True)
            directory = SharedDirectory()
            try:
                directory.post(
                    (pool.matrix_owner("dist").handle, pool.matrix_owner("tables").handle)
                )
                with RouteReader(directory.name, max_staleness=0) as reader:
                    assert reader.staleness(2) == 0
                    assert reader.next_hop(0, 1) == 3
                    assert reader.distance(0, 1) == 1
                    # All-1 distance rows certify no strictly-closer hop:
                    # the fallback honestly refuses on this synthetic state.
                    assert reader.hop_fallback(0, 1) is None
            finally:
                directory.close()


class TestHopFallback:
    def test_fallback_walks_are_journey_valid_and_deliver(self):
        sc = make_scenario("mobility", 30, 5, seed=11)
        g = sc.initial
        serial = RoutingService(g, "kcover")
        with ShardedRoutingService(g, "kcover", workers=2) as service:
            with RouteReader(service.reader_handle()) as reader:
                n = reader.num_nodes
                for u in g.nodes():
                    row_u = reader.distance_row(u)
                    for v in g.nodes():
                        if u == v:
                            continue
                        hop = reader.hop_fallback(u, v)
                        if serial.distance(u, v) is None:
                            assert hop is None  # unreachable: no certified progress
                            continue
                        # Certified: the hop is an H-edge of u, strictly
                        # closer to v than u per v's committed row.
                        assert hop is not None
                        assert row_u[hop] == 1
                        assert serial.distance(hop, v) in (0, serial.distance(u, v) - 1) or (
                            serial.distance(hop, v) < serial.distance(u, v)
                        )
                # A fallback-only walk must deliver within n hops.
                for u in g.nodes():
                    for v in g.nodes():
                        if u == v or serial.distance(u, v) is None:
                            continue
                        current, hops = u, 0
                        while current != v:
                            current = reader.hop_fallback(current, v)
                            assert current is not None
                            hops += 1
                            assert hops <= n, f"fallback walk {u}->{v} looped"

    def test_route_served_fallback_inert_on_healthy_tables(self):
        from repro.routing import route_served

        sc = make_scenario("mobility", 25, 5, seed=13)
        with ShardedRoutingService(sc.initial, "kcover", workers=2) as service:
            with RouteReader(service.reader_handle()) as reader:
                for u in sc.initial.nodes():
                    for v in sc.initial.nodes():
                        if u == v:
                            continue
                        plain = route_served(reader, u, v)
                        assisted = route_served(reader, u, v, hop_fallback=True)
                        assert assisted.path == plain.path
                        assert assisted.delivered == plain.delivered


class TestCrashDuringDeltaPublish:
    """Satellite: a worker crash mid-delta-publish self-heals, and readers
    attached before the repair keep serving committed state throughout."""

    @pytest.mark.parametrize("method", START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_self_heals_and_reconverges(self, method, workers, monkeypatch):
        _arm(monkeypatch, MID_DELTA_CRASH)
        sc = make_scenario("mobility", 30, 16, seed=17)
        serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=workers, start_method=method, rebuild_fraction=1.0
        ) as service:
            with RouteReader(service.reader_handle()) as reader:
                gen0 = reader.generation
                events = list(sc.events)
                serial.apply_batch(events)
                service.apply_batch(events)  # the crash heals inside
                assert service.pool_health.respawns >= 1
                assert EXIT_TASK_CRASH in service.pool_health.last_exitcodes.values()
                assert np.array_equal(np.asarray(service._dist), serial._dist)
                assert np.array_equal(np.asarray(service._tables), serial._tables)
                # The pre-attached reader advanced exactly one committed
                # generation and sees every row freshly stamped.
                assert reader.generation == gen0 + 1
                assert all(reader.staleness(u) == 0 for u in range(reader.num_nodes))

    def test_concurrent_reader_stays_on_committed_state(self, monkeypatch):
        if "fork" not in START_METHODS:  # pragma: no cover - platform guard
            pytest.skip("fork start method unavailable")
        _arm(monkeypatch, MID_DELTA_CRASH)
        ctx = multiprocessing.get_context("fork")
        sc = make_scenario("mobility", 30, 16, seed=17)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=2, start_method="fork", rebuild_fraction=1.0
        ) as service:
            ready, stop = ctx.Event(), ctx.Event()
            out_q = ctx.SimpleQueue()
            proc = ctx.Process(
                target=_observe_degraded_window,
                args=(service.reader_handle(), ready, stop, out_q),
            )
            proc.start()
            try:
                assert ready.wait(timeout=30)
                service.apply_batch(list(sc.events))
                assert service.pool_health.respawns >= 1
            finally:
                stop.set()
            status, detail = out_q.get()
            proc.join(timeout=30)
            assert status == "ok", f"observer failed: {detail}"
            saw_degraded, bad_generations, bad_staleness = detail
            assert bad_generations == []  # only gen0 and gen0+1, in order
            assert bad_staleness == []  # staleness bounded by 1 throughout
            # The crash + respawn backoff holds the degraded window open
            # long enough that the observer must have sampled it.
            assert saw_degraded > 0
            assert proc.exitcode == 0


def _observe_degraded_window(directory, ready, stop, out_q):
    """Reader process: record staleness/generation while a repair crashes.

    The window under observation: ``apply_batch`` posts ``pending = g+1``
    before the fan-out, the injected crash holds the repair open through a
    respawn, and only the final publish commits ``g+1``.  Throughout, the
    committed generation must only ever step ``g0 -> g0+1`` and staleness
    must never exceed 1 (the protocol's bound for one in-flight repair).
    """
    try:
        reader = RouteReader(directory)
        g0 = reader.generation
        ready.set()
        saw_degraded = 0
        bad_generations = []
        bad_staleness = []
        deadline = time.monotonic() + 60.0
        while not stop.is_set() and time.monotonic() < deadline:
            gen = reader.generation
            staleness = reader.staleness(0)
            if gen not in (g0, g0 + 1):
                bad_generations.append(gen)
            if staleness > 1:
                bad_staleness.append(staleness)
            if staleness:
                saw_degraded += 1
                # Mid-repair, committed state must still be served: the
                # distance of a committed row resolves without raising.
                reader.distance(0, 1)
            if gen == g0 + 1 and staleness == 0:
                break  # healed: committed and fully stamped
        out_q.put(("ok", (saw_degraded, bad_generations, bad_staleness)))
        reader.close()
    except BaseException as exc:  # pragma: no cover - surfaced by the assert
        out_q.put(("error", repr(exc)))
        raise


class TestReconvergence:
    @pytest.mark.parametrize("method", START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2])
    def test_torn_writer_build_heals_bit_identical(self, method, workers, monkeypatch):
        # write.crash fires *after* the row version went odd: the very
        # first build write is torn, the supervisor repairs + retries, and
        # the result must still equal the serial build exactly.
        _arm(
            monkeypatch,
            FaultPlan("torn", 5, (FaultRule("write.crash", p=1.0, count=1, fresh_only=True),)),
        )
        sc = make_scenario("mobility", 25, 10, seed=23)
        serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=workers, start_method=method, rebuild_fraction=1.0
        ) as service:
            assert service.pool_health.respawns >= 1
            assert service.pool_health.torn_rows_repaired >= 1
            for ev in sc.events:
                serial.apply(ev)
                service.apply(ev)
            assert np.array_equal(np.asarray(service._dist), serial._dist)
            assert np.array_equal(np.asarray(service._tables), serial._tables)

    def test_probabilistic_crashes_over_full_scenario(self, monkeypatch):
        # The chaos-corpus shape: unlimited probabilistic crashes across a
        # whole scenario, serial twin compared after every tick.  Seeded,
        # so the run (including every injected crash) replays exactly.
        _arm(monkeypatch, FaultPlan("storm", 2, (FaultRule("task.crash", p=0.15),)))
        sc = make_scenario("mobility", 30, 20, seed=29)
        serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
        events = list(sc.events)
        with ShardedRoutingService(
            sc.initial, "kcover", workers=2, rebuild_fraction=1.0
        ) as service:
            for start in range(0, len(events), 5):
                chunk = events[start : start + 5]
                serial.apply_batch(chunk)
                service.apply_batch(chunk)
                assert np.array_equal(np.asarray(service._dist), serial._dist)
                assert np.array_equal(np.asarray(service._tables), serial._tables)
            assert service.pool_health.respawns >= 1  # the storm was real
