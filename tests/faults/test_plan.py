"""FaultPlan/FaultRule spec protocol, env gating, and seeded determinism.

The fault plane's contract is the same as the tuning layer's: everything
crosses process boundaries through strings (``REPRO_FAULTS`` gate +
``REPRO_FAULT_PLAN`` spec), every plan round-trips through its spec, and
a ``(plan seed, worker id, incarnation)`` triple names a bit-for-bit
reproducible fault stream — chaos runs replay.
"""

import pytest

from repro import faults
from repro.errors import ParameterError
from repro.faults import PLANS, SITES, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _disarm():
    """No test leaves the process armed (hooks fire in *this* process)."""
    yield
    faults.uninstall()


class TestSpecRoundtrip:
    def test_every_canned_plan_roundtrips(self):
        for name, plan in PLANS.items():
            assert plan.name == name
            assert FaultPlan.parse(plan.spec()) == plan

    def test_full_policy_roundtrip(self):
        rule = FaultRule(
            "worker.wedge", p=0.25, count=3, after=7, duration=1.5, fresh_only=True
        )
        plan = FaultPlan("storm", 42, (rule, FaultRule("result.drop", p=0.1)))
        assert plan.spec() == "storm:42:worker.wedge@0.25x3+7~1.5!,result.drop@0.1"
        assert FaultPlan.parse(plan.spec()) == plan

    def test_bare_site_defaults_to_certain(self):
        plan = FaultPlan.parse("p:0:task.crash")
        assert plan.rules == (FaultRule("task.crash", p=1.0),)

    @pytest.mark.parametrize(
        "spec",
        [
            "no-seed-section",
            "name:notanint:task.crash",
            "name:1:task.crash@nope",
            ":1:task.crash",
        ],
    )
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ParameterError):
            FaultPlan.parse(spec)

    def test_unknown_site_rejected(self):
        with pytest.raises(ParameterError, match="unknown fault site"):
            FaultRule("disk.melt")

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_probability_bounds(self, p):
        with pytest.raises(ParameterError, match="probability"):
            FaultRule("task.crash", p=p)

    @pytest.mark.parametrize("kwargs", [{"count": -2}, {"after": -1}, {"duration": -0.5}])
    def test_rule_bounds(self, kwargs):
        with pytest.raises(ParameterError, match="bad rule bounds"):
            FaultRule("task.crash", **kwargs)

    def test_sites_registry_is_total(self):
        for site in SITES:
            assert FaultRule(site).site == site


class TestEnvProtocol:
    @pytest.mark.parametrize("gate", ["", "0", "off", "false", "no", "OFF", "No"])
    def test_falsey_gate_disables(self, gate):
        env = {faults.ENV_GATE: gate, faults.ENV_PLAN: "crashy"}
        assert faults.enabled_in_env(env) is None

    def test_gate_without_plan_is_off(self):
        assert faults.enabled_in_env({faults.ENV_GATE: "1"}) is None

    def test_named_plan_resolves_from_registry(self):
        env = {faults.ENV_GATE: "1", faults.ENV_PLAN: "torn-writer"}
        assert faults.enabled_in_env(env) == PLANS["torn-writer"]

    def test_spec_plan_parses(self):
        env = {faults.ENV_GATE: "1", faults.ENV_PLAN: "mine:9:result.drop@0.5x2"}
        plan = faults.enabled_in_env(env)
        assert plan == FaultPlan("mine", 9, (FaultRule("result.drop", p=0.5, count=2),))

    def test_arm_env_roundtrips(self):
        env: "dict[str, str]" = {}
        faults.arm_env(PLANS["mayhem"], env)
        assert faults.enabled_in_env(env) == PLANS["mayhem"]

    def test_maybe_install_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_GATE, "1")
        monkeypatch.setenv(faults.ENV_PLAN, "quiet")
        assert not faults.active
        faults.maybe_install_from_env()
        assert faults.active
        assert faults.current_plan() == PLANS["quiet"]
        faults.uninstall()
        assert not faults.active and faults.current_plan() is None

    def test_maybe_install_respects_existing_plan(self, monkeypatch):
        faults.install(PLANS["quiet"])
        monkeypatch.setenv(faults.ENV_GATE, "1")
        monkeypatch.setenv(faults.ENV_PLAN, "crashy")
        faults.maybe_install_from_env()  # already armed: no clobber
        assert faults.current_plan() == PLANS["quiet"]


class TestSeededDeterminism:
    """The fault stream is a pure function of (plan seed, worker, incarnation)."""

    def _decisions(self, plan, worker_id, incarnation, rounds=64):
        faults.install(plan)
        faults.worker_reset(worker_id, incarnation)
        return [faults.on_result("echo")[0] for _ in range(rounds)]

    def test_stream_replays_bit_identically(self):
        plan = FaultPlan("t", 123, (FaultRule("result.drop", p=0.5),))
        first = self._decisions(plan, 3, 0)
        assert "drop" in first and "send" in first  # p=0.5 really mixes
        assert self._decisions(plan, 3, 0) == first

    def test_streams_differ_across_worker_and_incarnation(self):
        plan = FaultPlan("t", 123, (FaultRule("result.drop", p=0.5),))
        base = self._decisions(plan, 3, 0)
        assert self._decisions(plan, 4, 0) != base
        assert self._decisions(plan, 3, 1) != base

    def test_fresh_only_exempts_respawned_incarnations(self):
        plan = FaultPlan("t", 1, (FaultRule("result.drop", p=1.0, fresh_only=True),))
        assert self._decisions(plan, 0, 0, rounds=4) == ["drop"] * 4
        assert self._decisions(plan, 0, 1, rounds=4) == ["send"] * 4

    def test_count_cap_and_after_window(self):
        plan = FaultPlan("t", 1, (FaultRule("result.drop", p=1.0, count=2, after=1),))
        decisions = self._decisions(plan, 0, 0, rounds=6)
        assert decisions == ["send", "drop", "drop", "send", "send", "send"]
        assert faults.fired() == {"result.drop": 2}

    def test_delay_carries_rule_duration(self):
        plan = FaultPlan("t", 1, (FaultRule("result.delay", p=1.0, duration=0.25),))
        faults.install(plan)
        faults.worker_reset(0, 0)
        assert faults.on_result("echo") == ("delay", 0.25)

    def test_worker_only_hooks_are_parent_noops(self):
        # task.crash at p=1 would os._exit(43) if the parent gate failed.
        plan = FaultPlan(
            "t", 1, (FaultRule("task.crash", p=1.0), FaultRule("result.drop", p=1.0))
        )
        faults.install(plan)
        faults.on_task_start("echo")  # still alive: parent is exempt
        assert faults.on_result("echo") == ("send", 0.0)
        assert faults.fired() == {}

    def test_obs_tasks_exempt_in_workers(self):
        plan = FaultPlan("t", 1, (FaultRule("task.crash", p=1.0),))
        faults.install(plan)
        faults.worker_reset(0, 0)
        faults.on_task_start("obs_snapshot")  # still alive
        assert faults.fired() == {}

    def test_shm_hooks_fire_in_any_process(self):
        plan = FaultPlan(
            "t",
            1,
            (FaultRule("shm.alloc", p=1.0, count=1), FaultRule("shm.attach", p=1.0, count=1)),
        )
        faults.install(plan)  # parent role on purpose
        with pytest.raises(OSError, match="allocation"):
            faults.on_shm_create("block-a")
        faults.on_shm_create("block-a")  # count burned: heals
        with pytest.raises(OSError, match="attach"):
            faults.on_shm_attach("block-b")
        faults.on_shm_attach("block-b")

    def test_uninstalled_hooks_are_inert(self):
        assert faults.on_result("echo") == ("send", 0.0)
        faults.on_task_start("echo")
        faults.on_shm_create("x")
        faults.on_shm_attach("x")
        assert faults.fired() == {}
