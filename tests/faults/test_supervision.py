"""WorkerPool self-healing under injected faults.

The supervisor's contract: a crashed or wedged worker is respawned (with
backoff, replayed state, repaired torn rows) and its tasks re-dispatched
— :meth:`WorkerPool.run` returns the same answers it would have returned
without the fault.  Crash sites are injected through the production fault
plane (armed via the environment so ``fork`` *and* ``spawn`` workers see
the plan), never by monkeypatching pool internals.
"""

import multiprocessing

import pytest

from repro import faults
from repro.faults import EXIT_TASK_CRASH, EXIT_WRITE_CRASH, FaultPlan, FaultRule
from repro.parallel import WorkerError, WorkerPool

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.uninstall()


def _arm(monkeypatch, plan):
    """Arm *plan* the way drivers do: env (spawn) + parent install (fork)."""
    monkeypatch.setenv(faults.ENV_GATE, "1")
    monkeypatch.setenv(faults.ENV_PLAN, plan.spec())
    faults.install(plan)


def _echo_ok(pool, count=6):
    payloads = [f"ping-{i}" for i in range(count)]
    results = pool.run("echo", payloads)
    assert [r[2] for r in results] == payloads  # order preserved
    return results


class TestCrashSelfHeal:
    @pytest.mark.parametrize("method", START_METHODS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_first_incarnation_crash_heals(self, method, workers, monkeypatch):
        # Every fresh worker dies on its first task; every respawn is exempt.
        _arm(
            monkeypatch,
            FaultPlan("boom", 1, (FaultRule("task.crash", p=1.0, count=1, fresh_only=True),)),
        )
        with WorkerPool(workers, start_method=method) as pool:
            _echo_ok(pool, count=2 * workers)
            assert pool.health.respawns == workers
            assert pool.health.retries >= workers
            assert set(pool.health.last_exitcodes.values()) == {EXIT_TASK_CRASH}
            _echo_ok(pool)  # pool stays usable after the storm



class TestWedgeRestart:
    def test_wedged_worker_detected_and_restarted(self, monkeypatch):
        # The wedge outlives the deadline by far; only the supervisor's
        # timeout brings the worker back.
        _arm(
            monkeypatch,
            FaultPlan(
                "stuck", 1, (FaultRule("worker.wedge", p=1.0, count=1, duration=60.0, fresh_only=True),)
            ),
        )
        with WorkerPool(1, task_timeout=0.5) as pool:
            _echo_ok(pool, count=3)
            assert pool.health.wedge_restarts == 1
            assert pool.health.respawns == 1
            _echo_ok(pool)  # usable again without caller intervention


class TestPoisonAndBudget:
    def test_poison_task_quarantined_not_respawn_looped(self, monkeypatch):
        _arm(monkeypatch, FaultPlan("lava", 1, (FaultRule("task.crash", p=1.0),)))
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerError, match="poison task"):
                pool.run("echo", ["doomed"])
            assert pool.health.quarantined == 1
            # Three kills in a row means two *sequential* respawns, and the
            # second (and later) respawns pay exponential backoff.
            assert pool.health.respawns >= 2
            assert pool.health.backoff_seconds > 0
            # Disarm; the auto-reset pool respawns unarmed workers and the
            # same payload now succeeds — no caller dance required.
            faults.uninstall()
            monkeypatch.delenv(faults.ENV_GATE)
            monkeypatch.delenv(faults.ENV_PLAN)
            _echo_ok(pool)


class TestUnsupervisedErrorDetail:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_error_names_exitcode_and_inflight(self, method, monkeypatch):
        _arm(monkeypatch, FaultPlan("boom", 1, (FaultRule("task.crash", p=1.0),)))
        with WorkerPool(1, start_method=method, supervise=False) as pool:
            with pytest.raises(WorkerError) as excinfo:
                pool.run("echo", ["doomed"])
            message = str(excinfo.value)
            assert f"exitcode {EXIT_TASK_CRASH}" in message
            assert "task(s) in flight" in message

    def test_write_crash_exitcode_distinct(self, monkeypatch):
        # The torn-writer site dies with its own exitcode so the error
        # (and the health ledger) can tell the two crash sites apart.
        _arm(monkeypatch, FaultPlan("torn", 1, (FaultRule("write.crash", p=1.0),)))
        with WorkerPool(1, supervise=False) as pool:
            pool.matrix("m", 4, 4, fill=7, versioned=True)
            with pytest.raises(WorkerError, match=f"exitcode {EXIT_WRITE_CRASH}"):
                pool.run("crash_in_write", [("m", 1)])


class TestTornRowRepair:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_mid_write_crash_repairs_row_and_retries(self, method, monkeypatch):
        # write.crash fires *after* the row version went odd — the torn
        # state repair_torn_rows exists for.  The supervisor must mend the
        # row before re-dispatch or every retry spins on the seqlock.
        _arm(
            monkeypatch,
            FaultPlan("torn", 1, (FaultRule("write.crash", p=1.0, count=1, fresh_only=True),)),
        )
        with WorkerPool(1, start_method=method) as pool:
            pool.matrix("m", 4, 4, fill=7, versioned=True)
            with pytest.raises(WorkerError, match="injected crash"):
                # The injected raise lands after the healed torn write.
                pool.run("crash_in_write", [("m", 1)])
            assert pool.health.respawns == 1
            assert pool.health.torn_rows_repaired >= 1
            assert set(pool.health.last_exitcodes.values()) == {EXIT_WRITE_CRASH}
            owner = pool.matrix_owner("m")
            assert owner.row_versions is not None
            assert all(int(v) % 2 == 0 for v in owner.row_versions)
