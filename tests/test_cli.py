"""Tests for the CLI and the ASCII plotting helpers."""

import pytest

from repro.analysis.plot import ascii_loglog, ascii_series
from repro.cli import build_parser, main
from repro.errors import ParameterError


class TestPlots:
    def test_loglog_renders_points_and_reference(self):
        out = ascii_loglog([10, 100, 1000], [5, 50, 500], ref_slope=1.0, title="T")
        assert out.startswith("T")
        assert "*" in out
        assert "." in out
        assert "reference slope 1" in out

    def test_loglog_validates(self):
        with pytest.raises(ParameterError):
            ascii_loglog([1], [1])
        with pytest.raises(ParameterError):
            ascii_loglog([1, 2], [0, 1])
        with pytest.raises(ParameterError):
            ascii_loglog([1, 2], [1, 2, 3])

    def test_series_renders(self):
        out = ascii_series([1, 2, 3, 4], [4.0, 3.0, 2.5, 2.4])
        assert out.count("*") == 4

    def test_series_validates(self):
        with pytest.raises(ParameterError):
            ascii_series([1], [1])


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for cmd in (
            "table1",
            "figure1",
            "scaling",
            "ksweep",
            "epssweep",
            "rounds",
            "churn",
            "serve",
            "distserve",
            "demo",
        ):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_rounds_command(self, capsys):
        rc = main(["rounds", "--n", "25", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "RemSpan" in out
        assert "2r-1+2b" in out

    def test_churn_command_all_scenarios_verified(self, capsys):
        rc = main(
            ["churn", "--n", "60", "--events", "25", "--check-every", "10", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert rc == 0  # 0 iff every scenario's final spanner matches a rebuild
        assert "matches rebuild" in out
        for scenario in ("mobility", "failure", "growth"):
            row = next(line for line in out.splitlines() if f"| {scenario}" in line)
            assert row.rstrip(" |").endswith("yes"), row

    def test_scenario_choices_match_registry(self):
        # The parser hardcodes its scenario list to keep `--help` free of
        # the repro.dynamic import chain; it must mirror SCENARIO_NAMES.
        from repro.dynamic import SCENARIO_NAMES

        parser = build_parser()
        for cmd in ("churn", "serve"):
            args = parser.parse_args([cmd])
            assert args.command == cmd
        for name in SCENARIO_NAMES:
            assert parser.parse_args(["serve", "--scenario", name]).scenario == name
            assert parser.parse_args(["churn", "--scenario", name]).scenario == name
        with pytest.raises(SystemExit):
            parser.parse_args(["serve", "--scenario", "tectonic"])

    def test_serve_command_verified(self, capsys):
        rc = main(
            ["serve", "--n", "50", "--events", "20", "--check-every", "10", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert rc == 0  # 0 iff served tables match from-scratch routing_table
        assert "matches scratch" in out
        for scenario in ("mobility", "failure", "growth", "nodechurn"):
            row = next(line for line in out.splitlines() if f"| {scenario}" in line)
            assert row.rstrip(" |").endswith("yes"), row

    def test_serve_command_batched_nodechurn(self, capsys):
        rc = main(
            [
                "serve",
                "--scenario",
                "nodechurn",
                "--n",
                "40",
                "--events",
                "15",
                "--tick",
                "5",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "tick 5" in out and "nodechurn" in out

    def test_churn_command_single_scenario_mis(self, capsys):
        rc = main(
            [
                "churn",
                "--scenario",
                "growth",
                "--n",
                "50",
                "--events",
                "30",
                "--method",
                "mis",
                "--epsilon",
                "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "growth" in out and "mobility" not in out

    def test_demo_command_exact(self, capsys):
        rc = main(["demo", "--n", "60", "--epsilon", "1.0", "--k", "1", "--seed", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified: True" in out

    def test_demo_command_epsilon(self, capsys):
        rc = main(["demo", "--n", "60", "--epsilon", "0.5", "--seed", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(1.5, 0)" in out

    def test_figure1_command(self, capsys):
        rc = main(["figure1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(a) input UDG" in out
        assert "witness" in out

    def test_table1_command_small(self, capsys):
        rc = main(["table1", "--n-any", "20", "--n-udg", "50", "--seed", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out


class TestWorkersValidation:
    """--workers is validated at argparse: ≥ 1 or rejected with a message.

    Regression: `--workers 0` used to fall silently through to the serial
    path (truthiness checks), while `--workers -2` escaped argparse and
    died inside WorkerPool with a traceback.
    """

    @pytest.mark.parametrize("cmd", ["churn", "serve", "traffic"])
    @pytest.mark.parametrize("bad", ["0", "-2", "1.5", "two"])
    def test_invalid_counts_rejected_at_parse_time(self, cmd, bad, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit) as exc:
            parser.parse_args([cmd, "--workers", bad])
        assert exc.value.code == 2  # argparse usage error, not a traceback
        assert "positive integer" in capsys.readouterr().err

    @pytest.mark.parametrize("cmd", ["churn", "serve", "traffic"])
    def test_valid_and_omitted_workers(self, cmd):
        parser = build_parser()
        assert parser.parse_args([cmd, "--workers", "3"]).workers == 3
        # Omitting the flag means the single-process serial path.
        assert parser.parse_args([cmd]).workers is None

    def test_help_documents_serial_default(self):
        parser = build_parser()
        serve = next(
            a for a in parser._subparsers._group_actions[0].choices["serve"]._actions
            if "--workers" in a.option_strings
        )
        assert "serial" in serve.help


class TestTrafficCli:
    def test_workload_choices_match_registry(self):
        from repro.dynamic import WORKLOAD_NAMES

        parser = build_parser()
        for name in WORKLOAD_NAMES:
            assert parser.parse_args(["traffic", "--workload", name]).workload == name
        with pytest.raises(SystemExit):
            parser.parse_args(["traffic", "--workload", "tsunami"])

    def test_traffic_command_all_workloads(self, capsys):
        rc = main(
            [
                "traffic", "--n", "50", "--events", "12", "--tick", "4",
                "--queries", "8", "--compare-bfs", "5", "--seed", "7",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0  # 0 iff served journeys matched the BFS reference
        assert "matches route" in out
        for workload in ("uniform", "zipf", "locality"):
            row = next(line for line in out.splitlines() if f"| {workload}" in line)
            assert row.rstrip(" |").endswith("yes"), row

    def test_traffic_single_workload_no_compare(self, capsys):
        rc = main(
            [
                "traffic", "--workload", "locality", "--scenario", "nodechurn",
                "--n", "40", "--events", "10", "--queries", "5", "--compare-bfs", "0",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "locality" in out and "uniform" not in out


class TestDistserveCli:
    def test_scenario_choices_match_registry(self):
        # Literal twin: the parser hardcodes the scenario list to keep
        # `--help` import-free; it must mirror SCENARIO_NAMES (+ "all").
        from repro.dynamic import SCENARIO_NAMES

        parser = build_parser()
        assert parser.parse_args(["distserve"]).scenario == "mobility"
        for name in (*SCENARIO_NAMES, "all"):
            assert parser.parse_args(["distserve", "--scenario", name]).scenario == name
        with pytest.raises(SystemExit):
            parser.parse_args(["distserve", "--scenario", "tectonic"])

    def test_transport_choices_match_factory(self):
        parser = build_parser()
        assert parser.parse_args(["distserve"]).transport == "loop"
        for name in ("loop", "tcp", "uds"):
            assert parser.parse_args(["distserve", "--transport", name]).transport == name
        with pytest.raises(SystemExit):
            parser.parse_args(["distserve", "--transport", "pigeon"])

    def test_loopback_soak_converges_and_routes_match(self, capsys):
        rc = main(
            [
                "distserve", "--n", "36", "--events", "10", "--tick", "5",
                "--shards", "3", "--queries", "6", "--seed", "7",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0  # 0 iff converged bit-for-bit and all journeys matched
        row = next(line for line in out.splitlines() if "| mobility" in line)
        assert "yes" in row and "6/6" in row

    def test_uds_soak_converges(self, capsys):
        rc = main(
            [
                "distserve", "--scenario", "growth", "--transport", "uds",
                "--n", "30", "--events", "8", "--tick", "4", "--shards", "2",
                "--queries", "4", "--seed", "9",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "uds transport" in out


class TestChaosCli:
    def test_plan_choices_match_registry(self):
        # Like the scenario list, the parser hardcodes its plan names to
        # keep `--help` import-free; it must mirror faults.PLANS exactly.
        from repro.faults import PLANS

        parser = build_parser()
        assert parser.parse_args(["chaos"]).plan == "crashy"
        for name in PLANS:
            assert parser.parse_args(["chaos", "--plan", name]).plan == name
        with pytest.raises(SystemExit):
            parser.parse_args(["chaos", "--plan", "meteor"])

    def test_scenario_choices_include_fault_scenarios(self):
        from repro.dynamic import FAULT_SCENARIO_NAMES, SCENARIO_NAMES

        parser = build_parser()
        assert parser.parse_args(["chaos"]).scenario == "outage"
        for name in SCENARIO_NAMES + FAULT_SCENARIO_NAMES:
            assert parser.parse_args(["chaos", "--scenario", name]).scenario == name
        with pytest.raises(SystemExit):
            parser.parse_args(["chaos", "--scenario", "tectonic"])

    def test_quiet_plan_soak_reconverges(self, capsys):
        rc = main(
            [
                "chaos", "--plan", "quiet", "--n", "40", "--events", "12",
                "--tick", "4", "--queries", "5", "--workers", "1", "--seed", "7",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0  # 0 iff healthy + reconverged + journey-valid
        lines = out.splitlines()
        header = next(i for i, line in enumerate(lines) if "reconverged" in line)
        data = next(line for line in lines[header + 1 :] if line.rstrip().endswith("|"))
        assert data.rstrip(" |").endswith("yes"), data

    def test_crashy_plan_survives_and_reports_respawns(self, capsys):
        rc = main(
            [
                "chaos", "--plan", "crashy", "--scenario", "mobility", "--n", "40",
                "--events", "12", "--tick", "4", "--queries", "5",
                "--workers", "2", "--seed", "7",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "respawns" in out
