"""Locality tests: what a RemSpan node actually knows when it computes.

The paper's selling point is that node decisions need only the
(r−1+β)-hop neighborhood.  These tests open up the protocol node and
check the *information boundary* directly — the local graph contains
exactly the edges incident to the flood ball, no more.
"""

from repro.distributed import SyncNetwork
from repro.distributed.protocols.remspan import RemSpanNode, tree_algorithm
from repro.graph import ball
from repro.graph.generators import cycle_graph, grid_graph, random_connected_gnp


def _run_nodes(g, kind, **kwargs):
    algo, ttl, _g = tree_algorithm(kind, **kwargs)
    net = SyncNetwork(g, lambda u: RemSpanNode(u, algo, ttl))
    net.run()
    return net, ttl


class TestInformationBoundary:
    def test_neighbor_lists_cover_exactly_the_flood_ball(self):
        g = grid_graph(5, 5)
        net, ttl = _run_nodes(g, "greedy", r=3, beta=1)  # ttl = 3
        for u, node in net.nodes.items():
            known_origins = set(node.neighbor_lists)
            assert known_origins == ball(g, u, ttl)

    def test_local_graph_edges_are_real(self):
        g = random_connected_gnp(20, 0.15, seed=13)
        net, _ttl = _run_nodes(g, "kcover", k=2)
        for u, node in net.nodes.items():
            local = node._local_graph()
            for a, b in local.edges():
                assert g.has_edge(a, b)

    def test_local_graph_contains_all_ball_incident_edges(self):
        g = cycle_graph(10)
        net, ttl = _run_nodes(g, "mis", r=3)  # ttl = 3
        for u, node in net.nodes.items():
            local = node._local_graph()
            for x in ball(g, u, ttl):
                for y in g.neighbors(x):
                    assert local.has_edge(x, y)

    def test_far_edges_unknown(self):
        # On a long cycle with ttl=1, a node must not know edges between
        # nodes ≥ 3 hops away.
        g = cycle_graph(12)
        net, _ttl = _run_nodes(g, "kcover", k=1)  # ttl = 1
        node0 = net.nodes[0]
        local = node0._local_graph()
        assert not local.has_edge(5, 6)
        assert not local.has_edge(6, 7)

    def test_tree_knowledge_radius(self):
        g = cycle_graph(9)
        net, ttl = _run_nodes(g, "kmis", k=2)  # ttl = 2
        for u, node in net.nodes.items():
            assert set(node.known_trees) == ball(g, u, ttl)
