"""Transport contract: loopback determinism, fault verdicts, real sockets."""

import asyncio

import pytest

from repro import faults
from repro.distributed import (
    HelloBeacon,
    LoopbackTransport,
    LsaUpdate,
    TcpTransport,
    UdsTransport,
    make_transport,
    wire_bytes,
)
from repro.errors import ProtocolError
from repro.faults import FaultPlan, FaultRule


def run(coro):
    return asyncio.run(coro)


async def _open(transport, endpoints=(0, 1)):
    for e in endpoints:
        transport.register(e)
    await transport.start()
    return transport


class TestLoopback:
    def test_fifo_per_pair_and_exact_accounting(self):
        async def go():
            t = await _open(LoopbackTransport())
            messages = [HelloBeacon(origin=0, seq=s) for s in range(5)]
            for m in messages:
                await t.send(0, 1, m)
            assert await t.recv_all(1) == messages  # FIFO, decoded copies
            assert await t.recv_all(1) == []  # drained
            assert t.stats.messages == 5
            assert t.stats.bytes == sum(wire_bytes(m) for m in messages)
            assert t.pending() == 0
            await t.close()

        run(go())

    def test_unregistered_destination_rejected(self):
        async def go():
            t = await _open(LoopbackTransport())
            with pytest.raises(ProtocolError):
                await t.send(0, 99, HelloBeacon(origin=0))

        run(go())

    def test_duplicate_registration_rejected(self):
        t = LoopbackTransport()
        t.register(0)
        with pytest.raises(ProtocolError):
            t.register(0)

    def test_tick_advances_rounds(self):
        async def go():
            t = await _open(LoopbackTransport())
            for _ in range(3):
                await t.tick()
            assert t.stats.rounds == 3

        run(go())


class TestFaultVerdicts:
    def setup_method(self):
        faults.uninstall()

    def teardown_method(self):
        faults.uninstall()

    def test_drop_plan_swallows_lsa_frames(self):
        faults.install(FaultPlan("t-drop", 3, (FaultRule("lsa.drop", p=1.0, count=2),)))

        async def go():
            t = await _open(LoopbackTransport())
            for s in range(1, 5):
                await t.send(0, 1, LsaUpdate(origin=0, seq=s))
            got = await t.recv_all(1)
            # First two frames dropped (count=2), the rest deliver.
            assert [m.seq for m in got] == [3, 4]
            assert t.stats.dropped == 2 and t.stats.messages == 2
            assert t.pending() == 0

        run(go())

    def test_delay_plan_holds_frames_until_tick(self):
        faults.install(
            FaultPlan("t-delay", 3, (FaultRule("lsa.delay", p=1.0, count=1, duration=2.0),))
        )

        async def go():
            t = await _open(LoopbackTransport())
            await t.send(0, 1, LsaUpdate(origin=0, seq=1))
            assert await t.recv_all(1) == []  # held in the delay queue
            assert t.pending() == 1 and t.stats.delayed == 1
            await t.tick()
            assert await t.recv_all(1) == []  # duration=2 rounds
            await t.tick()
            got = await t.recv_all(1)
            assert [m.seq for m in got] == [1]
            assert t.pending() == 0

        run(go())

    def test_control_traffic_is_exempt(self):
        # Only LSA kinds ("lsa"/"full") are fault-eligible; beacons pass.
        faults.install(FaultPlan("t-drop", 3, (FaultRule("lsa.drop", p=1.0, count=8),)))

        async def go():
            t = await _open(LoopbackTransport())
            await t.send(0, 1, HelloBeacon(origin=0, seq=1))
            assert len(await t.recv_all(1)) == 1
            assert t.stats.dropped == 0

        run(go())


class TestStreamTransports:
    @pytest.mark.parametrize("name", ["tcp", "uds"])
    def test_round_trip_over_a_real_socket(self, name):
        async def go():
            t = await _open(make_transport(name), endpoints=(0, 1, 2))
            payload = LsaUpdate(origin=0, seq=1, g_added=((0, 1),), num_nodes=2)
            await t.send(0, 1, payload)
            await t.send(1, 2, HelloBeacon(origin=1, seq=7))
            await t.tick()  # settles in-flight frames
            assert await t.recv_all(1) == [payload]
            got = await t.recv_all(2)
            assert got == [HelloBeacon(origin=1, seq=7)]
            assert t.pending() == 0
            assert t.stats.messages == 2
            await t.close()

        run(go())

    def test_uds_socket_file_is_cleaned_up(self):
        import os

        t = UdsTransport()
        path = t.path

        async def go():
            await _open(t)
            assert os.path.exists(path)
            await t.close()

        run(go())
        assert not os.path.exists(path)

    def test_tcp_binds_an_ephemeral_port(self):
        async def go():
            t = TcpTransport()
            assert t.port is None
            await _open(t)
            assert t.port and t.port > 0
            await t.close()

        run(go())


class TestFactory:
    def test_names_map_to_types(self):
        assert isinstance(make_transport("loop"), LoopbackTransport)
        assert isinstance(make_transport("tcp"), TcpTransport)
        assert isinstance(make_transport("uds"), UdsTransport)

    def test_unknown_name_rejected(self):
        with pytest.raises(ProtocolError):
            make_transport("carrier-pigeon")
