"""One codec, one ruler: round-trips, sizing parity, registry hygiene."""

import json

import pytest

from repro.distributed import (
    WIRE_SCHEMA,
    FullTopology,
    Hello,
    HelloBeacon,
    LsaUpdate,
    NeighborAdvert,
    ResendRequest,
    RouteQuery,
    RouteReply,
    TreeAdvert,
    decode,
    encode,
    kind_of,
    link_units,
    size_in_links,
    wire_bytes,
)
from repro.distributed import codec
from repro.errors import ProtocolError

SIM_MESSAGES = [
    Hello(origin=3),
    NeighborAdvert(origin=1, neighbors=frozenset({0, 2, 5}), ttl=4, stamp=2),
    TreeAdvert(origin=2, edges=frozenset({(0, 1), (1, 2)}), ttl=3, stamp=7),
]

WIRE_MESSAGES = [
    HelloBeacon(origin=4, seq=9, stamp=12),
    LsaUpdate(
        origin=4,
        seq=2,
        ttl=3,
        g_added=((0, 1), (2, 3)),
        g_removed=((4, 5),),
        h_added=((0, 2),),
        h_removed=(),
        nodes_joined=(6,),
        num_nodes=7,
        rebuilt=True,
        stamp=5,
        seen=(1, 2),
    ),
    FullTopology(origin=4, seq=1, ttl=2, num_nodes=4, g_edges=((0, 1),), h_edges=((0, 1), (1, 2))),
    ResendRequest(origin=2, want=(3, 4, 7)),
    RouteQuery(qid=11, target=5, hops_left=9, path=(0, 3), potentials=(4.0, None), pending_hop=2),
    RouteReply(qid=11, path=(0, 3, 5), potentials=(4.0, 2.0, 0), delivered=True),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", SIM_MESSAGES + WIRE_MESSAGES, ids=lambda m: type(m).__name__)
    def test_encode_decode_identity(self, message):
        data = encode(message)
        assert decode(data) == message
        # Canonical bytes: equal messages encode to equal frames.
        assert encode(decode(data)) == data

    def test_frames_carry_the_schema_stamp(self):
        doc = json.loads(encode(Hello(origin=0)).decode("utf-8"))
        assert doc["s"] == WIRE_SCHEMA
        assert doc["k"] == kind_of(Hello(origin=0)) == "hello"

    def test_potential_infinity_rides_as_null(self):
        q = RouteQuery(qid=1, target=2, hops_left=3, potentials=(float("inf"), 5.0, None))
        # ∞ has no JSON literal: both ∞ and None round-trip as None.
        assert decode(encode(q)).potentials == (None, 5.0, None)


class TestSizing:
    def test_sim_sizes_resolve_through_the_codec(self):
        # Satellite 1: `size` / `size_in_links` and the codec agree — one
        # accounting rule, not two that can drift.
        for m in SIM_MESSAGES:
            assert m.size == link_units(m) == size_in_links(m)

    def test_link_units_reflect_advertised_links(self):
        assert link_units(Hello(origin=0)) == 1
        assert link_units(NeighborAdvert(origin=0, neighbors=frozenset({1, 2, 3}))) == 3
        assert link_units(LsaUpdate(origin=0, seq=1, g_added=((0, 1),), h_removed=((1, 2),))) == 2
        assert link_units(LsaUpdate(origin=0, seq=1)) == 1  # floor: a frame costs ≥ 1
        assert link_units(FullTopology(origin=0, seq=1, g_edges=((0, 1),), h_edges=((0, 1),))) == 2

    def test_wire_bytes_is_the_exact_frame_length(self):
        for m in SIM_MESSAGES + WIRE_MESSAGES:
            assert wire_bytes(m) == len(encode(m))


class TestRegistry:
    def test_all_protocol_kinds_registered(self):
        kinds = codec.registered_kinds()
        for kind in ("hello", "nbr", "tree", "hb", "lsa", "full", "rr", "rq", "rp"):
            assert kind in kinds

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ProtocolError):
            codec.register_message(
                "hello",
                type("Fresh", (), {}),
                to_payload=lambda m: {},
                from_payload=lambda p: None,
                link_units=lambda m: 1,
            )

    def test_duplicate_type_rejected(self):
        with pytest.raises(ProtocolError):
            codec.register_message(
                "hello2",
                Hello,
                to_payload=lambda m: {},
                from_payload=lambda p: None,
                link_units=lambda m: 1,
            )

    def test_unregistered_type_rejected(self):
        class Stranger:
            pass

        with pytest.raises(ProtocolError):
            encode(Stranger())
        with pytest.raises(ProtocolError):
            link_units(Stranger())

    def test_foreign_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode(b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            decode(b'{"k": "hello", "p": {}}')  # missing schema stamp
        with pytest.raises(ProtocolError):
            decode(b'{"s": "repro.wire/1", "k": "meteor", "p": {}}')  # unknown kind
