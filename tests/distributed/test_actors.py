"""Convergence property suite for the actor tier.

The acceptance property: after quiescence, every shard actor's replica
and owned rows are **bit-for-bit** the serial :class:`RoutingService`'s
(``mismatches() == []``), across all four scenarios × all four
constructions on loopback, and over real TCP/UDS sockets for at least
one scenario each.  Plus: ``route_actor`` journeys equal ``route_served``
exactly, HELLO timeouts mark silent peers suspect, and count-capped
``lsa.drop``/``lsa.delay`` fault plans still converge through the
anti-entropy resend path (satellite 3).
"""

import pytest

from repro import faults
from repro.distributed import ActorSystem, make_transport
from repro.dynamic import SCENARIO_NAMES, make_scenario
from repro.errors import NodeNotFound, ParameterError, ProtocolError
from repro.faults import PLANS
from repro.graph import sample_pairs
from repro.graph.generators import random_connected_gnp
from repro.routing import route_actor, route_served
from repro.rng import derive_seed

#: Construction → extra kwargs (mirrors the serving suite's spellings).
METHODS = [
    ("kcover", {}),
    ("kmis", {"k": 2}),
    ("mis", {"r": 3}),
    ("greedy", {"r": 2}),
]

N = 26
NUM_EVENTS = 10
TICK = 5
SHARDS = 3


def converge(scenario, method, kwargs, *, transport=None, shards=SHARDS, seed=11, **extra):
    sc = make_scenario(scenario, N, NUM_EVENTS, seed=seed)
    system = ActorSystem(
        sc.initial,
        method,
        rebuild_fraction=1.0,
        shards=shards,
        transport=transport,
        **kwargs,
        **extra,
    )
    with system:
        assert system.mismatches() == [], "bootstrap must seed every replica"
        events = list(sc.events)
        for lo in range(0, len(events), TICK):
            system.apply_tick(events[lo : lo + TICK])
            assert system.mismatches() == [], f"{scenario}/{method} diverged at tick {lo}"
        assert system.service.graph == sc.final
        yield_system(system)


def yield_system(system):
    """Hook for tests that want post-convergence assertions."""


class TestConvergenceLoopback:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    @pytest.mark.parametrize("method,kwargs", METHODS, ids=[m for m, _ in METHODS])
    def test_all_scenarios_all_constructions(self, scenario, method, kwargs):
        converge(scenario, method, kwargs)

    def test_single_shard_and_many_shards(self):
        for shards in (1, 2, 7):
            converge("mobility", "kcover", {}, shards=shards)

    def test_rounds_and_messages_are_accounted(self):
        sc = make_scenario("mobility", N, NUM_EVENTS, seed=3)
        with ActorSystem(sc.initial, "kcover", rebuild_fraction=1.0, shards=SHARDS) as system:
            system.apply_tick(list(sc.events))
            snap = system.stats.snapshot()
            assert system.stats.rounds > 0
            assert system.stats.messages > 0 and system.stats.bytes > 0
            assert snap["counters"]["wire.messages"] == system.stats.messages


class TestConvergenceSockets:
    def test_tcp_converges_on_mobility(self):
        converge("mobility", "kcover", {}, transport=make_transport("tcp"))

    def test_uds_converges_on_growth(self):
        converge("growth", "kcover", {}, transport=make_transport("uds"))


class TestRouteEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_actor_journeys_match_served(self, scenario):
        sc = make_scenario(scenario, N, NUM_EVENTS, seed=23)
        with ActorSystem(sc.initial, "kcover", rebuild_fraction=1.0, shards=SHARDS) as system:
            system.apply_tick(list(sc.events))
            pairs = sample_pairs(
                system.service.graph,
                12,
                seed=derive_seed(23, "actor-route", scenario),
                require_nonadjacent=False,
            )
            for s, t in pairs:
                actor_r = route_actor(system, s, t)
                served_r = route_served(system.service, s, t)
                assert actor_r.path == served_r.path
                assert actor_r.delivered == served_r.delivered
                assert actor_r.potentials == served_r.potentials

    def test_route_validations_mirror_served(self):
        g = random_connected_gnp(N, 0.15, seed=1)
        with ActorSystem(g, "kcover", shards=SHARDS) as system:
            with pytest.raises(ParameterError):
                system.route(1, 1)
            with pytest.raises(NodeNotFound):
                system.route(0, 10_000)


class TestLiveness:
    def test_silent_peer_goes_suspect_after_hello_timeout(self):
        from repro.distributed.wire import HELLO_TIMEOUT

        g = random_connected_gnp(N, 0.15, seed=5)
        with ActorSystem(g, "kcover", shards=SHARDS) as system:
            system.muzzle(1)
            for _ in range(HELLO_TIMEOUT + system.hello_every + 3):
                system._run(system._pump_round())
            assert 1 in system.actors[0].suspects
            assert 1 in system.actors[2].suspects
            assert 0 not in system.actors[2].suspects  # healthy peers stay trusted

    def test_muzzled_actor_catches_up_via_anti_entropy(self):
        sc = make_scenario("mobility", N, NUM_EVENTS, seed=7)
        events = list(sc.events)
        with ActorSystem(sc.initial, "kcover", rebuild_fraction=1.0, shards=SHARDS) as system:
            system.muzzle(1)
            system.apply_tick(events[:TICK])  # actor 1 misses this flood entirely
            assert system.actors[1].applied_seq() < system._out_seq
            system.unmuzzle(1)
            system.quiesce()  # beacon reveals the gap → ResendRequest → retransmit
            assert system.actors[1].applied_seq() == system._out_seq
            assert system.mismatches() == []


class TestFaultPlans:
    """Satellite 3: dropped/delayed LSAs still converge to the serial twin."""

    def setup_method(self):
        faults.uninstall()

    def teardown_method(self):
        faults.uninstall()

    def test_lsa_lossy_converges_through_resend(self):
        faults.install(PLANS["lsa-lossy"])
        sc = make_scenario("mobility", N, NUM_EVENTS, seed=13)
        with ActorSystem(sc.initial, "kcover", rebuild_fraction=1.0, shards=SHARDS) as system:
            system.apply_tick(list(sc.events))
            assert system.mismatches() == []
            assert system.stats.dropped >= 1, "the plan must actually fire"
            assert faults.fired() and faults.fired()["lsa.drop"] == system.stats.dropped

    def test_lsa_slow_converges_through_delay_queue(self):
        faults.install(PLANS["lsa-slow"])
        sc = make_scenario("nodechurn", N, NUM_EVENTS, seed=17)
        with ActorSystem(sc.initial, "kcover", rebuild_fraction=1.0, shards=SHARDS) as system:
            system.apply_tick(list(sc.events))
            assert system.mismatches() == []
            assert system.stats.delayed >= 1, "the plan must actually fire"


class TestParameters:
    def test_bad_shards_and_mode_rejected(self):
        g = random_connected_gnp(N, 0.15, seed=1)
        with pytest.raises(ParameterError):
            ActorSystem(g, "kcover", shards=0)
        with pytest.raises(ParameterError):
            ActorSystem(g, "kcover", mode="telepathy")

    def test_full_mode_converges_too(self):
        # The naive baseline is still a correct protocol, just heavier.
        converge("failure", "kcover", {}, mode="full")

    def test_quiesce_raises_past_max_rounds(self):
        g = random_connected_gnp(N, 0.15, seed=1)
        system = ActorSystem(g, "kcover", shards=SHARDS, max_rounds=0)
        with pytest.raises(ProtocolError):
            system.start()
        system.close()
