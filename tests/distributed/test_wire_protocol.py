"""LSA protocol mechanics: TTL boundary, loop window, LsaDb discipline.

The TTL tests are the satellite-2 regression suite: ``relay()`` at an
exhausted TTL must answer ``None`` (drop), never emit a ``ttl = -1``
copy that floods forever.
"""

import pytest

from repro.distributed import (
    LOOP_WINDOW,
    FullTopology,
    LsaDb,
    LsaUpdate,
    NeighborAdvert,
    TreeAdvert,
)
from repro.errors import ProtocolError


class TestTtlBoundary:
    """relay() at ttl<=0 drops — the negative-TTL regression."""

    def test_neighbor_advert_ttl_zero_drops(self):
        m = NeighborAdvert(origin=0, neighbors=frozenset({1}), ttl=0)
        assert m.relay() is None

    def test_tree_advert_ttl_zero_drops(self):
        m = TreeAdvert(origin=0, edges=frozenset({(0, 1)}), ttl=0)
        assert m.relay() is None

    @pytest.mark.parametrize("cls", [NeighborAdvert, TreeAdvert])
    def test_relay_chain_never_goes_negative(self, cls):
        m = cls(origin=0, ttl=3)
        ttls = []
        while m is not None:
            ttls.append(m.ttl)
            m = m.relay()
        assert ttls == [3, 2, 1, 0]  # the ttl=0 copy is received, then dropped

    def test_lsa_ttl_zero_drops(self):
        assert LsaUpdate(origin=9, seq=1, ttl=0).relay(via=0) is None
        assert FullTopology(origin=9, seq=1, ttl=0).relay(via=0) is None

    def test_lsa_relay_chain_never_goes_negative(self):
        m = LsaUpdate(origin=9, seq=1, ttl=2)
        first = m.relay(via=0)
        assert first is not None and first.ttl == 1
        second = first.relay(via=1)
        assert second is not None and second.ttl == 0
        assert second.relay(via=2) is None  # exhausted: drop, not ttl=-1


class TestLoopWindow:
    def test_relayer_appends_itself(self):
        m = LsaUpdate(origin=9, seq=1, ttl=5)
        relayed = m.relay(via=3)
        assert relayed.seen == (3,)
        assert relayed.relay(via=7).seen == (3, 7)

    def test_seen_relayer_drops_the_copy(self):
        # The copy circled the overlay back to a previous relayer.
        m = LsaUpdate(origin=9, seq=1, ttl=5, seen=(2, 4))
        assert m.relay(via=4) is None
        assert m.relay(via=2) is None
        assert m.relay(via=5) is not None

    def test_window_is_bounded(self):
        m = FullTopology(origin=9, seq=1, ttl=2 * LOOP_WINDOW + 5)
        for via in range(LOOP_WINDOW + 4):
            m = m.relay(via)
            assert m is not None
        assert len(m.seen) == LOOP_WINDOW  # header cannot grow with the flood
        assert m.seen == tuple(range(4, LOOP_WINDOW + 4))  # oldest evicted first

    def test_eviction_reopens_old_relayers(self):
        # Once evicted from the window, an early relayer is no longer
        # remembered — the TTL is the backstop, and it still counts down.
        m = LsaUpdate(origin=9, seq=1, ttl=LOOP_WINDOW + 3)
        for via in range(LOOP_WINDOW + 1):
            m = m.relay(via)
        assert 0 not in m.seen
        again = m.relay(via=0)
        assert again is not None and again.ttl == m.ttl - 1


class TestLsaDb:
    def test_in_order_apply(self):
        db = LsaDb()
        u1 = LsaUpdate(origin=9, seq=1)
        u2 = LsaUpdate(origin=9, seq=2)
        assert db.accept(u1) and db.accept(u2)
        assert db.take_ready(9) == [u1, u2]
        assert db.applied_seq(9) == 2

    def test_gap_stalls_until_filled(self):
        db = LsaDb()
        u1, u2, u3 = (LsaUpdate(origin=9, seq=s) for s in (1, 2, 3))
        assert db.accept(u3) and db.accept(u1)
        assert db.take_ready(9) == [u1]  # seq 3 waits on the seq-2 gap
        assert db.missing(9) == (2,)
        assert db.accept(u2)
        assert db.take_ready(9) == [u2, u3]
        assert db.missing(9) == ()

    def test_duplicates_and_stale_rejected(self):
        db = LsaDb()
        u1 = LsaUpdate(origin=9, seq=1)
        assert db.accept(u1)
        assert not db.accept(u1)  # pending duplicate
        db.take_ready(9)
        assert not db.accept(u1)  # already applied — the re-flood killer
        assert db.duplicates == 2

    def test_origins_are_independent(self):
        db = LsaDb()
        assert db.accept(LsaUpdate(origin=1, seq=1))
        assert db.accept(LsaUpdate(origin=2, seq=1))
        assert len(db.take_ready(1)) == 1
        assert db.applied_seq(2) == 0  # untouched by origin 1's drain

    def test_purge_ages_out_stalled_pending(self):
        db = LsaDb()
        db.accept(LsaUpdate(origin=9, seq=3), now=0)  # stalled behind 1, 2
        assert db.purge(now=5, max_age=10) == 0
        assert db.purge(now=20, max_age=10) == 1
        assert db.aged_out == 1
        assert db.take_ready(9) == []  # never applied late

    def test_negative_seq_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            LsaDb().accept(LsaUpdate(origin=9, seq=-1))
