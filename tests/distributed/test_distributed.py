"""Tests for the message-passing simulator and the RemSpan protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dom_tree_greedy, dom_tree_kcover, dom_tree_kmis, dom_tree_mis
from repro.distributed import (
    Hello,
    NeighborAdvert,
    PeriodicLinkState,
    ProtocolNode,
    SyncNetwork,
    TreeAdvert,
    run_hello,
    run_remspan,
    run_scoped_flood,
    tree_algorithm,
)
from repro.errors import ParameterError, ProtocolError
from repro.graph import ball
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_gnp,
    star_graph,
)

from ..conftest import connected_graphs, small_graphs


class TestSimulator:
    def test_never_halting_node_times_out(self):
        class Stubborn(ProtocolNode):
            def on_round(self, round_index, inbox):
                pass  # never halts

        net = SyncNetwork(path_graph(2), Stubborn)
        with pytest.raises(ProtocolError):
            net.run(max_rounds=5)

    def test_factory_identity_enforced(self):
        with pytest.raises(ProtocolError):
            SyncNetwork(path_graph(2), lambda u: ProtocolNode(0))

    def test_message_counting(self):
        discovered, rounds = run_hello(path_graph(3))
        assert rounds == 1
        # middle node receives 2, ends receive 1 each.


class TestHello:
    @given(small_graphs(min_nodes=1, max_nodes=12))
    @settings(max_examples=40, deadline=None)
    def test_discovers_exact_neighbors(self, g):
        discovered, rounds = run_hello(g)
        assert rounds <= 1
        for u in g.nodes():
            assert discovered[u] == g.neighbors(u)


class TestScopedFlood:
    @given(connected_graphs(min_nodes=2, max_nodes=12), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_flood_covers_exactly_the_ball(self, g, ttl):
        heard, rounds = run_scoped_flood(g, ttl)
        assert rounds == min(
            ttl, max(1, g.num_nodes)
        ) or rounds <= ttl  # never more rounds than ttl
        for u in g.nodes():
            assert heard[u] == ball(g, u, ttl) - {u}

    def test_ttl_one_is_neighbors_only(self):
        g = cycle_graph(6)
        heard, _ = run_scoped_flood(g, 1)
        for u in g.nodes():
            assert heard[u] == g.neighbors(u)


class TestTreeAlgorithmRegistry:
    def test_known_kinds(self):
        for kind, kwargs in (
            ("greedy", dict(r=3, beta=1)),
            ("mis", dict(r=3)),
            ("kcover", dict(k=2)),
            ("kmis", dict(k=2)),
        ):
            fn, ttl, guar = tree_algorithm(kind, **kwargs)
            assert ttl >= 1
            assert guar.alpha >= 1.0

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            tree_algorithm("nope")
        with pytest.raises(ParameterError):
            tree_algorithm("greedy", r=1)
        with pytest.raises(ParameterError):
            tree_algorithm("mis", r=1)


class TestRemSpanProtocol:
    @pytest.mark.parametrize(
        "kind,kwargs,expected_rounds",
        [
            ("kcover", dict(k=1), 3),  # 2·2−1+0
            ("kcover", dict(k=3), 3),
            ("greedy", dict(r=2, beta=0), 3),
            ("greedy", dict(r=3, beta=1), 7),  # 2·3−1+2
            ("mis", dict(r=2), 5),  # 2·2−1+2·1
            ("mis", dict(r=4), 9),
            ("kmis", dict(k=2), 5),
        ],
    )
    def test_round_complexity_matches_paper(self, kind, kwargs, expected_rounds):
        g = random_connected_gnp(25, 0.12, seed=31)
        res = run_remspan(g, kind, **kwargs)
        assert res.communication_rounds == expected_rounds
        assert res.expected_rounds == expected_rounds

    @given(connected_graphs(min_nodes=2, max_nodes=14))
    @settings(max_examples=25, deadline=None)
    def test_distributed_equals_centralized_kcover(self, g):
        res = run_remspan(g, "kcover", k=2)
        for u in g.nodes():
            assert set(res.nodes[u].tree.edges()) == set(dom_tree_kcover(g, u, 2).edges())

    @given(connected_graphs(min_nodes=2, max_nodes=12))
    @settings(max_examples=15, deadline=None)
    def test_distributed_equals_centralized_greedy(self, g):
        res = run_remspan(g, "greedy", r=3, beta=1)
        for u in g.nodes():
            assert set(res.nodes[u].tree.edges()) == set(
                dom_tree_greedy(g, u, 3, 1).edges()
            )

    @given(connected_graphs(min_nodes=2, max_nodes=12))
    @settings(max_examples=15, deadline=None)
    def test_distributed_equals_centralized_mis_and_kmis(self, g):
        res = run_remspan(g, "mis", r=3)
        for u in g.nodes():
            assert set(res.nodes[u].tree.edges()) == set(dom_tree_mis(g, u, 3).edges())
        res2 = run_remspan(g, "kmis", k=2)
        for u in g.nodes():
            assert set(res2.nodes[u].tree.edges()) == set(dom_tree_kmis(g, u, 2).edges())

    def test_spanner_is_union_of_trees(self):
        g = grid_graph(4, 4)
        res = run_remspan(g, "kcover", k=1)
        expected_edges = set()
        for node in res.nodes.values():
            expected_edges |= set(node.tree.edges())
        assert res.spanner.graph.edge_set() == expected_edges

    def test_every_node_learns_nearby_trees(self):
        # After the run, each node knows T_v for v within the flood radius.
        g = cycle_graph(8)
        res = run_remspan(g, "greedy", r=3, beta=1)  # D = 3
        for u in g.nodes():
            knows = set(res.nodes[u].known_trees)
            assert ball(g, u, 3) <= knows

    def test_disconnected_graph_ok(self):
        g = path_graph(6)
        g.remove_edge(2, 3)
        res = run_remspan(g, "kcover", k=1)
        assert res.spanner.graph.num_nodes == 6

    def test_single_node(self):
        g = star_graph(1)  # just one node
        res = run_remspan(g, "kcover", k=1)
        assert res.spanner.num_edges == 0


class TestPeriodicLinkState:
    def test_converges_from_cold_start(self):
        g = random_connected_gnp(15, 0.15, seed=41)
        sim = PeriodicLinkState(g.copy(), kind="kcover", k=1, period=5)
        sim.run(5 + 2 * sim.flood_time + 1)
        assert sim.current_spanner() == sim.converged_spanner(g)

    @pytest.mark.parametrize("kind,kwargs", [("kcover", dict(k=1)), ("greedy", dict(r=3, beta=1))])
    def test_stabilizes_within_T_plus_2F_after_removal(self, kind, kwargs):
        g = random_connected_gnp(18, 0.15, seed=42)
        sim = PeriodicLinkState(g.copy(), kind=kind, period=7, **kwargs)

        def change(graph):
            graph.remove_edge(*sorted(graph.edges())[0])

        report = sim.stabilization_experiment(warmup=30, change=change)
        assert report.stabilized_step is not None
        assert report.within_bound

    def test_stabilizes_after_addition(self):
        g = random_connected_gnp(15, 0.1, seed=43)
        sim = PeriodicLinkState(g.copy(), kind="kcover", k=1, period=6)

        def change(graph):
            for u in graph.nodes():
                for v in range(u + 1, graph.num_nodes):
                    if not graph.has_edge(u, v):
                        graph.add_edge(u, v)
                        return

        report = sim.stabilization_experiment(warmup=25, change=change)
        assert report.within_bound

    def test_phase_validation(self):
        g = path_graph(4)
        with pytest.raises(ParameterError):
            PeriodicLinkState(g, period=0)
        with pytest.raises(ProtocolError):
            PeriodicLinkState(g, phases=[0, 1])


class TestMessages:
    def test_sizes(self):
        assert Hello(0).size == 1
        adv = NeighborAdvert(0, frozenset({1, 2, 3}), ttl=2)
        assert adv.size == 3
        assert adv.relay().ttl == 1
        tr = TreeAdvert(0, frozenset({(0, 1)}), ttl=1)
        assert tr.size == 1
        assert tr.relay().ttl == 0

    def test_empty_payload_minimum_size(self):
        assert NeighborAdvert(0, frozenset(), ttl=1).size == 1
