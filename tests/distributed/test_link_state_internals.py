"""Targeted tests for the periodic link-state internals.

The two-way connectivity check and LSA aging were added after an
integration test exposed the stale-adjacency bug (a severed neighbor's
advertisement lingering forever).  These tests pin the mechanisms
directly.
"""

from repro.distributed import PeriodicLinkState
from repro.graph import Graph
from repro.graph.generators import cycle_graph, path_graph, random_connected_gnp


class TestTwoWayCheck:
    def test_severed_edge_disappears_from_local_views(self):
        # Triangle + pendant; cut the 0-1 edge and verify node 0's next
        # recomputation no longer believes in it.
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        sim = PeriodicLinkState(g, kind="kcover", k=1, period=4)
        sim.run(12)  # converge
        g.remove_edge(0, 1)
        # Node 0's own HELLO view updates instantly on recompute; node 1's
        # stale advert still lists 0 — the two-way check must drop it.
        sim._recompute(0, sim.step_count)
        tree0 = sim.trees[0]
        assert (0, 1) not in set(tree0.edges())

    def test_stale_entries_age_out(self):
        g = cycle_graph(6)
        sim = PeriodicLinkState(g, kind="kcover", k=1, period=3)
        sim.run(10)
        # Inject a bogus ancient advert for a phantom node relationship.
        sim.db[0][3] = (-100, frozenset({0}))  # ancient stamp
        sim._recompute(0, sim.step_count)
        assert 3 not in sim.db[0]  # aged out

    def test_own_entry_never_ages(self):
        g = path_graph(4)
        sim = PeriodicLinkState(g, kind="kcover", k=1, period=3)
        sim.run(8)
        sim.db[2][2] = (-100, frozenset(g.neighbors(2)))
        sim._recompute(2, sim.step_count)
        assert 2 in sim.db[2]


class TestConvergenceProperties:
    def test_current_spanner_filters_dead_edges(self):
        g = random_connected_gnp(12, 0.2, seed=9)
        sim = PeriodicLinkState(g, kind="kcover", k=1, period=5)
        sim.run(15)
        # Remove an edge; before any re-advertisement the stale trees may
        # reference it, but current_spanner must not return dead edges.
        e = sorted(g.edges())[0]
        g.remove_edge(*e)
        spanner = sim.current_spanner()
        assert not spanner.has_edge(*e)

    def test_steady_state_is_fixed_point(self):
        g = random_connected_gnp(10, 0.25, seed=10)
        sim = PeriodicLinkState(g, kind="kcover", k=1, period=4)
        sim.run(20)
        before = sim.current_spanner()
        sim.run(8)  # two more full periods with no change
        assert sim.current_spanner() == before

    def test_phases_desynchronized_still_converge(self):
        g = random_connected_gnp(12, 0.2, seed=11)
        sim = PeriodicLinkState(
            g.copy(), kind="kcover", k=1, period=5, phases=[3] * 12
        )
        sim.run(5 + 2 * sim.flood_time + 5)
        assert sim.current_spanner() == sim.converged_spanner(g)
