"""Tests for greedy and exact set (multi)cover."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, ParameterError
from repro.setcover import (
    SetCoverInstance,
    exact_multicover,
    exact_set_cover,
    greedy_multicover,
    greedy_set_cover,
    optimal_cover_size,
)


@st.composite
def cover_instances(draw, max_elems: int = 8, max_sets: int = 8):
    n = draw(st.integers(1, max_elems))
    k = draw(st.integers(1, max_sets))
    universe = frozenset(range(n))
    sets = {}
    for i in range(k):
        members = draw(st.sets(st.integers(0, n - 1), max_size=n))
        sets[f"s{i}"] = frozenset(members)
    # Guarantee feasibility: one set covering everything leftover.
    covered = frozenset().union(*sets.values()) if sets else frozenset()
    if covered != universe:
        sets["patch"] = universe - covered
    return SetCoverInstance.from_sets(sets, universe=universe)


class TestInstance:
    def test_universe_defaults_to_union(self):
        inst = SetCoverInstance.from_sets({"a": [1, 2], "b": [2, 3]})
        assert inst.universe == frozenset({1, 2, 3})

    def test_sets_clipped_to_universe(self):
        inst = SetCoverInstance.from_sets({"a": [1, 99]}, universe=[1, 2])
        assert inst.sets["a"] == frozenset({1})

    def test_demand_defaults_and_validation(self):
        inst = SetCoverInstance.from_sets({"a": [1]}, universe=[1])
        assert inst.demand[1] == 1
        with pytest.raises(ParameterError):
            SetCoverInstance.from_sets({"a": [1]}, universe=[1], demand={1: -1})

    def test_feasibility_check(self):
        inst = SetCoverInstance.from_sets({"a": [1]}, universe=[1], demand={1: 2})
        with pytest.raises(InfeasibleError):
            inst.check_feasible()

    def test_is_cover(self):
        inst = SetCoverInstance.from_sets({"a": [1, 2], "b": [2, 3]}, universe=[1, 2, 3])
        assert inst.is_cover(["a", "b"])
        assert not inst.is_cover(["a"])

    def test_is_plain(self):
        inst = SetCoverInstance.from_sets({"a": [1]}, universe=[1])
        assert inst.is_plain
        inst2 = SetCoverInstance.from_sets({"a": [1], "b": [1]}, universe=[1], demand={1: 2})
        assert not inst2.is_plain


class TestGreedy:
    def test_simple_cover(self):
        inst = SetCoverInstance.from_sets(
            {"big": [1, 2, 3], "a": [1], "b": [2], "c": [3]}
        )
        assert greedy_set_cover(inst) == ["big"]

    def test_greedy_classic_log_gap_instance(self):
        # The standard instance where greedy picks the big "wrong" set.
        inst = SetCoverInstance.from_sets(
            {
                "left": [0, 2, 4, 6],
                "right": [1, 3, 5, 7],
                "g1": [0, 1, 2, 3, 4],  # greedy grabs this first
                "g2": [5, 6],
                "g3": [7],
            }
        )
        greedy = greedy_set_cover(inst)
        assert greedy[0] == "g1"
        assert len(greedy) >= 3
        assert optimal_cover_size(inst) == 2

    def test_infeasible_raises(self):
        inst = SetCoverInstance.from_sets({"a": [1]}, universe=[1, 2])
        with pytest.raises(InfeasibleError):
            greedy_set_cover(inst)

    def test_multicover_meets_demands(self):
        inst = SetCoverInstance.from_sets(
            {"a": [1, 2], "b": [1, 2], "c": [1]},
            universe=[1, 2],
            demand={1: 3, 2: 2},
        )
        chosen = greedy_multicover(inst)
        assert inst.is_cover(chosen)
        assert set(chosen) == {"a", "b", "c"}

    def test_zero_demand_elements_ignored(self):
        inst = SetCoverInstance.from_sets(
            {"a": [1]}, universe=[1, 2], demand={1: 1, 2: 0}
        )
        assert greedy_set_cover(inst) == ["a"]

    @given(cover_instances())
    @settings(max_examples=60, deadline=None)
    def test_greedy_always_covers(self, inst):
        assert inst.is_cover(greedy_set_cover(inst))


class TestExact:
    @given(cover_instances(max_elems=7, max_sets=7))
    @settings(max_examples=40, deadline=None)
    def test_exact_is_cover_and_no_bigger_than_greedy(self, inst):
        exact = exact_set_cover(inst)
        assert inst.is_cover(exact)
        assert len(exact) <= len(greedy_set_cover(inst))

    @given(cover_instances(max_elems=6, max_sets=6))
    @settings(max_examples=25, deadline=None)
    def test_exact_matches_brute_force(self, inst):
        from itertools import combinations

        labels = sorted(inst.sets, key=repr)
        best = None
        for size in range(len(labels) + 1):
            for combo in combinations(labels, size):
                if inst.is_cover(combo):
                    best = size
                    break
            if best is not None:
                break
        assert len(exact_set_cover(inst)) == best

    def test_exact_multicover_demands(self):
        inst = SetCoverInstance.from_sets(
            {"a": [1, 2], "b": [1, 2], "c": [1], "d": [2]},
            universe=[1, 2],
            demand={1: 2, 2: 2},
        )
        sol = exact_multicover(inst)
        assert inst.is_cover(sol)
        assert len(sol) == 2  # a + b

    def test_exact_multicover_infeasible(self):
        inst = SetCoverInstance.from_sets(
            {"a": [1]}, universe=[1], demand={1: 2}
        )
        with pytest.raises(InfeasibleError):
            exact_multicover(inst)

    def test_chvatal_bound_holds(self):
        # Greedy within (1 + ln n) of optimal on random instances.
        import math

        for seed in range(10):
            import random

            rnd = random.Random(seed)
            n = 8
            sets = {
                f"s{i}": frozenset(
                    e for e in range(n) if rnd.random() < 0.4
                )
                for i in range(8)
            }
            covered = frozenset().union(*sets.values())
            if covered != frozenset(range(n)):
                sets["patch"] = frozenset(range(n)) - covered
            inst = SetCoverInstance.from_sets(sets, universe=range(n))
            g = len(greedy_set_cover(inst))
            o = len(exact_set_cover(inst))
            assert g <= (1 + math.log(n)) * o + 1e-9
