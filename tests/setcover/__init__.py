"""Test package marker — enables ``from ..conftest import ...`` relative imports."""
