"""Tests for the disjoint-path substrate: flow vs brute force vs networkx."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, ParameterError
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    path_graph,
    theta_graph,
)
from repro.graph.io import to_networkx
from repro.paths import (
    are_k_connected,
    brute_force_connectivity,
    brute_force_k_distance,
    disjoint_paths,
    k_connecting_distance,
    k_connecting_profile,
    vertex_connectivity_pair,
)

from ..conftest import small_graphs


class TestKConnectingDistance:
    def test_theta_graph_exact(self):
        # Paths of lengths 2, 3, 4 between terminals 0 and 1.
        g = theta_graph((2, 3, 4))
        assert k_connecting_distance(g, 0, 1, 1) == 2
        assert k_connecting_distance(g, 0, 1, 2) == 5
        assert k_connecting_distance(g, 0, 1, 3) == 9
        assert k_connecting_distance(g, 0, 1, 4) == math.inf

    def test_profile_prefixes_optimal(self):
        g = theta_graph((2, 2, 5))
        assert k_connecting_profile(g, 0, 1, 3) == [2, 4, 9]

    def test_d1_is_plain_distance(self):
        g = path_graph(6)
        assert k_connecting_distance(g, 0, 5, 1) == 5

    def test_cycle_two_paths(self):
        g = cycle_graph(7)
        # Around the cycle both ways: 3 + 4.
        assert k_connecting_distance(g, 0, 3, 2) == 7
        assert k_connecting_distance(g, 0, 3, 3) == math.inf

    def test_adjacent_pair_direct_edge_counts(self):
        g = complete_graph(4)
        # Direct edge (1) + two 2-hop internally disjoint paths.
        assert k_connecting_profile(g, 0, 1, 3) == [1, 3, 5]

    def test_parameter_validation(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            k_connecting_distance(g, 0, 0, 1)
        with pytest.raises(ParameterError):
            k_connecting_distance(g, 0, 1, 0)

    @given(small_graphs(min_nodes=2, max_nodes=8), st.integers(1, 3), st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, g, k, data):
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t:
            return
        assert k_connecting_distance(g, s, t, k) == brute_force_k_distance(g, s, t, k)


class TestConnectivity:
    @given(small_graphs(min_nodes=2, max_nodes=8), st.data())
    @settings(max_examples=50, deadline=None)
    def test_pair_connectivity_matches_brute_force(self, g, data):
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t:
            return
        assert vertex_connectivity_pair(g, s, t) == brute_force_connectivity(g, s, t)

    @given(small_graphs(min_nodes=3, max_nodes=9), st.data())
    @settings(max_examples=40, deadline=None)
    def test_nonadjacent_connectivity_matches_networkx(self, g, data):
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t or g.has_edge(s, t):
            return
        nxg = to_networkx(g)
        expected = nx.connectivity.local_node_connectivity(nxg, s, t)
        assert vertex_connectivity_pair(g, s, t) == expected

    def test_are_k_connected(self):
        g = cycle_graph(6)
        assert are_k_connected(g, 0, 3, 2)
        assert not are_k_connected(g, 0, 3, 3)
        with pytest.raises(ParameterError):
            are_k_connected(g, 0, 3, 0)


class TestDisjointPaths:
    def test_paths_are_disjoint_and_valid(self):
        g = theta_graph((3, 3, 3))
        paths = disjoint_paths(g, 0, 1, 3)
        assert len(paths) == 3
        seen_internal: set = set()
        total = 0
        for p in paths:
            assert p[0] == 0 and p[-1] == 1
            for a, b in zip(p, p[1:]):
                assert g.has_edge(a, b)
            internal = set(p[1:-1])
            assert not (internal & seen_internal)
            seen_internal |= internal
            total += len(p) - 1
        assert total == k_connecting_distance(g, 0, 1, 3)

    def test_infeasible_raises(self):
        g = path_graph(5)
        with pytest.raises(InfeasibleError):
            disjoint_paths(g, 0, 4, 2)

    @given(small_graphs(min_nodes=3, max_nodes=8), st.integers(2, 3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_decomposition_total_length_is_dk(self, g, k, data):
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t:
            return
        dk = k_connecting_distance(g, s, t, k)
        if dk == math.inf:
            return
        paths = disjoint_paths(g, s, t, k)
        assert sum(len(p) - 1 for p in paths) == dk
        internals = [set(p[1:-1]) for p in paths]
        for i in range(len(internals)):
            for j in range(i + 1, len(internals)):
                assert not (internals[i] & internals[j])


class TestDenseRandom:
    def test_gnp_profile_monotone(self):
        g = gnp_random_graph(12, 0.5, seed=3)
        for s in range(0, 12, 3):
            for t in range(1, 12, 4):
                if s == t:
                    continue
                prof = k_connecting_profile(g, s, t, 4)
                finite = [p for p in prof if p != math.inf]
                assert finite == sorted(finite)
                # Each extra path costs at least its own length ≥ 1.
                for a, b in zip(finite, finite[1:]):
                    assert b > a
