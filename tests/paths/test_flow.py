"""Direct unit tests for the min-cost flow engine (below the d^k layer)."""

import pytest

from repro.errors import ParameterError
from repro.paths import MinCostFlow


class TestMinCostFlowBasics:
    def test_single_arc(self):
        net = MinCostFlow(2)
        net.add_arc(0, 1, capacity=3, cost=5)
        res = net.min_cost_flow(0, 1, 2)
        assert res.value == 2
        assert res.cost == 10
        assert res.unit_costs == [5, 5]

    def test_chooses_cheaper_path_first(self):
        net = MinCostFlow(4)
        net.add_arc(0, 1, 1, 1)
        net.add_arc(1, 3, 1, 1)  # cheap: cost 2
        net.add_arc(0, 2, 1, 5)
        net.add_arc(2, 3, 1, 5)  # expensive: cost 10
        res = net.min_cost_flow(0, 3, 2)
        assert res.unit_costs == [2, 10]
        assert res.cost == 12

    def test_residual_rerouting(self):
        # Classic flow-cancellation diamond: the second unit must reroute
        # the first through the residual reverse arc.
        net = MinCostFlow(4)
        net.add_arc(0, 1, 1, 1)
        net.add_arc(0, 2, 1, 4)
        net.add_arc(1, 2, 1, 1)
        net.add_arc(1, 3, 1, 4)
        net.add_arc(2, 3, 1, 1)
        res = net.min_cost_flow(0, 3, 2)
        assert res.value == 2
        assert res.cost == 10  # 0-1-2-3 (3) + 0-2... rerouted optimum

    def test_stops_at_max_flow(self):
        net = MinCostFlow(3)
        net.add_arc(0, 1, 1, 1)
        net.add_arc(1, 2, 1, 1)
        res = net.min_cost_flow(0, 2, 5)
        assert res.value == 1

    def test_unreachable_sink(self):
        net = MinCostFlow(3)
        net.add_arc(0, 1, 1, 1)
        res = net.min_cost_flow(0, 2, 1)
        assert res.value == 0
        assert res.cost == 0

    def test_flow_on_accessor(self):
        net = MinCostFlow(2)
        a = net.add_arc(0, 1, 2, 1)
        net.min_cost_flow(0, 1, 2)
        assert net.flow_on(a) == 2

    def test_validation(self):
        with pytest.raises(ParameterError):
            MinCostFlow(-1)
        net = MinCostFlow(2)
        with pytest.raises(ParameterError):
            net.add_arc(0, 5, 1, 1)
        with pytest.raises(ParameterError):
            net.add_arc(0, 1, -1, 1)
        with pytest.raises(ParameterError):
            net.min_cost_flow(0, 0, 1)
        with pytest.raises(ParameterError):
            net.min_cost_flow(0, 9, 1)

    def test_prefix_optimality(self):
        # unit_costs must be non-decreasing (successive shortest paths).
        net = MinCostFlow(6)
        net.add_arc(0, 1, 1, 1)
        net.add_arc(1, 5, 1, 1)
        net.add_arc(0, 2, 1, 2)
        net.add_arc(2, 5, 1, 2)
        net.add_arc(0, 3, 1, 3)
        net.add_arc(3, 5, 1, 3)
        res = net.min_cost_flow(0, 5, 3)
        assert res.unit_costs == sorted(res.unit_costs) == [2, 4, 6]
