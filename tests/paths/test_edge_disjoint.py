"""Tests for the edge-disjoint path substrate (§4 extension)."""

import math
from itertools import combinations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, ParameterError
from repro.graph.generators import cycle_graph, path_graph, theta_graph
from repro.graph.io import to_networkx
from repro.paths import all_simple_paths, k_connecting_distance
from repro.paths.edge_disjoint import (
    edge_connectivity_pair,
    edge_disjoint_paths,
    k_edge_connecting_distance,
    k_edge_connecting_profile,
)

from ..conftest import small_graphs


def brute_force_edge_k_distance(g, s, t, k):
    """Oracle: cheapest k-family of pairwise edge-disjoint simple paths."""
    paths = all_simple_paths(g, s, t)
    if len(paths) < k:
        return math.inf
    paths.sort(key=len)
    best = math.inf
    for combo in combinations(paths, k):
        total = sum(len(p) - 1 for p in combo)
        if total >= best:
            continue
        used: set = set()
        ok = True
        for p in combo:
            for a, b in zip(p, p[1:]):
                e = (a, b) if a < b else (b, a)
                if e in used:
                    ok = False
                    break
                used.add(e)
            if not ok:
                break
        if ok:
            best = total
    return best


class TestEdgeDistance:
    def test_theta_graph(self):
        g = theta_graph((2, 3, 4))
        assert k_edge_connecting_profile(g, 0, 1, 3) == [2, 5, 9]

    def test_cycle(self):
        g = cycle_graph(8)
        assert k_edge_connecting_distance(g, 0, 4, 2) == 8

    def test_edge_vs_node_disjoint_ordering(self):
        # Edge-disjoint is weaker: d^k_edge ≤ d^k_node always.
        g = theta_graph((2, 2, 3))
        for k in (1, 2, 3):
            assert k_edge_connecting_distance(g, 0, 1, k) <= k_connecting_distance(
                g, 0, 1, k
            )

    def test_diamond_where_notions_differ(self):
        # Two triangles sharing a cut vertex: 0-1-2, 2-3-4; s=0, t=4.
        from repro.graph import Graph

        g = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        # Node-disjoint: all paths pass through 2 → only one path.
        assert k_connecting_distance(g, 0, 4, 2) == math.inf
        # Edge-disjoint: 0-2-4 and 0-1-2-3-4.
        assert k_edge_connecting_distance(g, 0, 4, 2) == 6

    @given(small_graphs(min_nodes=2, max_nodes=7), st.integers(1, 3), st.data())
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, g, k, data):
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t:
            return
        assert k_edge_connecting_distance(g, s, t, k) == brute_force_edge_k_distance(
            g, s, t, k
        )

    def test_validation(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            k_edge_connecting_distance(g, 0, 0, 1)
        with pytest.raises(ParameterError):
            k_edge_connecting_distance(g, 0, 1, 0)


class TestEdgeConnectivity:
    @given(small_graphs(min_nodes=2, max_nodes=8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, g, data):
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t:
            return
        nxg = to_networkx(g)
        expected = nx.connectivity.local_edge_connectivity(nxg, s, t)
        assert edge_connectivity_pair(g, s, t) == expected


class TestEdgeDisjointPaths:
    def test_family_is_edge_disjoint(self):
        g = cycle_graph(6)
        paths = edge_disjoint_paths(g, 0, 3, 2)
        used: set = set()
        for p in paths:
            for a, b in zip(p, p[1:]):
                e = (a, b) if a < b else (b, a)
                assert e not in used
                used.add(e)
                assert g.has_edge(a, b)

    def test_infeasible(self):
        with pytest.raises(InfeasibleError):
            edge_disjoint_paths(path_graph(4), 0, 3, 2)
