"""repro.tuning: env/programmatic overrides and the calibration harness."""

import pytest

from repro import tuning
from repro.errors import ParameterError
from repro.graph import batched_bfs
from repro.graph.generators import path_graph


@pytest.fixture(autouse=True)
def _clean_tuning():
    tuning.reset()
    yield
    tuning.reset()


class TestOverrides:
    def test_defaults(self):
        t = tuning.get()
        assert t.batch_chunk == tuning.DEFAULT_BATCH_CHUNK
        assert t.auto_min_nodes == tuning.DEFAULT_AUTO_MIN_NODES
        assert t.parallel_min_nodes == tuning.DEFAULT_PARALLEL_MIN_NODES
        assert t.auto_max_workers == tuning.DEFAULT_AUTO_MAX_WORKERS
        assert t.small_frontier == tuning.DEFAULT_SMALL_FRONTIER
        assert t.obs == tuning.DEFAULT_OBS
        assert t.faults == tuning.DEFAULT_FAULTS == 0  # injection is opt-in
        assert t.drain_timeout == tuning.DEFAULT_DRAIN_TIMEOUT
        assert t.read_retries == tuning.DEFAULT_READ_RETRIES

    def test_obs_may_be_zero_but_not_negative(self):
        assert tuning.configure(obs=0).obs == 0
        with pytest.raises(ParameterError):
            tuning.configure(obs=-1)
        with pytest.raises(ParameterError):
            tuning.configure(batch_chunk=0)  # every other knob keeps floor 1

    def test_faults_gate_may_be_zero(self):
        assert tuning.configure(faults=0).faults == 0
        assert tuning.configure(faults=1).faults == 1
        with pytest.raises(ParameterError):
            tuning.configure(faults=-1)

    def test_drain_timeout_is_a_float_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRAIN_TIMEOUT", "0.25")
        tuning.reset()
        assert tuning.get().drain_timeout == 0.25
        monkeypatch.setenv("REPRO_DRAIN_TIMEOUT", "soon")
        tuning.reset()
        with pytest.raises(ParameterError):
            tuning.get()

    def test_read_retries_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_READ_RETRIES", "512")
        tuning.reset()
        assert tuning.get().read_retries == 512
        with pytest.raises(ParameterError):
            tuning.configure(read_retries=0)

    def test_obs_env_words(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        tuning.reset()
        assert tuning.get().obs == 0
        monkeypatch.setenv("REPRO_OBS", "on")
        tuning.reset()
        assert tuning.get().obs == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "17")
        monkeypatch.setenv("REPRO_AUTO_MIN_NODES", "5")
        monkeypatch.setenv("REPRO_AUTO_MAX_WORKERS", "2")
        monkeypatch.setenv("REPRO_SMALL_FRONTIER", "3")
        tuning.reset()
        t = tuning.get()
        assert t.batch_chunk == 17 and t.auto_min_nodes == 5
        assert t.auto_max_workers == 2 and t.small_frontier == 3

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHUNK", "lots")
        tuning.reset()
        with pytest.raises(ParameterError):
            tuning.get()

    def test_configure_and_reset(self):
        tuning.configure(batch_chunk=8)
        assert tuning.get().batch_chunk == 8
        tuning.reset()
        assert tuning.get().batch_chunk == tuning.DEFAULT_BATCH_CHUNK

    def test_configure_rejects_unknown_and_invalid(self):
        with pytest.raises(ParameterError):
            tuning.configure(warp_factor=9)
        with pytest.raises(ParameterError):
            tuning.configure(batch_chunk=0)

    def test_overridden_context_restores_on_error(self):
        before = tuning.get()
        with pytest.raises(RuntimeError):
            with tuning.overridden(auto_min_nodes=2):
                assert tuning.get().auto_min_nodes == 2
                raise RuntimeError("boom")
        assert tuning.get() == before


class TestKnobsSteerTheEngines:
    def test_auto_min_nodes_flips_backend(self):
        # With the threshold above n, `auto` picks sets even on a frozen
        # graph; below n it rides the cached snapshot.  Results agree
        # (that's the backends' property); here we check the dispatch knob
        # actually moves by probing the internal selector.
        from repro.graph.traversal import _csr_of

        g = path_graph(30)
        g.freeze()
        with tuning.overridden(auto_min_nodes=100):
            assert _csr_of(g, "auto") is None
        with tuning.overridden(auto_min_nodes=10):
            assert _csr_of(g, "auto") is g.freeze()

    def test_batch_chunk_default_comes_from_tuning(self):
        g = path_graph(40)
        with tuning.overridden(batch_chunk=3, auto_min_nodes=1):
            a = list(batched_bfs(g))
        b = list(batched_bfs(g))
        assert a == b  # chunking never changes results

    def test_auto_max_workers_caps_auto_resolution(self):
        from repro.parallel import resolve_workers

        assert resolve_workers("auto", cpu_count=64) == tuning.DEFAULT_AUTO_MAX_WORKERS
        with tuning.overridden(auto_max_workers=2):
            assert resolve_workers("auto", cpu_count=64) == 2
        with tuning.overridden(auto_max_workers=9):
            assert resolve_workers("auto", cpu_count=64) == 9
            assert resolve_workers("auto", cpu_count=3) == 3  # still cpu-bound

    def test_small_frontier_extremes_agree(self):
        # Force the pure-Python path (huge threshold) and the vectorized
        # path (threshold 1) over the same deep skinny graph; distances
        # must match exactly — the knob only moves the crossover.
        from repro.graph import bfs_distances

        g = path_graph(60)
        csr = g.freeze()
        with tuning.overridden(small_frontier=1000):
            a = bfs_distances(csr, 0)
        with tuning.overridden(small_frontier=1):
            b = bfs_distances(csr, 0)
        assert a == b == list(range(60))


class TestCalibrate:
    def test_calibrate_quick_shape(self):
        result = tuning.calibrate(n=256, seed=7, quick=True)
        assert result["auto_min_nodes"]["recommended"] >= 1
        assert result["batch_chunk"]["recommended"] in (16, 32, 64, 128, 256)
        assert len(result["auto_min_nodes"]["rows"]) == 5
        assert all(r["apsp_s"] > 0 for r in result["batch_chunk"]["rows"])

    def test_tune_cli_prints_recommendations(self, capsys):
        from repro.cli import main

        assert main(["tune", "--quick", "--n", "256"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_AUTO_MIN_NODES" in out and "REPRO_BATCH_CHUNK" in out
        assert "recommended:" in out
