"""Tests for greedy link-state routing and advertisement accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_k_connecting_spanner, build_remote_spanner
from repro.errors import ParameterError
from repro.graph import Graph, bfs_distances
from repro.graph.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_connected_gnp,
)
from repro.routing import (
    full_link_state_cost,
    next_hop,
    route,
    route_all_pairs_stats,
    routing_table,
    routing_table_scan,
    spanner_advertisement_cost,
)

from ..conftest import connected_graphs, graph_with_subgraph


class TestNextHop:
    def test_next_hop_moves_closer(self):
        g = grid_graph(4, 4)
        rs = build_k_connecting_spanner(g, k=1)
        hop = next_hop(rs.graph, g, 0, 15)
        assert hop in g.neighbors(0)
        assert bfs_distances(g, hop)[15] < bfs_distances(g, 0)[15]

    def test_unroutable_returns_none(self):
        g = path_graph(4)
        g.remove_edge(1, 2)
        h = g.spanning_subgraph([])
        assert next_hop(h, g, 0, 3) is None

    def test_routing_table_complete_for_exact_spanner(self):
        g = grid_graph(3, 4)
        rs = build_k_connecting_spanner(g, k=1)
        table = routing_table(rs.graph, g, 0)
        assert set(table) == {v for v in g.nodes() if v != 0}

    def test_source_equals_target_rejected(self):
        # u == v used to raise NodeNotFound for a node that exists; the
        # error now matches route()'s contract.
        g = grid_graph(3, 3)
        with pytest.raises(ParameterError, match="source equals target"):
            next_hop(g, g, 4, 4)


class TestTableKernels:
    """The neighbor-sourced kernel must equal the per-destination scan."""

    @given(graph_with_subgraph(min_nodes=2, max_nodes=10))
    @settings(max_examples=60, deadline=None)
    def test_kernels_agree_on_arbitrary_subgraphs(self, pair):
        g, h = pair
        for u in g.nodes():
            assert routing_table(h, g, u) == routing_table_scan(h, g, u)

    def test_kernels_agree_on_udg_spanner(self):
        from repro.experiments import largest_component, scaled_udg

        g_full, _pts = scaled_udg(120, target_degree=10.0, seed=44)
        g, _ids = largest_component(g_full)
        rs = build_remote_spanner(g, epsilon=0.5)
        for u in range(0, g.num_nodes, 7):
            assert routing_table(rs.graph, g, u) == routing_table_scan(rs.graph, g, u)

    def test_isolated_source_has_empty_table(self):
        g = Graph(4, [(1, 2), (2, 3)])
        h = g.spanning_subgraph([(1, 2)])
        assert routing_table(h, g, 0) == {}
        assert routing_table_scan(h, g, 0) == {}

    def test_table_next_hop_and_route_agree(self):
        """table[v] == next_hop(u, v) == route's first hop, pointwise."""
        from repro.experiments import largest_component, scaled_udg

        g_full, _pts = scaled_udg(80, target_degree=9.0, seed=45)
        g, _ids = largest_component(g_full)
        rs = build_k_connecting_spanner(g, k=1)
        h = rs.graph
        for u in range(0, g.num_nodes, 11):
            table = routing_table(h, g, u)
            for v in g.nodes():
                if v == u:
                    continue
                hop = next_hop(h, g, u, v)
                assert table.get(v) == hop
                if hop is not None:
                    res = route(h, g, u, v)
                    assert res.path[1] == hop


class TestGreedyRoute:
    @given(connected_graphs(min_nodes=3, max_nodes=12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_exact_spanner_routes_optimally(self, g, data):
        """On a (1,0)-remote-spanner, greedy routes have length d_G."""
        rs = build_k_connecting_spanner(g, k=1)
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t:
            return
        res = route(rs.graph, g, s, t)
        assert res.delivered
        assert res.hops == bfs_distances(g, s)[t]

    @given(connected_graphs(min_nodes=3, max_nodes=12), st.data())
    @settings(max_examples=40, deadline=None)
    def test_potential_decreases_by_one_each_hop(self, g, data):
        """§1's invariant: d_{H_{u'}}(u',v) ≤ d_{H_u}(u,v) − 1."""
        rs = build_remote_spanner(g, epsilon=0.5)
        s = data.draw(st.integers(0, g.num_nodes - 1))
        t = data.draw(st.integers(0, g.num_nodes - 1))
        if s == t:
            return
        res = route(rs.graph, g, s, t)
        assert res.delivered
        for a, b in zip(res.potentials, res.potentials[1:]):
            assert b <= a - 1

    def test_route_respects_guarantee_bound(self):
        g = cycle_graph(11)
        rs = build_remote_spanner(g, epsilon=1.0)  # (2, −1)
        for t in range(2, 9):
            res = route(rs.graph, g, 0, t)
            d = bfs_distances(g, 0)[t]
            assert res.delivered
            assert res.hops <= 2 * d - 1

    def test_source_equals_target_rejected(self):
        g = path_graph(3)
        with pytest.raises(ParameterError):
            route(g, g, 1, 1)

    def test_undeliverable_reported(self):
        g = path_graph(5)
        h = g.spanning_subgraph([])
        res = route(h, g, 0, 4)
        assert not res.delivered
        assert res.hops <= 1


class TestRouteStats:
    def test_stats_on_exact_spanner(self):
        g = random_connected_gnp(14, 0.2, seed=3)
        rs = build_k_connecting_spanner(g, k=1)
        stats = route_all_pairs_stats(rs.graph, g)
        assert stats.delivered == stats.pairs
        assert stats.max_stretch == 1.0
        assert stats.invariant_violations == 0

    def test_stats_with_pair_subset(self):
        g = grid_graph(3, 3)
        rs = build_k_connecting_spanner(g, k=1)
        stats = route_all_pairs_stats(rs.graph, g, pairs=[(0, 8), (8, 0)])
        assert stats.pairs == 2


class TestOverhead:
    def test_full_link_state_counts_degrees(self):
        g = grid_graph(3, 3)
        cost = full_link_state_cost(g)
        assert cost.entries_per_period == 2 * g.num_edges
        assert cost.originators == g.num_nodes

    def test_spanner_cost_counts_tree_edges(self):
        g = random_connected_gnp(16, 0.25, seed=4)
        rs = build_k_connecting_spanner(g, k=1)
        cost = spanner_advertisement_cost(rs)
        assert cost.entries_per_period == sum(t.num_edges for t in rs.trees.values())
        assert cost.max_single_advert <= g.max_degree()

    def test_ratio(self):
        g = random_connected_gnp(20, 0.35, seed=5)
        rs = build_k_connecting_spanner(g, k=1)
        ratio = spanner_advertisement_cost(rs).ratio_to(full_link_state_cost(g))
        assert 0.0 < ratio <= 1.0

    def test_zero_entry_baseline_is_not_free(self):
        # Regression: a nonzero cost against an empty baseline used to
        # report 0.0 — "free" relative to advertising nothing at all.
        from repro.routing import AdvertisementCost

        empty = AdvertisementCost(0, 0, 0)
        assert AdvertisementCost(10, 3, 4).ratio_to(empty) == float("inf")
        assert empty.ratio_to(empty) == 0.0
        assert empty.ratio_to(AdvertisementCost(10, 3, 4)) == 0.0


class TestRouteResultHops:
    def test_default_result_has_zero_hops(self):
        # Regression: an empty path used to underflow to −1 hops.
        from repro.routing import RouteResult

        assert RouteResult().hops == 0
        assert RouteResult(path=[3]).hops == 0
        assert RouteResult(path=[3, 4, 5]).hops == 2
