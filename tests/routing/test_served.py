"""route_served ≡ route, journey for journey — the query fast path's contract.

:func:`repro.routing.route_served` claims it is :func:`repro.routing.route`
with every per-hop BFS replaced by a table lookup against a maintained
:class:`~repro.dynamic.serving.RoutingService` — nothing more.  The suite
pins that as a property: identical path, delivery, potentials and hop
counts for every pair, on the initial build and after every churn regime,
plus the served mode of :func:`route_all_pairs_stats` aggregating to the
same statistics.
"""

import pytest

from repro.dynamic import RoutingService, SCENARIO_NAMES, make_scenario
from repro.errors import NodeNotFound, ParameterError
from repro.graph.generators import path_graph, random_connected_gnp
from repro.routing import route, route_all_pairs_stats, route_served


def sample_pairs_all(n, stride=1):
    return [(s, t) for s in range(n) for t in range(n) if s != t][::stride]


def assert_same_journey(service, h, g, pairs, context=""):
    for s, t in pairs:
        ref = route(h, g, s, t)
        fast = route_served(service, s, t)
        assert fast.path == ref.path, f"path diverged for {(s, t)} {context}"
        assert fast.delivered == ref.delivered, f"delivery diverged for {(s, t)} {context}"
        assert fast.potentials == ref.potentials, f"potentials diverged for {(s, t)} {context}"
        assert fast.hops == ref.hops


class TestServedEqualsBfsRoute:
    def test_static_graph_all_pairs(self):
        g = random_connected_gnp(24, 0.15, seed=7)
        service = RoutingService(g, "kcover")
        assert_same_journey(service, service.advertised, g, sample_pairs_all(g.num_nodes))

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_under_churn_every_scenario(self, name):
        sc = make_scenario(name, 30, 20, seed=13)
        service = RoutingService(sc.initial, "kcover")
        for ev in sc.events:
            service.apply(ev)
        h, g = service.advertised, service.graph
        assert_same_journey(service, h, g, sample_pairs_all(g.num_nodes, stride=3), name)

    @pytest.mark.parametrize(
        "method,kwargs", [("mis", {"r": 3}), ("greedy", {"r": 2}), ("kmis", {"k": 2})]
    )
    def test_other_constructions(self, method, kwargs):
        g = random_connected_gnp(20, 0.2, seed=5)
        service = RoutingService(g, method, **kwargs)
        assert_same_journey(
            service, service.advertised, g, sample_pairs_all(g.num_nodes, stride=2), method
        )

    def test_unroutable_pairs_agree(self):
        # A disconnected topology: some pairs are unroutable from the start.
        g = path_graph(6)
        g.remove_edge(2, 3)
        service = RoutingService(g, "kcover")
        assert_same_journey(service, service.advertised, g, sample_pairs_all(6))

    def test_max_hops_guard_matches(self):
        g = random_connected_gnp(18, 0.2, seed=11)
        service = RoutingService(g, "kcover")
        h = service.advertised
        for cap in (0, 1, 2):
            for s, t in sample_pairs_all(g.num_nodes, stride=7):
                ref = route(h, g, s, t, max_hops=cap)
                fast = route_served(service, s, t, max_hops=cap)
                assert fast.path == ref.path and fast.delivered == ref.delivered

    def test_validation_mirrors_route(self):
        g = random_connected_gnp(10, 0.3, seed=3)
        service = RoutingService(g, "kcover")
        with pytest.raises(ParameterError):
            route_served(service, 2, 2)
        with pytest.raises(NodeNotFound):
            route_served(service, 0, 99)


class TestServedStatsMode:
    def test_stats_agree_with_bfs_mode(self):
        sc = make_scenario("failure", 26, 15, seed=17)
        service = RoutingService(sc.initial, "kcover")
        for ev in sc.events:
            service.apply(ev)
        pairs = sample_pairs_all(service.num_nodes, stride=5)
        via_bfs = route_all_pairs_stats(service.advertised, service.graph, pairs=pairs)
        via_tables = route_all_pairs_stats(service=service, pairs=pairs)
        assert via_tables == via_bfs

    def test_service_mode_defaults_h_and_g(self):
        g = random_connected_gnp(14, 0.25, seed=9)
        service = RoutingService(g, "kcover")
        stats = route_all_pairs_stats(service=service)
        assert stats.pairs > 0
        assert stats.invariant_violations == 0

    def test_missing_inputs_rejected(self):
        with pytest.raises(ParameterError):
            route_all_pairs_stats()


class TestServiceReadAccessors:
    def test_distance_matches_advertised_bfs(self):
        from repro.graph import bfs_distances

        g = random_connected_gnp(18, 0.2, seed=21)
        service = RoutingService(g, "kcover")
        h = service.advertised
        for u in range(0, g.num_nodes, 4):
            dist = bfs_distances(h, u)
            for v in range(g.num_nodes):
                expected = dist[v] if dist[v] >= 0 else None
                assert service.distance(u, v) == expected

    def test_distance_validates_ids(self):
        g = path_graph(5)
        service = RoutingService(g, "kcover")
        with pytest.raises(NodeNotFound):
            service.distance(0, 9)
        with pytest.raises(NodeNotFound):
            service.distance(9, 0)

    def test_num_nodes_tracks_joins(self):
        from repro.dynamic import NodeEvent

        g = path_graph(4)
        service = RoutingService(g, "kcover")
        assert service.num_nodes == 4
        service.apply(NodeEvent.join(4))
        assert service.num_nodes == 5
