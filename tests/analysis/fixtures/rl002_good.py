"""RL002 fixtures — seeds threaded through repro.rng."""

from repro.rng import derive_seed, ensure_rng


def make_stream(seed):
    return ensure_rng(derive_seed(seed, "fixture"))
