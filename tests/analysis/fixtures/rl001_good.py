"""RL001 fixtures — the compliant bracket shape."""


def bracketed(attached, u, row):
    attached.begin_row_write(u)
    try:
        attached.array[u] = row
    finally:
        attached.end_row_write(u)


def bracketed_alias(attached, u, row):
    arr = attached.array
    attached.begin_row_write(u)
    try:
        arr[u] = row
    finally:
        attached.end_row_write(u)


def no_brackets_no_rule(matrix, u, row):
    # A function that never opens a bracket may write freely (unversioned
    # matrices, single-process setup code).
    matrix.array[u] = row
