"""RL003 fixtures — shared memory only through the shm module API."""

from repro.parallel.shm import SharedMatrix, attach_csr


def attach(handle):
    return attach_csr(handle)


def make_matrix(rows, cols):
    return SharedMatrix(rows, cols, versioned=True)
