"""RL004 fixtures — inlined dispatch thresholds (linted at a dispatch path)."""

AUTO_MIN_NODES = 64


def pick_backend(g):
    if g.num_nodes < 48:
        return "sets"
    return "csr"


def pick_workers(cpu_count):
    return 4 if cpu_count > 8 else 1
