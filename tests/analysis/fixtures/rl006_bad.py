"""RL006 fixtures — silent broad exception handlers."""


def swallow_everything(fn):
    try:
        return fn()
    except:
        return None


def swallow_exception(fn):
    try:
        return fn()
    except Exception:
        return None


def swallow_tuple(fn):
    try:
        return fn()
    except (ValueError, BaseException):
        return None
