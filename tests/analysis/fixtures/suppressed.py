"""Suppression fixtures — inline disables silence exactly their codes."""

import random


def seeded_elsewhere():
    return random.Random(0)  # reprolint: disable=RL002 -- fixture-approved


def swallow(fn):
    try:
        return fn()
    except Exception:  # reprolint: disable
        return None


def wrong_code_does_not_silence():
    return random.Random(1)  # reprolint: disable=RL001
