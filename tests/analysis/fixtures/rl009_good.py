"""RL009 good: seeds flow from the caller through repro.rng."""

from ..rng import derive_seed, ensure_rng


def helper(n, seed):
    rng = ensure_rng(seed)
    child = ensure_rng(derive_seed(seed, "helper"))
    return rng, child


def fresh_entropy():
    # No seed parameter to ignore: ensure_rng(None) is the documented
    # "give me OS entropy" escape hatch.
    return ensure_rng(None)
