"""RL011 good: retry loops only spin; blocking stays outside them."""

import time

_SEQLOCK_MAX_TRIES = 200_000


def read_row(ver, arr, u):
    for attempt in range(_SEQLOCK_MAX_TRIES):
        v0 = int(ver[u])
        if v0 & 1:
            _spin(attempt)
            continue
        row = snapshot(arr, u)  # pure copy, nothing blocking
        if int(ver[u]) == v0:
            return row
        _spin(attempt)
    raise RuntimeError("row never stabilized")


def snapshot(arr, u):
    return list(arr[u])


def drain(work_q):
    time.sleep(0.0)  # blocking is fine outside the retry loop
    return work_q.get()
