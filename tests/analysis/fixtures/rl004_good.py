"""RL004 fixtures — thresholds read from repro.tuning."""

from repro import tuning

_PROTOCOL_VERSION = 3  # not a dispatch threshold: name does not look like one


def pick_backend(g):
    if g.num_nodes < tuning.get().auto_min_nodes:
        return "sets"
    return "csr"
