"""RL005 fixtures — module-level task functions only."""

import multiprocessing

from repro.parallel import pool


def task_one(state, payload):
    return payload


TASKS = {"one": task_one, "alias": pool._task_echo}


def spawn_proc():
    return multiprocessing.Process(target=task_one, args=(None, None))
