"""RL007 fixture: bare perf_counter timing outside repro/obs (4 findings)."""

import time
from time import perf_counter

t0 = time.perf_counter()
work = sum(range(100))
elapsed = time.perf_counter() - t0
t_bare = perf_counter()
t_ns = time.perf_counter_ns()
