"""RL005 fixtures — task registrations that die under spawn."""

import multiprocessing


def good_task(state, payload):
    return payload


def register_late():
    def inner(state, payload):
        return payload

    TASKS["late"] = inner


TASKS = {
    "ok": good_task,
    "bad_lambda": lambda state, payload: payload,
    "bad_call": make_task(),
}


def spawn_proc():
    return multiprocessing.Process(target=lambda: None)
