"""RL009 bad: repro.rng entry points fed literals in library code."""

from ..rng import derive_seed, ensure_rng


def helper(n, seed):
    rng = ensure_rng(12345)  # literal re-seed: detaches from the experiment
    alt = ensure_rng(None)  # ignores the seed parameter it was given
    child = derive_seed(7, "helper")  # literal root for a derived stream
    return rng, alt, child
