"""RL007 fixture: timing through the repro.obs helpers (clean)."""

import time

from repro import obs
from repro.obs import Stopwatch, time_best

sw = Stopwatch()
work = sum(range(100))
elapsed = sw.elapsed()

with obs.span("fixture.region") as sp:
    more = sum(range(10))
duration = sp.seconds

best = time_best(lambda: sum(range(100)), repeats=2)

deadline = time.monotonic() + 5.0  # deadline arithmetic is not timing
