"""RL010 bad: shared-memory owners that never reach a close or an owner."""

from multiprocessing.shared_memory import SharedMemory


def publish(csr):
    shared = csr.share()  # leak: nothing ever closes or stores it
    print(shared.handle.indptr_name)


def peek(block):
    size = block.size  # does NOT take ownership: no close/store/return
    return size


def create_and_drop(nbytes):
    block = SharedMemory(create=True, size=nbytes)
    peek(block)  # resolved callee provably never closes it


def close_only_on_error(nbytes):
    block = SharedMemory(create=True, size=nbytes)
    try:
        pass
    except OSError:
        block.unlink()  # only the exceptional path cleans up: still a leak
