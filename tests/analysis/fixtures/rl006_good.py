"""RL006 fixtures — the allowed exception-handling shapes."""


def narrow(fn):
    try:
        return fn()
    except (OSError, ValueError):
        return None


def wraps(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


class Holder:
    def close(self):
        pass

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
