"""Fixture: loop-safe coroutine idiom (RL013 finds nothing here).

Linted under a pretend ``src/repro/distributed/`` path, never imported.
Awaited asyncio primitives, ``_nowait`` variants, ``dict.get`` on plain
names, sync helpers, and nested defs are all allowed.
"""

import asyncio
import queue
import time

inbox = asyncio.Queue()
backlog_queue = queue.Queue()


def sync_helper() -> None:
    time.sleep(0.01)  # plain function: RL013 only guards coroutines


async def pump(reader, writers: dict):
    await asyncio.sleep(0.01)  # awaited: the loop keeps scheduling
    item = await inbox.get()  # awaited asyncio.Queue
    try:
        extra = backlog_queue.get_nowait()  # non-blocking variant
    except queue.Empty:
        extra = None
    writer = writers.get(0)  # dict.get on a plain name stays clean
    data = await reader.readexactly(4)  # asyncio streams, not socket.recv

    def executor_target() -> None:
        time.sleep(0.2)  # nested def runs off-loop (executor target)

    return item, extra, writer, data, executor_target
