"""RL000 fixture — a file the engine cannot parse."""


def broken(:
    pass
