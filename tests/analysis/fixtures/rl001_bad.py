"""RL001 fixtures — every way a seqlock bracket can be unbalanced."""


def unbracketed_begin(attached, u, row):
    attached.begin_row_write(u)  # no try/finally follows
    attached.array[u] = row  # versioned write outside a bracket
    attached.end_row_write(u)  # end outside any finally block


def mismatched_receiver(a, b, u):
    a.begin_row_write(u)
    try:
        a.array[u] = 0
    finally:
        b.end_row_write(u)  # closes the wrong matrix
