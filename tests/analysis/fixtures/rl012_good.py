"""RL012 fixture: arming through the environment protocol (clean)."""

from repro import faults
from repro.faults import PLANS


def arm_for_children(environ):
    faults.arm_env(PLANS["crashy"], environ)
    faults.maybe_install_from_env()  # respects an already-armed plan


def observe_and_disarm():
    if faults.active:
        print(faults.fired())
    faults.worker_reset(0, incarnation=1)
    faults.uninstall()


class Installer:
    def install(self, widget):  # unrelated install methods stay legal
        self.widget = widget


Installer().install("antenna")
