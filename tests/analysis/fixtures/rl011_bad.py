"""RL011 bad: blocking calls inside a seqlock read-retry loop."""

import time

_SEQLOCK_MAX_TRIES = 200_000


def read_row(ver, arr, u):
    for attempt in range(_SEQLOCK_MAX_TRIES):
        v0 = int(ver[u])
        if v0 & 1:
            _spin(attempt)
            continue
        row = fetch(arr, u)  # transitively blocking callee
        time.sleep(0.01)  # direct blocking call inside the retry loop
        if int(ver[u]) == v0:
            return row
        _spin(attempt)


def fetch(arr, u):
    return work_q.get()  # a queue get can park the reader forever
