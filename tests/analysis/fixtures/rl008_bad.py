"""RL008 bad: versioned-matrix writes reachable without a bracket.

The write sits in a callee, so per-file RL001 sees nothing wrong in
either function — only the interprocedural pass connects the tainted
argument to the sink parameter.
"""


def write_row(dest, u, row):
    dest.array[u] = row  # sink: the parameter reaches a row write


def repair(state, rows):
    dist = state.matrices["dist"]
    for u, row in rows:
        write_row(dist, u, row)  # tainted matrix into the sink, no bracket


def local_write(pool):
    m = pool.matrix("d", 8, 8, versioned=True)
    m.array[0] = 1  # direct unbracketed write to a versioned matrix


def alias_write(state):
    arr = state.matrix("dist")  # worker-state accessor returns the array
    arr[3] = 0  # unbracketed write through the bare-array alias
