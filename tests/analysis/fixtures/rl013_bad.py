"""Fixture: blocking calls inside coroutines (RL013).

Linted under a pretend ``src/repro/distributed/`` path, never imported.
Four findings: module-alias time.sleep, from-import sleep alias, sync
queue get, raw socket recv.
"""

import queue
import time
from time import sleep as snooze

inbox_queue = queue.Queue()


async def tick_loop() -> None:
    time.sleep(0.05)  # finding: blocks the loop


async def drain(sock) -> bytes:
    item = inbox_queue.get(block=True)  # finding: sync queue get
    data = sock.recv(4096)  # finding: raw socket recv
    snooze(1)  # finding: from-import alias of time.sleep
    return item, data
