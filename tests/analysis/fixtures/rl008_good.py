"""RL008 good: the same callee write, but every path in is bracketed."""


def write_row(dest, u, row):
    dest.array[u] = row  # still a sink, but all callers bracket


def repair(state, rows):
    att = state.matrices["dist"]
    for u, row in rows:
        att.begin_row_write(u)
        try:
            write_row(att, u, row)
        finally:
            att.end_row_write(u)


def local_write(pool):
    m = pool.matrix("d", 8, 8, versioned=True)
    m.begin_row_write(0)
    try:
        m.array[0] = 1
    finally:
        m.end_row_write(0)


def unversioned_write(pool):
    plain = pool.matrix("scratch", 8, 8, versioned=False)
    plain.array[0] = 1  # explicitly unversioned: no bracket required
