"""RL012 fixture: ad-hoc fault-hook installation outside repro/faults/."""

import repro.faults
from repro import faults
from repro.faults import PLANS, install  # the import alone is a finding


def arm_directly():
    faults.install(PLANS["crashy"])  # bypasses the env protocol
    repro.faults.install(PLANS["crashy"])  # dotted spelling, same offence


def poke_state():
    faults.active = True  # hook state mutated behind install/uninstall
