"""RL010 good: every owner is closed, stored, returned, or handed off."""

from multiprocessing.shared_memory import SharedMemory


def publish(csr, registry):
    shared = csr.share()
    registry["csr"] = shared  # a registered owner keeps the lifetime
    return shared


def adopt(block):
    block.close()
    block.unlink()  # this callee takes ownership


def create_and_hand_off(nbytes):
    block = SharedMemory(create=True, size=nbytes)
    adopt(block)


def create_and_close(nbytes):
    block = SharedMemory(create=True, size=nbytes)
    try:
        return bytes(block.buf[:8])
    finally:
        block.close()
        block.unlink()
