"""RL003 fixtures — shared-memory lifecycle violations."""

from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


def leak(name):
    block = SharedMemory(name=name, create=True, size=64)
    other = shared_memory.SharedMemory(name=name)
    return block, other


def poke(graph, attachment):
    graph._pin = attachment
    return graph._wrap_views
