"""RL002 fixtures — every raw RNG construction spelling."""

import random
import numpy as np
import numpy.random as npr
from random import shuffle
from numpy.random import default_rng


def make_streams():
    a = random.Random(3)
    b = np.random.default_rng()
    c = npr.normal()
    shuffle([1, 2])
    d = default_rng(5)
    return a, b, c, d
