"""Runtime sanitizer + the shared injected-violation corpus.

The corpus is the cross-validation contract of the two-layer design:
every deliberately injected protocol violation declares which layer —
the interprocedural pass (``static``), the runtime sanitizer
(``runtime``), or both — must catch it, and a parametrized test asserts
exactly that.  Violations the summaries over-approximate (nested begins
across dynamic activations, double-shipped snapshots) are runtime-only;
violations that never execute in tests (a blocking call in a retry loop)
are static-only; shm leaks are caught by both.

Worker-side checks run through the real :data:`repro.parallel.pool.TASKS`
fault-injection entry under both ``fork`` and ``spawn`` — the spawn
child installs the sanitizer purely from ``REPRO_SANITIZE`` at package
import, which is the production path.
"""

import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro.analysis import sanitize
from repro.analysis.deep import deep_lint_sources
from repro.analysis.lint import lint_file
from repro.analysis.lint.rules import SeqlockBracketRule
from repro.parallel import WorkerPool
from repro.parallel import shm as shm_mod
from repro.parallel.shm import SharedMatrix

FIXTURES = Path(__file__).parent / "fixtures"

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


@pytest.fixture(autouse=True)
def _sanitizer_off_after():
    yield
    sanitize.uninstall()


# --------------------------------------------------------------------- #
# sanitizer mechanics
# --------------------------------------------------------------------- #


class TestInstall:
    def test_env_parsing(self):
        assert sanitize.enabled_in_env({}) is None
        for off in ("", "0", "off", "false", "no", "OFF"):
            assert sanitize.enabled_in_env({"REPRO_SANITIZE": off}) is None
        assert sanitize.enabled_in_env({"REPRO_SANITIZE": "1"}) == "raise"
        assert sanitize.enabled_in_env({"REPRO_SANITIZE": "record"}) == "record"

    def test_install_uninstall_roundtrip(self):
        assert not sanitize.active
        sanitize.install("record")
        assert sanitize.active and sanitize.installed_mode() == "record"
        sanitize.uninstall()
        assert not sanitize.active and sanitize.installed_mode() is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            sanitize.install("explode")

    def test_suspended_restores_the_flag(self):
        sanitize.install("record")
        with sanitize.suspended():
            assert not sanitize.active
        assert sanitize.active

    def test_raise_mode_raises_and_records(self):
        sanitize.install("raise")
        with pytest.raises(sanitize.SanitizeError, match="unmatched"):
            sanitize.note_end_row_write("seg", 0)
        assert [v.kind for v in sanitize.violations()] == ["seqlock.unmatched_end"]

    def test_worker_reset_clears_inherited_state(self):
        sanitize.install("record")
        sanitize.note_segment_create("seg-a")
        sanitize.note_begin_row_write("seg-b", 1)
        sanitize.worker_reset()
        assert sanitize.open_segments() == set()
        assert sanitize.open_brackets() == {}
        assert sanitize.violations() == []


# --------------------------------------------------------------------- #
# the shared injected-violation corpus
# --------------------------------------------------------------------- #


def _runtime_nested_begin():
    m = SharedMatrix(4, 4, versioned=True, fill=0)
    try:
        m.begin_row_write(1)
        m.begin_row_write(1)  # reprolint: disable=RL001 -- injected violation
        m.end_row_write(1)
        m.end_row_write(1)
    finally:
        m.close()


def _runtime_unmatched_end():
    m = SharedMatrix(4, 4, versioned=True, fill=0)
    try:
        m.end_row_write(2)  # reprolint: disable=RL001 -- injected violation
        with sanitize.suspended():
            m.end_row_write(2)  # rebalance to even for the close
    finally:
        m.close()


def _runtime_open_at_close():
    m = SharedMatrix(4, 4, versioned=True, fill=0)
    m.begin_row_write(0)  # reprolint: disable=RL001 -- injected violation
    m.close()


def _runtime_segment_leak():
    block = shm_mod._create_block(64)
    try:
        assert sanitize.segment_open(block.name)
        sanitize.assert_no_leaks()  # records shm.leak for the open block
    finally:
        block.close()
        block.unlink()


def _runtime_leak_at_pool_close():
    with WorkerPool(workers=1, seed=3, start_method=START_METHODS[0]) as pool:
        pool.matrix("d", 4, 4, versioned=True, fill=0)
        owner = pool.matrix_owner("d")
        real_close = owner.close
        owner.close = lambda: None  # the injected leak
        try:
            pool.close()
        finally:
            owner.close = real_close
    with sanitize.suspended():
        real_close()


def _runtime_double_final_snapshot():
    import time

    from repro import obs

    pool = WorkerPool(workers=1, seed=3, start_method=START_METHODS[0])
    try:
        pool.run("echo", [None], to=[0])  # force a start
        # Forge a duplicated final snapshot (task id -2) on the result
        # queue — the exact-once shipping protocol violated in transit.
        pool._result_q.put((0, -2, True, obs.empty_snapshot()))
        pool._result_q.put((0, -2, True, obs.empty_snapshot()))
        time.sleep(0.3)
        pool._drain_final_snapshots({0})
    finally:
        with sanitize.suspended():
            pool.close()


@dataclass
class Case:
    """One injected violation and the layer(s) contracted to catch it."""

    name: str
    layers: "frozenset[str]"
    static_path: "str | None" = None  # pretend path for path-scoped rules
    static_fixture: "str | None" = None  # file in tests/analysis/fixtures
    static_rules: "frozenset[str]" = field(default_factory=frozenset)
    runtime: "object" = None  # callable run under record mode
    runtime_kinds: "frozenset[str]" = field(default_factory=frozenset)


CORPUS = [
    Case(
        name="unbracketed_write_in_callee",
        layers=frozenset({"static"}),
        static_fixture="rl008_bad.py",
        static_path="src/repro/under_test.py",
        static_rules=frozenset({"RL008"}),
    ),
    Case(
        name="literal_reseed_in_helper",
        layers=frozenset({"static"}),
        static_fixture="rl009_bad.py",
        static_path="src/repro/under_test.py",
        static_rules=frozenset({"RL009"}),
    ),
    Case(
        name="blocking_in_retry_loop",
        layers=frozenset({"static"}),
        static_fixture="rl011_bad.py",
        static_path="src/repro/under_test.py",
        static_rules=frozenset({"RL011"}),
    ),
    Case(
        name="leaked_shm_segment",
        layers=frozenset({"static", "runtime"}),
        static_fixture="rl010_bad.py",
        static_path="src/repro/under_test.py",
        static_rules=frozenset({"RL010"}),
        runtime=_runtime_segment_leak,
        runtime_kinds=frozenset({"shm.leak"}),
    ),
    Case(
        name="bracket_open_at_close",
        layers=frozenset({"static", "runtime"}),
        # The static half is per-file RL001 (begin not followed by
        # try/finally); the runtime half is the close-time state machine.
        static_fixture=None,
        runtime=_runtime_open_at_close,
        runtime_kinds=frozenset({"seqlock.open_at_close"}),
    ),
    Case(
        name="nested_begin",
        layers=frozenset({"runtime"}),
        runtime=_runtime_nested_begin,
        runtime_kinds=frozenset({"seqlock.nested_begin"}),
    ),
    Case(
        name="unmatched_end",
        layers=frozenset({"runtime"}),
        runtime=_runtime_unmatched_end,
        runtime_kinds=frozenset({"seqlock.unmatched_end"}),
    ),
    Case(
        name="leak_at_pool_close",
        layers=frozenset({"runtime"}),
        runtime=_runtime_leak_at_pool_close,
        runtime_kinds=frozenset({"shm.leak_at_pool_close"}),
    ),
    Case(
        name="double_final_snapshot",
        layers=frozenset({"runtime"}),
        runtime=_runtime_double_final_snapshot,
        runtime_kinds=frozenset({"obs.double_final_snapshot"}),
    ),
]


class TestCorpus:
    """Every injected violation is caught by its contracted layer(s)."""

    def test_every_case_declares_at_least_one_layer(self):
        for case in CORPUS:
            assert case.layers, case.name
            assert case.layers <= {"static", "runtime"}, case.name
            if "runtime" in case.layers:
                assert case.runtime is not None, case.name
            if "static" in case.layers and case.static_fixture is not None:
                assert case.static_rules, case.name

    @pytest.mark.parametrize(
        "case", [c for c in CORPUS if "static" in c.layers], ids=lambda c: c.name
    )
    def test_static_layer_catches(self, case):
        if case.static_fixture is not None:
            source = (FIXTURES / case.static_fixture).read_text(encoding="utf-8")
            findings = deep_lint_sources([(case.static_path, source)])
            assert case.static_rules <= {f.rule for f in findings}, case.name
        else:
            # bracket_open_at_close: the per-file layer owns this shape.
            source = (
                "def broken(owner):\n"
                "    owner.begin_row_write(0)\n"
                "    owner.close()\n"
            )
            findings = lint_file(
                "src/repro/under_test.py", [SeqlockBracketRule()], source=source
            )
            assert {f.rule for f in findings} == {"RL001"}

    @pytest.mark.parametrize(
        "case", [c for c in CORPUS if "runtime" in c.layers], ids=lambda c: c.name
    )
    def test_runtime_layer_catches(self, case):
        sanitize.install("record")
        sanitize.clear_violations()
        case.runtime()
        kinds = {v.kind for v in sanitize.violations()}
        assert case.runtime_kinds <= kinds, f"{case.name}: {kinds}"

    @pytest.mark.parametrize(
        "case", [c for c in CORPUS if c.layers == {"static"}], ids=lambda c: c.name
    )
    def test_static_only_cases_are_invisible_to_the_sanitizer(self, case):
        """The layer split is real: static-only corpus entries have no
        runtime scenario because no hook fires for them (the violating
        code never executes in a hook-instrumented path)."""
        assert case.runtime is None


# --------------------------------------------------------------------- #
# worker-side enforcement, fork + spawn
# --------------------------------------------------------------------- #


class TestWorkerSide:
    @pytest.mark.parametrize("method", START_METHODS)
    def test_nested_begin_caught_inside_real_workers(self, method, monkeypatch):
        # spawn children install purely from the environment at package
        # import; fork children inherit the parent's installed flag.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitize.install("raise")
        with WorkerPool(workers=2, seed=11, start_method=method) as pool:
            pool.matrix("d", 8, 8, versioned=True, fill=0)
            ((active, caught, kinds),) = pool.run(
                "sanitize_nested_begin", [("d", 3)], to=[0]
            )
        assert active is True
        assert caught is not None and "nested_begin" in caught
        assert "seqlock.nested_begin" in kinds

    @pytest.mark.parametrize("method", START_METHODS)
    def test_task_is_inert_when_sanitizer_is_off(self, method, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        with WorkerPool(workers=1, seed=11, start_method=method) as pool:
            pool.matrix("d", 8, 8, versioned=True, fill=0)
            ((active, caught, kinds),) = pool.run(
                "sanitize_nested_begin", [("d", 3)], to=[0]
            )
            # The counter arithmetic rebalanced: the row must read clean.
            owner = pool.matrix_owner("d")
            assert int(owner.row_versions[3]) % 2 == 0
        assert caught is None
        assert kinds == []

    def test_clean_parallel_traffic_records_no_violations(self):
        """Negative control: a correct bracketed workload under the
        sanitizer produces zero violations."""
        sanitize.install("record")
        with WorkerPool(workers=2, seed=5, start_method=START_METHODS[0]) as pool:
            pool.matrix("d", 6, 6, versioned=True, fill=-1)
            pool.run("echo", [1, 2], to=[0, 1])
        assert sanitize.violations() == []
