"""reprolint: engine mechanics, the seven rules over fixtures, repo self-check.

The fixture files in ``tests/analysis/fixtures/`` are deliberately
non-compliant (that is the test); they are excluded from ruff in
pyproject.toml and are never imported — only parsed.  Module-scoped rules
(RL002/RL003/RL004) are exercised by linting fixture *source* under a
fake in-scope path via ``lint_file(path, source=...)``.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    REGISTRY,
    Finding,
    Rule,
    default_rules,
    iter_python_files,
    lint_file,
    lint_paths,
    parse_suppressions,
    register,
)
from repro.analysis.lint.engine import PARSE_ERROR_CODE
from repro.analysis.lint.rules import (
    AsyncBlockingCallRule,
    ExceptionHygieneRule,
    FaultHookConfinementRule,
    RngDisciplineRule,
    SeqlockBracketRule,
    ShmLifecycleRule,
    TimingDisciplineRule,
    TuningConstantsRule,
    WorkerTaskSafetyRule,
)
from repro.cli import main
from repro.errors import ParameterError

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture_findings(name, rule, fake_path=None):
    """Lint one fixture with one rule, optionally under a pretend path."""
    path = FIXTURES / name
    if fake_path is None:
        return lint_file(path, [rule])
    return lint_file(fake_path, [rule], source=path.read_text(encoding="utf-8"))


class TestEngine:
    def test_parse_suppressions_codes_and_blanket(self):
        source = (
            "x = 1  # reprolint: disable=RL001,RL006 -- justified\n"
            "y = 2  # reprolint: disable\n"
            's = "# reprolint: disable=RL002"\n'
        )
        sup = parse_suppressions(source)
        assert sup[1] == frozenset({"RL001", "RL006"})
        assert sup[2] is None  # blanket disable
        assert 3 not in sup  # inside a string literal: not a comment

    def test_suppression_silences_only_its_code(self):
        findings = lint_file(FIXTURES / "suppressed.py")
        # RL002 and RL006 sites with matching disables are silent; the
        # RL002 site carrying a disable=RL001 comment still fires.
        assert [f.rule for f in findings] == ["RL002"]
        lines = (FIXTURES / "suppressed.py").read_text(encoding="utf-8").splitlines()
        assert "disable=RL001" in lines[findings[0].line - 1]  # wrong code kept it alive

    def test_suppression_applies_to_the_whole_logical_line(self):
        # A disable trailing ANY physical line of a wrapped statement —
        # including the closing paren, where formatters push comments —
        # silences the finding reported at the statement's first line.
        source = (
            "result = frobnicate(\n"
            "    alpha,\n"
            "    beta,\n"
            ")  # reprolint: disable=RL004\n"
        )
        sup = parse_suppressions(source)
        assert all(sup.get(line) == frozenset({"RL004"}) for line in (1, 2, 3, 4))

    def test_own_line_comment_scopes_to_its_line_only(self):
        source = "# reprolint: disable=RL001\nx = 1\ny = 2\n"
        sup = parse_suppressions(source)
        assert sup == {1: frozenset({"RL001"})}

    def test_comments_within_one_span_merge(self):
        source = (
            "value = build(  # reprolint: disable=RL002\n"
            "    arg,\n"
            ")  # reprolint: disable=RL006\n"
        )
        sup = parse_suppressions(source)
        assert sup[1] == frozenset({"RL002", "RL006"})
        assert sup[3] == frozenset({"RL002", "RL006"})

    def test_closing_paren_suppression_silences_a_wrapped_finding(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(\n"
            "    7,\n"
            ")  # reprolint: disable=RL002\n"
        )
        findings = lint_file("src/repro/x.py", [RngDisciplineRule()], source=source)
        assert findings == []
        kept = lint_file(
            "src/repro/x.py",
            [RngDisciplineRule()],
            source=source,
            keep_suppressed=True,
        )
        assert [(f.rule, f.suppressed) for f in kept] == [("RL002", True)]

    def test_syntax_error_becomes_rl000(self):
        findings = lint_file(FIXTURES / "rl000_syntax_error.py")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_CODE
        assert "does not parse" in findings[0].message

    def test_registry_has_the_ast_local_rules(self):
        rules = default_rules()
        assert [r.code for r in rules] == [f"RL00{i}" for i in range(1, 8)] + ["RL012", "RL013"]
        assert all(r.name and r.description for r in rules)
        assert set(REGISTRY) == {r.code for r in rules}

    def test_register_rejects_bad_and_duplicate_codes(self):
        with pytest.raises(ParameterError):

            @register
            class NoCode(Rule):
                code = "X1"

        with pytest.raises(ParameterError):

            @register
            class Duplicate(Rule):
                code = "RL001"

    def test_iter_python_files_skips_caches_and_rejects_missing(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-312.py").write_text("x = 1\n")
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / ".hidden" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        files = list(iter_python_files([tmp_path / "pkg"]))
        assert files == [tmp_path / "pkg" / "a.py"]
        with pytest.raises(ParameterError):
            list(iter_python_files([tmp_path / "nope"]))

    def test_findings_sort_by_location(self):
        a = Finding("a.py", 3, 0, "RL002", "m")
        b = Finding("a.py", 1, 4, "RL006", "m")
        assert sorted([a, b]) == [b, a]
        assert b.format() == "a.py:1:4: RL006 m"


class TestSeqlockBracketRule:
    def test_bad_fixture_flags_all_variants(self):
        findings = fixture_findings("rl001_bad.py", SeqlockBracketRule())
        assert [f.rule for f in findings] == ["RL001"] * 4
        messages = " | ".join(f.message for f in findings)
        assert "not immediately followed by a try/finally" in messages
        assert "outside a finally block" in messages
        assert "outside a seqlock" in messages

    def test_good_fixture_is_clean(self):
        assert fixture_findings("rl001_good.py", SeqlockBracketRule()) == []

    def test_mismatched_receiver_detected(self):
        findings = fixture_findings("rl001_bad.py", SeqlockBracketRule())
        # The a.begin / b.end pair contributes exactly one finding (the
        # unmatched begin); the end itself *is* inside a finally.
        mismatch = [f for f in findings if f.line >= 11]
        assert len(mismatch) == 1


class TestRngDisciplineRule:
    def test_bad_fixture_flags_every_spelling(self):
        findings = fixture_findings("rl002_bad.py", RngDisciplineRule())
        assert len(findings) == 5
        hits = " | ".join(f.message for f in findings)
        for spelling in ("random.Random", "np.random.default_rng", "npr.normal", "shuffle", "default_rng"):
            assert spelling in hits

    def test_good_fixture_is_clean(self):
        assert fixture_findings("rl002_good.py", RngDisciplineRule()) == []

    def test_rng_module_itself_is_exempt(self):
        findings = fixture_findings("rl002_bad.py", RngDisciplineRule(), "src/repro/rng.py")
        assert findings == []


class TestShmLifecycleRule:
    def test_bad_fixture_flags_ctor_and_pin(self):
        findings = fixture_findings("rl003_bad.py", ShmLifecycleRule())
        hits = [f.message for f in findings]
        assert sum("SharedMemory" in m for m in hits) == 2
        assert sum("_pin" in m for m in hits) == 1
        assert sum("_wrap_views" in m for m in hits) == 1

    def test_good_fixture_is_clean(self):
        assert fixture_findings("rl003_good.py", ShmLifecycleRule()) == []

    def test_shm_module_itself_is_exempt(self):
        findings = fixture_findings(
            "rl003_bad.py", ShmLifecycleRule(), "src/repro/parallel/shm.py"
        )
        assert findings == []


class TestTuningConstantsRule:
    def test_bad_fixture_at_dispatch_path(self):
        findings = fixture_findings(
            "rl004_bad.py", TuningConstantsRule(), "src/repro/graph/traversal.py"
        )
        hits = " | ".join(f.message for f in findings)
        assert "AUTO_MIN_NODES" in hits
        assert "48" in hits and "8" in hits  # both literal gates
        assert len(findings) == 3

    def test_good_fixture_at_dispatch_path(self):
        findings = fixture_findings(
            "rl004_good.py", TuningConstantsRule(), "src/repro/graph/traversal.py"
        )
        assert findings == []

    def test_rule_is_scoped_to_dispatch_modules(self):
        # The same bad source is fine in a non-dispatch module.
        assert fixture_findings("rl004_bad.py", TuningConstantsRule()) == []


class TestWorkerTaskSafetyRule:
    def test_bad_fixture_flags_lambda_nested_and_calls(self):
        findings = fixture_findings("rl005_bad.py", WorkerTaskSafetyRule())
        hits = " | ".join(f.message for f in findings)
        assert "lambda used as a TASKS entry" in hits
        assert "nested function 'inner'" in hits
        assert "not a plain module-level function reference" in hits
        assert "lambda used as a Process target" in hits
        assert len(findings) == 4

    def test_good_fixture_is_clean(self):
        assert fixture_findings("rl005_good.py", WorkerTaskSafetyRule()) == []


class TestExceptionHygieneRule:
    def test_bad_fixture_flags_every_broad_handler(self):
        findings = fixture_findings("rl006_bad.py", ExceptionHygieneRule())
        labels = [f.message.split(" swallows")[0] for f in findings]
        assert labels == [
            "bare except",
            "except Exception",
            "except (ValueError, BaseException)",
        ]

    def test_good_fixture_is_clean(self):
        assert fixture_findings("rl006_good.py", ExceptionHygieneRule()) == []


class TestTimingDisciplineRule:
    def test_bad_fixture_flags_every_bare_clock(self):
        findings = fixture_findings("rl007_bad.py", TimingDisciplineRule())
        assert [f.rule for f in findings] == ["RL007"] * 4
        assert all("perf_counter" in f.message for f in findings)

    def test_good_fixture_is_clean(self):
        assert fixture_findings("rl007_good.py", TimingDisciplineRule()) == []

    def test_obs_package_is_exempt(self):
        # The same bare clocks are legal inside repro/obs/ — that is where
        # the one sanctioned perf_counter call site lives.
        findings = fixture_findings(
            "rl007_bad.py", TimingDisciplineRule(), "src/repro/obs/timing.py"
        )
        assert findings == []

    def test_rl012_flags_install_and_state_pokes(self):
        findings = fixture_findings("rl012_bad.py", FaultHookConfinementRule())
        assert len(findings) == 4  # the import, both install calls, .active
        assert all(f.rule == "RL012" for f in findings)
        assert any("install" in f.message for f in findings)
        assert any("faults.active" in f.message for f in findings)

    def test_rl012_env_protocol_is_clean(self):
        assert fixture_findings("rl012_good.py", FaultHookConfinementRule()) == []

    def test_rl012_faults_package_is_exempt(self):
        findings = fixture_findings(
            "rl012_bad.py", FaultHookConfinementRule(), "src/repro/faults/__init__.py"
        )
        assert findings == []


class TestAsyncBlockingCallRule:
    # RL013's gate is the inverse of RL007/RL012: it fires ONLY under
    # repro/distributed/ (the one package that runs an event loop), so
    # the bad fixture is linted under a pretend in-package path.
    IN_PACKAGE = "src/repro/distributed/actors_fixture.py"

    def test_bad_fixture_flags_every_blocking_idiom(self):
        findings = fixture_findings("rl013_bad.py", AsyncBlockingCallRule(), self.IN_PACKAGE)
        assert [f.rule for f in findings] == ["RL013"] * 4
        hits = " | ".join(f.message for f in findings)
        assert hits.count("time.sleep()") == 2  # module alias + from-import
        assert "sync queue .get()" in hits
        assert "blocking socket .recv()" in hits
        assert "tick_loop" in hits and "drain" in hits  # names the coroutine

    def test_good_fixture_is_clean_in_package(self):
        assert fixture_findings("rl013_good.py", AsyncBlockingCallRule(), self.IN_PACKAGE) == []

    def test_outside_the_package_is_exempt(self):
        # The same blocking source is out of scope anywhere else — the
        # rest of the codebase is synchronous by design.
        assert fixture_findings("rl013_bad.py", AsyncBlockingCallRule()) == []
        assert (
            fixture_findings("rl013_bad.py", AsyncBlockingCallRule(), "src/repro/cli.py") == []
        )

    def test_awaits_and_nowait_variants_pass(self):
        source = (
            "import asyncio\n"
            "async def ok(q):\n"
            "    await asyncio.sleep(0)\n"
            "    return await q.get(), q.get_nowait()\n"
        )
        assert lint_file(self.IN_PACKAGE, [AsyncBlockingCallRule()], source=source) == []


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007", "RL012", "RL013",
        ):
            assert code in out

    def test_findings_exit_nonzero_and_print_locations(self, capsys):
        assert main(["lint", str(FIXTURES / "rl006_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "RL006" in out and "rl006_bad.py:" in out
        assert "finding(s)" in out

    def test_clean_file_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "rl006_good.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/a/path"]) == 2
        assert "does not exist" in capsys.readouterr().out

    def test_json_format_schema_and_exit(self, capsys):
        import json

        assert main(["lint", "--format", "json", str(FIXTURES / "rl006_bad.py")]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "reprolint/1"
        assert data["deep"] is False
        first = data["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message", "suppressed"}
        assert data["summary"]["findings"] == len(data["findings"])
        assert data["summary"]["suppressed"] == 0

    def test_json_carries_suppressed_findings_flagged(self, capsys):
        import json

        assert main(["lint", "--format", "json", str(FIXTURES / "suppressed.py")]) == 1
        data = json.loads(capsys.readouterr().out)
        live = [f for f in data["findings"] if not f["suppressed"]]
        silenced = [f for f in data["findings"] if f["suppressed"]]
        assert [f["rule"] for f in live] == ["RL002"]
        assert len(silenced) == data["summary"]["suppressed"] > 0

    def test_json_clean_exits_zero(self, capsys):
        import json

        assert main(["lint", "--format", "json", str(FIXTURES / "rl006_good.py")]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["findings"] == []
        assert data["summary"] == {"findings": 0, "suppressed": 0}


class TestRepoIsClean:
    def test_repo_lints_clean(self):
        """The gate this PR ships: zero findings, zero baseline."""
        paths = [REPO_ROOT / d for d in ("src", "benchmarks", "scripts")]
        findings = lint_paths([p for p in paths if p.is_dir()])
        assert findings == [], "\n".join(f.format() for f in findings)
