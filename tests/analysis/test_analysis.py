"""Tests for power-law fitting, trial statistics, and table rendering."""

import numpy as np
import pytest

from repro.analysis import (
    fit_power_law,
    fit_power_law_with_log,
    format_cell,
    render_table,
    summarize,
)
from repro.errors import ParameterError


class TestPowerLaw:
    def test_recovers_exact_exponent(self):
        xs = [10, 20, 40, 80, 160]
        ys = [3.0 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(8) == pytest.approx(16.0)

    def test_noise_tolerance(self):
        rng = np.random.default_rng(0)
        xs = np.logspace(1, 3, 12)
        ys = 5 * xs**2 * np.exp(rng.normal(0, 0.05, 12))
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 2.0) < 0.1
        assert fit.r_squared > 0.98

    def test_log_corrected_fit(self):
        xs = [10.0, 30.0, 100.0, 300.0, 1000.0]
        ys = [2.0 * x ** (4 / 3) * np.log(x) for x in xs]
        fit = fit_power_law_with_log(xs, ys)
        assert fit.exponent == pytest.approx(4 / 3, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ParameterError):
            fit_power_law([1], [1])
        with pytest.raises(ParameterError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ParameterError):
            fit_power_law_with_log([1, 2], [1, 1])  # needs x > 1


class TestSummaries:
    def test_single_value(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.ci95 == 0.0

    def test_mean_and_bounds(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx(1.0)
        assert "±" in str(s)

    def test_ci_shrinks_with_n(self):
        small = summarize([1, 2, 3, 4])
        big = summarize(list(range(1, 5)) * 16)
        assert big.ci95 < small.ci95

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize([])


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("nan")) == "nan"
        assert format_cell("text") == "text"

    def test_render_alignment_and_borders(self):
        out = render_table(["name", "value"], [["alpha", 1], ["b", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("+")
        assert "alpha" in out
        # numeric column right-aligned: "22" ends at same position as header
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_mixed_width_rows(self):
        out = render_table(["a"], [[1], [100000]])
        assert "100000" in out
