"""Interprocedural pass: call graph, summaries, RL008–RL011, repo self-check.

Fixture files are linted under pretend paths via ``deep_lint_sources`` so
the path-scoped rules (RL009's library scope, RL008's shm.py exemption)
see the module layout they guard.  The shared violation corpus asserting
*which layer* catches each injected violation lives in
``test_sanitizer.py``.
"""

from pathlib import Path

import pytest

from repro.analysis.deep import (
    DEEP_REGISTRY,
    DeepRule,
    Project,
    Summaries,
    deep_lint_paths,
    deep_lint_sources,
    default_deep_rules,
    register_deep,
)
from repro.cli import main
from repro.errors import ParameterError

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture_source(name):
    return (FIXTURES / name).read_text(encoding="utf-8")


def fixture_deep_findings(name, fake_path="src/repro/under_test.py"):
    return deep_lint_sources([(fake_path, fixture_source(name))])


class TestCallGraph:
    def test_local_definitions_shadow_the_global_pool(self):
        project = Project.from_sources(
            [
                ("a.py", "def helper():\n    pass\n\ndef f():\n    helper()\n"),
                ("b.py", "def helper():\n    pass\n"),
            ]
        )
        ctx_a = project.contexts[0]
        call = ctx_a.tree.body[1].body[0].value
        targets = project.resolve(call, ctx_a)
        assert [t.qualname for t in targets] == ["a.py::helper"]

    def test_attribute_calls_fan_out_to_every_same_named_method(self):
        project = Project.from_sources(
            [
                ("a.py", "class A:\n    def go(self):\n        pass\n"),
                ("b.py", "class B:\n    def go(self):\n        pass\n"),
                ("c.py", "def caller(x):\n    x.go()\n"),
            ]
        )
        ctx_c = project.contexts[2]
        call = ctx_c.tree.body[0].body[0].value
        names = sorted(t.qualname for t in project.resolve(call, ctx_c))
        assert names == ["a.py::A.go", "b.py::B.go"]

    def test_external_calls_resolve_to_nothing(self):
        project = Project.from_sources([("a.py", "def f():\n    print(1)\n")])
        ctx = project.contexts[0]
        call = ctx.tree.body[0].body[0].value
        assert project.resolve(call, ctx) == []

    def test_unparsable_files_are_skipped(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    pass\n")
        (tmp_path / "broken.py").write_text("def f(:\n")
        project = Project.from_paths([tmp_path])
        assert [fi.name for fi in project.functions] == ["f"]


class TestSummaries:
    def test_sink_params_propagate_through_the_call_graph(self):
        project = Project.from_sources(
            [
                (
                    "src/repro/x.py",
                    "def leaf(dest, u):\n"
                    "    dest.array[u] = 0\n"
                    "\n"
                    "def middle(m, u):\n"
                    "    leaf(m, u)\n",
                )
            ]
        )
        summaries = Summaries(project)
        by_name = {fi.name: summaries.of[fi] for fi in project.functions}
        assert by_name["leaf"].sink_params == {0: "obj"}
        assert by_name["middle"].sink_params == {0: "obj"}  # transitive

    def test_bracketed_call_does_not_propagate_the_sink(self):
        project = Project.from_sources(
            [
                (
                    "src/repro/x.py",
                    "def leaf(dest, u):\n"
                    "    dest.array[u] = 0\n"
                    "\n"
                    "def middle(m, u):\n"
                    "    m.begin_row_write(u)\n"
                    "    try:\n"
                    "        leaf(m, u)\n"
                    "    finally:\n"
                    "        m.end_row_write(u)\n",
                )
            ]
        )
        summaries = Summaries(project)
        by_name = {fi.name: summaries.of[fi] for fi in project.functions}
        assert by_name["middle"].sink_params == {}

    def test_blocking_closure_is_transitive_and_spin_is_exempt(self):
        project = Project.from_sources(
            [
                (
                    "src/repro/x.py",
                    "import time\n"
                    "def _spin(attempt):\n"
                    "    time.sleep(0.0001)\n"
                    "\n"
                    "def inner(q):\n"
                    "    return q.get()\n"
                    "\n"
                    "def outer(queue):\n"
                    "    return inner(queue)\n",
                )
            ]
        )
        summaries = Summaries(project)
        by_name = {fi.name: summaries.of[fi] for fi in project.functions}
        assert by_name["_spin"].blocks is None  # the sanctioned ladder
        assert by_name["inner"].blocks is not None
        assert "inner" in by_name["outer"].blocks

    def test_attr_taint_is_scoped_per_class(self):
        project = Project.from_sources(
            [
                (
                    "src/repro/x.py",
                    "class Sharded:\n"
                    "    def setup(self, pool):\n"
                    "        self._dist = pool.matrix('d', 4, 4, versioned=True)\n"
                    "\n"
                    "class Serial:\n"
                    "    def setup(self):\n"
                    "        self._dist = make_numpy_array()\n"
                    "    def write(self, u):\n"
                    "        self._dist[u] = 0\n",
                )
            ]
        )
        summaries = Summaries(project)
        sharded = [fi for fi in project.functions if fi.cls == "Sharded"][0]
        serial = [fi for fi in project.functions if fi.cls == "Serial"][0]
        assert summaries.attr_kind(sharded, "self._dist") == "both"
        assert summaries.attr_kind(serial, "self._dist") is None


class TestDeepRegistry:
    def test_registry_has_the_four_deep_rules(self):
        rules = default_deep_rules()
        assert [r.code for r in rules] == ["RL008", "RL009", "RL010", "RL011"]
        assert all(r.name and r.description for r in rules)
        assert set(DEEP_REGISTRY) == {r.code for r in rules}

    def test_register_rejects_bad_and_duplicate_codes(self):
        with pytest.raises(ParameterError):

            @register_deep
            class NoCode(DeepRule):
                code = "deep-1"

        with pytest.raises(ParameterError):

            @register_deep
            class Duplicate(DeepRule):
                code = "RL008"


class TestInterproceduralBracket:
    def test_bad_fixture_flags_call_site_direct_and_alias_writes(self):
        findings = fixture_deep_findings("rl008_bad.py")
        assert [f.rule for f in findings] == ["RL008"] * 3
        messages = " | ".join(f.message for f in findings)
        assert "call to write_row()" in messages  # the interprocedural one
        assert "'m'" in messages  # direct write on a versioned construction
        assert "'arr'" in messages  # write through the state.matrix alias

    def test_good_fixture_is_clean(self):
        assert fixture_deep_findings("rl008_good.py") == []

    def test_shm_module_itself_is_exempt(self):
        findings = fixture_deep_findings(
            "rl008_bad.py", fake_path="src/repro/parallel/shm.py"
        )
        assert findings == []


class TestRngTaint:
    def test_bad_fixture_flags_literal_and_ignored_seed(self):
        findings = fixture_deep_findings("rl009_bad.py")
        assert [f.rule for f in findings] == ["RL009"] * 3
        messages = " | ".join(f.message for f in findings)
        assert "ensure_rng(12345)" in messages
        assert "ensure_rng(None) ignores the seed parameter" in messages
        assert "derive_seed(7)" in messages

    def test_good_fixture_is_clean(self):
        assert fixture_deep_findings("rl009_good.py") == []

    def test_rule_is_scoped_to_library_code(self):
        # The same literals are fine outside src/repro (tests, scripts).
        findings = fixture_deep_findings(
            "rl009_bad.py", fake_path="tests/helpers/seeding.py"
        )
        assert findings == []


class TestShmEscape:
    def test_bad_fixture_flags_all_three_leaks(self):
        findings = fixture_deep_findings("rl010_bad.py")
        assert [f.rule for f in findings] == ["RL010"] * 3
        messages = " | ".join(f.message for f in findings)
        assert "'shared' from .share()" in messages
        assert "'block' from SharedMemory" in messages
        assert "close_only_on_error" in messages  # except-only cleanup leaks

    def test_good_fixture_is_clean(self):
        assert fixture_deep_findings("rl010_good.py") == []


class TestBlockingInRetryLoop:
    def test_bad_fixture_flags_direct_and_transitive_blocking(self):
        findings = fixture_deep_findings("rl011_bad.py")
        assert [f.rule for f in findings] == ["RL011"] * 2
        messages = " | ".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "fetch()" in messages and "queue get" in messages

    def test_good_fixture_is_clean(self):
        assert fixture_deep_findings("rl011_good.py") == []


class TestSuppressions:
    def test_deep_findings_honor_inline_suppressions(self):
        source = fixture_source("rl009_bad.py").replace(
            "rng = ensure_rng(12345)",
            "rng = ensure_rng(12345)  # reprolint: disable=RL009",
        )
        findings = deep_lint_sources([("src/repro/under_test.py", source)])
        assert [f.line for f in findings if f.rule == "RL009"] == [8, 9]

    def test_keep_suppressed_marks_instead_of_dropping(self):
        source = fixture_source("rl009_bad.py").replace(
            "rng = ensure_rng(12345)",
            "rng = ensure_rng(12345)  # reprolint: disable=RL009",
        )
        findings = deep_lint_sources(
            [("src/repro/under_test.py", source)], keep_suppressed=True
        )
        assert [f.suppressed for f in findings] == [True, False, False]


class TestCliDeep:
    def test_deep_flag_runs_both_layers(self, capsys, tmp_path):
        target = tmp_path / "src" / "repro" / "helper.py"
        target.parent.mkdir(parents=True)
        target.write_text(fixture_source("rl009_bad.py"), encoding="utf-8")
        assert main(["lint", "--deep", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RL009" in out

    def test_list_rules_includes_the_deep_section(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL008", "RL009", "RL010", "RL011"):
            assert code in out
        assert "[deep]" in out


class TestRepoIsDeepClean:
    def test_repo_deep_lints_clean(self):
        """The zero-baseline gate: no interprocedural findings in the repo."""
        paths = [REPO_ROOT / p for p in ("src", "benchmarks", "scripts")]
        findings = deep_lint_paths(paths)
        assert findings == [], "\n".join(f.format() for f in findings)
