"""The benchmark-regression guard: band math, skips, and loud failures.

Runs ``scripts/bench_guard.py`` as a subprocess against a scratch git repo
with fabricated committed/fresh artifacts, which is exactly how
``scripts/check.sh`` step 4 invokes it.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

GUARD = str(Path(__file__).resolve().parent.parent / "scripts" / "bench_guard.py")


def run_guard(cwd, env=None):
    import os

    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, GUARD], cwd=cwd, env=full_env, capture_output=True, text=True
    )


@pytest.fixture
def scratch_repo(tmp_path):
    """A git repo with a committed baseline artifact (speedup 10x)."""
    subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
    results = tmp_path / "benchmarks" / "results"
    results.mkdir(parents=True)
    (results / "BENCH_traversal.json").write_text(
        json.dumps({"speedup_batched_vs_sets": 10.0})
    )
    subprocess.run(["git", "add", "-A"], cwd=tmp_path, check=True)
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit", "-qm", "baseline"],
        cwd=tmp_path,
        check=True,
    )
    return tmp_path


class TestBenchGuard:
    def test_skip_env_short_circuits(self, tmp_path):
        res = run_guard(tmp_path, env={"BENCH_GUARD_SKIP": "1"})
        assert res.returncode == 0
        assert "skipped" in res.stdout

    def test_within_band_passes(self, scratch_repo):
        (scratch_repo / "BENCH_traversal.json").write_text(
            json.dumps({"speedup_batched_vs_sets": 6.0})  # 60% of committed
        )
        res = run_guard(scratch_repo)
        assert res.returncode == 0, res.stdout + res.stderr
        assert "no regressions" in res.stdout

    def test_regression_fails_loudly(self, scratch_repo):
        (scratch_repo / "BENCH_traversal.json").write_text(
            json.dumps({"speedup_batched_vs_sets": 2.0})  # 20% of committed
        )
        res = run_guard(scratch_repo)
        assert res.returncode == 1
        assert "REGRESSION" in res.stderr
        assert "batched BFS vs sets" in res.stderr

    def test_tolerance_env_overrides_band(self, scratch_repo):
        (scratch_repo / "BENCH_traversal.json").write_text(
            json.dumps({"speedup_batched_vs_sets": 2.0})
        )
        res = run_guard(scratch_repo, env={"BENCH_GUARD_TOLERANCE": "0.1"})
        assert res.returncode == 0, res.stdout + res.stderr

    def test_missing_baseline_and_degraded_null_are_skips(self, scratch_repo):
        # A fresh artifact with no committed twin, and a null (degraded)
        # metric in a committed one, must both skip — never fail.
        (scratch_repo / "BENCH_queries.json").write_text(
            json.dumps({"query_throughput": {"speedup_served_vs_bfs": 100.0}})
        )
        (scratch_repo / "BENCH_traversal.json").write_text(
            json.dumps({"speedup_batched_vs_sets": None})
        )
        res = run_guard(scratch_repo)
        assert res.returncode == 0, res.stdout + res.stderr
        assert res.stdout.count("SKIP") >= 2

    def test_missing_fresh_artifacts_all_skip(self, scratch_repo):
        res = run_guard(scratch_repo)  # no fresh files at the root at all
        assert res.returncode == 0
        assert "no regressions" in res.stdout
