"""Tests for the regular-spanner and MPR baselines."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    additive_two_spanner,
    baswana_sen_spanner,
    bfs_tree,
    classical_mpr,
    dominating_set_for,
    extended_mpr_tree_nodes,
    full_topology,
    greedy_spanner,
    k_coverage_mpr,
    simulate_blind_flooding,
    simulate_mpr_flooding,
    spanning_forest,
)
from repro.core import is_remote_spanner
from repro.errors import ParameterError
from repro.graph import bfs_distances, is_connected
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_connected_gnp,
)

from ..conftest import connected_graphs, small_graphs


def spanner_stretch_ok(h, g, alpha, beta=0.0) -> bool:
    """Regular (not remote) spanner check: d_H ≤ α·d_G + β everywhere."""
    for u in g.nodes():
        dg = bfs_distances(g, u)
        dh = bfs_distances(h, u)
        for v in g.nodes():
            if dg[v] > 0:
                if dh[v] < 0 or dh[v] > alpha * dg[v] + beta + 1e-9:
                    return False
    return True


class TestGreedySpanner:
    @given(small_graphs(min_nodes=2, max_nodes=12), st.sampled_from([1, 3, 5]))
    @settings(max_examples=60, deadline=None)
    def test_stretch_certified(self, g, t):
        h = greedy_spanner(g, t)
        assert spanner_stretch_ok(h, g, float(t))
        assert h.is_spanning_subgraph_of(g)

    def test_stretch1_keeps_everything(self):
        g = gnp_random_graph(15, 0.4, seed=2)
        assert greedy_spanner(g, 1) == g

    def test_girth_property(self):
        # A (2k−1)-greedy spanner has girth > 2k: check k = 2 (girth > 4)
        # by looking for 3- and 4-cycles.
        g = gnp_random_graph(18, 0.5, seed=3)
        h = greedy_spanner(g, 3)
        for u, v in h.edges():
            common = h.neighbors(u) & h.neighbors(v)
            assert not common, "triangle found in 3-spanner"

    def test_moore_edge_bound(self):
        # O(n^{1+1/k}): for k=2 expect ≤ n^{1.5} + n edges.
        g = gnp_random_graph(40, 0.5, seed=4)
        h = greedy_spanner(g, 3)
        n = g.num_nodes
        assert h.num_edges <= n ** 1.5 + n

    def test_bad_stretch(self):
        with pytest.raises(ParameterError):
            greedy_spanner(path_graph(3), 0)


class TestBaswanaSen:
    @given(connected_graphs(min_nodes=2, max_nodes=12), st.integers(1, 3), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_stretch_certified(self, g, k, seed):
        h = baswana_sen_spanner(g, k, seed=seed)
        assert spanner_stretch_ok(h, g, 2 * k - 1)
        assert h.is_spanning_subgraph_of(g)

    def test_k1_returns_everything(self):
        g = gnp_random_graph(10, 0.5, seed=5)
        assert baswana_sen_spanner(g, 1, seed=0) == g

    def test_expected_size_reasonable(self):
        # On a dense graph with k=2, sizes should be well below m.
        g = gnp_random_graph(60, 0.5, seed=6)
        sizes = [baswana_sen_spanner(g, 2, seed=s).num_edges for s in range(5)]
        assert sum(sizes) / len(sizes) < 0.6 * g.num_edges

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            baswana_sen_spanner(path_graph(3), 0)

    def test_empty_graph(self):
        from repro.graph import Graph

        assert baswana_sen_spanner(Graph(0), 2).num_nodes == 0


class TestAdditiveSpanner:
    @given(connected_graphs(min_nodes=2, max_nodes=14))
    @settings(max_examples=60, deadline=None)
    def test_additive_two_certified(self, g):
        h = additive_two_spanner(g)
        assert spanner_stretch_ok(h, g, 1.0, 2.0)

    def test_translation_to_remote_spanner(self):
        # (1,2)-spanner ⇒ (2,1)-spanner ⇒ (2,0)-remote-spanner (§1.2).
        g = random_connected_gnp(20, 0.2, seed=7)
        h = additive_two_spanner(g)
        assert is_remote_spanner(h, g, 2.0, 0.0)

    def test_dominating_set_covers_targets(self):
        g = gnp_random_graph(20, 0.3, seed=8)
        targets = {v for v in g.nodes() if g.degree(v) >= 4}
        dom = dominating_set_for(g, targets)
        for t in targets:
            assert any(d == t or g.has_edge(d, t) for d in dom)

    def test_dominating_set_empty_targets(self):
        assert dominating_set_for(path_graph(3), set()) == []

    def test_bad_threshold(self):
        with pytest.raises(ParameterError):
            additive_two_spanner(path_graph(4), degree_threshold=0)


class TestMprSelections:
    def test_classical_mpr_dominates_two_ring(self):
        g = grid_graph(4, 4)
        for u in g.nodes():
            mprs = classical_mpr(g, u)
            from repro.graph.traversal import bfs_layers

            layers = bfs_layers(g, u, cutoff=2)
            two_ring = layers[2] if len(layers) > 2 else []
            for v in two_ring:
                assert g.neighbors(v) & mprs, (u, v)

    def test_k_coverage_supersets(self):
        g = gnp_random_graph(20, 0.35, seed=9)
        for u in (0, 5, 10):
            assert len(k_coverage_mpr(g, u, 1)) <= len(k_coverage_mpr(g, u, 2))

    def test_extended_mpr_nodes_within_two_hops(self):
        g = random_connected_gnp(15, 0.2, seed=10)
        for u in g.nodes():
            nodes = extended_mpr_tree_nodes(g, u)
            d = bfs_distances(g, u)
            assert all(1 <= d[x] <= 2 for x in nodes)


class TestFlooding:
    @given(connected_graphs(min_nodes=2, max_nodes=14), st.integers(1, 2))
    @settings(max_examples=50, deadline=None)
    def test_mpr_flooding_reaches_everyone(self, g, k):
        blind = simulate_blind_flooding(g, 0)
        mpr = simulate_mpr_flooding(g, 0, k=k)
        assert blind.reached == set(g.nodes())
        assert mpr.reached == set(g.nodes())
        assert mpr.transmissions <= blind.transmissions

    def test_flooding_savings_on_dense_graph(self):
        g = complete_graph(20)
        blind = simulate_blind_flooding(g, 0)
        mpr = simulate_mpr_flooding(g, 0)
        assert blind.transmissions == 20
        assert mpr.transmissions <= 2  # source + at most one relay

    def test_coverage_metric(self):
        g = path_graph(4)
        out = simulate_blind_flooding(g, 0)
        assert out.coverage(g) == 1.0

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            simulate_mpr_flooding(path_graph(3), 0, k=0)


class TestTrees:
    def test_bfs_tree_preserves_root_distances(self):
        g = grid_graph(4, 4)
        t = bfs_tree(g, 0)
        dg = bfs_distances(g, 0)
        dt = bfs_distances(t, 0)
        assert dg == dt

    def test_spanning_forest_covers_components(self):
        g = path_graph(6)
        g.remove_edge(2, 3)
        f = spanning_forest(g)
        assert f.num_edges == 4  # (n − #components)
        assert not is_connected(f) or is_connected(g)

    def test_full_topology_is_copy(self):
        g = cycle_graph(5)
        c = full_topology(g)
        assert c == g
        c.remove_edge(0, 1)
        assert g.has_edge(0, 1)
