"""Cross-cutting hypothesis invariants tying the whole library together.

These properties relate *different* subsystems to each other — the
strongest class of test because a bug must conspire across modules to
pass.  Each docstring names the mathematical fact being pinned.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    build_remote_spanner,
    dom_tree_greedy,
    dom_tree_kcover,
    is_dominating_tree,
)
from repro.graph import (
    AugmentedView,
    augmented_graph,
    bfs_distances,
    union,
)
from repro.paths import (
    k_connecting_profile,
    vertex_connectivity_pair,
)
from repro.paths.edge_disjoint import k_edge_connecting_profile

from ..conftest import connected_graphs, graph_with_subgraph, small_graphs


@given(graph_with_subgraph(min_nodes=2, max_nodes=9))
@settings(max_examples=60, deadline=None)
def test_subgraph_distances_sandwich(pair):
    """d_G ≤ d_{H_u} ≤ d_H pointwise — augmentation helps, never hurts."""
    g, h = pair
    for u in g.nodes():
        dg = bfs_distances(g, u)
        dhu = AugmentedView(h, g, u).distances_from(u)
        dh = bfs_distances(h, u)
        for v in g.nodes():
            if dh[v] >= 0:
                assert dhu[v] >= 0 and dhu[v] <= dh[v]
            if dhu[v] >= 0:
                assert dg[v] >= 0 and dg[v] <= dhu[v]


@given(small_graphs(min_nodes=2, max_nodes=8), st.integers(1, 3), st.data())
@settings(max_examples=60, deadline=None)
def test_edge_disjoint_dominates_node_disjoint(g, k, data):
    """d^k_edge ≤ d^k_node (every node-disjoint family is edge-disjoint)."""
    s = data.draw(st.integers(0, g.num_nodes - 1))
    t = data.draw(st.integers(0, g.num_nodes - 1))
    if s == t:
        return
    node_prof = k_connecting_profile(g, s, t, k)
    edge_prof = k_edge_connecting_profile(g, s, t, k)
    for dn, de in zip(node_prof, edge_prof):
        assert de <= dn


@given(small_graphs(min_nodes=2, max_nodes=8), st.data())
@settings(max_examples=60, deadline=None)
def test_menger_consistency(g, data):
    """Finite d^k ⇔ pair connectivity ≥ k (Menger via two solvers)."""
    s = data.draw(st.integers(0, g.num_nodes - 1))
    t = data.draw(st.integers(0, g.num_nodes - 1))
    if s == t:
        return
    kappa = vertex_connectivity_pair(g, s, t)
    profile = k_connecting_profile(g, s, t, min(kappa + 2, 5))
    for i, d in enumerate(profile, start=1):
        assert (d < math.inf) == (i <= kappa)


@given(connected_graphs(min_nodes=3, max_nodes=9))
@settings(max_examples=40, deadline=None)
def test_spanner_nesting_by_k(g):
    """Guarantees nest: the k=2 spanner works as a k=1 spanner, etc."""
    from repro.core import is_remote_spanner

    rs2 = build_k_connecting_spanner(g, k=2)
    assert is_remote_spanner(rs2.graph, g, 1.0, 0.0)


@given(connected_graphs(min_nodes=3, max_nodes=9))
@settings(max_examples=40, deadline=None)
def test_union_of_spanners_is_spanner(g):
    """Remote-spanners are closed under union (monotone property)."""
    from repro.core import is_remote_spanner

    a = build_k_connecting_spanner(g, k=1).graph
    b = build_remote_spanner(g, epsilon=1.0).graph
    u = union([a, b])
    assert is_remote_spanner(u, g, 1.0, 0.0)


@given(connected_graphs(min_nodes=3, max_nodes=9))
@settings(max_examples=30, deadline=None)
def test_adding_edges_preserves_remote_spanner(g):
    """Supersets of a remote-spanner (within G) remain remote-spanners."""
    from repro.core import is_remote_spanner

    rs = build_k_connecting_spanner(g, k=1)
    h = rs.graph.copy()
    for u, v in g.edges():
        h.add_edge(u, v)
        break  # add one extra edge
    assert is_remote_spanner(h, g, 1.0, 0.0)


@given(connected_graphs(min_nodes=3, max_nodes=9), st.integers(2, 3))
@settings(max_examples=40, deadline=None)
def test_greedy_tree_radius_monotone(g, r):
    """(r+1, β)-dominating trees are (r, β)-dominating (larger radius is a
    strictly stronger requirement on the same tree)."""
    tree = dom_tree_greedy(g, 0, r + 1, 1)
    assert is_dominating_tree(g, tree, r, 1)


@given(connected_graphs(min_nodes=3, max_nodes=9))
@settings(max_examples=40, deadline=None)
def test_kcover_star_sizes_bounded_by_degree(g):
    """|M| ≤ deg(u): the MPR star never exceeds the neighborhood."""
    for u in g.nodes():
        tree = dom_tree_kcover(g, u, 3)
        assert tree.num_edges <= g.degree(u)


@given(connected_graphs(min_nodes=3, max_nodes=8))
@settings(max_examples=30, deadline=None)
def test_biconnecting_spanner_preserves_pair_connectivity(g):
    """For every nonadjacent 2-connected pair (s,t), H_s keeps 2 disjoint
    paths — the connectivity half of Theorem 3, checked via flows."""
    rs = build_biconnecting_spanner(g)
    for s in g.nodes():
        for t in g.nodes():
            if t <= s or g.has_edge(s, t):
                continue
            if vertex_connectivity_pair(g, s, t) >= 2:
                hs = augmented_graph(rs.graph, g, s)
                assert vertex_connectivity_pair(hs, s, t) >= 2
