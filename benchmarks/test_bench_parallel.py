"""Exp **E-parallel** — sharded serving: repair throughput scaling over workers.

The PR-4 acceptance gate: the :class:`~repro.parallel.sharded.\
ShardedRoutingService` must repair ≥ 2× faster at 4 workers than at 1 on
the same n≈3000 churn stream — measured as the full W = 1, 2, 4 curve (so
the artifact shows *scaling*, not a point) together with the shared-memory
publish costs (full vs delta) that bound the per-event communication.

Degradation contract: worker counts above the host's CPU count cannot
speed anything up, so they are not measured and the speedup bar is not
asserted — on a single-core runner the artifact records the W = 1
measurement plus ``"degraded"`` with the reason, exactly as
``scripts/check.sh`` expects.  Correctness is asserted in every mode: the
sharded matrices must equal the serial service's after the whole stream
(the per-event property lives in ``tests/parallel/test_sharded.py``).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.dynamic import RoutingService, failure_recovery_scenario
from repro.parallel import ShardedRoutingService

REQUIRED_PARALLEL_SPEEDUP = 2.0  # sharded repair, 4 workers vs 1 worker
N_PAR = 3000
NUM_EVENTS = 60
PAR_SEED = 20090525
PUBLISH_ROUNDS = 20  # publish-cost micro-measure repetitions
CPU_COUNT = os.cpu_count() or 1


@pytest.fixture(scope="module")
def par_scenario():
    sc = failure_recovery_scenario(N_PAR, NUM_EVENTS, seed=PAR_SEED)
    assert sc.initial.num_nodes >= 2500, "parallel bench must keep n ≈ 3000"
    return sc


@pytest.fixture(scope="module", autouse=True)
def _fresh_artifact(results_dir):
    artifact = results_dir / "BENCH_parallel.json"
    if artifact.exists():
        artifact.unlink()


def _merge_artifact(results_dir, key, payload):
    artifact = results_dir / "BENCH_parallel.json"
    data = json.loads(artifact.read_text()) if artifact.exists() else {}
    data[key] = payload
    artifact.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def test_sharded_repair_throughput(par_scenario, record, results_dir):
    sc = par_scenario
    events = list(sc.events)

    # Serial reference (and correctness twin for the sharded runs).
    serial = RoutingService(sc.initial, "kcover")
    sw = obs.Stopwatch()
    for ev in events:
        serial.apply(ev)
    t_serial = sw.elapsed()
    assert serial.maintainer.full_rebuilds == 0, "low churn must never trip the fallback"

    worker_counts = [w for w in (1, 2, 4) if w <= CPU_COUNT] or [1]
    curve: dict[int, dict] = {}
    for w in worker_counts:
        with ShardedRoutingService(sc.initial, "kcover", workers=w) as sharded:
            sw = obs.Stopwatch()
            for ev in events:
                sharded.apply(ev)
            elapsed = sw.elapsed()
            assert np.array_equal(sharded._dist, serial._dist), f"D diverged at W={w}"
            assert np.array_equal(sharded._tables, serial._tables), f"T diverged at W={w}"
            curve[w] = {
                "seconds": round(elapsed, 6),
                "events_per_second": round(len(events) / elapsed, 2),
                "ms_per_event": round(elapsed * 1e3 / len(events), 3),
            }

    degraded = CPU_COUNT < 4
    speedup = (
        round(curve[1]["seconds"] / curve[4]["seconds"], 2) if 4 in curve else None
    )
    payload = {
        "graph": {
            "n": sc.initial.num_nodes,
            "m": sc.initial.num_edges,
            "kind": "udg-failure-recovery",
            "seed": PAR_SEED,
        },
        "events": NUM_EVENTS,
        "cpu_count": CPU_COUNT,
        "serial_seconds": round(t_serial, 6),
        "serial_events_per_second": round(len(events) / t_serial, 2),
        "workers": {str(w): stats for w, stats in curve.items()},
        "speedup_4_vs_1": speedup,
        "required_speedup": REQUIRED_PARALLEL_SPEEDUP,
        "degraded": (
            f"host has {CPU_COUNT} CPU(s) < 4: measured W ∈ {worker_counts} only, "
            "speedup bar not asserted"
            if degraded
            else None
        ),
    }
    _merge_artifact(results_dir, "sharded_repair", payload)
    curve_text = ", ".join(
        f"W={w}: {stats['events_per_second']} ev/s" for w, stats in curve.items()
    )
    record(
        "bench_parallel_repair",
        f"sharded repair n={sc.initial.num_nodes} events={NUM_EVENTS} "
        f"(cpus={CPU_COUNT}): serial {len(events) / t_serial:.1f} ev/s, {curve_text}"
        + (f" -> {speedup}x (required {REQUIRED_PARALLEL_SPEEDUP}x)" if speedup else " [degraded]"),
    )
    if not degraded:
        assert speedup is not None and speedup >= REQUIRED_PARALLEL_SPEEDUP, (
            f"sharded repair only {speedup}x faster at 4 workers than 1 "
            f"(need ≥ {REQUIRED_PARALLEL_SPEEDUP}x): {payload}"
        )


def test_shared_memory_publish_cost(par_scenario, record, results_dir, bench_rng):
    """Full vs delta publish of the n≈3000 snapshot — the per-event bus cost."""
    g = par_scenario.initial.copy()
    csr = g.freeze()
    shared = csr.share()
    try:
        sw = obs.Stopwatch()
        for _ in range(PUBLISH_ROUNDS):
            full_stats = shared.publish(csr)
        t_full = (sw.elapsed()) / PUBLISH_ROUNDS

        # Delta: flap one random edge per round (the serving layer's hint).
        edges = sorted(g.edges())
        t_delta = 0.0
        delta_bytes = []
        for i in range(PUBLISH_ROUNDS):
            u, v = edges[int(bench_rng.integers(len(edges)))]
            (g.remove_edge if g.has_edge(u, v) else g.add_edge)(u, v)
            snap = g.freeze()
            sw = obs.Stopwatch()
            delta_stats = shared.publish(snap, dirty_rows={u, v})
            t_delta += sw.elapsed()
            delta_bytes.append(delta_stats.bytes_written)
        t_delta /= PUBLISH_ROUNDS
    finally:
        shared.close()

    full_bytes = csr.numpy_arrays()[0].nbytes + csr.numpy_arrays()[1].nbytes
    payload = {
        "graph": {"n": csr.num_nodes, "m": csr.num_edges},
        "full_publish": {
            "mean_seconds": round(t_full, 8),
            "bytes": full_bytes,
        },
        "delta_publish": {
            "mean_seconds": round(t_delta, 8),
            "mean_bytes": round(sum(delta_bytes) / len(delta_bytes), 1),
            "rounds": PUBLISH_ROUNDS,
        },
    }
    assert full_stats.bytes_written == full_bytes
    assert max(delta_bytes) < full_bytes, "delta publish must ship less than a rewrite"
    _merge_artifact(results_dir, "publish_cost", payload)
    record(
        "bench_parallel_publish",
        f"shared-memory publish n={csr.num_nodes}: full {t_full * 1e3:.2f} ms "
        f"({full_bytes / 1e6:.1f} MB), delta {t_delta * 1e3:.2f} ms "
        f"(~{payload['delta_publish']['mean_bytes']:.0f} B/event)",
    )
