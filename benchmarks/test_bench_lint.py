"""Bench **B-lint** — the analysis gate itself stays fast enough to gate.

The deep pass parses every project file, builds the call graph, runs the
summary fixpoints, and checks RL008–RL011 — whole-program work that runs
on every ``./scripts/check.sh`` and every CI push.  The acceptance bar:
a **full deep analysis of the repo finishes in under 10 seconds**, so
the verification layer never becomes the bottleneck of the edit-check
loop it protects.

Timing is best-of-rounds (parse + fixpoint work is deterministic; the
min filters scheduler noise).  The shallow per-file pass is timed
alongside for scale, and ``deep_lint.files_per_second`` is the
bigger-is-better throughput metric ``scripts/bench_guard.py`` tracks
across commits.

Artifact: ``benchmarks/results/BENCH_lint.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.deep import deep_lint_paths, default_deep_rules
from repro.analysis.lint import default_rules, lint_paths

MAX_DEEP_WALL_SECONDS = 10.0  # the ISSUE bar: full analysis < 10 s
TIMING_ROUNDS = 3

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_TARGETS = [REPO_ROOT / p for p in ("src", "benchmarks", "scripts")]


@pytest.fixture(scope="module", autouse=True)
def _fresh_artifact(results_dir):
    artifact = results_dir / "BENCH_lint.json"
    if artifact.exists():
        artifact.unlink()


def _merge_artifact(results_dir, key, payload):
    artifact = results_dir / "BENCH_lint.json"
    data = json.loads(artifact.read_text()) if artifact.exists() else {}
    data[key] = payload
    artifact.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def _count_py_files(paths):
    return sum(1 for root in paths for _ in root.rglob("*.py"))


def test_deep_pass_wall_time(record, results_dir):
    files = _count_py_files(LINT_TARGETS)
    assert files > 20  # sanity: the repo is actually being analyzed

    # The gate the bench certifies: both passes are clean at HEAD (the
    # zero-baseline contract) — a timing bench over a dirty tree would
    # measure the wrong thing.
    shallow = lint_paths(LINT_TARGETS)
    deep = deep_lint_paths(LINT_TARGETS)
    assert shallow == [], [f.format() for f in shallow]
    assert deep == [], [f.format() for f in deep]

    t_shallow = obs.time_best(lambda: lint_paths(LINT_TARGETS), repeats=TIMING_ROUNDS)
    t_deep = obs.time_best(lambda: deep_lint_paths(LINT_TARGETS), repeats=TIMING_ROUNDS)

    payload = {
        "files": files,
        "shallow_rules": len(default_rules()),
        "deep_rules": len(default_deep_rules()),
        "shallow_wall_seconds": round(t_shallow, 3),
        "wall_seconds": round(t_deep, 3),
        "max_wall_seconds": MAX_DEEP_WALL_SECONDS,
        "files_per_second": round(files / t_deep, 1),
    }
    _merge_artifact(results_dir, "deep_lint", payload)
    record(
        "BENCH_lint_deep",
        f"deep lint: {files} files in {t_deep:.2f}s "
        f"({files / t_deep:,.0f} files/s, bar {MAX_DEEP_WALL_SECONDS:.0f}s; "
        f"shallow pass {t_shallow:.2f}s)",
    )
    assert t_deep < MAX_DEEP_WALL_SECONDS, (
        f"deep pass took {t_deep:.2f}s (bar {MAX_DEEP_WALL_SECONDS}s)"
    )
