"""Exp **E-rounds** — Algorithm 3's round complexity and T+2F stabilization.

Paper (§2.3): RemSpan runs in 2r−1+2β communication rounds for any input
graph, and in the periodic regime a topology change stabilizes within
T + 2F.  The bench measures both on UDG and G(n,p) instances.  Expected
shape: measured rounds == 2r−1+2β in every cell (graph-independent!);
every stabilization within bound.
"""

from repro.analysis import render_table
from repro.distributed import PeriodicLinkState, run_remspan
from repro.experiments import largest_component, scaled_udg
from repro.graph.generators import random_connected_gnp
from repro.rng import derive_seed


def _experiment():
    udg_full, _pts = scaled_udg(150, target_degree=10.0, seed=60)
    udg, _ids = largest_component(udg_full)
    gnp = random_connected_gnp(100, 0.05, seed=61)
    rows = []
    for gname, g in (("UDG", udg), ("G(n,p)", gnp)):
        for kind, kwargs, formula in (
            ("kcover", dict(k=1), "2*2-1+0"),
            ("kcover", dict(k=3), "2*2-1+0"),
            ("greedy", dict(r=3, beta=1), "2*3-1+2"),
            ("mis", dict(r=4), "2*4-1+2"),
            ("kmis", dict(k=2), "2*2-1+2"),
        ):
            res = run_remspan(g, kind, **kwargs)
            rows.append(
                [
                    gname,
                    f"{kind}{kwargs}",
                    res.communication_rounds,
                    res.expected_rounds,
                    formula,
                    res.stats.broadcasts,
                    res.spanner.num_edges,
                ]
            )
    # Stabilization trials.
    stab_rows = []
    for trial in range(4):
        g = random_connected_gnp(30, 0.1, seed=derive_seed(62, trial))
        sim = PeriodicLinkState(g.copy(), kind="kcover", k=1, period=6)

        def change(graph):
            graph.remove_edge(*sorted(graph.edges())[trial])

        rep = sim.stabilization_experiment(warmup=25, change=change)
        stab_rows.append(
            [
                trial,
                rep.change_step,
                rep.stabilized_step,
                rep.bound_step,
                rep.within_bound,
            ]
        )
    return rows, stab_rows


def test_distributed_rounds(benchmark, record):
    rows, stab_rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    text = (
        render_table(
            ["graph", "construction", "rounds", "expected", "formula", "broadcasts", "edges"],
            rows,
            title="E-rounds — RemSpan communication rounds (paper: 2r-1+2*beta, any graph)",
        )
        + "\n"
        + render_table(
            ["trial", "change step", "stabilized", "bound (T+2F)", "within"],
            stab_rows,
            title="E-rounds — periodic regime stabilization after a link failure",
        )
    )
    record("distributed", text)
    for row in rows:
        assert row[2] == row[3], f"round count mismatch: {row}"
    for row in stab_rows:
        assert row[4] is True, f"stabilization exceeded T+2F: {row}"
