"""Exp **E-queries** — the query-serving path: served lookups vs per-hop BFS.

The PR-5 acceptance gate: :func:`repro.routing.route_served` must answer
route queries ≥ 5× faster than the per-hop-BFS reference
:func:`repro.routing.route` at n≈1500 — measured as sustained query
throughput over a sampled pair population on a churned-in service, with
journey-for-journey agreement asserted on the side (speed means nothing if
the answers differ).

The second experiment measures the concurrency story: a
:class:`~repro.parallel.sharded.RouteReader` in a separate process serves
``next_hop`` lookups *while* the sharded service repairs a churn stream,
recording read latency percentiles, sustained read rate, and the seqlock
retry count.

Degradation contract: on a single-core runner the reader and the repair
workers time-share one CPU, so neither number reflects what concurrent
hardware can do — both payloads then carry a ``"degraded"`` marker with
the reason and the throughput bar is not asserted, exactly as
``scripts/check.sh`` expects.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import obs
from repro.dynamic import RoutingService, failure_recovery_scenario
from repro.graph import sample_pairs
from repro.parallel import ShardedRoutingService
from repro.rng import derive_seed
from repro.routing import route, route_served

REQUIRED_QUERY_SPEEDUP = 5.0  # served route queries vs per-hop-BFS routing
N_Q = 1500
NUM_EVENTS = 40
NUM_PAIRS = 60
SERVED_ROUNDS = 40  # extra passes so the fast path's timing is stable
Q_SEED = 20090525
CPU_COUNT = os.cpu_count() or 1

READ_N = 700
READ_EVENTS = 30


@pytest.fixture(scope="module", autouse=True)
def _fresh_artifact(results_dir):
    artifact = results_dir / "BENCH_queries.json"
    if artifact.exists():
        artifact.unlink()


def _merge_artifact(results_dir, key, payload):
    artifact = results_dir / "BENCH_queries.json"
    data = json.loads(artifact.read_text()) if artifact.exists() else {}
    data[key] = payload
    artifact.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def test_query_throughput_served_vs_bfs(record, results_dir):
    sc = failure_recovery_scenario(N_Q, NUM_EVENTS, seed=Q_SEED)
    assert sc.initial.num_nodes >= 1200, "query bench must keep n ≈ 1500"
    service = RoutingService(sc.initial, "kcover")
    for ev in sc.events:  # churn in: tables are post-repair, not pristine
        service.apply(ev)
    h, g = service.advertised, service.graph
    pairs = sample_pairs(
        g, NUM_PAIRS, seed=derive_seed(Q_SEED, "query-pairs"), require_nonadjacent=False
    )

    sw = obs.Stopwatch()
    reference = [route(h, g, s, t) for s, t in pairs]
    t_bfs = sw.elapsed()

    sw = obs.Stopwatch()
    for _ in range(SERVED_ROUNDS):
        for s, t in pairs:
            route_served(service, s, t)
    t_served = (sw.elapsed()) / SERVED_ROUNDS

    # Same answers, or the comparison is meaningless.
    for (s, t), ref in zip(pairs, reference):
        res = route_served(service, s, t)
        assert res.path == ref.path and res.delivered == ref.delivered

    qps_bfs = len(pairs) / t_bfs
    qps_served = len(pairs) / t_served
    speedup = round(qps_served / qps_bfs, 2)
    degraded = CPU_COUNT < 2
    payload = {
        "graph": {
            "n": g.num_nodes,
            "m": g.num_edges,
            "kind": "udg-failure-recovery",
            "seed": Q_SEED,
        },
        "events_soaked": NUM_EVENTS,
        "pairs": len(pairs),
        "cpu_count": CPU_COUNT,
        "bfs_route": {
            "seconds_per_pass": round(t_bfs, 6),
            "queries_per_second": round(qps_bfs, 2),
        },
        "route_served": {
            "seconds_per_pass": round(t_served, 6),
            "queries_per_second": round(qps_served, 2),
            "timed_rounds": SERVED_ROUNDS,
        },
        "speedup_served_vs_bfs": speedup,
        "required_speedup": REQUIRED_QUERY_SPEEDUP,
        "degraded": (
            f"host has {CPU_COUNT} CPU(s) < 2: recorded measurement only, "
            "speedup bar not asserted"
            if degraded
            else None
        ),
    }
    _merge_artifact(results_dir, "query_throughput", payload)
    record(
        "bench_query_throughput",
        f"route queries n={g.num_nodes} ({len(pairs)} pairs): per-hop BFS "
        f"{qps_bfs:.0f} q/s, served {qps_served:.0f} q/s -> {speedup}x "
        f"(required {REQUIRED_QUERY_SPEEDUP}x"
        + (", degraded: bar not asserted)" if degraded else ")"),
    )
    if not degraded:
        assert speedup >= REQUIRED_QUERY_SPEEDUP, (
            f"served routing only {speedup}x faster than per-hop BFS "
            f"(need ≥ {REQUIRED_QUERY_SPEEDUP}x): {payload}"
        )


def _bench_reader_main(directory, ready, stop, out_q):
    """Hammer next_hop lookups, recording per-read latency."""
    from repro.parallel import RouteReader
    from repro.rng import ensure_rng

    reader = RouteReader(directory)
    ready.set()
    rng = ensure_rng(derive_seed(Q_SEED, "bench-reader"))
    latencies = []
    try:
        while not stop.is_set():
            n = reader.num_nodes
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u == v:
                continue
            sw = obs.Stopwatch()
            reader.next_hop(u, v)
            latencies.append(sw.elapsed())
        latencies.sort()
        count = len(latencies)
        summary = {
            "reads": count,
            "mean_us": round(1e6 * sum(latencies) / max(count, 1), 2),
            "p50_us": round(1e6 * latencies[count // 2], 2) if count else None,
            "p99_us": round(1e6 * latencies[(99 * count) // 100], 2) if count else None,
            "torn_retries": reader.torn_retries,
        }
        out_q.put(("ok", summary))
    except BaseException as exc:  # pragma: no cover - surfaced by the bench
        out_q.put(("error", repr(exc)))
        raise
    finally:
        reader.close()


def test_read_latency_during_repair(record, results_dir):
    """Concurrent reads while the sharded service repairs a churn stream."""
    workers = min(2, CPU_COUNT)
    sc = failure_recovery_scenario(READ_N, READ_EVENTS, seed=Q_SEED + 1)
    ctx = multiprocessing.get_context()
    with ShardedRoutingService(sc.initial, "kcover", workers=workers) as service:
        ready, stop = ctx.Event(), ctx.Event()
        out_q = ctx.Queue()
        proc = ctx.Process(
            target=_bench_reader_main,
            args=(service.reader_handle(), ready, stop, out_q),
            daemon=True,
        )
        proc.start()
        assert ready.wait(timeout=120), "bench reader never attached"
        sw = obs.Stopwatch()
        for ev in sc.events:
            service.apply(ev)
        t_repair = sw.elapsed()
        stop.set()
        status, summary = out_q.get(timeout=120)
        proc.join(timeout=120)
    assert status == "ok", f"reader died: {summary}"
    assert summary["reads"] > 0, "no reads landed during the repair window"
    degraded = CPU_COUNT < 2
    payload = {
        "graph": {"n": sc.initial.num_nodes, "m": sc.initial.num_edges, "seed": Q_SEED + 1},
        "events": READ_EVENTS,
        "workers": workers,
        "cpu_count": CPU_COUNT,
        "repair_seconds": round(t_repair, 6),
        "reads_during_repair": summary["reads"],
        "reads_per_second": round(summary["reads"] / t_repair, 1),
        "latency_us": {
            "mean": summary["mean_us"],
            "p50": summary["p50_us"],
            "p99": summary["p99_us"],
        },
        "torn_retries": summary["torn_retries"],
        "degraded": (
            f"host has {CPU_COUNT} CPU(s) < 2: reader time-shares the core "
            "with the repair workers"
            if degraded
            else None
        ),
    }
    _merge_artifact(results_dir, "read_during_repair", payload)
    record(
        "bench_query_read_during_repair",
        f"concurrent reads n={sc.initial.num_nodes} W={workers} "
        f"(cpus={CPU_COUNT}): {summary['reads']} reads in {t_repair:.2f}s repair "
        f"({payload['reads_per_second']}/s), p50 {summary['p50_us']}µs "
        f"p99 {summary['p99_us']}µs, {summary['torn_retries']} seqlock retries"
        + (" [degraded]" if degraded else ""),
    )
