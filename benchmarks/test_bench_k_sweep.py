"""Exp **E-Th2-udg (k)** — the k^{2/3} dependence of Theorem 2.

Paper (Th. 2): the k-connecting (1,0)-remote-spanner has expected
``O(k^{2/3} n^{4/3} log n)`` edges on the Poisson unit disk graph.  At
fixed n we sweep k and fit the exponent.  Expected shape: sub-linear
growth in k, exponent ≈ 2/3 (band [0.4, 0.95] — the top of the sweep
starts saturating toward the full topology, flattening the fit).
"""

from repro.analysis import render_table
from repro.experiments import k_sweep


def test_k_sweep(benchmark, record):
    res = benchmark.pedantic(
        lambda: k_sweep(ks=(1, 2, 3, 4, 6), intensity=60.0, side=3.0, trials=2, seed=2),
        rounds=1,
        iterations=1,
    )
    exp = res.exponent("spanner_edges")
    rows = [[r.x, round(r.values["spanner_edges"], 1)] for r in res.rows]
    record(
        "k_sweep",
        render_table(
            ["k", "spanner edges"],
            rows,
            title=(
                "E-Th2-udg(k) — k-connecting (1,0)-remote-spanner size vs k\n"
                f"fitted exponent k^{exp:.2f} (paper: k^(2/3) ≈ k^0.67)"
            ),
        ),
    )
    assert 0.4 <= exp <= 0.95, f"k exponent {exp}"
    sizes = [r.values["spanner_edges"] for r in res.rows]
    assert sizes == sorted(sizes), "size must be monotone in k"
