"""Exp **E-Th2-opt / E-P2 / E-P6** — greedy vs exact optimum.

Paper: Algorithm 1 is within ``(1+β)(r+β−1)(1+log Δ)`` of the optimal
(r, β)-dominating tree (Prop. 2); Algorithm 4 within ``1+log Δ`` of the
optimal k-connecting star (Prop. 6); the spanner union within
``2(1+log Δ)`` of the optimal k-connecting (1,0)-remote-spanner (Th. 2).

The bench measures actual ratios on small random graphs against the exact
branch-and-bound optima.  Expected shape: mean ratios close to 1 (greedy
is near-optimal in practice), every ratio under its theoretical bound.
"""

import math
from statistics import mean

from repro.analysis import render_table
from repro.core import (
    build_k_connecting_spanner,
    dom_tree_greedy,
    dom_tree_kcover,
    k_connecting_spanner_lower_bound,
    optimal_dom_tree_edges,
    optimal_kconnecting_star_size,
)
from repro.graph.generators import random_connected_gnp


def _ratio_experiment():
    rows = []
    tree_ratios, star_ratios, global_ratios = [], [], []
    for seed in range(12):
        g = random_connected_gnp(12, 0.25, seed=100 + seed)
        delta = g.max_degree()
        for u in range(0, g.num_nodes, 4):
            greedy = dom_tree_greedy(g, u, 2, 0).num_edges
            opt = optimal_dom_tree_edges(g, u, 2, 0)
            if opt:
                tree_ratios.append(greedy / opt)
            star = dom_tree_kcover(g, u, 2).num_edges
            opt_star = optimal_kconnecting_star_size(g, u, 2)
            if opt_star:
                star_ratios.append(star / opt_star)
        rs = build_k_connecting_spanner(g, k=2)
        lb = k_connecting_spanner_lower_bound(g, 2)
        if lb:
            global_ratios.append(rs.num_edges / lb)
        bound = 2 * (1 + math.log(max(delta, 2)))
        rows.append([seed, delta, round(rs.num_edges / lb if lb else 1.0, 3), round(bound, 2)])
    return rows, tree_ratios, star_ratios, global_ratios


def test_approx_ratios(benchmark, record):
    rows, tree_ratios, star_ratios, global_ratios = benchmark.pedantic(
        _ratio_experiment, rounds=1, iterations=1
    )
    summary = [
        ["Prop 2: greedy (2,0)-tree / OPT", round(mean(tree_ratios), 3), round(max(tree_ratios), 3), "(1+log D)"],
        ["Prop 6: greedy k-star / OPT", round(mean(star_ratios), 3), round(max(star_ratios), 3), "(1+log D)"],
        ["Th 2: spanner / lower bound", round(mean(global_ratios), 3), round(max(global_ratios), 3), "2(1+log D)"],
    ]
    record(
        "approx_ratio",
        render_table(
            ["quantity", "mean ratio", "max ratio", "paper bound"],
            summary,
            title="E-P2/P6/Th2-opt — greedy vs exact optimum (12 random graphs, n=12)",
        ),
    )
    # Every measured ratio must respect its theoretical bound (Δ ≥ 2 here).
    assert max(tree_ratios) <= 1 + math.log(12)
    assert max(star_ratios) <= 1 + math.log(12)
    assert max(global_ratios) <= 2 * (1 + math.log(12))
    # And greedy should be near-optimal in practice.
    assert mean(tree_ratios) < 1.5
    assert mean(star_ratios) < 1.5
