"""Exp **Table 1** — remote-spanners vs regular spanners, regenerated.

Paper: Table 1 (the paper's only table) compares nine (input, spanner)
combinations by edge count and computation time.  This bench rebuilds the
seven reproducible rows on live instances (G(n,p) + Poisson-square UDG),
re-verifies every stretch promise, and records the table.  Expected shape:
remote-spanner rows sparser than their inputs on the UDG, constant round
counts matching 2r−1+2β, all "stretch ok" columns true.
"""

from repro.analysis import render_table
from repro.experiments import TABLE1_HEADERS, build_table1


def test_table1(benchmark, record):
    rows = benchmark.pedantic(
        lambda: build_table1(n_any=60, n_udg=250, k=2, epsilon=0.5, seed=2009),
        rounds=1,
        iterations=1,
    )
    text = render_table(
        TABLE1_HEADERS,
        [r.as_list() for r in rows],
        title="Table 1 — remote spanners versus regular spanners (measured)",
    )
    record("table1", text)
    for row in rows:
        assert row.stretch_ok in (True, "-"), f"row {row.row} failed verification"
