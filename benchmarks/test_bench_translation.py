"""Exp **E-translation** — §1.2's lemma and the "neighbors are free" gain.

Two measurements on one UDG instance:

1. **Translation lemma.**  Every (α, β)-spanner baseline is re-verified as
   an (α, β−α+1)-remote-spanner — the paper's bridge between the two
   notions, checked on real constructions (greedy, Baswana–Sen, additive).
2. **Remote advantage.**  For the same advertised sub-graph H, how much
   shorter are routes when each source grafts its own links
   (d_H − d_{H_u}, aggregated)?  This is the motivation of the whole
   paper, quantified.  Expected shape: a positive mean saving on every
   sparse H; zero only when H = G.
"""

from repro.analysis import render_table
from repro.baselines import additive_two_spanner, baswana_sen_spanner, greedy_spanner
from repro.core import (
    build_k_connecting_spanner,
    check_translation_lemma,
    is_spanner,
    remote_advantage,
)
from repro.experiments import largest_component, scaled_udg


def _experiment():
    g_full, _pts = scaled_udg(180, target_degree=11.0, seed=130)
    g, _ids = largest_component(g_full)
    spanners = {
        "greedy (3,0)-spanner": (greedy_spanner(g, 3), 3.0, 0.0),
        "Baswana-Sen k=2": (baswana_sen_spanner(g, 2, seed=131), 3.0, 0.0),
        "additive (1,2)-spanner": (additive_two_spanner(g), 1.0, 2.0),
        "(1,0)-remote-spanner": (build_k_connecting_spanner(g, k=1).graph, None, None),
    }
    rows = []
    for name, (h, alpha, beta) in spanners.items():
        lemma = (
            check_translation_lemma(h, g, alpha, beta) if alpha is not None else "-"
        )
        plain = is_spanner(h, g, alpha, beta) if alpha is not None else "-"
        adv = remote_advantage(h, g)
        rows.append(
            [
                name,
                h.num_edges,
                plain,
                lemma,
                adv.improved_pairs,
                round(adv.mean_savings, 3),
                adv.max_savings,
            ]
        )
    return g, rows


def test_translation(benchmark, record):
    g, rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    record(
        "translation",
        render_table(
            [
                "advertised H",
                "edges",
                "plain spanner ok",
                "translation lemma ok",
                "pairs improved by aug.",
                "mean hop saving",
                "max saving",
            ],
            rows,
            title=(
                "E-translation — spanner→remote-spanner lemma + the augmentation gain "
                f"(UDG n={g.num_nodes}, m={g.num_edges})"
            ),
        ),
    )
    for row in rows:
        assert row[3] in (True, "-"), f"translation lemma failed for {row[0]}"
