"""Exp **E-stretch** — measured stretch vs guaranteed bounds, graph zoo.

Paper: the constructions guarantee (1, 0), (1+ε, 1−2ε) and 2-connecting
(2, −1) stretch *for any input graph*.  The bench measures worst observed
stretch across a zoo of structured families and reports guarantee vs
measured.  Expected: zero violations everywhere; measured stretch usually
far below the guarantee (the bound is worst-case).
"""

from repro.analysis import render_table
from repro.core import (
    build_biconnecting_spanner,
    build_k_connecting_spanner,
    build_remote_spanner,
    k_connecting_stretch_stats,
    remote_stretch_stats,
)
from repro.graph import sample_pairs
from repro.graph.generators import (
    caterpillar_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    random_connected_gnp,
)


def _zoo():
    return {
        "cycle(24)": cycle_graph(24),
        "grid(6x6)": grid_graph(6, 6),
        "hypercube(5)": hypercube_graph(5),
        "caterpillar(8,3)": caterpillar_graph(8, 3),
        "gnp(40,.12)": random_connected_gnp(40, 0.12, seed=90),
    }


def _experiment():
    rows = []
    for name, g in _zoo().items():
        rs1 = build_k_connecting_spanner(g, k=1)
        st1 = remote_stretch_stats(rs1.graph, g)
        rs_eps = build_remote_spanner(g, epsilon=0.5)
        st_eps = remote_stretch_stats(rs_eps.graph, g)
        rs2 = build_biconnecting_spanner(g)
        pairs = sample_pairs(g, 20, seed=91)
        st2 = k_connecting_stretch_stats(rs2.graph, g, k=2, pairs=pairs)
        rows.append(
            [
                name,
                g.num_edges,
                rs1.num_edges,
                round(st1.max_ratio, 3),
                round(st_eps.max_ratio, 3),
                round(max(st2.max_ratio_by_k.values(), default=0.0), 3),
                st1.unreachable + st_eps.unreachable + st2.infeasible_pairs,
            ]
        )
    return rows


def test_stretch_zoo(benchmark, record):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    record(
        "stretch_zoo",
        render_table(
            [
                "graph",
                "edges",
                "(1,0)-RS edges",
                "(1,0) max stretch",
                "(1.5,0) max stretch",
                "2-conn max d^k ratio",
                "violations",
            ],
            rows,
            title="E-stretch — guaranteed vs measured stretch across the graph zoo",
        ),
    )
    for row in rows:
        assert row[3] == 1.0, f"(1,0) stretch broken on {row[0]}"
        assert row[4] <= 1.5 + 1e-9, f"(1.5,0) stretch broken on {row[0]}"
        assert row[5] <= 2.0 + 1e-9, f"2-connecting ratio broken on {row[0]}"
        assert row[6] == 0, f"unreachable pairs on {row[0]}"
