"""Shared benchmark plumbing.

Every bench regenerates one table/figure/claim of the paper and *records*
its output: printed to stdout (captured into ``bench_output.txt`` by the
top-level run) and persisted under ``benchmarks/results/`` so
``EXPERIMENTS.md`` can reference stable artifacts.

Heavy experiment benches use ``benchmark.pedantic(..., rounds=1)`` — the
quantity of interest is the experiment's *result*, not its nanosecond
timing; micro-benches of the constructions themselves (see
``test_bench_construction.py``) use the normal calibrated mode.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.rng import derive_seed, ensure_rng

RESULTS_DIR = Path(__file__).parent / "results"

#: Root seed for every benchmark instance.  All bench randomness derives
#: from it through :mod:`repro.rng` (never the global :mod:`random`
#: module), so the recorded tables are reproducible bit-for-bit.
BENCH_SEED = 20090525  # IPPS 2009


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def bench_rng(request) -> np.random.Generator:
    """A per-bench deterministic generator (stream keyed by the test id)."""
    return ensure_rng(derive_seed(BENCH_SEED, request.node.nodeid))


@pytest.fixture
def record(results_dir):
    """Persist and print a named experiment artifact."""

    def _record(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}")

    return _record
