"""Exp **E-ablation** — the design-choice comparisons of DESIGN.md.

Four knobs isolated on identical instances: Algorithm 1 vs Algorithm 2
trees, β = 0 vs β = 1, max-gain vs first-fit relay selection, and the MIS
pick ordering (nearest-first vs farthest-first).  Expected shape: greedy
trees smaller per node than MIS trees; first-fit strictly worse than
max-gain; farthest-first ordering produces (r, 1)-domination violations
while nearest-first produces none.
"""

from repro.analysis import render_table
from repro.experiments import (
    ablate_beta,
    ablate_first_fit,
    ablate_greedy_vs_mis,
    ablate_mis_order,
)


def _experiment():
    return (
        ablate_greedy_vs_mis(r=3, seed=11, n=220),
        ablate_beta(r=3, seed=12, n=220),
        ablate_first_fit(seed=13, n=220),
        ablate_mis_order(r=4, seed=14, n=220),
    )


def test_ablations(benchmark, record):
    gm, beta, ff, order = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    rows = []
    for rep in (gm, beta, ff, order):
        for variant, metrics in rep.variants.items():
            for metric, value in metrics.items():
                rows.append([rep.name, variant, metric, round(float(value), 3)])
    record(
        "ablation",
        render_table(
            ["ablation", "variant", "metric", "value"],
            rows,
            title="E-ablation — design-choice comparisons",
        ),
    )
    # Greedy chooses fewer edges per tree than the MIS variant.
    assert (
        gm.variants["greedy"]["mean_tree_edges"]
        <= gm.variants["mis"]["mean_tree_edges"] + 1e-9
    )
    # Max-gain beats first-fit.
    assert (
        ff.variants["max_gain"]["mean_star"] <= ff.variants["first_fit"]["mean_star"]
    )
    # The ordering requirement of Algorithm 2 is real.
    assert order.variants["nearest_first"]["violations"] == 0
    assert (
        order.variants["farthest_first"]["violations"]
        >= order.variants["nearest_first"]["violations"]
    )
