"""Exp **E-faults** — self-healing recovery cost and the fault plane's price.

The PR-9 acceptance gate, measured: a forced mid-repair worker crash
(every worker dies on its first delta task, respawns exempt) must be
survived without caller intervention and the tables must reconverge
bit-identically to the serial twin — the artifact records the recovery
throughput (events/second under the crash storm, the guarded headline)
next to the quiet-plan baseline so the overhead of dying-and-respawning
is a number, not a vibe.

The second bar is the *zero-cost-off* claim: with ``REPRO_FAULTS`` unset
the hooks compiled into the hot paths (task start, result send, row
write, shm create/attach) must cost ≤ 2% of a repair event.  Wall-clock
A/B at 2% is runner noise, so the bound is established structurally: the
disarmed hook is timed directly (ns/call) and multiplied by a generous
upper bound on calls per repair event, then compared against the
measured per-event repair time.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import faults, obs
from repro.dynamic import RoutingService, make_scenario
from repro.faults import EXIT_TASK_CRASH, FaultPlan, FaultRule
from repro.parallel import ShardedRoutingService

N_FAULTS = 400
NUM_EVENTS = 20
CHUNK = 5  # events per repair batch
FAULT_SEED = 20090525
CPU_COUNT = os.cpu_count() or 1
WORKERS = min(2, CPU_COUNT)
HOOK_OVERHEAD_BAR = 2.0  # percent of a repair event, hooks disarmed

#: Every fresh worker dies on its first delta task (the two build stages
#: are exactly two task starts per worker, so ``after=2`` skips them);
#: respawned incarnations are exempt, so the storm is survivable by
#: construction and the recovery path is what gets measured.
MID_DELTA_CRASH = FaultPlan(
    "mid-delta", 5, (FaultRule("task.crash", p=1.0, count=1, after=2, fresh_only=True),)
)


@pytest.fixture(scope="module", autouse=True)
def _fresh_artifact(results_dir):
    artifact = results_dir / "BENCH_faults.json"
    if artifact.exists():
        artifact.unlink()


def _merge_artifact(results_dir, key, payload):
    artifact = results_dir / "BENCH_faults.json"
    data = json.loads(artifact.read_text()) if artifact.exists() else {}
    data[key] = payload
    artifact.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def _soak(sc, events, *, armed):
    """Apply *events* in CHUNK-sized repair batches; return (seconds, service stats)."""
    with ShardedRoutingService(
        sc.initial, "kcover", workers=WORKERS, rebuild_fraction=1.0
    ) as service:
        sw = obs.Stopwatch()
        for start in range(0, len(events), CHUNK):
            service.apply_batch(events[start : start + CHUNK])
        elapsed = sw.elapsed()
        health = service.pool_health.as_dict()
        dist = np.asarray(service._dist).copy()
        tables = np.asarray(service._tables).copy()
    return elapsed, health, dist, tables


def test_mid_repair_crash_recovery(record, results_dir, monkeypatch):
    sc = make_scenario("mobility", N_FAULTS, NUM_EVENTS, seed=FAULT_SEED)
    events = list(sc.events)

    serial = RoutingService(sc.initial, "kcover", rebuild_fraction=1.0)
    for start in range(0, len(events), CHUNK):
        serial.apply_batch(events[start : start + CHUNK])

    # Quiet baseline: same stream, fault plane fully disarmed.
    faults.uninstall()
    monkeypatch.delenv(faults.ENV_GATE, raising=False)
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    t_quiet, quiet_health, dist, tables = _soak(sc, events, armed=False)
    assert quiet_health["respawns"] == 0
    assert np.array_equal(dist, serial._dist) and np.array_equal(tables, serial._tables)

    # Crash storm: armed through the env so fork *and* spawn workers see it.
    monkeypatch.setenv(faults.ENV_GATE, "1")
    monkeypatch.setenv(faults.ENV_PLAN, MID_DELTA_CRASH.spec())
    faults.maybe_install_from_env()
    try:
        t_crash, health, dist, tables = _soak(sc, events, armed=True)
    finally:
        faults.uninstall()

    crashes_survived = health["respawns"]
    assert crashes_survived >= 1, "the forced crash must actually fire"
    assert EXIT_TASK_CRASH in health["last_exitcodes"].values()
    reconverged = bool(
        np.array_equal(dist, serial._dist) and np.array_equal(tables, serial._tables)
    )
    assert reconverged, "tables must reconverge bit-identically after the storm"

    payload = {
        "graph": {"n": sc.initial.num_nodes, "m": sc.initial.num_edges, "seed": FAULT_SEED},
        "events": NUM_EVENTS,
        "chunk": CHUNK,
        "workers": WORKERS,
        "cpu_count": CPU_COUNT,
        "plan": MID_DELTA_CRASH.spec(),
        "quiet_seconds": round(t_quiet, 6),
        "crash_seconds": round(t_crash, 6),
        "recovery_overhead_seconds": round(t_crash - t_quiet, 6),
        "recovery_events_per_second": round(len(events) / t_crash, 2),
        "quiet_events_per_second": round(len(events) / t_quiet, 2),
        "crashes_survived": crashes_survived,
        "exitcodes": sorted(set(health["last_exitcodes"].values())),
        "torn_rows_repaired": health["torn_rows_repaired"],
        "reconverged": reconverged,
    }
    _merge_artifact(results_dir, "crash_recovery", payload)
    record(
        "bench_faults_recovery",
        f"mid-repair crash recovery n={sc.initial.num_nodes} events={NUM_EVENTS} "
        f"W={WORKERS}: quiet {len(events) / t_quiet:.1f} ev/s, under crash storm "
        f"{len(events) / t_crash:.1f} ev/s ({crashes_survived} crash(es) survived, "
        f"reconverged: {'yes' if reconverged else 'NO'})",
    )


def test_hooks_off_overhead(record, results_dir, monkeypatch):
    # Per-event repair cost, hooks present but disarmed.
    faults.uninstall()
    monkeypatch.delenv(faults.ENV_GATE, raising=False)
    monkeypatch.delenv(faults.ENV_PLAN, raising=False)
    sc = make_scenario("mobility", N_FAULTS, NUM_EVENTS, seed=FAULT_SEED)
    t_quiet, _health, _d, _t = _soak(sc, list(sc.events), armed=False)
    event_seconds = t_quiet / NUM_EVENTS

    # Direct ns/call on the hottest disarmed hooks (min over repeats so a
    # scheduler hiccup cannot inflate the claim).
    rounds = 100_000

    def per_call(fn, *args):
        best = float("inf")
        for _ in range(3):
            sw = obs.Stopwatch()
            for _ in range(rounds):
                fn(*args)
            best = min(best, sw.elapsed() / rounds)
        return best

    task_ns = per_call(faults.on_task_start, "serve_rows") * 1e9
    result_ns = per_call(faults.on_result, "serve_rows") * 1e9
    write_ns = per_call(faults.on_begin_row_write, 0) * 1e9

    # Generous per-event hook budget: every row rewritten (full-damage
    # repair) plus a task start + result send per worker, both matrices.
    calls_per_event = 2 * N_FAULTS + 4 * WORKERS
    hook_seconds = (max(task_ns, result_ns, write_ns) / 1e9) * calls_per_event
    overhead_percent = 100.0 * hook_seconds / event_seconds
    assert overhead_percent <= HOOK_OVERHEAD_BAR, (
        f"disarmed hooks cost {overhead_percent:.3f}% of a repair event "
        f"(bar {HOOK_OVERHEAD_BAR}%)"
    )

    payload = {
        "task_start_ns_per_call": round(task_ns, 1),
        "result_ns_per_call": round(result_ns, 1),
        "row_write_ns_per_call": round(write_ns, 1),
        "calls_per_event_budget": calls_per_event,
        "event_seconds": round(event_seconds, 6),
        "overhead_percent": round(overhead_percent, 4),
        "bar_percent": HOOK_OVERHEAD_BAR,
    }
    _merge_artifact(results_dir, "hooks_off_overhead", payload)
    record(
        "bench_faults_overhead",
        f"hooks-off overhead: ≤{max(task_ns, result_ns, write_ns):.0f}ns/call × "
        f"{calls_per_event} calls/event = {overhead_percent:.3f}% of a "
        f"{event_seconds * 1e3:.1f}ms repair event (bar {HOOK_OVERHEAD_BAR}%)",
    )
