"""Micro-benchmarks of the four constructions and the verification stack.

Calibrated pytest-benchmark timings (the rest of the suite is experiment
regeneration; this file is where wall-clock performance is tracked).  A
fixed 200-node UDG keeps numbers comparable across runs.

The fixture graph is frozen up front, so the constructions ride the CSR
adjacency backend exactly as ``build_from_trees`` does in production; the
two ``test_bfs_*`` entries pin the set-backend vs CSR-backend single-BFS
baseline (the batched comparison lives in ``test_bench_traversal.py``).
"""

import pytest

from repro.core import (
    build_k_connecting_spanner,
    dom_tree_greedy,
    dom_tree_kcover,
    dom_tree_kmis,
    dom_tree_mis,
    is_remote_spanner,
)
from repro.experiments import largest_component, scaled_udg
from repro.graph import bfs_distances
from repro.paths import k_connecting_distance


@pytest.fixture(scope="module")
def udg():
    g_full, _pts = scaled_udg(200, target_degree=12.0, seed=99)
    g, _ids = largest_component(g_full)
    g.freeze()
    return g


def test_bfs_sets(benchmark, udg):
    benchmark(bfs_distances, udg, 0, None, "sets")


def test_bfs_csr(benchmark, udg):
    benchmark(bfs_distances, udg, 0, None, "csr")


def test_dom_tree_greedy(benchmark, udg):
    benchmark(dom_tree_greedy, udg, 0, 3, 1)


def test_dom_tree_mis(benchmark, udg):
    benchmark(dom_tree_mis, udg, 0, 3)


def test_dom_tree_kcover(benchmark, udg):
    benchmark(dom_tree_kcover, udg, 0, 2)


def test_dom_tree_kmis(benchmark, udg):
    benchmark(dom_tree_kmis, udg, 0, 2)


def test_full_spanner_build(benchmark, udg):
    benchmark.pedantic(build_k_connecting_spanner, args=(udg,), kwargs={"k": 1}, rounds=3)


def test_verification(benchmark, udg):
    rs = build_k_connecting_spanner(udg, k=1)
    benchmark.pedantic(
        is_remote_spanner, args=(rs.graph, udg, 1.0, 0.0), rounds=3
    )


def test_k_connecting_distance(benchmark, udg):
    benchmark(k_connecting_distance, udg, 0, udg.num_nodes - 1, 2)
