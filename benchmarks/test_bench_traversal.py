"""Traversal micro-benchmark: set backend vs CSR backend, head to head.

The acceptance bar of the CSR subsystem (PR 1): ``batched_bfs`` must beat a
loop of set-backend BFS runs by ≥ 2× on a unit-disk graph with n ≥ 2000.
Beyond the assertion, the measured timings are persisted as
``BENCH_traversal.json`` (in ``benchmarks/results/``; ``scripts/check.sh``
copies it to the repo root) so future PRs have a perf trajectory to compare
against.

Timings here are best-of-rounds minima via :func:`repro.obs.time_best`
rather than pytest-benchmark calibration: the quantity of interest is the
*ratio* between two code paths over an identical workload, and taking the
minimum of paired rounds is the most noise-robust way to get it.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.graph import batched_bfs, bfs_distances, bfs_parents, multi_source_distances
from repro.experiments import largest_component, scaled_udg

#: Acceptance bar for the batched CSR engine vs the per-source set loop.
REQUIRED_SPEEDUP = 2.0
ROUNDS = 3
N_NODES = 2200
TARGET_DEGREE = 12.0


@pytest.fixture(scope="module")
def udg():
    g_full, _pts = scaled_udg(N_NODES, target_degree=TARGET_DEGREE, seed=99)
    g, _ids = largest_component(g_full)
    assert g.num_nodes >= 2000, "benchmark graph must keep n ≥ 2000"
    return g


def _best_of(fn, rounds: int = ROUNDS) -> float:
    return obs.time_best(fn, repeats=rounds)


def test_batched_bfs_speedup(udg, record, results_dir, bench_rng):
    g = udg
    # ~550 random BFS sources, reproducible via the repro.rng-derived stream.
    sources = sorted(
        int(s) for s in bench_rng.choice(g.num_nodes, size=g.num_nodes // 4, replace=False)
    )

    def set_loop():
        for s in sources:
            bfs_distances(g, s, backend="sets")

    def batched():
        for _s, _d in batched_bfs(g, sources, backend="csr"):
            pass

    def csr_single_loop():
        g.freeze()
        for s in sources:
            bfs_distances(g, s, backend="csr")

    t_sets = _best_of(set_loop)
    t_batched = _best_of(batched)
    t_csr_single = _best_of(csr_single_loop)
    # One cold conversion, measured separately: batched_bfs amortizes it.
    g._csr = None
    t_freeze = _best_of(lambda: g.freeze(), rounds=1)

    speedup = t_sets / t_batched
    payload = {
        "graph": {"n": g.num_nodes, "m": g.num_edges, "kind": "udg", "seed": 99},
        "sources": len(sources),
        "seconds": {
            "set_backend_loop": round(t_sets, 6),
            "csr_single_source_loop": round(t_csr_single, 6),
            "batched_bfs": round(t_batched, 6),
            "freeze_conversion": round(t_freeze, 6),
        },
        "speedup_batched_vs_sets": round(speedup, 2),
        "speedup_single_vs_sets": round(t_sets / t_csr_single, 2),
        "required_speedup": REQUIRED_SPEEDUP,
        "rounds": ROUNDS,
    }
    (results_dir / "BENCH_traversal.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record(
        "bench_traversal",
        f"traversal n={g.num_nodes} m={g.num_edges} sources={len(sources)}: "
        f"sets {t_sets * 1e3:.0f} ms, csr-single {t_csr_single * 1e3:.0f} ms, "
        f"batched {t_batched * 1e3:.0f} ms -> {speedup:.1f}x "
        f"(freeze {t_freeze * 1e3:.1f} ms)",
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched_bfs only {speedup:.2f}x faster than the set backend "
        f"(need ≥ {REQUIRED_SPEEDUP}x): {payload}"
    )


def test_backends_agree_on_bench_graph(udg):
    """The workload the speedup is claimed on is also checked for exactness."""
    g = udg
    sources = list(range(0, g.num_nodes, 97))
    for s, dist in batched_bfs(g, sources, backend="csr"):
        assert dist == bfs_distances(g, s, backend="sets")
    s0 = sources[0]
    assert bfs_parents(g, s0, backend="csr") == bfs_parents(g, s0, backend="sets")
    assert multi_source_distances(g, sources, backend="csr") == multi_source_distances(
        g, sources, backend="sets"
    )


# Calibrated single-call baselines (pytest-benchmark), for the -v tables.


def test_bfs_single_sets(benchmark, udg):
    benchmark(bfs_distances, udg, 0, None, "sets")


def test_bfs_single_csr(benchmark, udg):
    udg.freeze()
    benchmark(bfs_distances, udg, 0, None, "csr")
