"""Exp **E-ext** — the paper's §4 future-work directions, probed.

Two measurements:

1. **Edge-connectivity (negative result).**  The naive reuse of Algorithm
   4's union as a k-edge-connecting (1,0)-remote-spanner is refuted by a
   7-node counterexample (triangles over a cut vertex); the bench records
   the counterexample's data and the failure *rate* of the naive candidate
   over random graphs — quantifying how much a correct extension must add.

2. **k-connecting (1+ε, O(1)) candidate.**  The union of Theorem 1's and
   Theorem 3's trees inherits plain (1+ε, 1−2ε) stretch by construction;
   its k-connecting stretch (the open question) is measured.  Expected
   shape: plain stretch always certified; measured 2-connecting ratios
   small (≈ 1–2) on random instances — evidence the followup is plausible.
"""

import math

from repro.analysis import render_table
from repro.core.extensions import (
    edge_conjecture_counterexample,
    evaluate_k_connecting_eps,
    naive_edge_candidate_failure_rate,
)
from repro.graph import sample_pairs
from repro.graph.generators import random_connected_gnp
from repro.rng import derive_seed


def _experiment():
    g_cx, rs_cx, viol = edge_conjecture_counterexample()
    graphs = [
        random_connected_gnp(9, 0.3, seed=derive_seed(120, s)) for s in range(30)
    ]
    failures, total = naive_edge_candidate_failure_rate(graphs, k=2)
    eps_reports = []
    for s in range(6):
        g = random_connected_gnp(20, 0.2, seed=derive_seed(121, s))
        pairs = sample_pairs(g, 20, seed=derive_seed(122, s))
        eps_reports.append(evaluate_k_connecting_eps(g, k=2, epsilon=0.5, pairs=pairs))
    return (g_cx, viol), (failures, total), eps_reports


def test_extensions(benchmark, record):
    (g_cx, viol), (failures, total), eps_reports = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    rows = [
        [
            "edge-conn: naive candidate",
            f"counterexample n={g_cx.num_nodes}, {len(viol)} violating ordered pairs",
        ],
        [
            "edge-conn: failure rate (k=2)",
            f"{failures}/{total} random G(9, .3) graphs",
        ],
    ]
    for i, rep in enumerate(eps_reports):
        ratio = "inf" if rep.max_kconn_ratio == math.inf else f"{rep.max_kconn_ratio:.3f}"
        rows.append(
            [
                f"(1+eps) k=2 candidate, trial {i}",
                f"plain stretch ok={rep.plain_stretch_ok}, edges={rep.edges}, "
                f"max d2 ratio={ratio} over {rep.pairs_checked} pairs",
            ]
        )
    record(
        "extensions",
        render_table(
            ["probe", "result"],
            rows,
            title="E-ext — §4 future-work probes (edge-connectivity refuted naively; eps-candidate measured)",
        ),
    )
    assert viol, "the counterexample must stand"
    for rep in eps_reports:
        assert rep.plain_stretch_ok
