"""Dynamic-graph benchmark: incremental maintenance vs rebuild-per-event.

The acceptance bar of the dynamic subsystem (PR 2): on a low-churn link
failure/recovery stream over an n ≈ 2000 unit-disk graph, the incremental
:class:`~repro.dynamic.SpannerMaintainer` must beat naive rebuild-per-event
by ≥ 5×.  The rebuild baseline cost is measured on a sample of events and
extrapolated linearly (the graph stays within a few edges of its initial
state under low churn, so per-event rebuild cost is flat — the sample's
spread is recorded in the artifact for the skeptical reader).

Also recorded: the delta-aware ``Graph.freeze()`` patch path vs a cold CSR
rebuild — the layer that makes the maintainer's freeze-per-event policy
affordable.  Artifact: ``benchmarks/results/BENCH_dynamic.json``.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.remote_spanner import build_from_trees
from repro.dynamic import SpannerMaintainer, failure_recovery_scenario, resolve_construction
from repro.graph.csr import CSRGraph

#: Acceptance bar: incremental maintenance vs full rebuild per event.
REQUIRED_SPEEDUP = 5.0
N_NODES = 2200
NUM_EVENTS = 200
REBUILD_SAMPLE = 6  # events on which the rebuild baseline is timed
SCENARIO_SEED = 20090525


@pytest.fixture(scope="module")
def scenario():
    sc = failure_recovery_scenario(N_NODES, NUM_EVENTS, seed=SCENARIO_SEED)
    assert sc.initial.num_nodes >= 2000, "benchmark graph must keep n ≥ 2000"
    return sc


def test_incremental_vs_rebuild(scenario, record, results_dir):
    sc = scenario
    maintainer = SpannerMaintainer(sc.initial, "kcover")

    sw = obs.Stopwatch()
    reports = maintainer.apply_stream(sc.events)
    t_incremental = sw.elapsed()

    # The maintained spanner must equal a from-scratch build — speed means
    # nothing if the object diverged.
    reference = maintainer.rebuilt_from_scratch()
    assert maintainer.spanner.graph == reference.graph
    assert maintainer.full_rebuilds == 0, "low churn must never trip the fallback"

    # Rebuild-per-event baseline, sampled: replay the stream on a plain
    # graph and run a full construction at evenly spaced events.
    sample_every = max(1, NUM_EVENTS // REBUILD_SAMPLE)
    g = sc.initial.copy()
    rebuild_times = []
    construction = resolve_construction("kcover")
    for i, event in enumerate(sc.events, start=1):
        if event.kind == "add":
            g.add_edge(event.u, event.v)
        else:
            g.remove_edge(event.u, event.v)
        if i % sample_every == 0 and len(rebuild_times) < REBUILD_SAMPLE:
            frame = g.copy()
            sw = obs.Stopwatch()
            build_from_trees(
                frame, construction.tree_fn, construction.guarantee, construction.label
            )
            rebuild_times.append(sw.elapsed())

    mean_rebuild = sum(rebuild_times) / len(rebuild_times)
    t_rebuild_est = mean_rebuild * NUM_EVENTS
    speedup = t_rebuild_est / t_incremental
    dirty = [r.dirty for r in reports if r.changed]

    payload = {
        "graph": {
            "n": sc.initial.num_nodes,
            "m": sc.initial.num_edges,
            "kind": "udg-failure-recovery",
            "seed": SCENARIO_SEED,
        },
        "events": NUM_EVENTS,
        "method": maintainer.spanner.method,
        "seconds": {
            "incremental_total": round(t_incremental, 6),
            "incremental_per_event": round(t_incremental / NUM_EVENTS, 6),
            "rebuild_per_event_mean": round(mean_rebuild, 6),
            "rebuild_per_event_samples": [round(t, 6) for t in rebuild_times],
            "rebuild_total_estimated": round(t_rebuild_est, 6),
        },
        "dirty_ball": {
            "mean": round(sum(dirty) / len(dirty), 1),
            "max": max(dirty),
            "radius": maintainer.radius,
        },
        "incremental_repairs": maintainer.incremental_repairs,
        "full_rebuilds": maintainer.full_rebuilds,
        "speedup_incremental_vs_rebuild": round(speedup, 2),
        "required_speedup": REQUIRED_SPEEDUP,
    }
    (results_dir / "BENCH_dynamic.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    record(
        "bench_dynamic",
        f"dynamic n={sc.initial.num_nodes} m={sc.initial.num_edges} "
        f"events={NUM_EVENTS}: incremental {t_incremental:.2f} s "
        f"({t_incremental / NUM_EVENTS * 1e3:.1f} ms/event, "
        f"mean dirty ball {payload['dirty_ball']['mean']}), rebuild-per-event "
        f"~{t_rebuild_est:.1f} s -> {speedup:.0f}x",
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"incremental maintenance only {speedup:.2f}x faster than "
        f"rebuild-per-event (need ≥ {REQUIRED_SPEEDUP}x): {payload}"
    )


def test_delta_freeze_patch(scenario, record, results_dir, bench_rng):
    """The delta-aware freeze must beat a cold CSR conversion on small diffs."""
    g = scenario.initial.copy()
    g.freeze()

    sw = obs.Stopwatch()
    CSRGraph.from_graph(g)
    t_full = sw.elapsed()

    # A handful of edge flips, then a patched re-freeze.
    edges = sorted(g.edges())
    flips = [edges[int(i)] for i in bench_rng.choice(len(edges), size=8, replace=False)]
    for u, v in flips:
        g.remove_edge(u, v)
    sw = obs.Stopwatch()
    snap = g.freeze()
    t_patch = sw.elapsed()
    assert snap == CSRGraph.from_graph(g)

    ratio = t_full / t_patch if t_patch > 0 else float("inf")
    record(
        "bench_dynamic_freeze",
        f"delta freeze n={g.num_nodes}: full {t_full * 1e3:.2f} ms, "
        f"patched (8 dirty edges) {t_patch * 1e3:.3f} ms -> {ratio:.0f}x",
    )
    artifact = results_dir / "BENCH_dynamic.json"
    payload = json.loads(artifact.read_text()) if artifact.exists() else {}
    payload["freeze"] = {
        "full_ms": round(t_full * 1e3, 3),
        "patched_ms": round(t_patch * 1e3, 3),
        "dirty_edges": len(flips),
        "speedup": round(ratio, 1),
    }
    artifact.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    # Patch must win clearly; 2x is far below observed (~15-20x) but robust
    # to a noisy shared runner.
    assert ratio >= 2.0
