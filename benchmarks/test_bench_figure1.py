"""Exp **Figure 1** — the worked UDG example, all four panels certified.

Paper: Figure 1 illustrates (a) a unit disk graph, (b) a (1,0)-remote-
spanner preserving exact distances, (c) a (2,−1)-remote-spanner realizing
the extremal 2d−1 stretch, (d) a 2-connecting (2,−1)-remote-spanner with
two disjoint u→v paths.  The bench rebuilds the scene, asserts each
caption's numeric claim, and records the panel summary.
"""

from repro.analysis import render_table
from repro.core import is_k_connecting_remote_spanner, is_remote_spanner
from repro.experiments import build_figure1
from repro.experiments.figure1 import NAMES


def _name(i: int) -> str:
    return NAMES[i] if i < len(NAMES) else str(i)


def test_figure1(benchmark, record):
    fig = benchmark.pedantic(build_figure1, rounds=1, iterations=1)
    g = fig.graph

    assert is_remote_spanner(fig.spanner_b.graph, g, 1.0, 0.0)
    assert is_remote_spanner(fig.graph_c, g, 2.0, -1.0)
    assert is_k_connecting_remote_spanner(fig.spanner_d.graph, g, 2, 2.0, -1.0)

    u, x, d = fig.exact_pair
    s, t, dg, dh = fig.stretch_pair
    assert dh == 2 * dg - 1
    s2, t2, paths = fig.disjoint_witness

    rows = [
        ["(a) input UDG", g.num_edges, "-", "-"],
        [
            "(b) (1,0)-remote-spanner",
            fig.spanner_b.num_edges,
            f"d_Hb_{_name(u)}({_name(u)},{_name(x)}) = {d} = d_G",
            "exact distances",
        ],
        [
            "(c) minimal (2,-1)-rem.-span.",
            fig.graph_c.num_edges,
            f"d_Hc_{_name(s)}({_name(s)},{_name(t)}) = {dh} = 2*{dg}-1",
            "extremal stretch realized",
        ],
        [
            "(d) 2-connecting (2,-1)",
            fig.spanner_d.num_edges,
            f"2 disjoint {_name(s2)}->{_name(t2)} paths "
            + " / ".join("-".join(_name(v) for v in p) for p in paths),
            "disjoint paths survive",
        ],
    ]
    record(
        "figure1",
        render_table(
            ["panel", "edges", "caption check", "property"],
            rows,
            title="Figure 1 — worked example, regenerated",
        ),
    )
