"""Exp **E-routing** — greedy link-state routing quality and overhead.

Paper (§1): advertising a remote-spanner instead of the full topology
keeps greedy routing within the spanner's stretch while flooding a
fraction of the link entries OSPF would.  The bench routes sampled pairs
over three advertised sub-graphs and accounts the advertisement volume.

Expected shape: (1,0)-remote-spanner routes with stretch exactly 1 at a
strict advertisement discount; the ε-spanner stays within (1+ε)d + 1−2ε;
MPR flooding reaches everyone with a large transmission discount.
"""

from repro.analysis import render_table
from repro.baselines import simulate_blind_flooding, simulate_mpr_flooding
from repro.core import build_k_connecting_spanner, build_remote_spanner
from repro.experiments import largest_component, scaled_udg
from repro.graph import sample_pairs
from repro.routing import full_link_state_cost, route_all_pairs_stats, spanner_advertisement_cost


def _experiment():
    g_full, _pts = scaled_udg(220, target_degree=11.0, seed=70)
    g, _ids = largest_component(g_full)
    pairs = sample_pairs(g, 120, seed=71, require_nonadjacent=False)
    ordered = pairs + [(t, s) for s, t in pairs]
    ospf = full_link_state_cost(g)
    rows = []
    checks = {}
    for name, rs, bound in (
        ("(1,0)-rem.-span.", build_k_connecting_spanner(g, k=1), 1.0),
        ("(1.5,0)-rem.-span.", build_remote_spanner(g, epsilon=0.5), 1.5),
    ):
        stats = route_all_pairs_stats(rs.graph, g, pairs=ordered)
        cost = spanner_advertisement_cost(rs)
        rows.append(
            [
                name,
                cost.entries_per_period,
                round(100 * cost.ratio_to(ospf), 1),
                round(stats.max_stretch, 3),
                round(stats.mean_stretch, 3),
                f"{stats.delivered}/{stats.pairs}",
            ]
        )
        checks[name] = (stats, bound)
    blind = simulate_blind_flooding(g, 0)
    mpr = simulate_mpr_flooding(g, 0)
    rows.append(
        [
            "MPR flooding (broadcast)",
            mpr.transmissions,
            round(100 * mpr.transmissions / blind.transmissions, 1),
            "-",
            "-",
            f"coverage {100 * mpr.coverage(g):.0f}%",
        ]
    )
    return g, ospf, rows, checks, blind, mpr


def test_routing(benchmark, record):
    g, ospf, rows, checks, blind, mpr = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    record(
        "routing",
        render_table(
            ["advertised sub-graph", "entries", "% of OSPF", "max stretch", "mean stretch", "delivered"],
            rows,
            title=(
                "E-routing — greedy link-state routing on advertised sub-graphs\n"
                f"(full link state floods {ospf.entries_per_period} entries per period)"
            ),
        ),
    )
    exact_stats, _ = checks["(1,0)-rem.-span."]
    assert exact_stats.max_stretch == 1.0
    assert exact_stats.delivered == exact_stats.pairs
    assert exact_stats.invariant_violations == 0
    eps_stats, _bound = checks["(1.5,0)-rem.-span."]
    assert eps_stats.delivered == eps_stats.pairs
    assert eps_stats.max_stretch <= 1.5 + 1e-9
    assert mpr.reached == blind.reached
    assert mpr.transmissions < blind.transmissions
