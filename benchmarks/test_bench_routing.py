"""Exp **E-routing** — greedy link-state routing: quality, overhead, serving.

Paper (§1): advertising a remote-spanner instead of the full topology
keeps greedy routing within the spanner's stretch while flooding a
fraction of the link entries OSPF would.  The bench routes sampled pairs
over three advertised sub-graphs and accounts the advertisement volume.

Expected shape: (1,0)-remote-spanner routes with stretch exactly 1 at a
strict advertisement discount; the ε-spanner stays within (1+ε)d + 1−2ε;
MPR flooding reaches everyone with a large transmission discount.

The serving half records ``benchmarks/results/BENCH_routing.json`` — the
acceptance bars of the dynamic serving layer (PR 3):

* the neighbor-sourced :func:`~repro.routing.tables.routing_table` kernel
  must beat the per-destination-BFS reference by ≥ 3× at n ≥ 1500;
* the incremental tables of :class:`~repro.dynamic.RoutingService` must
  beat recompute-per-event by ≥ 5× over a 100-event churn stream at
  n ≥ 1500 — while staying bit-identical to from-scratch tables.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.analysis import render_table
from repro.baselines import simulate_blind_flooding, simulate_mpr_flooding
from repro.core import build_k_connecting_spanner, build_remote_spanner
from repro.dynamic import RoutingService, SpannerMaintainer, failure_recovery_scenario
from repro.experiments import largest_component, scaled_udg
from repro.graph import sample_pairs
from repro.routing import (
    full_link_state_cost,
    route_all_pairs_stats,
    routing_table,
    routing_table_scan,
    spanner_advertisement_cost,
)

#: Serving-layer acceptance bars (ISSUE 3).
REQUIRED_TABLE_SPEEDUP = 5.0  # incremental tables vs recompute-per-event
REQUIRED_KERNEL_SPEEDUP = 3.0  # neighbor-sourced kernel vs per-destination scan
N_DYN = 1500
NUM_EVENTS = 100
KERNEL_SOURCES = 3  # sources timed per kernel (the scan is the slow part)
REFRESH_SAMPLE = 3  # full-refresh timings averaged for the baseline
DYN_SEED = 20090525


@pytest.fixture(scope="module")
def dyn_scenario():
    sc = failure_recovery_scenario(N_DYN, NUM_EVENTS, seed=DYN_SEED)
    assert sc.initial.num_nodes >= 1500, "serving bench must keep n ≥ 1500"
    return sc


@pytest.fixture(scope="module", autouse=True)
def _fresh_artifact(results_dir):
    # The artifact is merged per-key by the two serving benches below;
    # start from scratch each run so a partial rerun can never mix
    # measurements from different code states.
    artifact = results_dir / "BENCH_routing.json"
    if artifact.exists():
        artifact.unlink()


def _merge_artifact(results_dir, key, payload):
    artifact = results_dir / "BENCH_routing.json"
    data = json.loads(artifact.read_text()) if artifact.exists() else {}
    data[key] = payload
    artifact.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def _experiment():
    g_full, _pts = scaled_udg(220, target_degree=11.0, seed=70)
    g, _ids = largest_component(g_full)
    pairs = sample_pairs(g, 120, seed=71, require_nonadjacent=False)
    ordered = pairs + [(t, s) for s, t in pairs]
    ospf = full_link_state_cost(g)
    rows = []
    checks = {}
    for name, rs, bound in (
        ("(1,0)-rem.-span.", build_k_connecting_spanner(g, k=1), 1.0),
        ("(1.5,0)-rem.-span.", build_remote_spanner(g, epsilon=0.5), 1.5),
    ):
        stats = route_all_pairs_stats(rs.graph, g, pairs=ordered)
        cost = spanner_advertisement_cost(rs)
        rows.append(
            [
                name,
                cost.entries_per_period,
                round(100 * cost.ratio_to(ospf), 1),
                round(stats.max_stretch, 3),
                round(stats.mean_stretch, 3),
                f"{stats.delivered}/{stats.pairs}",
            ]
        )
        checks[name] = (stats, bound)
    blind = simulate_blind_flooding(g, 0)
    mpr = simulate_mpr_flooding(g, 0)
    rows.append(
        [
            "MPR flooding (broadcast)",
            mpr.transmissions,
            round(100 * mpr.transmissions / blind.transmissions, 1),
            "-",
            "-",
            f"coverage {100 * mpr.coverage(g):.0f}%",
        ]
    )
    return g, ospf, rows, checks, blind, mpr


def test_routing(benchmark, record):
    g, ospf, rows, checks, blind, mpr = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    record(
        "routing",
        render_table(
            ["advertised sub-graph", "entries", "% of OSPF", "max stretch", "mean stretch", "delivered"],
            rows,
            title=(
                "E-routing — greedy link-state routing on advertised sub-graphs\n"
                f"(full link state floods {ospf.entries_per_period} entries per period)"
            ),
        ),
    )
    exact_stats, _ = checks["(1,0)-rem.-span."]
    assert exact_stats.max_stretch == 1.0
    assert exact_stats.delivered == exact_stats.pairs
    assert exact_stats.invariant_violations == 0
    eps_stats, _bound = checks["(1.5,0)-rem.-span."]
    assert eps_stats.delivered == eps_stats.pairs
    assert eps_stats.max_stretch <= 1.5 + 1e-9
    assert mpr.reached == blind.reached
    assert mpr.transmissions < blind.transmissions


def test_routing_table_kernel_speedup(dyn_scenario, record, results_dir, bench_rng):
    """Neighbor-sourced kernel vs per-destination scan — ≥ 3× at n ≥ 1500."""
    g = dyn_scenario.initial
    rs = build_k_connecting_spanner(g, k=1)
    h = rs.graph
    sources = sorted(
        int(x) for x in bench_rng.choice(g.num_nodes, size=KERNEL_SOURCES, replace=False)
    )

    sw = obs.Stopwatch()
    fast = [routing_table(h, g, u) for u in sources]
    t_fast = sw.elapsed()

    sw = obs.Stopwatch()
    scan = [routing_table_scan(h, g, u) for u in sources]
    t_scan = sw.elapsed()

    assert fast == scan, "kernels disagree — speed means nothing"
    speedup = t_scan / t_fast if t_fast > 0 else float("inf")
    payload = {
        "graph": {"n": g.num_nodes, "m": g.num_edges, "m_spanner": h.num_edges},
        "sources_timed": sources,
        "seconds_per_table_neighbor": round(t_fast / KERNEL_SOURCES, 6),
        "seconds_per_table_scan": round(t_scan / KERNEL_SOURCES, 6),
        "speedup_neighbor_vs_scan": round(speedup, 2),
        "required_speedup": REQUIRED_KERNEL_SPEEDUP,
    }
    _merge_artifact(results_dir, "kernel", payload)
    record(
        "bench_routing_kernel",
        f"routing_table kernel n={g.num_nodes}: neighbor-sourced "
        f"{t_fast / KERNEL_SOURCES * 1e3:.1f} ms/table, per-destination scan "
        f"{t_scan / KERNEL_SOURCES * 1e3:.1f} ms/table -> {speedup:.0f}x",
    )
    assert speedup >= REQUIRED_KERNEL_SPEEDUP, (
        f"neighbor-sourced kernel only {speedup:.2f}x faster than the scan "
        f"(need ≥ {REQUIRED_KERNEL_SPEEDUP}x): {payload}"
    )


def test_incremental_tables_vs_recompute(dyn_scenario, record, results_dir, bench_rng):
    """Incremental table maintenance vs recompute-per-event — ≥ 5×."""
    sc = dyn_scenario
    service = RoutingService(sc.initial, "kcover")

    sw = obs.Stopwatch()
    reports = [service.apply(ev) for ev in sc.events]
    t_incremental = sw.elapsed()
    assert service.maintainer.full_rebuilds == 0, "low churn must never trip the fallback"
    rows_total = service.rows_recomputed
    tables_total = service.tables_recomputed
    entries_total = service.entries_updated

    # Served tables must equal a from-scratch build — speed means nothing
    # if the object diverged (spot-checked here; the full property lives in
    # tests/dynamic/test_serving.py).
    h, g = service.advertised, service.graph
    for u in (int(x) for x in bench_rng.choice(g.num_nodes, size=12, replace=False)):
        assert service.table(u) == routing_table(h, g, u), f"table of {u} diverged"

    # Recompute-per-event baseline: the maintainer still repairs the
    # spanner incrementally (its own bench covers rebuild-per-event), but
    # every event re-derives all n tables from the live H — timed as the
    # maintainer stream plus NUM_EVENTS sampled full refreshes, using the
    # same fast kernel the service does (a strong baseline).
    m = SpannerMaintainer(sc.initial, "kcover")
    sw = obs.Stopwatch()
    m.apply_stream(sc.events)
    t_maintainer = sw.elapsed()
    refresh_times = []
    for _ in range(REFRESH_SAMPLE):
        sw = obs.Stopwatch()
        service.refresh()
        refresh_times.append(sw.elapsed())
    mean_refresh = sum(refresh_times) / len(refresh_times)
    t_recompute_est = t_maintainer + mean_refresh * NUM_EVENTS
    speedup = t_recompute_est / t_incremental

    dirty_rows = [r.dirty_rows for r in reports if r.changed]
    payload = {
        "graph": {
            "n": sc.initial.num_nodes,
            "m": sc.initial.num_edges,
            "kind": "udg-failure-recovery",
            "seed": DYN_SEED,
        },
        "events": NUM_EVENTS,
        "seconds": {
            "incremental_total": round(t_incremental, 6),
            "incremental_per_event": round(t_incremental / NUM_EVENTS, 6),
            "maintainer_stream": round(t_maintainer, 6),
            "refresh_samples": [round(t, 6) for t in refresh_times],
            "recompute_total_estimated": round(t_recompute_est, 6),
        },
        "serving_work": {
            "rows_recomputed": rows_total,
            "tables_recomputed": tables_total,
            "entries_updated": entries_total,
            "mean_dirty_rows_per_event": round(sum(dirty_rows) / len(dirty_rows), 1)
            if dirty_rows
            else 0.0,
        },
        "speedup_incremental_vs_recompute": round(speedup, 2),
        "required_speedup": REQUIRED_TABLE_SPEEDUP,
    }
    _merge_artifact(results_dir, "incremental_tables", payload)
    record(
        "bench_routing_incremental",
        f"serving n={sc.initial.num_nodes} events={NUM_EVENTS}: incremental "
        f"{t_incremental:.2f} s ({t_incremental / NUM_EVENTS * 1e3:.1f} ms/event, "
        f"mean dirty rows {payload['serving_work']['mean_dirty_rows_per_event']}), "
        f"recompute-per-event ~{t_recompute_est:.1f} s -> {speedup:.0f}x",
    )
    assert speedup >= REQUIRED_TABLE_SPEEDUP, (
        f"incremental tables only {speedup:.2f}x faster than recompute-per-event "
        f"(need ≥ {REQUIRED_TABLE_SPEEDUP}x): {payload}"
    )
