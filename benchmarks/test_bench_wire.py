"""Exp **E-wire** — bytes on the wire: incremental LSAs vs naive flooding.

The PR-10 acceptance bar, measured.  The same churn stream drives the
actor tier twice on the deterministic loopback transport: once in
``mode="incremental"`` (one net-delta :class:`LsaUpdate` flood per tick —
what the tier actually ships) and once in ``mode="full"`` (a complete
:class:`FullTopology` snapshot per tick — classic link-state flooding,
the naive baseline).  Both runs use the exact same codec ruler, so the
recorded ratio is a statement about the *protocol*, not the encoding.

Guarded headline: ``reduction_naive_vs_incremental`` — naive bytes per
incremental byte — must stay ≥ 2.0× (incremental ≤ 0.5× naive) at
n=1500 / 100 events.  The maintainer's per-tick net ΔG/ΔH is O(changes)
while a snapshot is O(m), so the margin grows with n; the bar is set
where even a small graph cannot fake it.
"""

from __future__ import annotations

import json

from repro.distributed import ActorSystem
from repro.dynamic import make_scenario

N_WIRE = 1500
NUM_EVENTS = 100
TICK = 10
SHARDS = 4
WIRE_SEED = 20090525
REDUCTION_BAR = 2.0  # incremental bytes must be ≤ 0.5× naive full flooding


def _soak(sc, mode):
    """Drive the stream through an actor tier; return the WireStats snapshot."""
    # tables=False: this bench measures the wire, not the row recomputes.
    with ActorSystem(
        sc.initial,
        "kcover",
        rebuild_fraction=0.25,
        shards=SHARDS,
        mode=mode,
        tables=False,
    ) as system:
        events = list(sc.events)
        for lo in range(0, len(events), TICK):
            system.apply_tick(events[lo : lo + TICK])
        assert system.mismatches() == [], f"{mode} replicas must converge"
        return system.stats.snapshot(), system.stats


def test_incremental_lsa_beats_full_flooding(record, results_dir):
    sc = make_scenario("mobility", N_WIRE, NUM_EVENTS, seed=WIRE_SEED)

    incr_snap, incr = _soak(sc, "incremental")
    full_snap, full = _soak(sc, "full")

    assert incr.bytes > 0 and full.bytes > 0
    reduction = full.bytes / incr.bytes
    assert reduction >= REDUCTION_BAR, (
        f"incremental LSAs moved {incr.bytes} bytes vs {full.bytes} naive "
        f"({reduction:.2f}×, bar {REDUCTION_BAR}×)"
    )

    payload = {
        "wire": {
            "graph": {"n": sc.initial.num_nodes, "m": sc.initial.num_edges, "seed": WIRE_SEED},
            "events": NUM_EVENTS,
            "tick": TICK,
            "shards": SHARDS,
            "transport": "loop",
            "incremental_bytes": incr.bytes,
            "naive_bytes": full.bytes,
            "incremental_messages": incr.messages,
            "naive_messages": full.messages,
            "incremental_links": incr.links,
            "naive_links": full.links,
            "incremental_rounds": incr.rounds,
            "naive_rounds": full.rounds,
            "reduction_naive_vs_incremental": round(reduction, 2),
            "bar": REDUCTION_BAR,
            "incremental_snapshot": incr_snap,
            "naive_snapshot": full_snap,
        }
    }
    artifact = results_dir / "BENCH_wire.json"
    artifact.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    record(
        "bench_wire",
        f"wire bytes n={N_WIRE} events={NUM_EVENTS} tick={TICK} shards={SHARDS}: "
        f"incremental LSA {incr.bytes / 1024:.1f} KiB vs naive full-flooding "
        f"{full.bytes / 1024:.1f} KiB — {reduction:.1f}× reduction "
        f"(bar {REDUCTION_BAR}×)",
    )
