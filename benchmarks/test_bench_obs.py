"""Exp **E-obs** — observability: leave-on overhead and merge exactness.

The PR-7 acceptance gates for :mod:`repro.obs`:

* **Overhead.** Instrumentation is designed to be left on — serving the
  n≈1500 traffic workload through the instrumented
  :func:`repro.dynamic.serve_queries` loop with obs enabled must cost
  ≤ 5% throughput vs ``obs=0`` (the gated loop collapses to the bare
  serving loop).  Best-of-rounds on both sides filters scheduler noise.
* **Merge exactness.** The per-shard registries a
  :class:`~repro.parallel.ShardedRoutingService` ships back must merge to
  exactly the counters a serial twin records — observability over W
  workers loses nothing.

Degradation contract: on a single-core runner the overhead measurement
time-shares one CPU with everything else, so the 5% bar is recorded but
not asserted — the payload carries ``"degraded"`` with the reason, exactly
as ``scripts/check.sh`` expects.  The merge-exactness assertion holds in
every mode (exactness does not depend on spare cores).

Artifact: ``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs, tuning
from repro.dynamic import RoutingService, failure_recovery_scenario, serve_queries
from repro.graph import sample_pairs
from repro.parallel import ShardedRoutingService
from repro.rng import derive_seed

MAX_OVERHEAD_PCT = 5.0  # obs-on vs obs-off serving throughput
N_OBS = 1500
NUM_EVENTS = 30
NUM_PAIRS = 80
QUERY_ROUNDS = 12  # passes per timing sample (amortizes loop setup)
TIMING_ROUNDS = 5  # best-of rounds per side
OBS_SEED = 20090525
CPU_COUNT = os.cpu_count() or 1

MERGE_N = 300
MERGE_EVENTS = 24
MERGE_WORKERS = 2


@pytest.fixture(scope="module", autouse=True)
def _fresh_artifact(results_dir):
    artifact = results_dir / "BENCH_obs.json"
    if artifact.exists():
        artifact.unlink()


def _merge_artifact(results_dir, key, payload):
    artifact = results_dir / "BENCH_obs.json"
    data = json.loads(artifact.read_text()) if artifact.exists() else {}
    data[key] = payload
    artifact.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def test_instrumentation_overhead(record, results_dir):
    sc = failure_recovery_scenario(N_OBS, NUM_EVENTS, seed=OBS_SEED)
    service = RoutingService(sc.initial, "kcover")
    for ev in sc.events:  # churn in: measure the steady serving state
        service.apply(ev)
    pairs = sample_pairs(
        service.graph, NUM_PAIRS, seed=derive_seed(OBS_SEED, "obs-pairs"),
        require_nonadjacent=False,
    )

    def serve_rounds():
        for _ in range(QUERY_ROUNDS):
            serve_queries(service, pairs)

    # Interleave the two sides round by round so slow drift (thermal,
    # noisy neighbors) hits both equally; keep the best of each.
    t_on = t_off = float("inf")
    for _ in range(TIMING_ROUNDS):
        obs.reset()
        t_on = min(t_on, obs.time_best(serve_rounds, repeats=1))
        with tuning.overridden(obs=0):
            t_off = min(t_off, obs.time_best(serve_rounds, repeats=1))

    queries = NUM_PAIRS * QUERY_ROUNDS
    qps_on = queries / t_on
    qps_off = queries / t_off
    overhead_pct = round(100.0 * (t_on - t_off) / t_off, 2)
    degraded = CPU_COUNT < 2
    payload = {
        "n": N_OBS,
        "events_churned": NUM_EVENTS,
        "queries_per_sample": queries,
        "qps_obs_on": round(qps_on, 1),
        "qps_obs_off": round(qps_off, 1),
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
    }
    if degraded:
        payload["degraded"] = (
            f"only {CPU_COUNT} CPU(s): timing shares one core with the OS, "
            "overhead recorded but the bar is not asserted"
        )
    _merge_artifact(results_dir, "overhead", payload)
    record(
        "BENCH_obs_overhead",
        f"obs overhead: {qps_on:,.0f} qps on vs {qps_off:,.0f} qps off "
        f"({overhead_pct:+.2f}%, bar {MAX_OVERHEAD_PCT}%"
        + (", degraded)" if degraded else ")"),
    )
    assert qps_on > 0 and qps_off > 0
    if not degraded:
        assert overhead_pct <= MAX_OVERHEAD_PCT, (
            f"instrumentation costs {overhead_pct}% throughput "
            f"(bar {MAX_OVERHEAD_PCT}%)"
        )


def test_merged_shard_metrics_match_serial_twin(record, results_dir):
    sc = failure_recovery_scenario(MERGE_N, MERGE_EVENTS, seed=OBS_SEED)

    # Serial truth: rows counted in this process's default registry.
    before = obs.snapshot()
    serial = RoutingService(sc.initial, "kcover")
    for ev in sc.events:
        serial.apply(ev)
    delta = obs.diff_snapshots(before, obs.snapshot())
    serial_rows = delta["counters"].get("serve.rows_recomputed", 0)

    # Sharded twin: the same stream fanned out over worker registries.
    with ShardedRoutingService(sc.initial, "kcover", workers=MERGE_WORKERS) as sharded:
        for ev in sc.events:
            sharded.apply(ev)
        collected = sharded.metrics()
    merged_rows = collected["merged"]["counters"].get("serve.rows_recomputed", 0)
    per_shard = {
        str(wid): snap["counters"].get("serve.rows_recomputed", 0)
        for wid, snap in collected["shards"].items()
    }

    payload = {
        "n": MERGE_N,
        "events": MERGE_EVENTS,
        "workers": MERGE_WORKERS,
        "serial_rows_recomputed": serial_rows,
        "merged_rows_recomputed": merged_rows,
        "per_shard_rows_recomputed": per_shard,
        "exact": merged_rows == serial_rows,
    }
    _merge_artifact(results_dir, "merge_exactness", payload)
    record(
        "BENCH_obs_merge",
        f"obs merge exactness: serial {serial_rows} rows vs merged "
        f"{merged_rows} over {MERGE_WORKERS} shards {per_shard}",
    )
    assert serial_rows > 0, "the serial twin must have recomputed rows"
    assert merged_rows == serial_rows, "per-shard registries must merge exactly"
    assert sum(per_shard.values()) == merged_rows
