"""Exp **E-Th1 (ε)** — edge count of the (1+ε, 1−2ε)-remote-spanner vs ε.

Paper (Th. 1): ``O(ε^{-(p+1)} n)`` edges on the unit ball graph of a
doubling metric with dimension p (= 2 for the unit disk graph).  The
theorem is an *upper bound* driven by the (4r)^p MIS packing constant;
on real instances the union of per-node trees overlaps massively, so the
measured growth in 1/ε is far flatter than the cubic worst case.

Expected shape: edges/n increases monotonically as ε shrinks; the fitted
(1/ε)-exponent lands well below the worst-case p+1 = 3 (we assert the
bound direction — measured ≤ worst-case envelope — and monotonicity).
"""

from repro.analysis import render_table
from repro.experiments import eps_sweep


def test_eps_sweep(benchmark, record):
    res = benchmark.pedantic(
        lambda: eps_sweep(
            epsilons=(1.0, 0.5, 1 / 3, 0.25), n=300, target_degree=14.0, trials=2, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    exp = res.exponent("edges_per_n")
    rows = [[round(r.x, 3), round(r.values["edges_per_n"], 2)] for r in res.rows]
    record(
        "eps_sweep",
        render_table(
            ["epsilon", "edges per node"],
            rows,
            title=(
                "E-Th1(eps) — (1+eps,1-2eps)-remote-spanner size vs eps, UDG p=2\n"
                f"fitted exponent (1/eps)^{exp:.2f}; paper upper bound (1/eps)^(p+1)=(1/eps)^3"
            ),
        ),
    )
    per_n = [r.values["edges_per_n"] for r in res.rows]
    assert per_n == sorted(per_n), "edges must grow as eps shrinks"
    assert 0.0 <= exp <= 3.0, f"measured exponent {exp} outside the paper's envelope"
    # The Theorem-1 envelope itself: edges/n ≤ C·(1/eps)^3 with one
    # constant C calibrated at eps=1.
    c = per_n[0]
    for r, e in zip(res.rows, per_n):
        assert e <= c * (1.0 / r.x) ** 3 + 1e-9
