"""Exp **E-Th1/E-Th3 (n)** — linear total size on constant-degree UBGs.

Paper (Th. 1 and Th. 3): on the unit ball graph of a doubling metric the
(1+ε, 1−2ε)-remote-spanner and the 2-connecting (2,−1)-remote-spanner
both have O(n) edges.  The bench sweeps n at constant expected degree
(the doubling regime) and fits total-edge exponents.  Expected shape:
both exponents ≈ 1 (band [0.85, 1.25]); edges/n roughly flat.
"""

from repro.analysis import render_table
from repro.experiments import linear_ubg


def test_linear_size(benchmark, record):
    res = benchmark.pedantic(
        lambda: linear_ubg(ns=(100, 200, 400, 800), target_degree=12.0, trials=2, seed=4),
        rounds=1,
        iterations=1,
    )
    eps_exp = res.exponent("eps_total_edges")
    two_exp = res.exponent("two_conn_total_edges")
    rows = [
        [
            r.x,
            round(r.values["n_cc"], 1),
            round(r.values["eps_edges_per_n"], 2),
            round(r.values["two_conn_edges_per_n"], 2),
        ]
        for r in res.rows
    ]
    record(
        "linear_ubg",
        render_table(
            ["n requested", "n (component)", "eps-RS edges/n", "2-conn edges/n"],
            rows,
            title=(
                "E-Th1/Th3(n) — linear total size on constant-degree UDG\n"
                f"fitted exponents: eps-spanner n^{eps_exp:.2f}, "
                f"2-connecting n^{two_exp:.2f} (paper: both n^1)"
            ),
        ),
    )
    assert 0.85 <= eps_exp <= 1.25, f"eps exponent {eps_exp}"
    assert 0.85 <= two_exp <= 1.25, f"2-connecting exponent {two_exp}"
