"""Exp **E-Th2-udg** — the n^{4/3} edge-count law on random unit disk graphs.

Paper (§3.2 / Table 1 row 5): the expected number of edges of an optimal
(1,0)-remote-spanner on the unit disk graph of a uniform Poisson
distribution in a fixed square is ``O(k^{2/3} n^{4/3})`` — our constructed
spanner adds a log n factor — while the full topology has ``Ω(n²)`` edges.

The bench sweeps Poisson intensity in a fixed square (the paper's model:
both n and density grow), fits both edge counts against measured n, and
asserts the *shape*: spanner exponent ≈ 4/3 (well below 2), full-topology
exponent ≈ 2.  Expected: spanner exponent within [1.15, 1.55]; full
within [1.85, 2.15]; spanner strictly sparser at every point.
"""

from repro.analysis import render_table
from repro.experiments import udg_edge_scaling


def test_udg_edge_scaling(benchmark, record):
    res = benchmark.pedantic(
        lambda: udg_edge_scaling(
            intensities=(15.0, 30.0, 60.0, 120.0), side=3.0, k=1, trials=2, seed=1
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [r.x, round(r.values["n"], 1), round(r.values["full_edges"], 1),
         round(r.values["spanner_edges"], 1),
         round(r.values["spanner_edges"] / r.values["full_edges"], 3)]
        for r in res.rows
    ]
    full_exp = res.exponent("full_edges")
    sp_exp = res.exponent("spanner_edges")
    table = render_table(
        ["intensity", "mean n", "full edges", "spanner edges", "ratio"],
        rows,
        title=(
            "E-Th2-udg — (1,0)-remote-spanner on Poisson UDG, fixed square\n"
            f"fitted exponents: full topology n^{full_exp:.2f} (paper: n^2), "
            f"remote-spanner n^{sp_exp:.2f} (paper: n^(4/3)·log n)"
        ),
    )
    record("udg_scaling", table)
    assert 1.85 <= full_exp <= 2.15, f"full-topology exponent {full_exp}"
    assert 1.15 <= sp_exp <= 1.55, f"spanner exponent {sp_exp}"
    for r in res.rows:
        assert r.values["spanner_edges"] < r.values["full_edges"]
