"""Exp **E-P3/P7** — per-tree sizes: O(r^{p+1}) and O(k²) on UBGs.

Paper (Prop. 3): ``DomTreeMIS_{r,1}`` trees have ≤ 4^p·r^{p+1} edges on a
doubling-dimension-p unit ball graph.  (Prop. 7): ``DomTreeMIS_{2,1,k}``
trees have O(k²) edges.  Both are worst-case envelopes; boundary effects
and early saturation dampen the measured exponents.

Expected shape: r-sweep exponent in (1, p+1] = (1, 3]; k-sweep exponent
in (0, 2]; and the absolute Prop-3 envelope |E(T)| ≤ (4r)^p · r holds at
every point.
"""

from repro.analysis import render_table
from repro.experiments import tree_size_sweep


def test_tree_sizes(benchmark, record):
    r_res, k_res = benchmark.pedantic(
        lambda: tree_size_sweep(
            rs_values=(2, 3, 4, 5),
            ks_values=(1, 2, 3, 4),
            n=500,
            target_degree=16.0,
            samples=40,
            seed=5,
        ),
        rounds=1,
        iterations=1,
    )
    r_exp = r_res.exponent("tree_edges")
    k_exp = k_res.exponent("tree_edges")
    rows_r = [[r.x, round(r.values["tree_edges"], 2)] for r in r_res.rows]
    rows_k = [[r.x, round(r.values["tree_edges"], 2)] for r in k_res.rows]
    text = (
        render_table(
            ["r", "mean |E(T)| (MIS tree)"],
            rows_r,
            title=(
                "E-P3 — DomTreeMIS tree size vs r on UDG (p=2)\n"
                f"fitted exponent r^{r_exp:.2f}; paper envelope r^(p+1) = r^3"
            ),
        )
        + "\n"
        + render_table(
            ["k", "mean |E(T)| (k-MIS tree)"],
            rows_k,
            title=(
                "E-P7 — DomTreeMIS_{2,1,k} tree size vs k\n"
                f"fitted exponent k^{k_exp:.2f}; paper envelope k^2"
            ),
        )
    )
    record("tree_sizes", text)
    assert 0.5 <= r_exp <= 3.0, f"r exponent {r_exp}"
    assert 0.0 < k_exp <= 2.0, f"k exponent {k_exp}"
    for r in r_res.rows:
        assert r.values["tree_edges"] <= (4 * r.x) ** 2 * r.x, "Prop 3 envelope broken"
