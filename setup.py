"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
660 editable installs (which must build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation`` fall back to the
classic ``setup.py develop`` code path, which works offline.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
