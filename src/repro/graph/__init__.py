"""Graph substrate: adjacency-set graphs, BFS primitives, views and ops.

This package is the foundation every paper algorithm stands on.  See
``DESIGN.md`` §1.2 for why the library ships its own graph type instead of
building on networkx (performance of BFS + set-algebra hot paths; networkx
is reserved for test oracles).
"""

from .graph import Graph, canonical_edge
from .csr import CSRGraph
from .traversal import (
    UNREACHED,
    ball,
    batched_bfs,
    batched_bfs_parents,
    bfs_distances,
    bfs_layers,
    bfs_parents,
    bounded_distance,
    connected_components,
    is_connected,
    multi_source_distances,
    path_to_root,
    ring,
)
from .cache import (
    CacheInfo,
    cached_bfs_distances,
    distance_cache_info,
    set_distance_cache_capacity,
)
from .distances import (
    all_pairs_distances,
    diameter,
    distance_matrix,
    eccentricity,
    nonadjacent_pairs,
    sample_pairs,
)
from .views import AugmentedView, augmented_distances, augmented_graph
from .ops import difference, edge_union, induced_subgraph, intersection, remove_nodes, union
from . import generators, io

__all__ = [
    "Graph",
    "CSRGraph",
    "canonical_edge",
    "UNREACHED",
    "ball",
    "batched_bfs",
    "batched_bfs_parents",
    "bounded_distance",
    "CacheInfo",
    "cached_bfs_distances",
    "distance_cache_info",
    "set_distance_cache_capacity",
    "bfs_distances",
    "bfs_layers",
    "bfs_parents",
    "connected_components",
    "is_connected",
    "multi_source_distances",
    "path_to_root",
    "ring",
    "all_pairs_distances",
    "diameter",
    "distance_matrix",
    "eccentricity",
    "nonadjacent_pairs",
    "sample_pairs",
    "AugmentedView",
    "augmented_distances",
    "augmented_graph",
    "difference",
    "edge_union",
    "induced_subgraph",
    "intersection",
    "remove_nodes",
    "union",
    "generators",
    "io",
]
