"""Compressed-sparse-row adjacency backend — the immutable fast twin of
:class:`~repro.graph.graph.Graph`.

Every construction in the paper reduces to repeated BFS balls and rings, so
traversal is the hot path.  The mutable set-based :class:`Graph` is the
right representation while a spanner is being *assembled* (``N(x) & S``
algebra, cheap edge insertion), but its per-node Python sets are slow to
scan.  :class:`CSRGraph` snapshots the adjacency into two flat
``array('i')`` buffers:

* ``indptr`` — ``n + 1`` row offsets;
* ``indices`` — the ``2m`` neighbor ids, sorted ascending within each row
  (the canonical order :func:`~repro.graph.traversal.bfs_parents` relies
  on).

The flat layout enables three access styles, all used by
:mod:`repro.graph.traversal`:

* ``neighbors_csr(u)`` — a zero-copy :class:`memoryview` slice of the row,
  for pure-Python scanning without building sets;
* ``numpy_arrays()`` — zero-copy :mod:`numpy` views for the vectorized
  level-synchronous BFS engines (:func:`~repro.graph.traversal.batched_bfs`);
* ``neighbors(u)`` — a *fresh* set per call, so existing set-algebra
  callers keep working unchanged (contrast with ``Graph.neighbors``, which
  returns its live internal set).

Obtain one with :meth:`Graph.freeze` (cached, invalidated on mutation) or
:meth:`CSRGraph.from_graph` (always rebuilds).  A ``CSRGraph`` is
immutable: its :attr:`version` is a constant 0, which is what makes it a
valid key component for the distance cache in :mod:`repro.graph.cache`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterable, Iterator

import numpy as np

from ..errors import NodeNotFound

if TYPE_CHECKING:  # pragma: no cover - import cycles broken at runtime
    from ..parallel.shm import SharedCSR
    from .graph import Graph

__all__ = ["CSRGraph"]


class CSRGraph:
    """Immutable undirected graph in compressed-sparse-row form.

    Supports the read-only subset of the :class:`~repro.graph.graph.Graph`
    protocol (``num_nodes``, ``num_edges``, ``nodes``, ``neighbors``,
    ``degree``, ``has_edge``, ``edges``, ``edge_set``) plus the flat-array
    accessors the traversal engines consume.  Build via
    :meth:`from_graph` / :meth:`Graph.freeze`.

    Examples
    --------
    >>> from repro.graph import Graph
    >>> c = Graph(4, [(0, 1), (1, 2), (2, 3)]).freeze()
    >>> list(c.neighbors_csr(1))
    [0, 2]
    >>> c.edge_set() == {(0, 1), (1, 2), (2, 3)}
    True
    """

    __slots__ = (
        "_n",
        "_m",
        "_indptr",
        "_indices",
        "_np_indptr",
        "_np_indices",
        "_dist_cache",
        "_pin",
    )

    # ``_indptr``/``_indices`` are ``array('i')`` buffers on a private
    # snapshot but shared numpy views on an attached one — both sides of
    # that union support the slicing/bisect protocol the accessors use,
    # which a static union type cannot express cleanly; hence ``Any``.
    _n: int
    _m: int
    _indptr: Any
    _indices: Any
    _np_indptr: np.ndarray
    _np_indices: np.ndarray
    _dist_cache: Any
    _pin: Any

    def __init__(self, n: int, indptr: array, indices: array) -> None:
        if len(indptr) != n + 1:
            raise ValueError(f"indptr must have n+1 = {n + 1} entries, got {len(indptr)}")
        self._n = n
        self._m = len(indices) // 2
        self._indptr = indptr
        self._indices = indices
        # Zero-copy numpy views over the same buffers, for the vectorized
        # BFS engines.  int64 indptr avoids overflow in offset arithmetic.
        self._np_indptr = np.frombuffer(indptr, dtype=np.intc).astype(np.int64)
        self._np_indices = (
            np.frombuffer(indices, dtype=np.intc)
            if len(indices)
            else np.empty(0, dtype=np.intc)
        )
        self._dist_cache = None  # lazily created by repro.graph.cache
        self._pin = None  # keeps a shared-memory attachment alive (repro.parallel)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, g: Any) -> "CSRGraph":
        """Snapshot any graph-like object (``num_nodes`` + ``neighbors``).

        Rows are sorted ascending, so ``neighbors_csr`` yields the same
        canonical order ``sorted(g.neighbors(u))`` the deterministic
        constructions expand in.  Prefer :meth:`Graph.freeze`, which caches
        the snapshot until the next mutation.
        """
        n = g.num_nodes
        flat: list[int] = []
        indptr = array("i", [0]) * (n + 1)
        for u in range(n):
            nbrs = sorted(g.neighbors(u))
            flat.extend(nbrs)
            indptr[u + 1] = len(flat)
        return cls(n, indptr, array("i", flat))

    @classmethod
    def _from_flat(cls, n: int, np_indptr: "np.ndarray", np_indices: "np.ndarray") -> "CSRGraph":
        """Build from numpy buffers via a C memcpy into the ``array('i')`` twins."""
        indptr = array("i")
        indptr.frombytes(np.ascontiguousarray(np_indptr, dtype=np.intc).tobytes())
        indices = array("i")
        indices.frombytes(np.ascontiguousarray(np_indices, dtype=np.intc).tobytes())
        return cls(n, indptr, indices)

    @classmethod
    def patched(cls, base: "CSRGraph", g: Any, dirty_rows: "Iterable[int]") -> "CSRGraph":
        """Snapshot *g* by patching the prior snapshot *base*.

        *dirty_rows* are the node ids whose adjacency may differ between
        *base* and *g*; every other row is bulk-copied from the base buffers
        (one vectorized span copy per run of clean rows) and only the dirty
        rows are re-sorted from the live sets.  With *k* dirty rows this
        costs O(k) Python work plus O(n + m) C memcpy — the delta-aware
        re-freeze behind :meth:`Graph.freeze <repro.graph.graph.Graph.\
freeze>` for the dynamic-graph workloads.

        The result is bit-identical to ``from_graph(g)`` (property-tested);
        *base* is never mutated.  Falls back to a full rebuild when the node
        counts disagree.
        """
        n = g.num_nodes
        if n != base._n:
            return cls.from_graph(g)
        dirty = sorted(set(dirty_rows))
        if dirty and not (0 <= dirty[0] and dirty[-1] < n):
            raise NodeNotFound(dirty[0] if dirty[0] < 0 else dirty[-1], n)
        if not dirty:
            return base
        base_indptr, base_indices = base._np_indptr, base._np_indices
        deg = (base_indptr[1:] - base_indptr[:-1]).copy()
        rows = {u: sorted(g.neighbors(u)) for u in dirty}
        for u, row in rows.items():
            deg[u] = len(row)
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=new_indptr[1:])
        new_indices = np.empty(int(new_indptr[-1]), dtype=np.intc)
        prev = 0  # first row of the current clean span
        for u in dirty:
            if prev < u:
                new_indices[new_indptr[prev] : new_indptr[u]] = base_indices[
                    base_indptr[prev] : base_indptr[u]
                ]
            row = rows[u]
            if row:
                new_indices[new_indptr[u] : new_indptr[u + 1]] = row
            prev = u + 1
        if prev < n:
            new_indices[new_indptr[prev] :] = base_indices[base_indptr[prev] :]
        return cls._from_flat(n, new_indptr, new_indices)

    def to_graph(self) -> "Graph":
        """Thaw back into a mutable set-based :class:`Graph`."""
        from .graph import Graph

        return Graph(self._n, self.edges())

    # ------------------------------------------------------------------ #
    # shared-memory export (repro.parallel)
    # ------------------------------------------------------------------ #

    def share(
        self, *, capacity_nodes: "int | None" = None, capacity_indices: "int | None" = None
    ) -> "SharedCSR":
        """Export this snapshot into :mod:`multiprocessing.shared_memory`.

        Returns a :class:`~repro.parallel.shm.SharedCSR` owner whose
        picklable ``handle`` lets worker processes :meth:`attach` with
        zero copies — the workers' numpy views alias the very same shared
        buffers.  The owner also supports *delta publishing*: a patched
        re-freeze ships only the dirty row spans to an already-attached
        pool (see :meth:`SharedCSR.publish <repro.parallel.shm.SharedCSR.\
publish>`).  Capacity headroom (defaulting to ~25% slack) lets churn grow
        the graph without reallocating the blocks.
        """
        from ..parallel.shm import SharedCSR

        return SharedCSR(self, capacity_nodes=capacity_nodes, capacity_indices=capacity_indices)

    @classmethod
    def attach(cls, handle: Any) -> "CSRGraph":
        """Materialize a shared snapshot exported by :meth:`share`.

        *handle* is a :class:`~repro.parallel.shm.SharedCSRHandle` (or the
        worker-side attachment that carries one).  The returned graph's
        flat arrays are **zero-copy views into the shared blocks** — no
        bytes move; the attaching process must keep the underlying
        attachment open for the graph's lifetime (the worker pool does this
        bookkeeping automatically).
        """
        from ..parallel.shm import attach_csr

        return attach_csr(handle)

    @classmethod
    def _wrap_views(cls, n: int, np_indptr: "np.ndarray", np_indices: "np.ndarray") -> "CSRGraph":
        """Build a graph around existing int64/int32 views without copying.

        The zero-copy twin of ``__init__`` used by :meth:`attach`: the
        python-level accessors index the numpy views directly (memoryview
        slicing and :func:`bisect.bisect_left` accept them), so shared and
        private snapshots behave identically everywhere.
        """
        self = cls.__new__(cls)
        self._n = n
        self._m = len(np_indices) // 2
        self._indptr = np_indptr
        self._indices = np_indices
        self._np_indptr = np_indptr
        self._np_indices = np_indices
        self._dist_cache = None
        self._pin = None
        return self

    # ------------------------------------------------------------------ #
    # Graph protocol (read-only subset)
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    @property
    def version(self) -> int:
        """Immutable snapshots are always at version 0 (see ``Graph.version``)."""
        return 0

    def nodes(self) -> range:
        return range(self._n)

    def neighbors(self, u: int) -> "set[int]":
        """``N(u)`` as a **fresh** set (allocated per call).

        Unlike ``Graph.neighbors`` there is no live internal set to share;
        set-algebra callers work unchanged but pay one allocation.  Hot
        loops should use :meth:`neighbors_csr` instead.
        """
        self._check(u)
        # .tolist() exists on both the array('i') buffer and the numpy view
        # of a shared snapshot, and yields plain ints in either case.
        return set(self._indices[self._indptr[u] : self._indptr[u + 1]].tolist())

    def neighbors_csr(self, u: int) -> memoryview:
        """``N(u)`` as a zero-copy sorted ``memoryview`` slice.

        The public form of the flat-row access style; the traversal
        engines inline the same slicing over one shared memoryview to
        avoid per-node method-call overhead.
        """
        self._check(u)
        return memoryview(self._indices)[self._indptr[u] : self._indptr[u + 1]]

    def numpy_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(indptr, indices)`` numpy views (int64 offsets, int32 ids)."""
        return self._np_indptr, self._np_indices

    def degree(self, u: int) -> int:
        self._check(u)
        return self._indptr[u + 1] - self._indptr[u]

    def max_degree(self) -> int:
        if self._n == 0:
            return 0
        return int((self._np_indptr[1:] - self._np_indptr[:-1]).max())

    def has_edge(self, u: int, v: int) -> bool:
        """Edge test by binary search in the sorted row of *u*."""
        self._check(u)
        self._check(v)
        lo, hi = self._indptr[u], self._indptr[u + 1]
        pos = bisect_left(self._indices, v, lo, hi)
        return pos < hi and self._indices[pos] == v

    def edges(self) -> Iterator["tuple[int, int]"]:
        indptr, indices = self._indptr, self._indices
        for u in range(self._n):
            for i in range(indptr[u], indptr[u + 1]):
                v = indices[i]
                if u < v:
                    yield (u, v)

    def edge_set(self) -> set["tuple[int, int]"]:
        return set(self.edges())

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __contains__(self, u: object) -> bool:
        return isinstance(u, int) and 0 <= u < self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        # Compare through the numpy views so private (array-backed) and
        # shared (view-backed) snapshots are mutually comparable.
        return (
            self._n == other._n
            and np.array_equal(self._np_indptr, other._np_indptr)
            and np.array_equal(self._np_indices, other._np_indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self._n}, m={self._m})"

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _check(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise NodeNotFound(u, self._n)
