"""The augmented graph :math:`H_u` — the heart of the remote-spanner notion.

Given the advertised sub-graph ``H`` and the full graph ``G``, node *u*
routes on :math:`H_u`, the graph with edge set
:math:`E(H) \\cup \\{uv \\mid v \\in N_G(u)\\}` (paper §1).  The stretch of a
remote-spanner is defined through distances *in this augmented view*, so the
library gives it first-class support.

:class:`AugmentedView` exposes ``neighbors``/BFS without materializing a new
graph: only node *u*'s adjacency differs from ``H`` (and symmetric entries
for members of ``N_G(u)``).  Distance queries on :math:`H_u` are a single
BFS, so verifying a remote-spanner costs one BFS per source node — the same
as regular spanner verification.
"""

from __future__ import annotations

from ..errors import NodeNotFound, NotASubgraphError
from .graph import Graph

__all__ = ["AugmentedView", "augmented_graph", "augmented_distances"]


class AugmentedView:
    """Read-only view of :math:`H_u` for a fixed source node *u*.

    Parameters
    ----------
    h:
        The advertised sub-graph ``H`` (``V(H) = V(G)``).
    g:
        The full topology ``G``; supplies ``N_G(u)``.
    u:
        The source node whose incident edges are grafted onto ``H``.

    Notes
    -----
    ``neighbors(x)`` allocates a fresh set only for *u* itself and for the
    members of ``N_G(u)`` that are not already ``H``-adjacent to them; other
    nodes get the live ``H`` adjacency (read-only by library convention).
    """

    __slots__ = ("_h", "_g", "_u", "_extra")

    def __init__(self, h: Graph, g: Graph, u: int) -> None:
        if h.num_nodes != g.num_nodes:
            raise NotASubgraphError(
                f"H has {h.num_nodes} nodes but G has {g.num_nodes}; V(H) must equal V(G)"
            )
        if not (0 <= u < g.num_nodes):
            raise NodeNotFound(u, g.num_nodes)
        self._h = h
        self._g = g
        self._u = u
        # Neighbors of u in G that H does not already connect to u.
        self._extra = g.neighbors(u) - h.neighbors(u)

    @property
    def num_nodes(self) -> int:
        return self._h.num_nodes

    @property
    def source(self) -> int:
        """The augmentation node *u*."""
        return self._u

    def _check(self, x: int) -> None:
        """Node-range check (graph-protocol parity with :class:`Graph`)."""
        if not (0 <= x < self.num_nodes):
            raise NodeNotFound(x, self.num_nodes)

    def neighbors(self, x: int) -> set[int]:
        """``N_{H_u}(x)``."""
        if x == self._u:
            if not self._extra:
                return self._h.neighbors(x)
            return self._h.neighbors(x) | self._extra
        if x in self._extra:
            return self._h.neighbors(x) | {self._u}
        return self._h.neighbors(x)

    def has_edge(self, x: int, y: int) -> bool:
        if self._h.has_edge(x, y):
            return True
        if x == self._u:
            return y in self._extra
        if y == self._u:
            return x in self._extra
        return False

    def distances_from(self, source: int, cutoff: "int | None" = None) -> list[int]:
        """BFS distances in :math:`H_u` from *source* (``-1`` = unreachable).

        When *source* is the augmentation node *u* itself (the case every
        stretch predicate hits, once per node of G) and ``H`` carries a
        fresh CSR snapshot, the BFS runs on the flat arrays: level 1 is
        seeded with ``N_{H_u}(u)`` directly and the remaining expansion
        never needs the grafted edges (they all lead back to *u*, already
        settled at distance 0).  Freeze ``H`` once before a per-node
        verification loop to enable this path.
        """
        from . import traversal

        if (
            source == self._u
            and isinstance(self._h, Graph)
            and self._h._csr is not None
            and self._h.num_nodes >= traversal._auto_min_nodes()
        ):
            return self._csr_distances_from_u(cutoff)
        n = self.num_nodes
        dist = [-1] * n
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            if cutoff is not None and d >= cutoff:
                break
            nxt: list[int] = []
            d += 1
            for x in frontier:
                for y in self.neighbors(x):
                    if dist[y] == -1:
                        dist[y] = d
                        nxt.append(y)
            frontier = nxt
        return dist

    def freeze(self):
        """Materialize :math:`H_u` as an immutable CSR snapshot.

        Only node *u*'s adjacency row and the rows of its grafted
        neighbors ``N_G(u) \\ N_H(u)`` differ from ``H``, so the snapshot
        is built by patching H's own frozen snapshot
        (:meth:`CSRGraph.patched <repro.graph.csr.CSRGraph.patched>`):
        O(deg_G(u)) row re-sorts plus bulk span copies instead of a full
        O(n + m) conversion.  When nothing is grafted the result *is* H's
        snapshot.  This is what lets per-node BFS loops over :math:`H_u`
        (the routing-table kernel in :mod:`repro.routing.tables`) run on
        the batched flat-array engine.
        """
        from .csr import CSRGraph

        base = self._h.freeze() if isinstance(self._h, Graph) else CSRGraph.from_graph(self._h)
        if not self._extra:
            return base
        return CSRGraph.patched(base, self, {self._u, *self._extra})

    def _csr_distances_from_u(self, cutoff: "int | None") -> list[int]:
        """Flat-array BFS from *u* on H's fresh CSR snapshot."""
        import numpy as np

        from .traversal import UNREACHED, _expand_levels

        csr = self._h._csr
        dist = np.full(csr.num_nodes, UNREACHED, dtype=np.int32)
        dist[self._u] = 0
        if cutoff is not None and cutoff < 1:
            return dist.tolist()
        level1 = self._h.neighbors(self._u) | self._extra
        frontier = list(level1)
        dist[frontier] = 1
        _expand_levels(csr, dist, frontier, 1, cutoff, None)
        return dist.tolist()


def augmented_graph(h: Graph, g: Graph, u: int) -> Graph:
    """Materialize :math:`H_u` as a standalone :class:`~repro.graph.Graph`.

    Used where an algorithm needs full graph machinery (e.g. disjoint-path
    flow computations in :math:`H_s`); for plain distance queries prefer
    :class:`AugmentedView`.
    """
    AugmentedView(h, g, u)  # validates V(H) = V(G) and node range
    out = h.copy()
    for v in g.neighbors(u):
        out.add_edge(u, v)
    return out


def augmented_distances(h: Graph, g: Graph, u: int, cutoff: "int | None" = None) -> list[int]:
    """Distances from *u* in :math:`H_u` — the quantity α·d_G(u,v)+β bounds."""
    return AugmentedView(h, g, u).distances_from(u, cutoff=cutoff)
