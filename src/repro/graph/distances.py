"""All-pairs and aggregate distance utilities.

Used by the verification predicates (stretch certification needs distances
in ``G`` and in every ``H_u``) and by the experiment harnesses (diameter
controls the sweep ranges; pair sampling keeps large-n checks tractable).
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng
from .cache import cached_bfs_distances
from .graph import Graph
from .traversal import batched_bfs, bfs_distances

__all__ = [
    "all_pairs_distances",
    "eccentricity",
    "diameter",
    "distance_matrix",
    "sample_pairs",
    "nonadjacent_pairs",
]


def all_pairs_distances(g: Graph, workers=None) -> list[list[int]]:
    """APSP by n batched BFS runs; ``dist[u][v] == -1`` when unreachable.

    O(n·m) — fine for the n ≤ a few thousand graphs of the experiments.
    Runs on the CSR backend via :func:`~repro.graph.traversal.batched_bfs`;
    ``workers`` (int, ``"auto"`` or a :class:`~repro.parallel.pool.\
WorkerPool`) fans the sources out across processes on a shared-memory
    snapshot — same rows, computed in parallel.
    """
    return [dist for _u, dist in batched_bfs(g, workers=workers)]


def distance_matrix(g: Graph, workers=None) -> np.ndarray:
    """APSP as an ``(n, n)`` int32 numpy array (``-1`` = unreachable).

    ``workers`` fans out exactly like :func:`all_pairs_distances`.
    """
    n = g.num_nodes
    out = np.empty((n, n), dtype=np.int32)
    for u, dist in batched_bfs(g, arrays=True, workers=workers):
        out[u] = dist
    return out


def eccentricity(g: Graph, u: int) -> int:
    """Max distance from *u* to any reachable node."""
    return max(d for d in bfs_distances(g, u) if d >= 0)


def diameter(g: Graph) -> int:
    """Diameter of the (assumed connected) graph; 0 for n ≤ 1."""
    if g.num_nodes <= 1:
        return 0
    best = 0
    for _u, dist in batched_bfs(g):
        best = max(best, max(d for d in dist if d >= 0))
    return best


def nonadjacent_pairs(g: Graph) -> list["tuple[int, int]"]:
    """All unordered node pairs that are *not* edges (and are distinct).

    These are exactly the pairs the remote-spanner stretch condition
    constrains (adjacent pairs trivially satisfy it through ``H_u``).
    """
    n = g.num_nodes
    return [(u, v) for u in range(n) for v in range(u + 1, n) if not g.has_edge(u, v)]


def sample_pairs(
    g: Graph,
    count: int,
    seed: "int | np.random.Generator | None" = None,
    require_nonadjacent: bool = True,
    require_connected: bool = True,
) -> list["tuple[int, int]"]:
    """Sample up to *count* distinct node pairs, optionally non-adjacent.

    ``require_connected`` drops pairs with no path in ``G``.  Sampling is
    rejection-based with a deterministic fallback to full enumeration when
    the graph is small or very dense, so it always terminates.
    """
    rng = ensure_rng(seed)
    n = g.num_nodes
    if n < 2:
        return []
    if require_connected:
        g.freeze()  # connectivity probes below ride the CSR snapshot
    # Dense/small graphs: enumerate and choose.
    if n * (n - 1) // 2 <= 4 * count or n <= 64:
        pool = nonadjacent_pairs(g) if require_nonadjacent else [
            (u, v) for u in range(n) for v in range(u + 1, n)
        ]
        if require_connected:
            # Consecutive pool entries share their first endpoint, so the
            # LRU distance cache turns this from O(|pool|·m) into O(n·m).
            pool = [p for p in pool if cached_bfs_distances(g, p[0])[p[1]] >= 0]
        if len(pool) <= count:
            return pool
        idx = rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in sorted(idx)]
    out: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = 50 * count
    while len(out) < count and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        if u > v:
            u, v = v, u
        if (u, v) in out:
            continue
        if require_nonadjacent and g.has_edge(u, v):
            continue
        if require_connected and cached_bfs_distances(g, u)[v] < 0:
            continue
        out.add((u, v))
    return sorted(out)
