"""Deterministic and random graph generators used across tests and benches.

The paper's guarantees are universal ("for any unweighted input graph"), so
the test-suite exercises constructions on a zoo of structured families in
addition to the geometric models from :mod:`repro.geometry`:

* paths / cycles — the worst case discussed in §1.2 for fault-tolerant
  spanners (deleting a cycle node blows up distances);
* grids and hypercubes — bounded-growth vs expander-ish contrast;
* complete / complete-bipartite — Δ = Ω(n) regimes where the log Δ factors
  bite;
* Erdős–Rényi ``G(n, p)`` — the "any graph" regime;
* random trees and caterpillars — sparse diameter-heavy regime.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng
from .graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "complete_bipartite",
    "star_graph",
    "grid_graph",
    "hypercube_graph",
    "gnp_random_graph",
    "random_tree",
    "caterpillar_graph",
    "theta_graph",
    "random_connected_gnp",
]


def path_graph(n: int) -> Graph:
    """Path ``0-1-...-(n-1)``."""
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """Cycle on *n* ≥ 3 nodes."""
    if n < 3:
        raise ParameterError(f"cycle needs n ≥ 3, got {n}")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def complete_graph(n: int) -> Graph:
    """Clique K_n."""
    return Graph(n, ((u, v) for u in range(n) for v in range(u + 1, n)))


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b}: left part ``0..a-1``, right part ``a..a+b-1``."""
    return Graph(a + b, ((u, a + v) for u in range(a) for v in range(b)))


def star_graph(n: int) -> Graph:
    """Star with center 0 and ``n-1`` leaves."""
    if n < 1:
        raise ParameterError(f"star needs n ≥ 1, got {n}")
    return Graph(n, ((0, i) for i in range(1, n)))


def grid_graph(rows: int, cols: int) -> Graph:
    """``rows × cols`` 4-neighbor grid; node id is ``r * cols + c``."""
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1)
            if r + 1 < rows:
                g.add_edge(u, u + cols)
    return g


def hypercube_graph(dim: int) -> Graph:
    """Boolean hypercube Q_dim on ``2**dim`` nodes."""
    if dim < 0:
        raise ParameterError(f"dimension must be ≥ 0, got {dim}")
    n = 1 << dim
    g = Graph(n)
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                g.add_edge(u, v)
    return g


def gnp_random_graph(n: int, p: float, seed: "int | np.random.Generator | None" = None) -> Graph:
    """Erdős–Rényi ``G(n, p)`` (vectorized Bernoulli over the upper triangle)."""
    if not (0.0 <= p <= 1.0):
        raise ParameterError(f"p must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    g = Graph(n)
    if n < 2 or p == 0.0:
        return g
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    for u, v in zip(iu[mask].tolist(), ju[mask].tolist()):
        g.add_edge(u, v)
    return g


def random_tree(n: int, seed: "int | np.random.Generator | None" = None) -> Graph:
    """Uniform random labeled tree via a Prüfer sequence."""
    if n < 1:
        raise ParameterError(f"tree needs n ≥ 1, got {n}")
    if n <= 2:
        return Graph(n, [(0, 1)] if n == 2 else [])
    rng = ensure_rng(seed)
    prufer = rng.integers(0, n, size=n - 2).tolist()
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    g = Graph(n)
    # Min-heap free of nodes with residual degree 1.
    import heapq

    leaves = [u for u in range(n) if degree[u] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, x)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def caterpillar_graph(spine: int, legs_per_node: int) -> Graph:
    """Caterpillar: a spine path with *legs_per_node* pendant leaves each."""
    if spine < 1:
        raise ParameterError(f"spine must be ≥ 1, got {spine}")
    n = spine + spine * legs_per_node
    g = Graph(n)
    for i in range(spine - 1):
        g.add_edge(i, i + 1)
    nxt = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(i, nxt)
            nxt += 1
    return g


def theta_graph(lengths: "tuple[int, ...]") -> Graph:
    """Theta graph: two terminals joined by internally-disjoint paths.

    ``lengths`` gives the edge-length of each parallel path (each ≥ 2 so the
    paths are internally disjoint and the terminals non-adjacent — the shape
    the k-connecting distance d^k is defined on).  Terminal ids are 0 and 1.
    """
    if len(lengths) < 1 or any(ln < 2 for ln in lengths):
        raise ParameterError("theta graph needs paths of length ≥ 2")
    n = 2 + sum(ln - 1 for ln in lengths)
    g = Graph(n)
    nxt = 2
    for ln in lengths:
        prev = 0
        for _ in range(ln - 1):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, 1)
    return g


def random_connected_gnp(
    n: int, p: float, seed: "int | np.random.Generator | None" = None
) -> Graph:
    """``G(n, p)`` patched to connectivity with a random spanning tree.

    Used by tests that need connected inputs without conditioning the model:
    a uniform random tree is laid down first, then G(n, p) edges on top.
    """
    rng = ensure_rng(seed)
    g = random_tree(n, rng) if n > 1 else Graph(n)
    extra = gnp_random_graph(n, p, rng)
    for u, v in extra.edges():
        g.add_edge(u, v)
    return g
