"""Plain-text serialization for graphs.

A tiny, dependency-free format so experiment artifacts (generated topologies
and the spanners computed on them) can be checked into result directories
and re-loaded exactly:

.. code-block:: text

    # remote-spanner graph v1
    n 5
    e 0 1
    e 1 2
    ...

Round-tripping is exact (dense ids, no attributes), and the parser is strict
about malformed lines so artifact corruption fails loudly.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

from ..errors import GraphError
from .graph import Graph

__all__ = ["dumps", "loads", "save", "load", "to_networkx", "from_networkx"]

_HEADER = "# remote-spanner graph v1"


def dumps(g: Graph) -> str:
    """Serialize *g* to the text format."""
    buf = _io.StringIO()
    buf.write(_HEADER + "\n")
    buf.write(f"n {g.num_nodes}\n")
    for u, v in sorted(g.edges()):
        buf.write(f"e {u} {v}\n")
    return buf.getvalue()


def loads(text: str) -> Graph:
    """Parse the text format back into a :class:`Graph`."""
    lines = [ln.strip() for ln in text.splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("#")]
    if not lines or not lines[0].startswith("n "):
        raise GraphError("graph text must start with an 'n <count>' line")
    try:
        n = int(lines[0].split()[1])
    except (IndexError, ValueError) as exc:
        raise GraphError(f"bad node-count line: {lines[0]!r}") from exc
    g = Graph(n)
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 3 or parts[0] != "e":
            raise GraphError(f"bad edge line: {ln!r}")
        g.add_edge(int(parts[1]), int(parts[2]))
    return g


def save(g: Graph, path: "str | Path") -> None:
    """Write *g* to *path* in the text format."""
    Path(path).write_text(dumps(g), encoding="utf-8")


def load(path: "str | Path") -> Graph:
    """Read a graph from *path*."""
    return loads(Path(path).read_text(encoding="utf-8"))


def to_networkx(g: Graph):  # pragma: no cover - exercised only when networkx present
    """Convert to a :class:`networkx.Graph` (test-oracle bridge).

    networkx is an optional test dependency; import happens lazily so the
    core library stays numpy-only.
    """
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(range(g.num_nodes))
    out.add_edges_from(g.edges())
    return out


def from_networkx(nxg) -> "tuple[Graph, dict]":
    """Convert a networkx graph; returns ``(graph, original_label_of_id)``."""
    labels = sorted(nxg.nodes(), key=repr)
    index = {lab: i for i, lab in enumerate(labels)}
    g = Graph(len(labels))
    for a, b in nxg.edges():
        if a != b:
            g.add_edge(index[a], index[b])
    return g, {i: lab for lab, i in index.items()}
