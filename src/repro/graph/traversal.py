"""Breadth-first traversal primitives: distances, parents, balls and rings.

Everything in the paper is phrased in terms of BFS by-products:

* ``B_G(u, r)`` — the ball of radius *r* around *u* (§1.1);
* rings ``B_G(u, r') \\ B_G(u, r'-1)`` — the per-distance layers Algorithm 1
  covers one at a time;
* BFS parent forests — "add to T a shortest path from u to x in G" is
  implemented by walking parent pointers, which guarantees the union of the
  added paths is a tree (design decision 2 in DESIGN.md).

The functions here are the hot path of every construction, so they run on
two backends:

* **sets** — the original pure-Python loops over ``g.neighbors(u)``; works
  with any graph-like object (including :class:`~repro.graph.views.\
AugmentedView`) and is the right choice while a graph is being mutated;
* **csr** — flat-array loops over a :class:`~repro.graph.csr.CSRGraph`
  snapshot: a vectorized level-synchronous frontier expansion (numpy
  gathers over ``indptr``/``indices``) with a pure-Python small-frontier
  path, plus preallocated ``array('i')`` queues for the canonical parent
  forest.

Backend selection is automatic: a ``CSRGraph`` argument, or a ``Graph``
whose :meth:`~repro.graph.graph.Graph.freeze` snapshot is still fresh, takes
the CSR path; everything else falls back to sets.  Pass ``backend="sets"``
or ``backend="csr"`` to force one (the property tests assert exact
agreement between the two).  For per-node loops — every Algorithm 1–5
construction, stretch certification, APSP — use :func:`batched_bfs`, which
freezes once and amortizes buffer allocation across sources.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

import numpy as np

from .. import tuning
from ..errors import ParameterError
from .csr import CSRGraph
from .graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_parents",
    "bfs_layers",
    "ball",
    "ring",
    "path_to_root",
    "multi_source_distances",
    "bounded_distance",
    "batched_bfs",
    "batched_bfs_parents",
    "connected_components",
    "is_connected",
]

#: Sentinel distance for unreachable nodes in the arrays returned below.
UNREACHED = -1

def _small_frontier() -> int:
    """Frontier size at or below which the vectorized engine expands in
    pure Python — numpy call overhead dominates on tiny frontiers (deep,
    skinny graphs like paths degenerate to one node per level).  Tunable
    via :mod:`repro.tuning` (``REPRO_SMALL_FRONTIER``).
    """
    return tuning.get().small_frontier


def _batch_chunk() -> int:
    """Sources per chunk in :func:`batched_bfs` (``None`` chunk argument).

    Small enough that the flat ``chunk * n`` distance buffer stays
    cache-friendly, large enough to amortize per-level numpy call overhead
    across sources.  Tunable via :mod:`repro.tuning` (``REPRO_BATCH_CHUNK``
    or ``python -m repro tune`` to calibrate).
    """
    return tuning.get().batch_chunk


def _auto_min_nodes() -> int:
    """Below this node count the ``auto`` backend stays on sets: numpy call
    overhead exceeds the whole BFS on toy graphs (the property-test regime).
    ``backend="csr"`` overrides, and a ``CSRGraph`` argument is always CSR.
    Tunable via :mod:`repro.tuning` (``REPRO_AUTO_MIN_NODES``).
    """
    return tuning.get().auto_min_nodes


# --------------------------------------------------------------------- #
# backend selection
# --------------------------------------------------------------------- #


def _csr_of(g, backend: str) -> "CSRGraph | None":
    """The CSR snapshot to use for *g*, or ``None`` for the set backend.

    ``backend="auto"`` never *builds* a snapshot: it uses one only when it
    is free (g already is a ``CSRGraph``, or carries a fresh cached
    ``freeze()``), so mutation-heavy callers (e.g. the greedy spanner,
    which BFS-probes a graph it is growing) keep the set backend without
    pathological re-conversions.  ``backend="csr"`` forces a freeze.
    """
    if backend not in ("auto", "sets", "csr"):
        raise ParameterError(f"unknown backend {backend!r} (want 'auto', 'sets' or 'csr')")
    if backend == "sets":
        return None
    if isinstance(g, CSRGraph):
        return g
    if backend == "csr":
        if hasattr(g, "freeze"):
            return g.freeze()
        raise ParameterError(
            f"backend='csr' needs a Graph or CSRGraph, got {type(g).__name__}"
        )
    if isinstance(g, Graph) and g.num_nodes >= _auto_min_nodes():
        return g._csr  # fresh cached snapshot or None
    return None


# --------------------------------------------------------------------- #
# CSR engine: vectorized level-synchronous expansion
# --------------------------------------------------------------------- #


def _expand_levels(
    csr: CSRGraph,
    dist: np.ndarray,
    frontier: list,
    d: int,
    cutoff: "int | None",
    layers: "list[list[int]] | None",
) -> None:
    """Expand *frontier* (all nodes at distance *d*) until exhaustion/cutoff.

    ``dist`` is an int32 numpy array with the seed distances already
    written; discovered nodes get ``d+1, d+2, ...``.  When *layers* is a
    list, each discovered level is appended to it as a list of ints.

    Small frontiers walk the rows in Python through zero-copy memoryview
    slices (numpy call overhead dominates otherwise); large frontiers use
    one vectorized gather per level: ``starts/counts`` from ``indptr``, a
    ``repeat`` + ``arange`` flat offset build, one fancy-index into
    ``indices``, then a mask of unseen candidates.
    """
    indptr = csr._indptr
    rows = memoryview(csr._indices)  # sliced per node, no copies
    np_indptr, np_indices = csr.numpy_arrays()
    np_frontier: "np.ndarray | None" = None
    small_frontier = _small_frontier()  # read the knob once per expansion
    while True:
        size = len(frontier) if np_frontier is None else int(np_frontier.size)
        if size == 0 or (cutoff is not None and d >= cutoff):
            return
        d += 1
        if size <= small_frontier:
            if np_frontier is not None:
                frontier = np_frontier.tolist()
                np_frontier = None
            nxt: list[int] = []
            for u in frontier:
                for v in rows[indptr[u] : indptr[u + 1]]:
                    if dist[v] < 0:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
            if layers is not None and nxt:
                layers.append(nxt)
        else:
            if np_frontier is None:
                np_frontier = np.asarray(frontier, dtype=np.int64)
            starts = np_indptr[np_frontier]
            counts = np_indptr[np_frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return
            cum = np.cumsum(counts)
            offs = np.repeat(starts - cum + counts, counts) + np.arange(total)
            cand = np_indices[offs]
            cand = cand[dist[cand] < 0]
            if cand.size == 0:
                return
            dist[cand] = d
            np_frontier = np.flatnonzero(dist == d).astype(np.int64)
            if layers is not None:
                layers.append(np_frontier.tolist())


def _csr_distances(
    csr: CSRGraph, source: int, cutoff: "int | None", layers: "list[list[int]] | None" = None
) -> np.ndarray:
    dist = np.full(csr.num_nodes, UNREACHED, dtype=np.int32)
    dist[source] = 0
    _expand_levels(csr, dist, [source], 0, cutoff, layers)
    return dist


def _csr_parents(
    csr: CSRGraph, source: int, cutoff: "int | None"
) -> "tuple[list[int], list[int]]":
    """Canonical parent forest on flat arrays with a preallocated queue.

    CSR rows are sorted ascending, so plain row order reproduces the
    ``sorted(g.neighbors(u))`` expansion of the set backend exactly —
    identical ``(dist, parent)`` output, no per-node sort.
    """
    n = csr.num_nodes
    indptr = csr._indptr
    rows = memoryview(csr._indices)  # zero-copy row slices
    dist = [UNREACHED] * n
    parent = [UNREACHED] * n
    dist[source] = 0
    parent[source] = source
    queue = array("i", [0]) * n  # preallocated: every node enqueues at most once
    queue[0] = source
    head, tail = 0, 1
    d = 0
    while head < tail:
        if cutoff is not None and d >= cutoff:
            break
        d += 1
        level_end = tail
        while head < level_end:
            u = queue[head]
            head += 1
            for v in rows[indptr[u] : indptr[u + 1]]:
                if dist[v] == UNREACHED:
                    dist[v] = d
                    parent[v] = u
                    queue[tail] = v
                    tail += 1
    return dist, parent


# --------------------------------------------------------------------- #
# public primitives
# --------------------------------------------------------------------- #


def bfs_distances(
    g, source: int, cutoff: "int | None" = None, backend: str = "auto"
) -> list[int]:
    """Distances from *source* to every node (``-1`` if unreachable).

    ``cutoff`` bounds the exploration radius: nodes further than *cutoff*
    keep distance ``-1``.  This is what makes the local algorithms local —
    a node running ``DomTreeGdy_{r,β}`` only ever explores ``B_G(u, r+β)``.
    """
    g._check(source)
    csr = _csr_of(g, backend)
    if csr is not None:
        return _csr_distances(csr, source, cutoff).tolist()
    dist = [UNREACHED] * g.num_nodes
    dist[source] = 0
    frontier = [source]
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in g.neighbors(u):
                if dist[v] == UNREACHED:
                    dist[v] = d
                    nxt.append(v)
        frontier = nxt
    return dist


def bfs_parents(
    g, source: int, cutoff: "int | None" = None, backend: str = "auto"
) -> "tuple[list[int], list[int]]":
    """``(dist, parent)`` arrays of a BFS from *source*.

    ``parent[source] == source``; unreached nodes have ``parent == -1``.
    The parent pointers form a shortest-path forest: following them from any
    reached node yields a shortest path to *source*, and the union of any
    collection of such paths is a tree rooted at *source*.

    Neighbors are expanded in sorted order so the forest is a *canonical*
    function of the graph: two nodes with identical local views compute
    identical forests — the property that makes the distributed protocol's
    trees match the centralized construction edge-for-edge.  (Both backends
    realize the same order: the CSR path exploits that its rows are already
    sorted.)
    """
    g._check(source)
    csr = _csr_of(g, backend)
    if csr is not None:
        return _csr_parents(csr, source, cutoff)
    n = g.num_nodes
    dist = [UNREACHED] * n
    parent = [UNREACHED] * n
    dist[source] = 0
    parent[source] = source
    frontier = [source]
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in sorted(g.neighbors(u)):
                if dist[v] == UNREACHED:
                    dist[v] = d
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    return dist, parent


def bfs_layers(
    g, source: int, cutoff: "int | None" = None, backend: str = "auto"
) -> list[list[int]]:
    """BFS layers ``[ [source], ring(1), ring(2), ... ]`` up to *cutoff*.

    Layer membership is backend-independent; the order of nodes *within* a
    layer is not specified (callers treat layers as sets).
    """
    g._check(source)
    csr = _csr_of(g, backend)
    if csr is not None:
        layers: list[list[int]] = [[source]]
        _csr_distances(csr, source, cutoff, layers=layers)
        return layers
    seen = [False] * g.num_nodes
    seen[source] = True
    layers = [[source]]
    frontier = [source]
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    nxt.append(v)
        if nxt:
            layers.append(nxt)
        frontier = nxt
    return layers


def ball(g, center: int, radius: int, backend: str = "auto") -> set[int]:
    """``B_G(center, radius)`` — all nodes at distance ≤ radius (incl. center)."""
    if radius < 0:
        raise ParameterError(f"radius must be ≥ 0, got {radius}")
    out: set[int] = set()
    for layer in bfs_layers(g, center, cutoff=radius, backend=backend):
        out.update(layer)
    return out


def ring(g, center: int, radius: int, backend: str = "auto") -> set[int]:
    """Nodes at distance exactly *radius* from *center*."""
    if radius < 0:
        raise ParameterError(f"radius must be ≥ 0, got {radius}")
    layers = bfs_layers(g, center, cutoff=radius, backend=backend)
    if len(layers) <= radius:
        return set()
    return set(layers[radius])


def path_to_root(parent: list[int], node: int) -> list[int]:
    """Walk *parent* pointers from *node* to the BFS root.

    Returns the node sequence ``[node, ..., root]``.  Raises
    :class:`~repro.errors.ParameterError` if *node* was not reached.
    """
    if parent[node] == UNREACHED:
        raise ParameterError(f"node {node} unreachable in parent forest")
    path = [node]
    while parent[path[-1]] != path[-1]:
        path.append(parent[path[-1]])
    return path


def multi_source_distances(
    g, sources: Iterable[int], cutoff: "int | None" = None, backend: str = "auto"
) -> list[int]:
    """Distance from each node to the nearest of *sources* (``-1`` beyond cutoff)."""
    csr = _csr_of(g, backend)
    if csr is not None:
        dist = np.full(csr.num_nodes, UNREACHED, dtype=np.int32)
        frontier: list[int] = []
        for s in sources:
            g._check(s)
            if dist[s] < 0:
                dist[s] = 0
                frontier.append(s)
        _expand_levels(csr, dist, frontier, 0, cutoff, None)
        return dist.tolist()
    dist = [UNREACHED] * g.num_nodes
    frontier = []
    for s in sources:
        g._check(s)
        if dist[s] == UNREACHED:
            dist[s] = 0
            frontier.append(s)
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in g.neighbors(u):
                if dist[v] == UNREACHED:
                    dist[v] = d
                    nxt.append(v)
        frontier = nxt
    return dist


def bounded_distance(g, s: int, t: int, cap: int) -> int:
    """``d_G(s, t)`` if ≤ *cap*, else ``cap + 1`` — with early exit at *t*.

    The incremental-spanner probe ("would this edge's endpoints already be
    within the stretch budget?"): unlike ``bfs_distances(...)[t]`` it stops
    the moment *t* is reached, and it never converts to CSR, so it stays
    cheap on a graph that is being mutated between calls.
    """
    g._check(s)
    g._check(t)
    if cap < 0:
        raise ParameterError(f"cap must be ≥ 0, got {cap}")
    if s == t:
        return 0
    dist = [UNREACHED] * g.num_nodes
    dist[s] = 0
    frontier = [s]
    d = 0
    while frontier and d < cap:
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in g.neighbors(u):
                if dist[v] == UNREACHED:
                    if v == t:
                        return d
                    dist[v] = d
                    nxt.append(v)
        frontier = nxt
    return cap + 1


# --------------------------------------------------------------------- #
# batched multi-source engine
# --------------------------------------------------------------------- #


def batched_bfs(
    g,
    sources: "Iterable[int] | None" = None,
    cutoff: "int | None" = None,
    chunk: "int | None" = None,
    backend: str = "auto",
    arrays: bool = False,
    workers=None,
) -> Iterator["tuple[int, list[int]]"]:
    """Yield ``(source, dist)`` for each source — the amortized per-node loop.

    This is the engine behind every "for every node u: BFS from u" loop in
    the paper (Algorithm 3's assembly, stretch certification, APSP).  It
    freezes *g* once and runs *chunk* sources simultaneously on the flat
    CSR arrays: one distance buffer of ``chunk × n`` int32 entries encodes
    all BFS states, frontiers are flat ``source_slot * n + node`` keys, and
    each level is a single vectorized gather — so numpy call overhead and
    buffer allocation amortize across sources instead of recurring per
    node.

    Yields in the order of *sources* (default: all nodes).  Each ``dist``
    is a fresh list the caller owns — or, with ``arrays=True``, a
    read-only int32 ndarray (a view into the chunk buffer: numpy consumers
    like the routing-table kernels skip the list round-trip; copy before
    mutating).  Results agree exactly with ``bfs_distances(g, s, cutoff)``
    — the property tests assert it.

    On graphs below the auto threshold (``backend="auto"``) the engine is
    skipped entirely and each source runs a plain set-backend BFS — the
    vectorized machinery only pays off past toy sizes.

    ``workers`` fans the sources out across a :class:`~repro.parallel.pool.\
WorkerPool` of processes attached to a shared-memory copy of the CSR
    snapshot — pass an int, ``"auto"`` (engages only past
    ``tuning.parallel_min_nodes``, resolved from the CPU count), or an
    existing pool to reuse.  Results are identical to the serial engine's
    in every mode (the workers run this very engine).
    """
    if chunk is None:
        chunk = _batch_chunk()
    if chunk < 1:
        raise ParameterError(f"chunk must be ≥ 1, got {chunk}")
    if backend not in ("auto", "sets", "csr"):
        raise ParameterError(f"unknown backend {backend!r} (want 'auto', 'sets' or 'csr')")
    if backend == "sets" or (
        backend == "auto"
        and not isinstance(g, CSRGraph)
        and g.num_nodes < _auto_min_nodes()
    ):
        src_iter = range(g.num_nodes) if sources is None else sources
        for s in src_iter:
            dist = bfs_distances(g, s, cutoff, backend="sets")
            yield int(s), (np.asarray(dist, dtype=np.int32) if arrays else dist)
        return
    csr = g if isinstance(g, CSRGraph) else g.freeze()
    n = csr.num_nodes
    src_list = list(range(n)) if sources is None else list(sources)
    for s in src_list:
        csr._check(s)
    if workers is not None:
        from ..parallel.fanout import maybe_parallel_bfs

        rows = maybe_parallel_bfs(csr, src_list, cutoff, workers)
        if rows is not None:
            for i, s in enumerate(src_list):
                yield int(s), (rows[i] if arrays else rows[i].tolist())
            return
    np_indptr, np_indices = csr.numpy_arrays()
    for lo in range(0, len(src_list), chunk):
        srcs = np.asarray(src_list[lo : lo + chunk], dtype=np.int64)
        b = len(srcs)
        dist = np.full(b * n, UNREACHED, dtype=np.int32)
        slots = np.arange(b, dtype=np.int64) * n
        dist[slots + srcs] = 0
        frontier = slots + srcs
        d = 0
        while frontier.size and (cutoff is None or d < cutoff):
            d += 1
            node = frontier % n
            base = frontier - node
            starts = np_indptr[node]
            counts = np_indptr[node + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            cum = np.cumsum(counts)
            offs = np.repeat(starts - cum + counts, counts) + np.arange(total)
            cand = np.repeat(base, counts) + np_indices[offs]
            cand = cand[dist[cand] < 0]
            if cand.size == 0:
                break
            dist[cand] = d
            # Deduplicate the new frontier: sort the (few) candidates when
            # they are sparse, scan the flat buffer when they are dense.
            if cand.size < (b * n) >> 4:
                frontier = np.unique(cand)
            else:
                frontier = np.flatnonzero(dist == d)
        rows = dist.reshape(b, n)
        for i, s in enumerate(src_list[lo : lo + b]):
            yield int(s), (rows[i] if arrays else rows[i].tolist())


def batched_bfs_parents(
    g,
    sources: "Iterable[int] | None" = None,
    cutoff: "int | None" = None,
    chunk: "int | None" = None,
    backend: str = "auto",
) -> Iterator["tuple[int, list[int], list[int]]"]:
    """Yield ``(source, dist, parent)`` per source — canonical forests, batched.

    The parents twin of :func:`batched_bfs`: *chunk* sources expand
    simultaneously on the flat CSR arrays, one vectorized gather per level.
    The forests are *canonical* — identical to :func:`bfs_parents` for every
    source (property-tested): within a level the flattened candidate
    sequence ``repeat(frontier, counts) + sorted row contents`` is exactly
    the order the sequential sorted-neighbor expansion visits, so taking the
    **first occurrence** of each newly discovered node (``np.unique``'s
    ``return_index``) reproduces both its parent choice and its queue
    position (the next frontier is the unique nodes ordered by first
    occurrence).

    Use for "a BFS forest from every root" loops (e.g. the dominator trees
    of the additive baseline).  Small graphs under ``backend="auto"`` fall
    back to per-source :func:`bfs_parents`, exactly like :func:`batched_bfs`.
    """
    if chunk is None:
        chunk = _batch_chunk()
    if chunk < 1:
        raise ParameterError(f"chunk must be ≥ 1, got {chunk}")
    if backend not in ("auto", "sets", "csr"):
        raise ParameterError(f"unknown backend {backend!r} (want 'auto', 'sets' or 'csr')")
    if backend == "sets" or (
        backend == "auto"
        and not isinstance(g, CSRGraph)
        and g.num_nodes < _auto_min_nodes()
    ):
        src_iter = range(g.num_nodes) if sources is None else sources
        for s in src_iter:
            dist, parent = bfs_parents(g, s, cutoff, backend="sets")
            yield int(s), dist, parent
        return
    csr = g if isinstance(g, CSRGraph) else g.freeze()
    n = csr.num_nodes
    src_list = list(range(n)) if sources is None else list(sources)
    for s in src_list:
        csr._check(s)
    np_indptr, np_indices = csr.numpy_arrays()
    for lo in range(0, len(src_list), chunk):
        srcs = np.asarray(src_list[lo : lo + chunk], dtype=np.int64)
        b = len(srcs)
        dist = np.full(b * n, UNREACHED, dtype=np.int32)
        parent = np.full(b * n, UNREACHED, dtype=np.int32)
        slots = np.arange(b, dtype=np.int64) * n
        dist[slots + srcs] = 0
        parent[slots + srcs] = srcs.astype(np.int32)
        frontier = slots + srcs  # kept in per-source discovery order
        d = 0
        while frontier.size and (cutoff is None or d < cutoff):
            d += 1
            node = frontier % n
            base = frontier - node
            starts = np_indptr[node]
            counts = np_indptr[node + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            cum = np.cumsum(counts)
            offs = np.repeat(starts - cum + counts, counts) + np.arange(total)
            cand_nodes = np_indices[offs]
            cand = np.repeat(base, counts) + cand_nodes
            par_nodes = np.repeat(node, counts)
            unseen = dist[cand] < 0
            cand = cand[unseen]
            if cand.size == 0:
                break
            par_nodes = par_nodes[unseen]
            uniq, first = np.unique(cand, return_index=True)
            dist[uniq] = d
            parent[uniq] = par_nodes[first].astype(np.int32)
            frontier = uniq[np.argsort(first, kind="stable")]
        dist_rows = dist.reshape(b, n)
        parent_rows = parent.reshape(b, n)
        for i, s in enumerate(src_list[lo : lo + b]):
            yield int(s), dist_rows[i].tolist(), parent_rows[i].tolist()


# --------------------------------------------------------------------- #
# connectivity
# --------------------------------------------------------------------- #


def connected_components(g) -> list[list[int]]:
    """Connected components as lists of node ids (each sorted ascending)."""
    seen = [False] * g.num_nodes
    comps: list[list[int]] = []
    for s in g.nodes():
        if seen[s]:
            continue
        seen[s] = True
        comp = [s]
        frontier = [s]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in g.neighbors(u):
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        nxt.append(v)
            frontier = nxt
        comps.append(sorted(comp))
    return comps


def is_connected(g) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if g.num_nodes == 0:
        return True
    return len(connected_components(g)) == 1
