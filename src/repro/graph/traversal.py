"""Breadth-first traversal primitives: distances, parents, balls and rings.

Everything in the paper is phrased in terms of BFS by-products:

* ``B_G(u, r)`` — the ball of radius *r* around *u* (§1.1);
* rings ``B_G(u, r') \\ B_G(u, r'-1)`` — the per-distance layers Algorithm 1
  covers one at a time;
* BFS parent forests — "add to T a shortest path from u to x in G" is
  implemented by walking parent pointers, which guarantees the union of the
  added paths is a tree (design decision 2 in DESIGN.md).

The functions here are the hot path of every construction, so they use flat
``array``-backed queues and integer distance arrays instead of dicts.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ParameterError
from .graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_parents",
    "bfs_layers",
    "ball",
    "ring",
    "path_to_root",
    "multi_source_distances",
    "connected_components",
    "is_connected",
]

#: Sentinel distance for unreachable nodes in the arrays returned below.
UNREACHED = -1


def bfs_distances(g: Graph, source: int, cutoff: "int | None" = None) -> list[int]:
    """Distances from *source* to every node (``-1`` if unreachable).

    ``cutoff`` bounds the exploration radius: nodes further than *cutoff*
    keep distance ``-1``.  This is what makes the local algorithms local —
    a node running ``DomTreeGdy_{r,β}`` only ever explores ``B_G(u, r+β)``.
    """
    g._check(source)
    dist = [UNREACHED] * g.num_nodes
    dist[source] = 0
    frontier = [source]
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in g.neighbors(u):
                if dist[v] == UNREACHED:
                    dist[v] = d
                    nxt.append(v)
        frontier = nxt
    return dist


def bfs_parents(
    g: Graph, source: int, cutoff: "int | None" = None
) -> "tuple[list[int], list[int]]":
    """``(dist, parent)`` arrays of a BFS from *source*.

    ``parent[source] == source``; unreached nodes have ``parent == -1``.
    The parent pointers form a shortest-path forest: following them from any
    reached node yields a shortest path to *source*, and the union of any
    collection of such paths is a tree rooted at *source*.

    Neighbors are expanded in sorted order so the forest is a *canonical*
    function of the graph: two nodes with identical local views compute
    identical forests — the property that makes the distributed protocol's
    trees match the centralized construction edge-for-edge.
    """
    g._check(source)
    n = g.num_nodes
    dist = [UNREACHED] * n
    parent = [UNREACHED] * n
    dist[source] = 0
    parent[source] = source
    frontier = [source]
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in sorted(g.neighbors(u)):
                if dist[v] == UNREACHED:
                    dist[v] = d
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    return dist, parent


def bfs_layers(g: Graph, source: int, cutoff: "int | None" = None) -> list[list[int]]:
    """BFS layers ``[ [source], ring(1), ring(2), ... ]`` up to *cutoff*."""
    g._check(source)
    seen = [False] * g.num_nodes
    seen[source] = True
    layers = [[source]]
    frontier = [source]
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in g.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    nxt.append(v)
        if nxt:
            layers.append(nxt)
        frontier = nxt
    return layers


def ball(g: Graph, center: int, radius: int) -> set[int]:
    """``B_G(center, radius)`` — all nodes at distance ≤ radius (incl. center)."""
    if radius < 0:
        raise ParameterError(f"radius must be ≥ 0, got {radius}")
    out: set[int] = set()
    for layer in bfs_layers(g, center, cutoff=radius):
        out.update(layer)
    return out


def ring(g: Graph, center: int, radius: int) -> set[int]:
    """Nodes at distance exactly *radius* from *center*."""
    if radius < 0:
        raise ParameterError(f"radius must be ≥ 0, got {radius}")
    layers = bfs_layers(g, center, cutoff=radius)
    if len(layers) <= radius:
        return set()
    return set(layers[radius])


def path_to_root(parent: list[int], node: int) -> list[int]:
    """Walk *parent* pointers from *node* to the BFS root.

    Returns the node sequence ``[node, ..., root]``.  Raises
    :class:`~repro.errors.ParameterError` if *node* was not reached.
    """
    if parent[node] == UNREACHED:
        raise ParameterError(f"node {node} unreachable in parent forest")
    path = [node]
    while parent[path[-1]] != path[-1]:
        path.append(parent[path[-1]])
    return path


def multi_source_distances(
    g: Graph, sources: Iterable[int], cutoff: "int | None" = None
) -> list[int]:
    """Distance from each node to the nearest of *sources* (``-1`` beyond cutoff)."""
    dist = [UNREACHED] * g.num_nodes
    frontier: list[int] = []
    for s in sources:
        g._check(s)
        if dist[s] == UNREACHED:
            dist[s] = 0
            frontier.append(s)
    d = 0
    while frontier:
        if cutoff is not None and d >= cutoff:
            break
        nxt: list[int] = []
        d += 1
        for u in frontier:
            for v in g.neighbors(u):
                if dist[v] == UNREACHED:
                    dist[v] = d
                    nxt.append(v)
        frontier = nxt
    return dist


def connected_components(g: Graph) -> list[list[int]]:
    """Connected components as lists of node ids (each sorted ascending)."""
    seen = [False] * g.num_nodes
    comps: list[list[int]] = []
    for s in g.nodes():
        if seen[s]:
            continue
        seen[s] = True
        comp = [s]
        frontier = [s]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in g.neighbors(u):
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        nxt.append(v)
            frontier = nxt
        comps.append(sorted(comp))
    return comps


def is_connected(g: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if g.num_nodes == 0:
        return True
    return len(connected_components(g)) == 1
