"""Graph-algebra operations: unions, sub-graphs, node deletion.

Remote-spanner constructions are literally unions of per-node trees
(Algorithm 3: "the remote-spanner is the union of all T_u"), and the
multi-connectivity experiments need node-deleted graphs to exhibit the
disjoint backup paths.  Everything here returns new graphs on the same dense
node-id space so index-based bookkeeping stays valid across operations.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "union",
    "edge_union",
    "induced_subgraph",
    "remove_nodes",
    "difference",
    "intersection",
]


def union(graphs: Iterable[Graph]) -> Graph:
    """Edge-wise union of graphs on the same node set."""
    graphs = list(graphs)
    if not graphs:
        raise GraphError("union() of no graphs")
    n = graphs[0].num_nodes
    out = Graph(n)
    for g in graphs:
        if g.num_nodes != n:
            raise GraphError("union() requires identical node sets")
        for u, v in g.edges():
            out.add_edge(u, v)
    return out


def edge_union(n: int, edge_sets: Iterable[Iterable["tuple[int, int]"]]) -> Graph:
    """Union of raw edge collections into a graph on *n* nodes."""
    out = Graph(n)
    for es in edge_sets:
        for u, v in es:
            out.add_edge(u, v)
    return out


def induced_subgraph(g: Graph, nodes: Iterable[int]) -> "tuple[Graph, list[int]]":
    """Induced sub-graph on *nodes* with re-indexed ids.

    Returns ``(h, originals)`` where ``originals[i]`` is the id in *g* of
    node ``i`` of *h*.
    """
    originals = sorted(set(nodes))
    index = {orig: i for i, orig in enumerate(originals)}
    h = Graph(len(originals))
    for orig in originals:
        for w in g.neighbors(orig):
            if w in index and orig < w:
                h.add_edge(index[orig], index[w])
    return h, originals


def remove_nodes(g: Graph, removed: Iterable[int]) -> Graph:
    """Graph on the same id space with *removed* nodes isolated.

    Keeping the id space intact (rather than re-indexing) is what the
    fault-tolerance experiments want: distances between surviving nodes can
    be compared before/after without an id translation layer.
    """
    removed_set = set(removed)
    out = Graph(g.num_nodes)
    for u, v in g.edges():
        if u not in removed_set and v not in removed_set:
            out.add_edge(u, v)
    return out


def difference(g: Graph, h: Graph) -> Graph:
    """Edges of *g* not in *h* (same node set)."""
    if g.num_nodes != h.num_nodes:
        raise GraphError("difference() requires identical node sets")
    out = Graph(g.num_nodes)
    for u, v in g.edges():
        if not h.has_edge(u, v):
            out.add_edge(u, v)
    return out


def intersection(g: Graph, h: Graph) -> Graph:
    """Edges present in both graphs (same node set)."""
    if g.num_nodes != h.num_nodes:
        raise GraphError("intersection() requires identical node sets")
    out = Graph(g.num_nodes)
    for u, v in g.edges():
        if h.has_edge(u, v):
            out.add_edge(u, v)
    return out
