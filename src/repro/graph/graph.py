"""Undirected, unweighted graph over dense integer node ids.

The whole paper works with unweighted graphs whose algorithms are BFS plus
set operations on neighborhoods (dominating sets, multipoint relays,
set-cover over ``N(x)``).  :class:`Graph` therefore stores adjacency as a
``list[set[int]]`` indexed by node id ``0..n-1``:

* ``G.neighbors(u)`` is O(1) and supports the set algebra the algorithms are
  written in (``N(x) & S``, ``N(v) <= M`` ...) without conversions;
* dense ids let hot paths (BFS in :mod:`repro.graph.traversal`) use flat
  integer arrays rather than hashing arbitrary node objects.

Mutation is through :meth:`add_edge` / :meth:`remove_edge` plus the churn
mutators :meth:`add_node` / :meth:`remove_node` (node ids stay dense:
``add_node`` appends id *n*, ``remove_node`` isolates — it never re-indexes,
matching :func:`repro.graph.ops.remove_nodes`).  This keeps the algorithms'
invariant (the node set of a spanner equals the node set of the input:
``V(H) = V(G)``) and lets sub-graphs share nothing with their parent while
staying index-compatible.

Two adjacency backends coexist: this mutable set-based class, and the
immutable flat-array :class:`~repro.graph.csr.CSRGraph` produced by
:meth:`Graph.freeze`.  Freeze a graph before running per-node BFS loops over
it — the traversal primitives detect a fresh snapshot and take their fast
CSR path automatically, falling back to set iteration otherwise.

Graphs are value-comparable (``==`` compares node count and edge sets) and
hash-free (mutable).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import GraphError, NodeNotFound

__all__ = ["Graph", "Edge", "canonical_edge"]

#: An undirected edge as an ordered pair ``(min(u, v), max(u, v))``.
Edge = tuple  # tuple[int, int] — kept loose for 3.10 compatibility in docs


def canonical_edge(u: int, v: int) -> "tuple[int, int]":
    """Return the canonical ``(min, max)`` form of the undirected edge uv."""
    return (u, v) if u <= v else (v, u)


def _patch_row_budget(n: int) -> int:
    """How many dirty adjacency rows a delta re-freeze may patch.

    Beyond roughly an eighth of the rows the bulk-copy spans fragment and a
    plain :meth:`CSRGraph.from_graph` rebuild wins; the floor keeps small
    graphs patchable through a handful of events.
    """
    return max(32, n >> 3)


class Graph:
    """Simple undirected graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes.  Node ids are the integers ``0..n-1``.
    edges:
        Optional iterable of ``(u, v)`` pairs to insert.  Duplicates are
        ignored; self-loops raise :class:`~repro.errors.GraphError`.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3)])
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.num_edges
    3
    """

    __slots__ = (
        "_n",
        "_adj",
        "_m",
        "_version",
        "_csr",
        "_csr_base",
        "_csr_dirty",
        "_dist_cache",
    )

    def __init__(self, n: int, edges: "Iterable[tuple[int, int]] | None" = None) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self._n = n
        self._adj: list[set[int]] = [set() for _ in range(n)]
        self._m = 0
        self._version = 0  # bumped on every successful mutation
        self._csr = None  # cached CSRGraph snapshot, dropped on mutation
        self._csr_base = None  # previous snapshot kept as a patch base
        self._csr_dirty = None  # rows mutated since _csr_base was current
        self._dist_cache = None  # LRU distance cache (repro.graph.cache)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._m

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every successful edge add/remove.

        Together with :meth:`freeze` this gives cheap cache invalidation:
        anything derived from the graph (the CSR snapshot, the LRU distance
        cache in :mod:`repro.graph.cache`) is keyed by ``version`` and
        silently expires when the graph changes.
        """
        return self._version

    def nodes(self) -> range:
        """The node ids, as a :class:`range` (cheap, re-iterable)."""
        return range(self._n)

    def neighbors(self, u: int) -> set[int]:
        """The adjacency set ``N(u)``.

        **Live-set sharing contract.**  The returned set is the live
        internal set — callers must not mutate it.  (Returning it directly
        keeps ``N(x) & S`` loops allocation-free; all library code treats
        it as read-only.)  The frozen backend differs here:
        :meth:`CSRGraph.neighbors <repro.graph.csr.CSRGraph.neighbors>`
        returns a *fresh* set per call because there is no internal set to
        share.  Code written against the contract above (never mutate, never
        rely on identity across calls) works with either backend.
        """
        self._check(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        """``|N(u)|``."""
        self._check(u)
        return len(self._adj[u])

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        return max((len(a) for a in self._adj), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge uv is present."""
        self._check(u)
        self._check(v)
        return v in self._adj[u]

    def edges(self) -> Iterator["tuple[int, int]"]:
        """Iterate over edges in canonical ``(u, v)`` with ``u < v`` order."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def edge_set(self) -> set["tuple[int, int]"]:
        """All edges as a set of canonical pairs."""
        return set(self.edges())

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def _touch(self, *rows: int) -> None:
        """Record a successful mutation of *rows*: bump the version, drop the
        fresh CSR snapshot (demoting it to a patch base) and track which
        adjacency rows diverge from that base so :meth:`freeze` can patch
        instead of rebuilding.  Once too many rows are dirty the base is
        dropped — a full rebuild is cheaper than a near-total patch."""
        self._version += 1
        if self._csr is not None:
            self._csr_base = self._csr
            self._csr_dirty = set()
            self._csr = None
        if self._csr_dirty is not None:
            self._csr_dirty.update(rows)
            if len(self._csr_dirty) > _patch_row_budget(self._n):
                self._csr_base = None
                self._csr_dirty = None

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge uv.  Returns ``True`` if the edge was new."""
        self._check(u)
        self._check(v)
        if u == v:
            raise GraphError(f"self-loop {u}-{v} not allowed")
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        self._touch(u, v)
        return True

    def add_edges(self, edges: Iterable["tuple[int, int]"]) -> int:
        """Insert many edges; returns how many were new."""
        return sum(1 for u, v in edges if self.add_edge(u, v))

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete edge uv.  Returns ``True`` if it was present."""
        self._check(u)
        self._check(v)
        if v not in self._adj[u]:
            return False
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1
        self._touch(u, v)
        return True

    def add_node(self) -> int:
        """Append a fresh isolated node and return its id (the new ``n-1``).

        Dense ids are preserved — the new node is always the largest id.
        The patch base is dropped (a snapshot of a smaller node set cannot
        be patched into one row more).
        """
        u = self._n
        self._n += 1
        self._adj.append(set())
        self._version += 1
        self._csr = None
        self._csr_base = None
        self._csr_dirty = None
        return u

    def add_nodes(self, count: int) -> range:
        """Append *count* isolated nodes; returns their id range."""
        if count < 0:
            raise GraphError(f"node count must be non-negative, got {count}")
        first = self._n
        for _ in range(count):
            self.add_node()
        return range(first, self._n)

    def remove_node(self, u: int) -> int:
        """Isolate node *u*: delete every incident edge, keep the id space.

        Returns the number of edges removed.  Ids are never re-indexed (the
        convention of :func:`repro.graph.ops.remove_nodes`), so bookkeeping
        indexed by node id stays valid across churn — an isolated id may be
        re-populated later by :meth:`add_edge`.
        """
        self._check(u)
        nbrs = self._adj[u]
        if not nbrs:
            return 0
        for v in nbrs:
            self._adj[v].discard(u)
        removed = len(nbrs)
        self._m -= removed
        self._touch(u, *nbrs)
        self._adj[u] = set()
        return removed

    # ------------------------------------------------------------------ #
    # derived constructions
    # ------------------------------------------------------------------ #

    def freeze(self):
        """The CSR snapshot of the current adjacency (cached until mutation).

        Returns a :class:`~repro.graph.csr.CSRGraph` sharing nothing with
        ``self``.  While the snapshot is fresh (no mutation since), the BFS
        primitives in :mod:`repro.graph.traversal` automatically route
        through it — so per-node loops pay the O(n + m) conversion once.

        **Delta-aware re-freeze.**  When the graph was mutated in only a few
        adjacency rows since the previous snapshot, the new snapshot is
        built by :meth:`CSRGraph.patched <repro.graph.csr.CSRGraph.patched>`
        — bulk-copying the unchanged row spans and re-sorting only the dirty
        rows — instead of re-sorting the whole adjacency.  This is what
        makes freeze-per-event affordable for the dynamic-graph subsystem
        (:mod:`repro.dynamic`).  The result is bit-identical to a full
        rebuild (property-tested).

        >>> g = Graph(3, [(0, 1), (1, 2)])
        >>> g.freeze() is g.freeze()          # cached
        True
        >>> _ = g.add_edge(0, 2)              # mutation invalidates
        >>> g.freeze().has_edge(0, 2)
        True
        """
        if self._csr is None:
            from .csr import CSRGraph

            if self._csr_base is not None and self._csr_dirty:
                self._csr = CSRGraph.patched(self._csr_base, self, self._csr_dirty)
                self._csr_base = None
                self._csr_dirty = None
            else:
                self._csr = CSRGraph.from_graph(self)
        return self._csr

    def copy(self) -> "Graph":
        """Deep copy."""
        g = Graph(self._n)
        g._adj = [set(a) for a in self._adj]
        g._m = self._m
        return g

    def spanning_subgraph(self, edges: Iterable["tuple[int, int]"]) -> "Graph":
        """Sub-graph on the *same node set* containing only *edges*.

        Every edge must exist in ``self``; this is the ``V(H) = V(G)``
        sub-graph constructor used for spanners.
        """
        h = Graph(self._n)
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge {(u, v)} not present in parent graph")
            h.add_edge(u, v)
        return h

    def is_spanning_subgraph_of(self, other: "Graph") -> bool:
        """Whether ``self`` has the same node set and only edges of *other*."""
        if self._n != other._n:
            return False
        return all(self._adj[u] <= other._adj[u] for u in range(self._n))

    # ------------------------------------------------------------------ #
    # dunder protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __contains__(self, u: object) -> bool:
        return isinstance(u, int) and 0 <= u < self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self._m})"

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _check(self, u: int) -> None:
        if not (0 <= u < self._n):
            raise NodeNotFound(u, self._n)
