"""A small LRU cache for BFS distance vectors.

Several consumers ask for the same single-source distance vector many times
over an unchanged graph — pair sampling probes ``bfs_distances(g, u)[v]``
per candidate pair, routing stats revisit sources, experiment sweeps
re-measure the same instance.  Recomputing an O(m) BFS for each probe is
the dominant cost at experiment scale, so this module memoizes vectors
keyed by ``(graph_version, source, cutoff)``:

* ``graph_version`` is :attr:`Graph.version <repro.graph.graph.Graph.version>`
  (bumped on every mutation) or the constant 0 of an immutable
  :class:`~repro.graph.csr.CSRGraph` — a stale entry can therefore never be
  returned, mutation invalidates by key mismatch and old entries age out of
  the LRU;
* the cache itself lives on the graph object (``_dist_cache`` slot), so it
  is garbage-collected with the graph and never leaks across instances;
* stored vectors are immutable tuples; callers receive a fresh list per
  hit, preserving ``bfs_distances``'s "caller owns the result" contract.
"""

from __future__ import annotations

from collections import OrderedDict

from .traversal import bfs_distances

__all__ = ["cached_bfs_distances", "distance_cache_info", "DISTANCE_CACHE_SIZE"]

#: Maximum number of distance vectors retained per graph.  At int-tuple
#: size this bounds per-graph memory to ~``256 · n`` machine words.
DISTANCE_CACHE_SIZE = 256


def _cache_of(g) -> "OrderedDict | None":
    cache = getattr(g, "_dist_cache", None)
    if cache is None:
        try:
            g._dist_cache = cache = OrderedDict()
        except AttributeError:  # duck-typed graph without the slot
            return None
    return cache


def cached_bfs_distances(g, source: int, cutoff: "int | None" = None) -> list[int]:
    """``bfs_distances(g, source, cutoff)`` through the per-graph LRU cache.

    Exact same result as the uncached call (a fresh list the caller owns).
    Objects without a ``_dist_cache`` slot or a ``version`` (e.g.
    :class:`~repro.graph.views.AugmentedView`) fall through to a plain BFS.
    """
    cache = _cache_of(g)
    version = getattr(g, "version", None)
    if cache is None or version is None:
        return bfs_distances(g, source, cutoff)
    key = (version, source, cutoff)
    hit = cache.get(key)
    if hit is not None:
        cache.move_to_end(key)
        return list(hit)
    dist = bfs_distances(g, source, cutoff)
    cache[key] = tuple(dist)
    while len(cache) > DISTANCE_CACHE_SIZE:
        cache.popitem(last=False)
    return dist


def distance_cache_info(g) -> "tuple[int, int]":
    """``(entries, capacity)`` of *g*'s distance cache (0 if never used)."""
    cache = getattr(g, "_dist_cache", None)
    return (len(cache) if cache else 0, DISTANCE_CACHE_SIZE)
