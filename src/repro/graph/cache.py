"""A small LRU cache for BFS distance vectors, with usage counters.

Several consumers ask for the same single-source distance vector many times
over an unchanged graph — pair sampling probes ``bfs_distances(g, u)[v]``
per candidate pair, routing stats revisit sources, experiment sweeps
re-measure the same instance.  Recomputing an O(m) BFS for each probe is
the dominant cost at experiment scale, so this module memoizes vectors
keyed by ``(graph_version, source, cutoff)``:

* ``graph_version`` is :attr:`Graph.version <repro.graph.graph.Graph.version>`
  (bumped on every mutation) or the constant 0 of an immutable
  :class:`~repro.graph.csr.CSRGraph` — a stale entry can therefore never be
  returned, mutation invalidates by key mismatch and old entries age out of
  the LRU;
* the cache itself lives on the graph object (``_dist_cache`` slot), so it
  is garbage-collected with the graph and never leaks across instances;
* stored vectors are immutable tuples; callers receive a fresh list per
  hit, preserving ``bfs_distances``'s "caller owns the result" contract.

Each per-graph cache records its **hits, misses and evictions**, reported
by :func:`distance_cache_info` (and surfaced by the ``python -m repro
serve`` soak summary).  Capacity defaults to :data:`DISTANCE_CACHE_SIZE`
and can be resized per graph with :func:`set_distance_cache_capacity` —
e.g. grow it for a dense pair-sampling sweep, shrink it on a
memory-constrained soak.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple

from .. import obs
from ..errors import ParameterError
from .traversal import bfs_distances

__all__ = [
    "cached_bfs_distances",
    "distance_cache_info",
    "set_distance_cache_capacity",
    "CacheInfo",
    "DISTANCE_CACHE_SIZE",
]

#: Default number of distance vectors retained per graph.  At int-tuple
#: size this bounds per-graph memory to ~``256 · n`` machine words.
#: Override per graph with :func:`set_distance_cache_capacity`.
DISTANCE_CACHE_SIZE = 256


class CacheInfo(NamedTuple):
    """One graph's distance-cache statistics (all counters cumulative)."""

    entries: int
    capacity: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _DistanceCache(OrderedDict):
    """The per-graph LRU store: an OrderedDict plus counters + capacity."""

    __slots__ = ("capacity", "hits", "misses", "evictions")

    def __init__(self, capacity: int = DISTANCE_CACHE_SIZE) -> None:
        super().__init__()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def shrink_to_capacity(self) -> None:
        while len(self) > self.capacity:
            self.popitem(last=False)
            self.evictions += 1
            obs.inc("cache.evictions")


def _cache_of(g) -> "_DistanceCache | None":
    cache = getattr(g, "_dist_cache", None)
    if cache is None:
        try:
            g._dist_cache = cache = _DistanceCache()
        except AttributeError:  # duck-typed graph without the slot
            return None
    return cache


def cached_bfs_distances(g, source: int, cutoff: "int | None" = None) -> list[int]:
    """``bfs_distances(g, source, cutoff)`` through the per-graph LRU cache.

    Exact same result as the uncached call (a fresh list the caller owns).
    Objects without a ``_dist_cache`` slot or a ``version`` (e.g.
    :class:`~repro.graph.views.AugmentedView`) fall through to a plain BFS.
    """
    cache = _cache_of(g)
    version = getattr(g, "version", None)
    if cache is None or version is None:
        return bfs_distances(g, source, cutoff)
    key = (version, source, cutoff)
    hit = cache.get(key)
    if hit is not None:
        cache.hits += 1
        obs.inc("cache.hits")
        cache.move_to_end(key)
        return list(hit)
    cache.misses += 1
    obs.inc("cache.misses")
    dist = bfs_distances(g, source, cutoff)
    cache[key] = tuple(dist)
    cache.shrink_to_capacity()
    return dist


def set_distance_cache_capacity(g, capacity: int) -> None:
    """Resize *g*'s distance cache (evicting LRU entries when shrinking).

    The override sticks to the graph object for its lifetime; other graphs
    keep the :data:`DISTANCE_CACHE_SIZE` default.  Raises
    :class:`~repro.errors.ParameterError` for a non-positive capacity or a
    graph object without a cache slot.
    """
    if capacity < 1:
        raise ParameterError(f"cache capacity must be ≥ 1, got {capacity}")
    cache = _cache_of(g)
    if cache is None:
        raise ParameterError(
            f"{type(g).__name__} has no distance-cache slot; cannot set a capacity"
        )
    cache.capacity = capacity
    cache.shrink_to_capacity()


def distance_cache_info(g) -> CacheInfo:
    """*g*'s distance-cache statistics as a :class:`CacheInfo`.

    ``(entries, capacity)`` keep their historical leading positions (the
    result still unpacks as a tuple); ``hits``/``misses``/``evictions``
    are cumulative over the graph's lifetime.  A graph that never went
    through :func:`cached_bfs_distances` reports all zeros except the
    default capacity.
    """
    cache = getattr(g, "_dist_cache", None)
    if cache is None or not isinstance(cache, _DistanceCache):
        return CacheInfo(0, DISTANCE_CACHE_SIZE, 0, 0, 0)
    return CacheInfo(len(cache), cache.capacity, cache.hits, cache.misses, cache.evictions)
