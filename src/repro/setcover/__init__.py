"""Set-cover substrate: greedy heuristics (Chvátal/Dobson/Wolsey) and exact B&B.

Algorithms 1 and 4 of the paper are greedy (multi)cover in disguise; the
exact solver supplies the OPT side of the approximation-ratio experiments
(Propositions 2 and 6).
"""

from .instances import SetCoverInstance
from .greedy import greedy_multicover, greedy_set_cover
from .exact import exact_multicover, exact_set_cover, optimal_cover_size

__all__ = [
    "SetCoverInstance",
    "greedy_multicover",
    "greedy_set_cover",
    "exact_multicover",
    "exact_set_cover",
    "optimal_cover_size",
]
