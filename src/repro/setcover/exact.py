"""Exact (multi)cover via branch and bound — the OPT side of Props 2 and 6.

The paper bounds the greedy dominating trees against *optimal* ones
(`(1+β)(r+β−1)(1+log Δ)` for Algorithm 1, `1+log Δ` for Algorithm 4).
Measuring those ratios experimentally needs true optima; this solver
delivers them for the small instances the approximation benches use
(universe ≤ ~25, sets ≤ ~25).

Branching strategy: pick the uncovered element contained in the fewest
candidate sets (fail-first), branch on which of those sets to take.  Bounds:
(a) current size + ceil(max residual demand over remaining coverage-greedy
lower bound) and (b) an admissible "largest set" bound — remaining demand /
size of largest remaining set.  Dominated-set elimination prunes candidates
that are subsets of other candidates (valid for plain cover only; multicover
keeps them because two copies of an element need two distinct sets).
"""

from __future__ import annotations

import math
from typing import Hashable

from ..errors import InfeasibleError
from .instances import SetCoverInstance

__all__ = ["exact_set_cover", "exact_multicover", "optimal_cover_size"]


def exact_set_cover(instance: SetCoverInstance) -> list[Hashable]:
    """Minimum-cardinality plain set cover (demands must all be ≤ 1)."""
    if not instance.is_plain:
        return exact_multicover(instance)
    elements = [e for e in instance.universe if instance.demand[e] > 0]
    labels = sorted(instance.sets, key=repr)
    sets = {label: instance.sets[label] & frozenset(elements) for label in labels}
    # Dominated-set elimination: drop any candidate strictly contained in
    # another (keeping the lexicographically smallest among equals).
    kept: list[Hashable] = []
    for label in labels:
        dominated = False
        for other in labels:
            if other == label:
                continue
            if sets[label] < sets[other] or (
                sets[label] == sets[other] and repr(other) < repr(label)
            ):
                dominated = True
                break
        if not dominated:
            kept.append(label)
    inst = SetCoverInstance.from_sets(
        {label: sets[label] for label in kept}, universe=frozenset(elements)
    )
    return _branch_and_bound(inst)


def exact_multicover(instance: SetCoverInstance) -> list[Hashable]:
    """Minimum-cardinality multicover (each set usable at most once)."""
    instance.check_feasible()
    return _branch_and_bound(instance)


def optimal_cover_size(instance: SetCoverInstance) -> int:
    """Size of the optimum cover (convenience wrapper)."""
    return len(exact_set_cover(instance))


# --------------------------------------------------------------------- #
# internals
# --------------------------------------------------------------------- #


def _branch_and_bound(instance: SetCoverInstance) -> list[Hashable]:
    labels = sorted(instance.sets, key=repr)
    sets = {label: instance.sets[label] for label in labels}
    demand0 = {e: instance.demand[e] for e in instance.universe}

    # Seed the incumbent with greedy (guaranteed feasible), so the search
    # starts with a tight upper bound.
    from .greedy import greedy_multicover, greedy_set_cover

    try:
        incumbent = (
            greedy_set_cover(instance) if instance.is_plain else greedy_multicover(instance)
        )
    except InfeasibleError:
        raise
    best: list[Hashable] = list(incumbent)

    def lower_bound(residual: dict, available: list[Hashable]) -> int:
        outstanding = sum(d for d in residual.values() if d > 0)
        if outstanding == 0:
            return 0
        biggest = 0
        for label in available:
            gain = sum(1 for e in sets[label] if residual[e] > 0)
            biggest = max(biggest, gain)
        if biggest == 0:
            return math.inf  # type: ignore[return-value]
        return math.ceil(outstanding / biggest)

    def recurse(chosen: list[Hashable], residual: dict, available: list[Hashable]) -> None:
        nonlocal best
        outstanding = [e for e, d in residual.items() if d > 0]
        if not outstanding:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        lb = lower_bound(residual, available)
        if lb is math.inf or len(chosen) + lb >= len(best):
            return
        # Fail-first: element with the fewest available covering sets.
        def options(e: Hashable) -> list[Hashable]:
            return [label for label in available if e in sets[label]]

        target = min(outstanding, key=lambda e: (len(options(e)), repr(e)))
        covering = options(target)
        if len(covering) < residual[target]:
            return  # infeasible branch
        # Branch on each covering set, largest residual gain first.
        covering.sort(
            key=lambda label: (-sum(1 for e in sets[label] if residual[e] > 0), repr(label))
        )
        for idx, label in enumerate(covering):
            new_residual = dict(residual)
            for e in sets[label]:
                if new_residual[e] > 0:
                    new_residual[e] -= 1
            rest = [lab for lab in available if lab != label]
            # For plain cover we may additionally discard the earlier
            # branches' sets (standard "first set covering target" symmetry
            # breaking): any cover avoiding `label` must use a later option.
            if instance.is_plain:
                banned = set(covering[:idx])
                rest = [lab for lab in rest if lab not in banned]
            chosen.append(label)
            recurse(chosen, new_residual, rest)
            chosen.pop()

    recurse([], demand0, labels)
    return best
