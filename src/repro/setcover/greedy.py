"""Greedy (multi)cover heuristics with the paper's approximation guarantees.

* :func:`greedy_set_cover` — Chvátal's greedy [3]: repeatedly take the set
  covering the most uncovered elements.  Factor ``1 + ln n`` (the paper
  quotes ``1 + log Δ`` because set sizes are neighborhood sizes).
* :func:`greedy_multicover` — the Dobson [12] / Wolsey [26] generalization
  to coverage demands ≥ 1 used by Algorithm 4's k-coverage: a set's gain is
  the total *residual demand* it reduces.  Same logarithmic factor.

Both return labels in pick order (Algorithm 1 adds tree paths in exactly
this order, which matters for reproducing the constructed trees exactly).
Ties break on the smallest label so runs are deterministic.
"""

from __future__ import annotations

from typing import Hashable

from ..errors import InfeasibleError
from .instances import SetCoverInstance

__all__ = ["greedy_set_cover", "greedy_multicover"]


def greedy_set_cover(instance: SetCoverInstance) -> list[Hashable]:
    """Chvátal greedy for plain demand-1 cover (fast path).

    Raises :class:`~repro.errors.InfeasibleError` when some element is in no
    candidate set.
    """
    uncovered = set(instance.universe)
    # Drop elements with zero demand up front.
    for e in list(uncovered):
        if instance.demand[e] == 0:
            uncovered.discard(e)
    remaining = {label: set(s) for label, s in instance.sets.items()}
    chosen: list[Hashable] = []
    while uncovered:
        best_label = None
        best_gain = 0
        for label in sorted(remaining, key=repr):
            gain = len(remaining[label] & uncovered)
            if gain > best_gain:
                best_gain = gain
                best_label = label
        if best_label is None:
            raise InfeasibleError(f"{len(uncovered)} elements coverable by no candidate set")
        chosen.append(best_label)
        uncovered -= remaining.pop(best_label)
    return chosen


def greedy_multicover(instance: SetCoverInstance) -> list[Hashable]:
    """Dobson/Wolsey greedy for coverage demands ≥ 1.

    A set's marginal gain is ``sum over its elements of min(1, residual
    demand)`` — i.e. how much total residual demand it retires, counting
    each element at most once per pick (each set can cover an element only
    once).  Feasibility is checked up front via
    :meth:`SetCoverInstance.check_feasible`.
    """
    instance.check_feasible()
    residual = {e: instance.demand[e] for e in instance.universe}
    remaining = {label: set(s) for label, s in instance.sets.items()}
    chosen: list[Hashable] = []
    outstanding = sum(residual.values())
    while outstanding > 0:
        best_label = None
        best_gain = 0
        for label in sorted(remaining, key=repr):
            gain = sum(1 for e in remaining[label] if residual[e] > 0)
            if gain > best_gain:
                best_gain = gain
                best_label = label
        if best_label is None:  # pragma: no cover - excluded by check_feasible
            raise InfeasibleError("residual demand not coverable")
        chosen.append(best_label)
        for e in remaining.pop(best_label):
            if residual[e] > 0:
                residual[e] -= 1
                outstanding -= 1
    return chosen
