"""Set-cover / multicover instance representation.

Algorithm 1 ("dominate the ring at distance r' with neighborhoods of nodes
one ring closer") and Algorithm 4 ("cover every 2-hop node k times with
1-hop neighborhoods") are both instances of (multi)cover.  The constructions
in :mod:`repro.core` reduce their inner loops to this representation so the
greedy heuristic and the exact solver can be tested and benchmarked against
each other independent of any graph context.

An instance is *elements to cover* plus *candidate sets*, each candidate
carrying an opaque ``label`` (the graph node it came from) so solutions can
be mapped back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from ..errors import InfeasibleError, ParameterError

__all__ = ["SetCoverInstance"]


@dataclass
class SetCoverInstance:
    """A (multi)cover instance.

    Attributes
    ----------
    universe:
        The elements that must be covered.
    sets:
        Mapping from candidate label to the set of elements it covers
        (elements outside *universe* are ignored by the solvers).
    demand:
        Per-element coverage requirement.  A plain set-cover has demand 1
        everywhere; Algorithm 4 uses demand ``min(k, |candidates hitting
        the element|)`` (an element with fewer than k candidate sets can
        only be covered as often as candidates exist — the paper handles
        this through the "N(v) ∩ N(u) ⊆ M" escape clause).
    """

    universe: frozenset
    sets: "Mapping[Hashable, frozenset]"
    demand: "Mapping[Hashable, int] | None" = field(default=None)

    def __post_init__(self) -> None:
        self.universe = frozenset(self.universe)
        self.sets = {label: frozenset(s) & self.universe for label, s in self.sets.items()}
        if self.demand is None:
            self.demand = {e: 1 for e in self.universe}
        else:
            self.demand = dict(self.demand)
            for e in self.universe:
                if e not in self.demand:
                    self.demand[e] = 1
                if self.demand[e] < 0:
                    raise ParameterError(f"negative demand for element {e!r}")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_sets(
        cls,
        sets: "Mapping[Hashable, Iterable]",
        universe: "Iterable | None" = None,
        demand: "Mapping[Hashable, int] | None" = None,
    ) -> "SetCoverInstance":
        """Build an instance, defaulting the universe to the union of sets."""
        sets_f = {k: frozenset(v) for k, v in sets.items()}
        if universe is None:
            uni: frozenset = frozenset().union(*sets_f.values()) if sets_f else frozenset()
        else:
            uni = frozenset(universe)
        return cls(universe=uni, sets=sets_f, demand=demand)

    def max_coverage(self, element: Hashable) -> int:
        """How many candidate sets contain *element*."""
        return sum(1 for s in self.sets.values() if element in s)

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleError` if some demand exceeds availability."""
        for e in self.universe:
            avail = self.max_coverage(e)
            if avail < self.demand[e]:
                raise InfeasibleError(
                    f"element {e!r} demands coverage {self.demand[e]} "
                    f"but only {avail} candidate sets contain it"
                )

    def is_cover(self, chosen: Iterable[Hashable]) -> bool:
        """Whether the chosen labels satisfy every element's demand."""
        chosen = set(chosen)
        for e in self.universe:
            hits = sum(1 for label in chosen if e in self.sets[label])
            if hits < self.demand[e]:
                return False
        return True

    @property
    def is_plain(self) -> bool:
        """True when every demand is exactly 1 (classical set cover)."""
        return all(d == 1 for d in self.demand.values())
