"""Edge-disjoint variant of the k-connecting machinery (paper §4).

The concluding remarks: "it seems possible to extend our results to
edge-connectivity where we consider paths that are edge-disjoint rather
than internal-node disjoint."  This module supplies the substrate for that
extension: the edge-disjoint analog of :math:`d^k` and its path families.

The reduction is the node-split network *without* the splitting — each
undirected edge becomes a pair of unit-capacity, unit-cost arcs (one per
direction, sharing a joint capacity of 1: two arcs with a common budget is
modeled exactly by the residual pairing of a single arc per direction,
because a min-cost flow never uses both directions of one edge — the
2-cost circulation could be removed).  Everything else (successive
shortest paths, optimal prefixes) carries over.
"""

from __future__ import annotations

import math

from ..errors import InfeasibleError, ParameterError
from .flow import MinCostFlow

__all__ = [
    "k_edge_connecting_profile",
    "k_edge_connecting_distance",
    "edge_disjoint_paths",
    "edge_connectivity_pair",
]


def _build_edge_network(g, s: int, t: int) -> "tuple[MinCostFlow, dict]":
    n = g.num_nodes
    if not (0 <= s < n and 0 <= t < n):
        raise ParameterError(f"terminals ({s}, {t}) out of range for n={n}")
    if s == t:
        raise ParameterError("s and t must differ")
    net = MinCostFlow(n)
    arc_edges: dict[int, tuple[int, int]] = {}
    seen: set[tuple[int, int]] = set()
    for u in range(n):
        for v in g.neighbors(u):
            e = (u, v) if u < v else (v, u)
            if e in seen:
                continue
            seen.add(e)
            a1 = net.add_arc(u, v, 1, 1)
            a2 = net.add_arc(v, u, 1, 1)
            arc_edges[a1] = (u, v)
            arc_edges[a2] = (v, u)
    return net, arc_edges


def k_edge_connecting_profile(g, s: int, t: int, k: int) -> list:
    """``[d^1_e, ..., d^k_e]`` — min length sums of edge-disjoint path families."""
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    net, _ = _build_edge_network(g, s, t)
    result = net.min_cost_flow(s, t, k)
    profile: list = []
    total = 0
    for i in range(k):
        if i < result.value:
            total += result.unit_costs[i]
            profile.append(total)
        else:
            profile.append(math.inf)
    return profile


def k_edge_connecting_distance(g, s: int, t: int, k: int) -> float:
    """Minimum total length of k pairwise edge-disjoint s-t paths."""
    return k_edge_connecting_profile(g, s, t, k)[-1]


def edge_connectivity_pair(g, s: int, t: int) -> int:
    """Maximum number of pairwise edge-disjoint s-t paths (Menger, edges)."""
    net, _ = _build_edge_network(g, s, t)
    # Max flow bounded by degree(s).
    bound = len(g.neighbors(s)) + 1
    return net.min_cost_flow(s, t, bound).value


def edge_disjoint_paths(g, s: int, t: int, k: int) -> list[list[int]]:
    """An optimal family of k edge-disjoint s-t paths via flow decomposition.

    Node revisits are possible in principle for edge-disjoint families,
    but a *minimum-cost* unit flow decomposes into simple paths here
    because any node revisit creates a removable cycle of positive cost.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    net, arc_edges = _build_edge_network(g, s, t)
    result = net.min_cost_flow(s, t, k)
    if result.value < k:
        raise InfeasibleError(
            f"only {result.value} edge-disjoint paths exist between {s} and {t}"
        )
    succs: dict[int, list[int]] = {}
    for arc, (u, v) in arc_edges.items():
        for _ in range(net.flow_on(arc)):
            succs.setdefault(u, []).append(v)
    paths: list[list[int]] = []
    for _ in range(k):
        path = [s]
        while path[-1] != t:
            path.append(succs[path[-1]].pop())
        paths.append(path)
    return paths
