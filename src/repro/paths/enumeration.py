"""Brute-force disjoint-path search — the oracle the flow solver is tested against.

Exhaustively enumerates simple s-t paths (DFS, optional length cap) and then
searches for the cheapest family of k pairwise internally-disjoint ones.
Exponential, so strictly for validation on small graphs; the property-based
tests compare :func:`brute_force_k_distance` with
:func:`repro.paths.disjoint.k_connecting_distance` on random graphs of ≤ 10
nodes, which is exactly the regime where enumeration is instant.
"""

from __future__ import annotations

import math
from itertools import combinations

from ..errors import ParameterError

__all__ = ["all_simple_paths", "brute_force_k_distance", "brute_force_connectivity"]


def all_simple_paths(g, s: int, t: int, max_len: "int | None" = None) -> list[list[int]]:
    """Every simple s-t path (as node lists), optionally length-capped."""
    if s == t:
        raise ParameterError("s and t must differ")
    out: list[list[int]] = []
    path = [s]
    on_path = {s}

    def dfs(u: int) -> None:
        if max_len is not None and len(path) - 1 >= max_len and u != t:
            return
        for v in sorted(g.neighbors(u)):
            if v == t:
                out.append(path + [t])
                continue
            if v in on_path:
                continue
            if max_len is not None and len(path) >= max_len:
                continue
            path.append(v)
            on_path.add(v)
            dfs(v)
            path.pop()
            on_path.discard(v)

    dfs(s)
    return out


def _internally_disjoint(paths: "tuple[list[int], ...]") -> bool:
    seen: set[int] = set()
    for p in paths:
        internal = p[1:-1]
        if any(v in seen for v in internal):
            return False
        seen.update(internal)
    return True


def brute_force_k_distance(g, s: int, t: int, k: int) -> float:
    """:math:`d^k(s,t)` by exhaustive search (``math.inf`` if infeasible).

    Iterates over k-subsets of all simple paths in increasing total length,
    returning the first internally-disjoint family's length sum.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    paths = all_simple_paths(g, s, t)
    if len(paths) < k:
        return math.inf
    paths.sort(key=len)
    best = math.inf
    for combo in combinations(paths, k):
        total = sum(len(p) - 1 for p in combo)
        if total >= best:
            continue
        if _internally_disjoint(combo):
            best = total
    return best


def brute_force_connectivity(g, s: int, t: int) -> int:
    """Max number of pairwise internally-disjoint s-t paths, exhaustively."""
    paths = all_simple_paths(g, s, t)
    best = 0

    def extend(chosen: list[list[int]], start: int, used: set[int]) -> None:
        nonlocal best
        best = max(best, len(chosen))
        for i in range(start, len(paths)):
            internal = paths[i][1:-1]
            if any(v in used for v in internal):
                continue
            extend(chosen + [paths[i]], i + 1, used | set(internal))

    extend([], 0, set())
    return best
