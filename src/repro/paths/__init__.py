"""Disjoint-path substrate: the k-connecting distance :math:`d^k` (paper §3).

Exact min-cost-flow computation plus brute-force oracles for validation.
"""

from .flow import FlowResult, MinCostFlow
from .disjoint import (
    are_k_connected,
    disjoint_paths,
    k_connecting_distance,
    k_connecting_profile,
    vertex_connectivity_pair,
)
from .enumeration import all_simple_paths, brute_force_connectivity, brute_force_k_distance

__all__ = [
    "FlowResult",
    "MinCostFlow",
    "are_k_connected",
    "disjoint_paths",
    "k_connecting_distance",
    "k_connecting_profile",
    "vertex_connectivity_pair",
    "all_simple_paths",
    "brute_force_connectivity",
    "brute_force_k_distance",
]
