"""Unit-capacity min-cost flow on node-split graphs.

The paper's k-connecting distance
:math:`d^k_G(s,t)` — minimum total length of k internally node-disjoint
s-t paths (§3) — is computed exactly by a textbook reduction:

1. **Node splitting.**  Every node ``w ∉ {s, t}`` becomes an arc
   ``w_in → w_out`` of capacity 1 and cost 0, so "internally disjoint"
   becomes plain arc-disjointness.
2. Each undirected edge ``{u, v}`` becomes the two arcs
   ``u_out → v_in`` and ``v_out → u_in``, capacity 1, cost 1 (unweighted
   graph: cost = hop count).
3. A min-cost flow of value k from ``s_out`` to ``t_in`` has cost
   :math:`d^k_G(s,t)`; infeasibility (max-flow < k) corresponds to the
   paper's :math:`d^k = \\infty`.

The solver is successive-shortest-paths with Johnson potentials: the first
augmentation uses BFS (all costs 1); afterwards reduced costs stay
non-negative so Dijkstra applies.  For the unit capacities used here each
augmentation pushes exactly one unit, so computing ``d^k`` costs k shortest
paths — plenty fast for the experiment sizes.

The module is deliberately self-contained (arrays in/arrays out) so it can
be validated against brute-force path enumeration in isolation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import ParameterError

__all__ = ["MinCostFlow", "FlowResult"]

_INF = float("inf")


@dataclass
class FlowResult:
    """Outcome of a min-cost flow request.

    Attributes
    ----------
    value:
        Units of flow actually routed (may be less than requested).
    cost:
        Total cost of the routed flow.
    unit_costs:
        Cost of each successive augmenting path, in order.  For the
        node-split reduction, ``sum(unit_costs[:k'])`` is
        :math:`d^{k'}(s,t)` for every ``k' ≤ value`` (successive shortest
        paths yields optimal prefixes — this is what lets one flow run
        answer all ``k' ≤ k`` stretch conditions at once).
    """

    value: int
    cost: int
    unit_costs: list = field(default_factory=list)


class MinCostFlow:
    """Small successive-shortest-paths min-cost flow over an arc list.

    Arcs are added with :meth:`add_arc`; the residual structure is a paired
    arc array (arc ``i`` and ``i ^ 1`` are mutual reverses).
    """

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ParameterError(f"vertex count must be ≥ 0, got {num_vertices}")
        self.n = num_vertices
        self.head: list[int] = []  # arc -> target vertex
        self.cap: list[int] = []  # arc -> residual capacity
        self.cost: list[int] = []  # arc -> cost
        self.adj: list[list[int]] = [[] for _ in range(num_vertices)]

    def add_arc(self, u: int, v: int, capacity: int, cost: int) -> int:
        """Add arc u→v; returns its index (reverse arc is index ^ 1)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ParameterError(f"arc ({u}, {v}) outside vertex range [0, {self.n})")
        if capacity < 0:
            raise ParameterError(f"negative capacity {capacity}")
        idx = len(self.head)
        self.head.append(v)
        self.cap.append(capacity)
        self.cost.append(cost)
        self.adj[u].append(idx)
        self.head.append(u)
        self.cap.append(0)
        self.cost.append(-cost)
        self.adj[v].append(idx + 1)
        return idx

    # ------------------------------------------------------------------ #

    def min_cost_flow(self, s: int, t: int, max_value: int) -> FlowResult:
        """Route up to *max_value* units from *s* to *t* at minimum cost.

        Stops early when *t* becomes unreachable in the residual graph.
        """
        if not (0 <= s < self.n and 0 <= t < self.n):
            raise ParameterError("terminals outside vertex range")
        if s == t:
            raise ParameterError("source equals sink")
        value = 0
        total_cost = 0
        unit_costs: list[int] = []
        potential = [0] * self.n  # valid: all original costs non-negative
        while value < max_value:
            dist, parent_arc = self._dijkstra(s, potential)
            if dist[t] == _INF:
                break
            # Update potentials (only where reachable; unreachable keep old).
            for v in range(self.n):
                if dist[v] < _INF:
                    potential[v] += dist[v]
            # Find bottleneck along the path (always 1 for unit capacities,
            # but handle general capacities correctly).
            bottleneck = max_value - value
            v = t
            while v != s:
                arc = parent_arc[v]
                bottleneck = min(bottleneck, self.cap[arc])
                v = self.head[arc ^ 1]
            # Apply augmentation.
            path_cost = 0
            v = t
            while v != s:
                arc = parent_arc[v]
                self.cap[arc] -= bottleneck
                self.cap[arc ^ 1] += bottleneck
                path_cost += self.cost[arc]
                v = self.head[arc ^ 1]
            value += bottleneck
            total_cost += path_cost * bottleneck
            unit_costs.extend([path_cost] * bottleneck)
        return FlowResult(value=value, cost=total_cost, unit_costs=unit_costs)

    def _dijkstra(self, s: int, potential: list[int]) -> "tuple[list, list]":
        """Shortest residual distances from *s* under reduced costs."""
        dist = [_INF] * self.n
        parent_arc = [-1] * self.n
        dist[s] = 0
        heap: list[tuple[float, int]] = [(0.0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for arc in self.adj[u]:
                if self.cap[arc] <= 0:
                    continue
                v = self.head[arc]
                nd = d + self.cost[arc] + potential[u] - potential[v]
                if nd < dist[v]:
                    dist[v] = nd
                    parent_arc[v] = arc
                    heapq.heappush(heap, (nd, v))
        return dist, parent_arc

    # ------------------------------------------------------------------ #

    def flow_on(self, arc_index: int) -> int:
        """Units routed through the forward arc *arc_index*."""
        return self.cap[arc_index ^ 1]
