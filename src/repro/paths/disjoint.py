"""k internally-disjoint paths and the k-connecting distance :math:`d^k`.

Public surface of the disjoint-path substrate (§3 of the paper):

* :func:`k_connecting_distance` — :math:`d^k_K(s,t)`, minimum length sum
  over k internally node-disjoint s-t paths (``math.inf`` when fewer than
  k disjoint paths exist, matching the paper's convention);
* :func:`k_connecting_profile` — all of :math:`d^1 .. d^k` from one flow
  run (successive-shortest-paths prefixes are optimal);
* :func:`disjoint_paths` — an explicit optimal path family, via flow
  decomposition, for exhibits and fault-tolerance demos;
* :func:`vertex_connectivity_pair` / :func:`are_k_connected` — the
  feasibility side ("u and v are k-connected in G").

All functions accept either a :class:`~repro.graph.Graph` or any object
with ``num_nodes``/``neighbors`` duck-compatible with it (in particular
:class:`~repro.graph.AugmentedView` — the k-connecting stretch condition is
evaluated in :math:`H_s`, and building the flow network straight off the
view avoids materializing every augmented graph).
"""

from __future__ import annotations

import math

from ..errors import InfeasibleError, ParameterError
from .flow import MinCostFlow

__all__ = [
    "k_connecting_distance",
    "k_connecting_profile",
    "disjoint_paths",
    "vertex_connectivity_pair",
    "are_k_connected",
]


def _neighbors(g, u: int):
    return g.neighbors(u)


def _num_nodes(g) -> int:
    return g.num_nodes


def _build_network(g, s: int, t: int) -> "tuple[MinCostFlow, int, int, dict]":
    """Node-split flow network for internally-disjoint s-t paths.

    Vertex layout: node ``w`` maps to ``in = 2w`` and ``out = 2w + 1``.
    ``s`` and ``t`` are *not* split (their reuse is allowed — disjointness
    constrains internal nodes only).  Returns the network, the flow source
    (``s_out``), the sink (``t_in``), and a map from arc index to the
    undirected edge it represents (for flow decomposition).
    """
    n = _num_nodes(g)
    if not (0 <= s < n and 0 <= t < n):
        raise ParameterError(f"terminals ({s}, {t}) out of range for n={n}")
    if s == t:
        raise ParameterError("s and t must differ")
    net = MinCostFlow(2 * n)
    arc_edges: dict[int, tuple[int, int]] = {}
    big = n + 1  # capacity standing in for "unbounded" at the terminals
    for w in range(n):
        capacity = 1 if w not in (s, t) else big
        net.add_arc(2 * w, 2 * w + 1, capacity, 0)
    # CSR fast path: a CSRGraph (or a Graph carrying a fresh snapshot)
    # enumerates canonical edges straight off the flat rows — no per-edge
    # set hashing.  Duck-typed so the module stays free of graph imports.
    csr = g if hasattr(g, "neighbors_csr") else getattr(g, "_csr", None)
    if csr is not None:
        edge_iter = csr.edges()
    else:
        seen: set[tuple[int, int]] = set()

        def _dedup():
            for uu in range(n):
                for vv in _neighbors(g, uu):
                    e = (uu, vv) if uu < vv else (vv, uu)
                    if e not in seen:
                        seen.add(e)
                        yield e

        edge_iter = _dedup()
    for u, v in edge_iter:
        a1 = net.add_arc(2 * u + 1, 2 * v, 1, 1)
        a2 = net.add_arc(2 * v + 1, 2 * u, 1, 1)
        arc_edges[a1] = (u, v)
        arc_edges[a2] = (v, u)
    return net, 2 * s + 1, 2 * t, arc_edges


def k_connecting_profile(g, s: int, t: int, k: int) -> list:
    """``[d^1(s,t), ..., d^k(s,t)]`` with ``math.inf`` once paths run out.

    If s and t are adjacent, the paper's distance convention still applies:
    the edge st itself is a length-1 path, and further paths must be
    internally disjoint from each other.  A single flow run of value k
    yields the whole profile because successive shortest paths make every
    prefix optimal.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    net, src, sink, _ = _build_network(g, s, t)
    result = net.min_cost_flow(src, sink, k)
    profile: list = []
    total = 0
    for i in range(k):
        if i < result.value:
            total += result.unit_costs[i]
            profile.append(total)
        else:
            profile.append(math.inf)
    return profile


def k_connecting_distance(g, s: int, t: int, k: int) -> float:
    """:math:`d^k(s,t)` — min length sum of k internally disjoint paths."""
    return k_connecting_profile(g, s, t, k)[-1]


def vertex_connectivity_pair(g, s: int, t: int) -> int:
    """Maximum number of internally node-disjoint s-t paths.

    For adjacent s, t this counts the direct edge too (local connectivity
    in the Menger sense).
    """
    n = _num_nodes(g)
    net, src, sink, _ = _build_network(g, s, t)
    result = net.min_cost_flow(src, sink, n + 1)
    return result.value


def are_k_connected(g, s: int, t: int, k: int) -> bool:
    """Whether k internally disjoint s-t paths exist (paper's "k-connected")."""
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    return vertex_connectivity_pair(g, s, t) >= k


def disjoint_paths(g, s: int, t: int, k: int) -> list[list[int]]:
    """An optimal family of k internally disjoint s-t paths.

    Decomposes the min-cost flow into arc-disjoint s-t walks; with unit
    node capacities those walks are simple internally-disjoint paths whose
    total length is :math:`d^k(s,t)`.  Raises
    :class:`~repro.errors.InfeasibleError` when fewer than k disjoint paths
    exist.
    """
    if k < 1:
        raise ParameterError(f"k must be ≥ 1, got {k}")
    net, src, sink, arc_edges = _build_network(g, s, t)
    result = net.min_cost_flow(src, sink, k)
    if result.value < k:
        raise InfeasibleError(
            f"only {result.value} internally disjoint paths exist between {s} and {t}"
        )
    # Collect flow-carrying edge arcs: successor map from node to the list
    # of next hops (s can have several; internal nodes exactly one).
    succs: dict[int, list[int]] = {}
    for arc, (u, v) in arc_edges.items():
        if net.flow_on(arc) > 0:
            succs.setdefault(u, []).append(v)
    paths: list[list[int]] = []
    for _ in range(k):
        path = [s]
        while path[-1] != t:
            nxts = succs[path[-1]]
            path.append(nxts.pop())
        paths.append(path)
    return paths
