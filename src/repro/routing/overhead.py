"""Advertisement-overhead accounting: the economics of remote-spanners.

Link-state protocols pay network-wide flooding cost proportional to the
number of links each node advertises (§1: OSPF floods full neighbor lists;
OLSR floods only MPR-selector links).  With a remote-spanner each node *u*
advertises its dominating tree T_u, so the steady-state overhead per
period is ``Σ_u |E(T_u)|`` link-entries flooded network-wide versus
``Σ_u deg(u) = 2m`` for full link state.

These helpers quantify that trade for a constructed spanner and for the
baselines, giving the benches the "advertised links" column.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.remote_spanner import RemoteSpanner
from ..graph import Graph

__all__ = ["AdvertisementCost", "spanner_advertisement_cost", "full_link_state_cost"]


@dataclass
class AdvertisementCost:
    """Per-period advertisement volume, in link-entry units."""

    entries_per_period: int  # total link entries originated per period
    originators: int  # nodes that advertise anything
    max_single_advert: int  # largest single advertisement

    def ratio_to(self, other: "AdvertisementCost") -> float:
        """This cost as a fraction of *other* (e.g. vs full link state).

        Against an empty baseline (zero entries — an edgeless topology
        advertises nothing) any nonzero cost is infinitely worse, not
        free: the ratio is ``inf`` unless this cost is also zero.
        """
        if other.entries_per_period == 0:
            return 0.0 if self.entries_per_period == 0 else float("inf")
        return self.entries_per_period / other.entries_per_period


def spanner_advertisement_cost(spanner: RemoteSpanner) -> AdvertisementCost:
    """Advertisement volume when every node floods its dominating tree."""
    sizes = [t.num_edges for t in spanner.trees.values()]
    return AdvertisementCost(
        entries_per_period=sum(sizes),
        originators=sum(1 for s in sizes if s > 0),
        max_single_advert=max(sizes, default=0),
    )


def full_link_state_cost(g: Graph) -> AdvertisementCost:
    """OSPF-style full adjacency advertisement: every node floods N(u)."""
    degrees = [g.degree(u) for u in g.nodes()]
    return AdvertisementCost(
        entries_per_period=sum(degrees),
        originators=sum(1 for d in degrees if d > 0),
        max_single_advert=max(degrees, default=0),
    )
