"""Hop-by-hop greedy routing on a remote-spanner — the paper's application.

§1's argument, made executable: node *u* forwards a packet for *v* to its
neighbor *u′* closest to *v* in :math:`H_u`; *u′* repeats the decision in
:math:`H_{u'}`.  Because the tail of *u*'s chosen path lies inside H (only
the first hop may use an augmented edge), the invariant

    :math:`d_{H_{u'}}(u', v) \\le d_{H_u}(u, v) - 1`

holds at every hop, so the packet arrives in at most
:math:`d_{H_u}(u, v)` hops and greedy routing inherits the remote-spanner
stretch (α, β).  :func:`route` simulates the forwarding and records the
per-hop potential so tests can check the invariant itself, not just
arrival.

:func:`route_served` is the *production* twin: the same journey decided by
table lookups against a maintained :class:`~repro.dynamic.serving.\
RoutingService` (or a concurrent :class:`~repro.parallel.sharded.\
RouteReader`) instead of a fresh :class:`AugmentedView` BFS per hop —
identical path, delivery and potentials (property-tested), at query cost
O(hops) instead of O(hops · m).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..errors import NodeNotFound, ParameterError
from ..graph import AugmentedView, Graph

__all__ = [
    "RouteResult",
    "RoutingStats",
    "route",
    "route_actor",
    "route_served",
    "route_all_pairs_stats",
]


@dataclass
class RouteResult:
    """One simulated packet journey."""

    path: list = field(default_factory=list)  # nodes visited, source first
    delivered: bool = False
    potentials: list = field(default_factory=list)  # d_{H_x}(x, v) at each hop

    @property
    def hops(self) -> int:
        # An empty/default result has no source yet — zero hops, not −1.
        return max(0, len(self.path) - 1)


def route(h: Graph, g: Graph, source: int, target: int, max_hops: "int | None" = None) -> RouteResult:
    """Simulate greedy forwarding of one packet from *source* to *target*.

    Every visited node recomputes the decision on its own :math:`H_x`
    (this is what real link-state routers do — no source routing).

    ``max_hops`` bounds the number of *forwarding steps* simulated, not
    the number of nodes visited; when ``None`` it defaults to
    ``g.num_nodes``.  That default is a pure loop guard: on a true
    remote-spanner input the potential :math:`d_{H_x}(x, v)` starts at
    most ``n − 1`` and drops by at least 1 per hop, so the journey ends
    (delivered or unroutable) strictly before the guard — it can only
    trip, leaving ``delivered=False`` with a length-``max_hops`` journey,
    on inputs where H is *not* a remote-spanner of G and the packet
    cycles.  ``max_hops=0`` simulates no step at all: the result is the
    bare source path with no potential recorded.
    """
    if source == target:
        raise ParameterError("source equals target")
    if not (0 <= target < g.num_nodes):
        raise NodeNotFound(target, g.num_nodes)
    if max_hops is None:
        max_hops = g.num_nodes
    result = RouteResult(path=[source])
    current = source
    for _ in range(max_hops):
        view = AugmentedView(h, g, current)
        dist_to_target = view.distances_from(target)
        potential = dist_to_target[current]
        result.potentials.append(potential if potential >= 0 else float("inf"))
        if potential < 0:
            return result  # unroutable from here
        # Closest neighbor to target in H_current; smallest id on ties.
        best = None
        best_d = -1
        for w in sorted(g.neighbors(current)):
            dw = dist_to_target[w]
            if dw < 0:
                continue
            if best is None or dw < best_d:
                best, best_d = w, dw
        if best is None:
            return result
        result.path.append(best)
        current = best
        if current == target:
            result.delivered = True
            result.potentials.append(0)
            return result
    return result


def route_served(
    service,
    source: int,
    target: int,
    max_hops: "int | None" = None,
    *,
    hop_fallback=None,
) -> RouteResult:
    """Forward one packet hop-by-hop off maintained next-hop tables.

    The serving fast path: where :func:`route` re-derives every decision
    with a fresh :class:`AugmentedView` BFS (O(m) per hop), each hop here
    is one table lookup against *service* — a
    :class:`~repro.dynamic.serving.RoutingService`,
    :class:`~repro.parallel.sharded.ShardedRoutingService`, or a
    concurrent :class:`~repro.parallel.sharded.RouteReader` riding the
    shared matrices while repairs run.  Anything exposing ``num_nodes``,
    ``next_hop(u, v)`` and ``distance(u, v)`` works.

    The journey is *identical* to :func:`route` on the service's live
    ``(H, G)`` — same path, same delivery, same potentials, same
    tie-breaks — because the served table realizes the same argmin
    (``T[u, v] = argmin_{w∈N_G(u)} d_H(w, v)``) and the potential
    :math:`d_{H_u}(u, v)` equals ``1 + d_H(T[u, v], v)``: a shortest
    :math:`H_u`-path leaves *u* through a G-neighbor, star edge or not.
    ``max_hops`` has :func:`route`'s exact default-guard semantics
    (``None`` → ``num_nodes`` forwarding steps).

    ``hop_fallback`` is the degraded-serving hook: a callable
    ``(u, v) -> hop | None`` (pass ``True`` to use the service's own
    ``hop_fallback`` method, e.g. :meth:`RouteReader.hop_fallback
    <repro.parallel.sharded.RouteReader.hop_fallback>`) consulted only when
    the table lookup answers ``None`` — a dormant (crash-repaired) entry or
    a row refused by the reader's staleness bound.  Fallback hops keep the
    journey moving over committed edges but carry no potential certificate,
    so their potential records as ``inf`` and the standard per-hop
    invariant is not claimed for them.
    """
    if source == target:
        raise ParameterError("source equals target")
    if hop_fallback is True:
        hop_fallback = service.hop_fallback
    n = service.num_nodes
    if not (0 <= target < n):
        raise NodeNotFound(target, n)
    if max_hops is None:
        max_hops = n
    result = RouteResult(path=[source])
    current = source
    for _ in range(max_hops):
        hop = service.next_hop(current, target)
        if hop is None and hop_fallback is not None:
            hop = hop_fallback(current, target)
            if hop is not None:
                obs.inc("route.fallback_hops")
                result.potentials.append(float("inf"))
                result.path.append(hop)
                current = hop
                if current == target:
                    result.delivered = True
                    result.potentials.append(0)
                    return result
                continue
        if hop is None:
            result.potentials.append(float("inf"))
            return result  # unroutable from here
        d_hop = service.distance(hop, target)
        result.potentials.append(d_hop + 1 if d_hop is not None else float("inf"))
        result.path.append(hop)
        current = hop
        if current == target:
            result.delivered = True
            result.potentials.append(0)
            return result
    return result


def route_actor(system, source: int, target: int, max_hops: "int | None" = None) -> RouteResult:
    """:func:`route_served`'s journey, executed by the distributed tier.

    *system* is a started :class:`~repro.distributed.actors.ActorSystem`;
    the decision loop runs *across* shard actors — each next-hop lookup
    at the owner of the current node, each potential appended by the
    owner of the chosen hop — yet the returned
    :class:`RouteResult` is identical (path, delivery, potentials,
    tie-breaks) to ``route_served`` against the system's serial service,
    because both realize the same argmin off bit-identical rows.  The
    equivalence is property-tested in
    ``tests/distributed/test_actors.py``.
    """
    return system.route(source, target, max_hops)


@dataclass
class RoutingStats:
    """Aggregate greedy-routing quality over a pair population."""

    pairs: int = 0
    delivered: int = 0
    max_stretch: float = 0.0  # hops / d_G
    mean_stretch: float = 0.0
    max_overhead: int = 0  # hops - d_G
    invariant_violations: int = 0  # potential failed to drop by ≥ 1


def route_all_pairs_stats(
    h: "Graph | None" = None,
    g: "Graph | None" = None,
    pairs: "list[tuple[int, int]] | None" = None,
    *,
    service=None,
) -> RoutingStats:
    """Route (sampled) ordered pairs and aggregate stretch + invariants.

    Two modes: with ``(h, g)`` every journey is simulated by :func:`route`
    (per-hop BFS, the reference); with ``service=`` (a
    :class:`~repro.dynamic.serving.RoutingService` or sharded twin) the
    journeys ride :func:`route_served` off the maintained tables instead —
    same statistics, query-rate cost.  In served mode ``h``/``g`` default
    to the service's live advertised/topology graphs.
    """
    from ..graph import cached_bfs_distances

    if service is not None:
        if h is None:
            h = service.advertised
        if g is None:
            g = service.graph
    if h is None or g is None:
        raise ParameterError("route_all_pairs_stats needs (h, g) or service=")
    if pairs is None:
        n = g.num_nodes
        pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    stats = RoutingStats()
    stretch_total = 0.0
    g.freeze()  # the per-source BFS probes below ride the CSR snapshot
    # Local memo keeps the per-pair lookup O(1); the shared LRU layer
    # underneath persists the vectors (and its hit/miss accounting) across
    # calls on the same graph version.
    dist_cache: dict[int, list[int]] = {}
    for s, t in pairs:
        if s not in dist_cache:
            dist_cache[s] = cached_bfs_distances(g, s)
        d_g = dist_cache[s][t]
        if d_g < 1:
            continue
        stats.pairs += 1
        res = route_served(service, s, t) if service is not None else route(h, g, s, t)
        if not res.delivered:
            continue
        stats.delivered += 1
        stretch = res.hops / d_g
        stretch_total += stretch
        stats.max_stretch = max(stats.max_stretch, stretch)
        stats.max_overhead = max(stats.max_overhead, res.hops - d_g)
        # The potential must drop by at least 1 per hop (§1's argument).
        for a, b in zip(res.potentials, res.potentials[1:]):
            if b > a - 1:
                stats.invariant_violations += 1
    if stats.delivered:
        stats.mean_stretch = stretch_total / stats.delivered
    return stats
