"""Hop-by-hop greedy routing on a remote-spanner — the paper's application.

§1's argument, made executable: node *u* forwards a packet for *v* to its
neighbor *u′* closest to *v* in :math:`H_u`; *u′* repeats the decision in
:math:`H_{u'}`.  Because the tail of *u*'s chosen path lies inside H (only
the first hop may use an augmented edge), the invariant

    :math:`d_{H_{u'}}(u', v) \\le d_{H_u}(u, v) - 1`

holds at every hop, so the packet arrives in at most
:math:`d_{H_u}(u, v)` hops and greedy routing inherits the remote-spanner
stretch (α, β).  :func:`route` simulates the forwarding and records the
per-hop potential so tests can check the invariant itself, not just
arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NodeNotFound, ParameterError
from ..graph import AugmentedView, Graph

__all__ = ["RouteResult", "RoutingStats", "route", "route_all_pairs_stats"]


@dataclass
class RouteResult:
    """One simulated packet journey."""

    path: list = field(default_factory=list)  # nodes visited, source first
    delivered: bool = False
    potentials: list = field(default_factory=list)  # d_{H_x}(x, v) at each hop

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def route(h: Graph, g: Graph, source: int, target: int, max_hops: "int | None" = None) -> RouteResult:
    """Simulate greedy forwarding of one packet from *source* to *target*.

    Every visited node recomputes the decision on its own :math:`H_x`
    (this is what real link-state routers do — no source routing).  The
    loop guard ``max_hops`` defaults to n; the theory says the journey is
    monotone so the guard only trips on non-remote-spanner inputs.
    """
    if source == target:
        raise ParameterError("source equals target")
    if not (0 <= target < g.num_nodes):
        raise NodeNotFound(target, g.num_nodes)
    if max_hops is None:
        max_hops = g.num_nodes
    result = RouteResult(path=[source])
    current = source
    for _ in range(max_hops):
        view = AugmentedView(h, g, current)
        dist_to_target = view.distances_from(target)
        potential = dist_to_target[current]
        result.potentials.append(potential if potential >= 0 else float("inf"))
        if potential < 0:
            return result  # unroutable from here
        # Closest neighbor to target in H_current; smallest id on ties.
        best = None
        best_d = -1
        for w in sorted(g.neighbors(current)):
            dw = dist_to_target[w]
            if dw < 0:
                continue
            if best is None or dw < best_d:
                best, best_d = w, dw
        if best is None:
            return result
        result.path.append(best)
        current = best
        if current == target:
            result.delivered = True
            result.potentials.append(0)
            return result
    return result


@dataclass
class RoutingStats:
    """Aggregate greedy-routing quality over a pair population."""

    pairs: int = 0
    delivered: int = 0
    max_stretch: float = 0.0  # hops / d_G
    mean_stretch: float = 0.0
    max_overhead: int = 0  # hops - d_G
    invariant_violations: int = 0  # potential failed to drop by ≥ 1


def route_all_pairs_stats(
    h: Graph, g: Graph, pairs: "list[tuple[int, int]] | None" = None
) -> RoutingStats:
    """Route (sampled) ordered pairs and aggregate stretch + invariants."""
    from ..graph import cached_bfs_distances

    if pairs is None:
        n = g.num_nodes
        pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    stats = RoutingStats()
    stretch_total = 0.0
    g.freeze()  # the per-source BFS probes below ride the CSR snapshot
    # Local memo keeps the per-pair lookup O(1); the shared LRU layer
    # underneath persists the vectors (and its hit/miss accounting) across
    # calls on the same graph version.
    dist_cache: dict[int, list[int]] = {}
    for s, t in pairs:
        if s not in dist_cache:
            dist_cache[s] = cached_bfs_distances(g, s)
        d_g = dist_cache[s][t]
        if d_g < 1:
            continue
        stats.pairs += 1
        res = route(h, g, s, t)
        if not res.delivered:
            continue
        stats.delivered += 1
        stretch = res.hops / d_g
        stretch_total += stretch
        stats.max_stretch = max(stats.max_stretch, stretch)
        stats.max_overhead = max(stats.max_overhead, res.hops - d_g)
        # The potential must drop by at least 1 per hop (§1's argument).
        for a, b in zip(res.potentials, res.potentials[1:]):
            if b > a - 1:
                stats.invariant_violations += 1
    if stats.delivered:
        stats.mean_stretch = stretch_total / stats.delivered
    return stats
