"""Link-state routing application: the paper's §1 motivation, executable.

Greedy hop-by-hop forwarding on :math:`H_u`, next-hop tables, and the
advertisement-overhead accounting that justifies flooding a remote-spanner
instead of the full topology.
"""

from .tables import next_hop, routing_table, routing_table_scan
from .greedy_routing import (
    RouteResult,
    RoutingStats,
    route,
    route_actor,
    route_all_pairs_stats,
    route_served,
)
from .overhead import AdvertisementCost, full_link_state_cost, spanner_advertisement_cost

__all__ = [
    "next_hop",
    "routing_table",
    "routing_table_scan",
    "RouteResult",
    "RoutingStats",
    "route",
    "route_actor",
    "route_served",
    "route_all_pairs_stats",
    "AdvertisementCost",
    "full_link_state_cost",
    "spanner_advertisement_cost",
]
