"""Per-node routing tables computed from the augmented view :math:`H_u`.

The paper's routing scheme (§1): a node *u* knows the advertised sub-graph
H plus its own neighbor set, i.e. it routes on :math:`H_u`.  For a
destination *v* it "forwards packets ... to a closest neighbor u′ to v in
H_u".  A routing table is therefore, per destination, the minimizing
neighbor — computed here with one BFS per destination (distances *to* v in
H_u, read off at u's neighbors), or for all destinations at once with n
BFS runs.
"""

from __future__ import annotations

from ..errors import NodeNotFound
from ..graph import AugmentedView, Graph

__all__ = ["next_hop", "routing_table"]


def next_hop(h: Graph, g: Graph, u: int, v: int) -> "int | None":
    """The neighbor of *u* (in G) closest to *v* in :math:`H_u`.

    Returns ``None`` when no neighbor reaches *v* in :math:`H_u` (the pair
    is then unroutable from *u* on this advertised sub-graph).  Ties break
    on smallest neighbor id, so forwarding is deterministic.
    """
    if u == v:
        raise NodeNotFound(v, g.num_nodes)
    view = AugmentedView(h, g, u)
    dist_to_v = view.distances_from(v)
    best: "int | None" = None
    best_d = -1
    for w in sorted(g.neighbors(u)):
        dw = dist_to_v[w]
        if dw < 0:
            continue
        if best is None or dw < best_d:
            best, best_d = w, dw
    return best


def routing_table(h: Graph, g: Graph, u: int) -> dict:
    """Full next-hop table for *u*: destination -> neighbor (or None).

    One BFS per destination in :math:`H_u`; O(n·(m_H + deg u)) total.
    Destinations unreachable in G are omitted.
    """
    view = AugmentedView(h, g, u)
    table: dict[int, "int | None"] = {}
    nbrs = sorted(g.neighbors(u))
    for v in g.nodes():
        if v == u:
            continue
        dist_to_v = view.distances_from(v)
        best: "int | None" = None
        best_d = -1
        for w in nbrs:
            dw = dist_to_v[w]
            if dw < 0:
                continue
            if best is None or dw < best_d:
                best, best_d = w, dw
        if best is not None:
            table[v] = best
    return table
