"""Per-node routing tables computed from the augmented view :math:`H_u`.

The paper's routing scheme (§1): a node *u* knows the advertised sub-graph
H plus its own neighbor set, i.e. it routes on :math:`H_u`.  For a
destination *v* it "forwards packets ... to a closest neighbor u′ to v in
H_u".  A routing table is therefore, per destination, the minimizing
neighbor.

Two kernels compute it:

* :func:`routing_table` — ``deg_G(u)`` *neighbor-sourced* BFS runs on the
  frozen CSR of :math:`H_u` (one :func:`~repro.graph.traversal.batched_bfs`
  call over :meth:`AugmentedView.freeze <repro.graph.views.AugmentedView.\
freeze>`), then one vectorized argmin per destination whose
  first-occurrence semantics reproduce the smallest-neighbor-id tie-break
  exactly.  Per-node cost ``O(deg_G(u) · m_H)``.
* :func:`routing_table_scan` — the definition transcribed: one BFS per
  destination, ``O(n · m_H)`` per node.  Kept as the reference the
  property suite checks the fast kernel (and the incremental tables of
  :mod:`repro.dynamic.serving`) against.

Both return identical tables — entries, omissions and tie-breaks
(property-tested in ``tests/routing``).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import AugmentedView, Graph, batched_bfs

__all__ = ["next_hop", "routing_table", "routing_table_scan", "project_table_row"]

#: Stand-in for "unreachable" in the vectorized argmins here and in the
#: serving layer (:mod:`repro.dynamic.serving`).  Any value larger than
#: every finite hop distance works (n is a strict upper bound); halving
#: int32 max keeps ``_FAR + 1`` overflow-safe even in int32 arithmetic.
_FAR = np.iinfo(np.int32).max // 2


def _argmin_hops(block: "np.ndarray", nbrs: "list[int]") -> "np.ndarray":
    """Column-wise greedy hop choice over a ``deg × k`` distance block.

    ``block[i, j]`` is the distance from neighbor ``nbrs[i]`` (sorted
    ascending) to the j-th destination, ``-1`` for unreachable.  Returns
    the int32 next hop per destination (``-1`` when no neighbor reaches
    it); ``np.argmin``'s first-occurrence rule realizes the smallest-
    neighbor-id tie-break.  Shared by :func:`routing_table` and the
    incremental tables of :mod:`repro.dynamic.serving`, whose bit-for-bit
    agreement the property suite pins.
    """
    far = np.where(block < 0, _FAR, block)
    slot = np.argmin(far, axis=0)
    best = np.take_along_axis(far, slot[None, :], axis=0)[0]
    hops = np.asarray(nbrs, dtype=np.int32)[slot]
    hops[best >= _FAR] = -1
    return hops


def project_table_row(
    dist: "np.ndarray", tables: "np.ndarray", nbrs: "list[int]", u: int, cols: "np.ndarray | None"
) -> int:
    """Re-argmin table row *u* in place; returns how many entries changed.

    The projection kernel of the serving layer, shared verbatim by the
    single-process :class:`~repro.dynamic.serving.RoutingService` and the
    worker processes of :class:`~repro.parallel.sharded.\
ShardedRoutingService` — one implementation is what makes the two
    bit-identical by construction.  ``dist`` is the ``d_H`` matrix,
    ``tables`` the next-hop matrix, ``nbrs`` the sorted G-neighbors of
    *u*, ``cols`` the destinations to refresh (``None`` = all).
    """
    row = tables[u]
    if cols is None:
        old = row.copy()
        if not nbrs:
            row[:] = -1
            return int((old != row).sum())
        hops = _argmin_hops(dist[nbrs], nbrs)
        row[:] = hops
        row[u] = -1
        return int((old != row).sum())
    old = row[cols].copy()
    if not nbrs:
        row[cols] = -1
        return int((old != row[cols]).sum())
    hops = _argmin_hops(dist[np.ix_(nbrs, cols)], nbrs)
    row[cols] = hops
    row[u] = -1
    return int((old != row[cols]).sum())


def next_hop(h: Graph, g: Graph, u: int, v: int) -> "int | None":
    """The neighbor of *u* (in G) closest to *v* in :math:`H_u`.

    Returns ``None`` when no neighbor reaches *v* in :math:`H_u` (the pair
    is then unroutable from *u* on this advertised sub-graph).  Ties break
    on smallest neighbor id, so forwarding is deterministic.  ``u == v``
    raises :class:`~repro.errors.ParameterError` (a node does not forward
    to itself), consistent with :func:`~repro.routing.greedy_routing.route`.
    """
    if u == v:
        raise ParameterError("source equals target")
    view = AugmentedView(h, g, u)
    dist_to_v = view.distances_from(v)
    best: "int | None" = None
    best_d = -1
    for w in sorted(g.neighbors(u)):
        dw = dist_to_v[w]
        if dw < 0:
            continue
        if best is None or dw < best_d:
            best, best_d = w, dw
    return best


def routing_table(h: Graph, g: Graph, u: int, *, workers=None) -> dict:
    """Full next-hop table for *u*: destination -> closest neighbor.

    Runs ``deg_G(u)`` neighbor-sourced batched BFS runs on the frozen CSR
    of :math:`H_u` — ``O(deg_G(u) · m_H)`` total instead of the
    ``O(n · m_H)`` of one BFS per destination — then one vectorized argmin
    across the ``deg × n`` distance block.  Sources are fed in ascending
    neighbor order, so ``np.argmin``'s first-occurrence rule *is* the
    smallest-neighbor-id tie-break of :func:`next_hop`.  Destinations
    unreachable from every neighbor (and *u* itself) are omitted.

    ``workers`` forwards to :func:`~repro.graph.traversal.batched_bfs` —
    the neighbor-sourced BFS block fans out across a worker pool (worth it
    for high-degree sources on large advertised graphs).
    """
    view = AugmentedView(h, g, u)
    nbrs = sorted(g.neighbors(u))
    if not nbrs:
        return {}
    csr = view.freeze()
    block = np.array([row for _s, row in batched_bfs(csr, nbrs, arrays=True, workers=workers)])
    hops = _argmin_hops(block, nbrs)
    table: dict[int, int] = {}
    for v in range(g.num_nodes):
        if v != u and hops[v] >= 0:
            table[v] = int(hops[v])
    return table


def routing_table_scan(h: Graph, g: Graph, u: int) -> dict:
    """Reference kernel: one BFS per destination in :math:`H_u`.

    ``O(n·(m_H + deg u))`` per node — the transcription of the paper's
    definition that :func:`routing_table` is property-tested against.
    """
    view = AugmentedView(h, g, u)
    table: dict[int, "int | None"] = {}
    nbrs = sorted(g.neighbors(u))
    for v in g.nodes():
        if v == u:
            continue
        dist_to_v = view.distances_from(v)
        best: "int | None" = None
        best_d = -1
        for w in nbrs:
            dw = dist_to_v[w]
            if dw < 0:
                continue
            if best is None or dw < best_d:
                best, best_d = w, dw
        if best is not None:
            table[v] = best
    return table
