"""Dynamic-graph subsystem: churn scenarios + incremental spanner upkeep.

The paper's central claim is *locality* — a node decides its remote-spanner
edges from its bounded-radius neighborhood alone (Algorithms 1–5 never look
past ``B_G(u, r−1+β)``).  The contrapositive is what this package exploits:
a topology edit can only perturb the per-node trees rooted inside a bounded
ball around the edited edge, so a spanner can be *maintained* across an
edge-event stream by recomputing the dirty ball instead of rebuilding from
scratch.

* :mod:`repro.dynamic.events` — typed insert/delete edge events plus seeded
  scenario generators (UDG node mobility, link failure/recovery,
  incremental growth);
* :mod:`repro.dynamic.maintainer` — the incremental remote-spanner
  maintainer with dirty-ball detection and a full-rebuild fallback.

Entry points: ``python -m repro churn`` drives a scenario from the shell;
``benchmarks/test_bench_dynamic.py`` records the incremental-vs-rebuild
speedup as ``BENCH_dynamic.json``.
"""

from .events import (
    EdgeEvent,
    Scenario,
    apply_event,
    apply_events,
    failure_recovery_scenario,
    growth_scenario,
    make_scenario,
    mobility_scenario,
    SCENARIO_NAMES,
)
from .maintainer import (
    EventReport,
    SpannerMaintainer,
    locality_radius,
    resolve_construction,
)

__all__ = [
    "EdgeEvent",
    "Scenario",
    "apply_event",
    "apply_events",
    "failure_recovery_scenario",
    "growth_scenario",
    "make_scenario",
    "mobility_scenario",
    "SCENARIO_NAMES",
    "EventReport",
    "SpannerMaintainer",
    "locality_radius",
    "resolve_construction",
]
