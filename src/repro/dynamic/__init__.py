"""Dynamic-graph subsystem: churn scenarios, incremental upkeep, serving.

The paper's central claim is *locality* — a node decides its remote-spanner
edges from its bounded-radius neighborhood alone (Algorithms 1–5 never look
past ``B_G(u, r−1+β)``).  The contrapositive is what this package exploits:
a topology edit can only perturb the per-node trees rooted inside a bounded
ball around the edited edge, so a spanner can be *maintained* across an
event stream by recomputing the dirty ball instead of rebuilding from
scratch — and the routing tables served on top of it can be maintained the
same way, recomputing only the sources (and destinations) whose answers
moved.

* :mod:`repro.dynamic.events` — typed insert/delete edge events and
  join/leave node events, plus seeded scenario generators (UDG node
  mobility, link failure/recovery, incremental growth, node churn);
* :mod:`repro.dynamic.maintainer` — the incremental remote-spanner
  maintainer with dirty-ball detection, batched (per-tick) coalescing and
  a full-rebuild fallback;
* :mod:`repro.dynamic.serving` — :class:`RoutingService`, next-hop tables
  kept bit-identical to a from-scratch build after every event.

Entry points: ``python -m repro churn`` / ``python -m repro serve`` drive a
scenario from the shell; ``benchmarks/test_bench_dynamic.py`` and
``benchmarks/test_bench_routing.py`` record the incremental-vs-rebuild
speedups as ``BENCH_dynamic.json`` / ``BENCH_routing.json``.
"""

from .events import (
    EdgeEvent,
    NodeEvent,
    Scenario,
    apply_event,
    apply_events,
    failure_recovery_scenario,
    growth_scenario,
    make_scenario,
    mobility_scenario,
    node_churn_scenario,
    SCENARIO_NAMES,
)
from .maintainer import (
    BatchReport,
    EventReport,
    SpannerMaintainer,
    locality_radius,
    resolve_construction,
)
from .serving import MemoryStats, RoutingService, ServeReport

__all__ = [
    "EdgeEvent",
    "NodeEvent",
    "Scenario",
    "apply_event",
    "apply_events",
    "failure_recovery_scenario",
    "growth_scenario",
    "make_scenario",
    "mobility_scenario",
    "node_churn_scenario",
    "SCENARIO_NAMES",
    "BatchReport",
    "EventReport",
    "SpannerMaintainer",
    "locality_radius",
    "resolve_construction",
    "MemoryStats",
    "RoutingService",
    "ServeReport",
]
