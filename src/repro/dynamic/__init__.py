"""Dynamic-graph subsystem: churn scenarios, incremental upkeep, serving.

The paper's central claim is *locality* — a node decides its remote-spanner
edges from its bounded-radius neighborhood alone (Algorithms 1–5 never look
past ``B_G(u, r−1+β)``).  The contrapositive is what this package exploits:
a topology edit can only perturb the per-node trees rooted inside a bounded
ball around the edited edge, so a spanner can be *maintained* across an
event stream by recomputing the dirty ball instead of rebuilding from
scratch — and the routing tables served on top of it can be maintained the
same way, recomputing only the sources (and destinations) whose answers
moved.

* :mod:`repro.dynamic.events` — typed insert/delete edge events and
  join/leave node events, plus seeded scenario generators (UDG node
  mobility, link failure/recovery, incremental growth, node churn);
* :mod:`repro.dynamic.maintainer` — the incremental remote-spanner
  maintainer with dirty-ball detection, batched (per-tick) coalescing and
  a full-rebuild fallback;
* :mod:`repro.dynamic.serving` — :class:`RoutingService`, next-hop tables
  kept bit-identical to a from-scratch build after every event;
* :mod:`repro.dynamic.traffic` — seeded route-request workloads (uniform,
  Zipf-hotspot, locality) interleaved with the churn ticks: the *query*
  side of the serving stack, served by
  :func:`~repro.routing.greedy_routing.route_served`.

Entry points: ``python -m repro churn`` / ``python -m repro serve`` /
``python -m repro traffic`` drive a scenario from the shell;
``benchmarks/test_bench_dynamic.py``, ``benchmarks/test_bench_routing.py``
and ``benchmarks/test_bench_queries.py`` record the incremental-vs-rebuild
and served-vs-BFS speedups as ``BENCH_dynamic.json`` /
``BENCH_routing.json`` / ``BENCH_queries.json``.
"""

from .events import (
    EdgeEvent,
    NodeEvent,
    Scenario,
    apply_event,
    apply_events,
    failure_recovery_scenario,
    growth_scenario,
    make_scenario,
    mobility_scenario,
    node_churn_scenario,
    partition_heal_scenario,
    regional_outage_scenario,
    SCENARIO_NAMES,
    FAULT_SCENARIO_NAMES,
)
from .maintainer import (
    BatchReport,
    EventReport,
    SpannerMaintainer,
    locality_radius,
    resolve_construction,
)
from .serving import MemoryStats, RoutingService, ServeReport
from .traffic import (
    QueryBatchReport,
    TrafficTick,
    TrafficWorkload,
    WORKLOAD_NAMES,
    make_workload,
    serve_queries,
)

__all__ = [
    "EdgeEvent",
    "NodeEvent",
    "Scenario",
    "apply_event",
    "apply_events",
    "failure_recovery_scenario",
    "growth_scenario",
    "make_scenario",
    "mobility_scenario",
    "node_churn_scenario",
    "partition_heal_scenario",
    "regional_outage_scenario",
    "SCENARIO_NAMES",
    "FAULT_SCENARIO_NAMES",
    "BatchReport",
    "EventReport",
    "SpannerMaintainer",
    "locality_radius",
    "resolve_construction",
    "MemoryStats",
    "RoutingService",
    "ServeReport",
    "TrafficTick",
    "TrafficWorkload",
    "QueryBatchReport",
    "serve_queries",
    "WORKLOAD_NAMES",
    "make_workload",
]
