"""Dynamic serving layer: incremental routing tables over the maintainer.

The paper's point is *serving*: a node routes on its advertised view
:math:`H_u`, forwarding to the neighbor closest to the destination.  After
the maintainer keeps H valid under churn, this module keeps the **next-hop
tables** valid too — without recomputing any table whose answers cannot
have moved.

The load-bearing identity (valid whenever ``H ⊆ G``, which every
maintained remote-spanner satisfies): for ``v ≠ u``,

    ``argmin_{w ∈ N_G(u)} d_{H_u}(w, v)  =  argmin_{w ∈ N_G(u)} d_H(w, v)``

including the smallest-id tie-break.  Any :math:`H_u`-path using a grafted
star edge passes through *u* and costs at least ``2 + min_w d_H(w, v)``,
which a plain H-path from the minimizing neighbor already beats; and since
``N_H(u) ⊆ N_G(u)``, a destination H-unreachable from every G-neighbor is
:math:`H_u`-unreachable from them too.  So **all n tables are projections
of one object** — the n×n matrix ``D[w, v] = d_H(w, v)`` — and an event's
table damage decomposes exactly:

* **rows** of D change only for sources whose H-BFS changed.  With the
  maintainer's net spanner delta (ΔH⁺/ΔH⁻) in hand, row *w* is provably
  unchanged unless some removed edge was *tight* from w
  (``|D[w,x] − D[w,y]| = 1`` — it lay on a shortest path) or some inserted
  edge is *improving* (``|D[w,x] − D[w,y]| > 1`` with unreachable = ∞ — it
  shortcuts).  One vectorized scan over the old matrix finds the dirty
  rows; one batched BFS on the new frozen H recomputes exactly those.
* **tables** change only for sources with a dirty-row neighbor (their
  argmin inputs moved) or whose G-star itself changed (event endpoints,
  leavers and their former neighbors, joiners) — and within a table, only
  at destinations whose neighbor-row entries actually changed (the
  accumulated changed-column mask), recomputed by a masked vectorized
  argmin.

:class:`RoutingService` owns a :class:`~repro.dynamic.maintainer.\
SpannerMaintainer` and applies events singly (:meth:`RoutingService.apply`)
or as coalesced ticks (:meth:`RoutingService.apply_batch` →
:meth:`SpannerMaintainer.apply_batch`).  After every event the served
tables are bit-identical to a from-scratch
:func:`~repro.routing.tables.routing_table` on the live (H, G) — the
property suite in ``tests/dynamic/test_serving.py`` asserts exactly this,
entry for entry, across edge *and* node churn.  ``python -m repro serve``
soaks the service from the shell; ``benchmarks/test_bench_routing.py``
records the incremental-vs-recompute speedup as ``BENCH_routing.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import NodeNotFound, ParameterError
from ..graph import Graph, batched_bfs
from ..routing.tables import _FAR, _argmin_hops
from .events import LEAVE, EdgeEvent, NodeEvent
from .maintainer import SpannerMaintainer

__all__ = ["RoutingService", "ServeReport"]


@dataclass(frozen=True)
class ServeReport:
    """What one :meth:`RoutingService.apply`/``apply_batch`` call did."""

    events: int  # events submitted
    changed: bool  # False when nothing (graph, H, tables) moved
    refreshed: bool  # True when the full-refresh fallback fired
    dirty_rows: int  # H-distance rows recomputed (BFS runs)
    dirty_tables: int  # per-source tables re-argmin'd
    entries_updated: int  # table cells whose next hop actually changed
    seconds: float


class RoutingService:
    """Serve next-hop routing tables that stay exact under churn.

    Parameters mirror :class:`~repro.dynamic.maintainer.SpannerMaintainer`
    (construction selection + ``rebuild_fraction``); the service owns its
    maintainer and must be driven exclusively through :meth:`apply` /
    :meth:`apply_batch`.

    State is two dense int32 matrices: ``D[w, v] = d_H(w, v)`` (−1 for
    unreachable) and ``T[u, v] =`` next hop of *u* toward *v* (−1 for
    unroutable or ``v == u``).  :meth:`table` projects a row of T into the
    dict shape :func:`~repro.routing.tables.routing_table` returns.
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        k: "int | None" = None,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        self.maintainer = SpannerMaintainer(
            g, method, k=k, epsilon=epsilon, r=r, rebuild_fraction=rebuild_fraction
        )
        self.events_applied = 0
        self.rows_recomputed = 0
        self.tables_recomputed = 0
        self.entries_updated = 0
        self.full_refreshes = 0
        self._dist = np.empty((0, 0), dtype=np.int32)
        self._tables = np.empty((0, 0), dtype=np.int32)
        self.refresh()
        # Counters measure *serving* work: zero out the initial population.
        self.rows_recomputed = 0
        self.tables_recomputed = 0
        self.entries_updated = 0
        self.full_refreshes = 0

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        """The live topology G (read-only — drive churn through apply)."""
        return self.maintainer.graph

    @property
    def advertised(self) -> Graph:
        """The live advertised sub-graph H (the maintained spanner)."""
        return self.maintainer.spanner.graph

    def table(self, u: int) -> dict:
        """Node *u*'s next-hop table, in :func:`routing_table`'s dict shape."""
        self.graph._check(u)
        row = self._tables[u]
        return {int(v): int(row[v]) for v in np.flatnonzero(row >= 0)}

    def next_hop(self, u: int, v: int) -> "int | None":
        """The served next hop of *u* toward *v* (None when unroutable)."""
        g = self.graph
        g._check(u)
        if u == v:
            raise ParameterError("source equals target")
        if not (0 <= v < g.num_nodes):
            raise NodeNotFound(v, g.num_nodes)
        hop = int(self._tables[u, v])
        return hop if hop >= 0 else None

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #

    def apply(self, event: "EdgeEvent | NodeEvent") -> ServeReport:
        """Apply one event; repair spanner, distance rows and tables."""
        t0 = time.perf_counter()
        star_changed = self._star_damage(event)
        report = self.maintainer.apply(event)
        self.events_applied += 1
        if not report.changed:
            return ServeReport(1, False, False, 0, 0, 0, time.perf_counter() - t0)
        stats = self._ingest(report.h_added, report.h_removed, star_changed, report.rebuilt)
        return ServeReport(1, True, *stats, seconds=time.perf_counter() - t0)

    def apply_batch(self, events: "Sequence[EdgeEvent | NodeEvent]") -> ServeReport:
        """Apply one tick of events with a single coalesced repair."""
        t0 = time.perf_counter()
        events = list(events)
        try:
            report = self.maintainer.apply_batch(events)
        except Exception:
            # A malformed mid-batch event made the maintainer rebuild over
            # the partially-applied tick; resync (and resize) the matrices
            # to the rebuilt spanner before surfacing the error.
            self.refresh()
            raise
        self.events_applied += len(events)
        if not report.changed:
            return ServeReport(len(events), False, False, 0, 0, 0, time.perf_counter() - t0)
        star_changed = {x for e in (*report.g_added, *report.g_removed) for x in e}
        stats = self._ingest(report.h_added, report.h_removed, star_changed, report.rebuilt)
        return ServeReport(len(events), True, *stats, seconds=time.perf_counter() - t0)

    def apply_stream(
        self, events: "Iterable[EdgeEvent | NodeEvent]", tick: int = 1
    ) -> "list[ServeReport]":
        """Apply a stream, singly (``tick=1``) or in coalesced ticks."""
        if tick < 1:
            raise ParameterError(f"tick must be ≥ 1, got {tick}")
        events = list(events)
        if tick == 1:
            return [self.apply(ev) for ev in events]
        return [
            self.apply_batch(events[lo : lo + tick]) for lo in range(0, len(events), tick)
        ]

    def refresh(self) -> None:
        """Recompute every distance row and table from scratch (fallback)."""
        g = self.maintainer.graph
        n = g.num_nodes
        h = self.advertised.freeze()
        dist = np.full((n, n), -1, dtype=np.int32)
        for s, row in batched_bfs(h, arrays=True):
            dist[s] = row
        self._dist = dist
        if self._tables.shape != (n, n):
            self._tables = np.full((n, n), -1, dtype=np.int32)
        # Re-project in place so entries_updated keeps counting only cells
        # whose next hop actually changed, refresh or not.
        for u in range(n):
            self._project_table(u, None)
        self.full_refreshes += 1
        self.rows_recomputed += n
        self.tables_recomputed += n

    # ------------------------------------------------------------------ #
    # incremental machinery
    # ------------------------------------------------------------------ #

    def _star_damage(self, event: "EdgeEvent | NodeEvent") -> set[int]:
        """Sources whose G-neighborhood this event edits (pre-application).

        A leave severs every incident G edge, so the leaver *and all its
        former neighbors* lose an argmin candidate — even when H never
        carried those edges and no distance row moves.
        """
        if isinstance(event, NodeEvent):
            if event.kind == LEAVE:
                return {event.node, *self.maintainer.graph.neighbors(event.node)}
            return set()  # a joined node is covered as a fresh row/table
        return {event.u, event.v}

    def _ingest(
        self,
        h_added: "tuple[tuple[int, int], ...]",
        h_removed: "tuple[tuple[int, int], ...]",
        star_changed: set[int],
        rebuilt: bool,
    ) -> "tuple[bool, int, int, int]":
        """Fold one repair's deltas into the matrices.

        Returns ``(refreshed, dirty_rows, dirty_tables, entries_updated)``.
        """
        g = self.maintainer.graph
        n = g.num_nodes
        old_dim = self._dist.shape[0]
        if n != old_dim:  # node churn grew the id space: pad with -1
            dist = np.full((n, n), -1, dtype=np.int32)
            dist[:old_dim, :old_dim] = self._dist
            self._dist = dist
            tables = np.full((n, n), -1, dtype=np.int32)
            tables[:old_dim, :old_dim] = self._tables
            self._tables = tables
        if rebuilt:  # global churn: the maintainer rebuilt, so do we
            before = self.entries_updated
            self.refresh()
            return True, n, n, self.entries_updated - before
        new_nodes = range(old_dim, n)
        dirty_rows = self._dirty_rows(h_added, h_removed)
        dirty_rows.update(new_nodes)
        changed_cols: "dict[int, np.ndarray]" = {}
        if dirty_rows:
            h = self.advertised.freeze()
            order = sorted(dirty_rows)
            for s, new_row in batched_bfs(h, order, arrays=True):
                mask = new_row != self._dist[s]
                if mask.any():
                    changed_cols[s] = mask
                self._dist[s] = new_row
            self.rows_recomputed += len(order)
        # A table moves only if its argmin inputs did: a neighbor's row
        # changed, or its own G-star changed (None mask = all destinations).
        damage: "dict[int, np.ndarray | None]" = {u: None for u in star_changed}
        for v in new_nodes:
            damage[v] = None
        for w, mask in changed_cols.items():
            for u in g.neighbors(w):
                current = damage.get(u, False)
                if current is None:
                    continue
                if current is False:
                    damage[u] = mask.copy()
                else:
                    current |= mask
        entries_before = self.entries_updated
        tables_touched = 0
        for u, mask in damage.items():
            cols = None if mask is None else np.flatnonzero(mask)
            if cols is not None and cols.size == 0:
                continue
            self._project_table(u, cols)
            tables_touched += 1
        self.tables_recomputed += tables_touched
        return False, len(dirty_rows), tables_touched, self.entries_updated - entries_before

    def _dirty_rows(
        self,
        h_added: "tuple[tuple[int, int], ...]",
        h_removed: "tuple[tuple[int, int], ...]",
    ) -> set[int]:
        """Sources whose H-BFS row may have changed, from the old matrix.

        Certified complement — a row failing every test below kept all its
        distances.  Inserted edges shrink row *w* only when they shortcut
        it (``|D[w,x] − D[w,y]| > 1`` with unreachable = ∞).  A removed
        edge stretches row *w* only when it was *tight*
        (``D[w,x] + 1 = D[w,y]``) **and** the farther endpoint has no
        surviving equally-tight parent: any shortest path that crossed
        ``xy`` reroutes through an alternative parent ``z`` with
        ``D[w,z] + 1 = D[w,y]`` and ``zy`` still in H, level by level, so
        the whole row is preserved (the alternative-parent induction of
        dynamic SSSP).  The joint evaluation on the *old* matrix is exact:
        rows passing the deletion tests keep their distances through all
        deletions, making the insertion test's baseline valid.
        """
        d = self._dist
        n = d.shape[0]
        if n == 0 or (not h_added and not h_removed):
            return set()
        h = self.advertised  # post-repair H: alternatives must survive
        dirty = np.zeros(n, dtype=bool)
        for x, y in h_removed:
            dx = d[:, x].astype(np.int64)
            dy = d[:, y].astype(np.int64)
            for near, far, far_node in ((dx, dy, y), (dy, dx, x)):
                tight = (near >= 0) & (near + 1 == far)
                if not tight.any():
                    continue
                alts = sorted(h.neighbors(far_node))
                if alts:
                    block = d[:, alts].astype(np.int64)
                    rescued = ((block >= 0) & (block + 1 == far[:, None])).any(axis=1)
                    tight &= ~rescued
                dirty |= tight
            # Defensive: mixed reachability should be impossible for an old
            # H edge; treat it as dirty rather than provably clean.
            dirty |= (dx < 0) != (dy < 0)
        for x, y in h_added:
            dx = np.where(d[:, x] < 0, _FAR, d[:, x]).astype(np.int64)
            dy = np.where(d[:, y] < 0, _FAR, d[:, y]).astype(np.int64)
            # The new edge shortcuts w's view of one endpoint → row shrinks.
            dirty |= np.abs(dx - dy) > 1
        return {int(w) for w in np.flatnonzero(dirty)}

    def _project_table(self, u: int, cols: "np.ndarray | None") -> None:
        """Re-argmin table row *u* (restricted to destination *cols*)."""
        g = self.maintainer.graph
        row = self._tables[u]
        nbrs = sorted(g.neighbors(u))
        if cols is None:
            old = row.copy()
            if not nbrs:
                row[:] = -1
                self.entries_updated += int((old != row).sum())
                return
            block = self._dist[nbrs]
        else:
            old = row[cols].copy()
            if not nbrs:
                row[cols] = -1
                self.entries_updated += int((old != row[cols]).sum())
                return
            block = self._dist[np.ix_(nbrs, cols)]
        hops = _argmin_hops(block, nbrs)
        if cols is None:
            row[:] = hops
            row[u] = -1
            self.entries_updated += int((old != row).sum())
        else:
            row[cols] = hops
            row[u] = -1
            self.entries_updated += int((old != row[cols]).sum())
