"""Dynamic serving layer: incremental routing tables over the maintainer.

The paper's point is *serving*: a node routes on its advertised view
:math:`H_u`, forwarding to the neighbor closest to the destination.  After
the maintainer keeps H valid under churn, this module keeps the **next-hop
tables** valid too — without recomputing any table whose answers cannot
have moved.

The load-bearing identity (valid whenever ``H ⊆ G``, which every
maintained remote-spanner satisfies): for ``v ≠ u``,

    ``argmin_{w ∈ N_G(u)} d_{H_u}(w, v)  =  argmin_{w ∈ N_G(u)} d_H(w, v)``

including the smallest-id tie-break.  Any :math:`H_u`-path using a grafted
star edge passes through *u* and costs at least ``2 + min_w d_H(w, v)``,
which a plain H-path from the minimizing neighbor already beats; and since
``N_H(u) ⊆ N_G(u)``, a destination H-unreachable from every G-neighbor is
:math:`H_u`-unreachable from them too.  So **all n tables are projections
of one object** — the n×n matrix ``D[w, v] = d_H(w, v)`` — and an event's
table damage decomposes exactly:

* **rows** of D change only for sources whose H-BFS changed.  With the
  maintainer's net spanner delta (ΔH⁺/ΔH⁻) in hand, row *w* is provably
  unchanged unless some removed edge was *tight* from w
  (``|D[w,x] − D[w,y]| = 1`` — it lay on a shortest path) or some inserted
  edge is *improving* (``|D[w,x] − D[w,y]| > 1`` with unreachable = ∞ — it
  shortcuts).  One vectorized scan over the old matrix finds the dirty
  rows; one batched BFS on the new frozen H recomputes exactly those.
* **tables** change only for sources with a dirty-row neighbor (their
  argmin inputs moved) or whose G-star itself changed (event endpoints,
  leavers and their former neighbors, joiners) — and within a table, only
  at destinations whose neighbor-row entries actually changed (the
  accumulated changed-column mask), recomputed by a masked vectorized
  argmin.

:class:`RoutingService` owns a :class:`~repro.dynamic.maintainer.\
SpannerMaintainer` and applies events singly (:meth:`RoutingService.apply`)
or as coalesced ticks (:meth:`RoutingService.apply_batch` →
:meth:`SpannerMaintainer.apply_batch`).  After every event the served
tables are bit-identical to a from-scratch
:func:`~repro.routing.tables.routing_table` on the live (H, G) — the
property suite in ``tests/dynamic/test_serving.py`` asserts exactly this,
entry for entry, across edge *and* node churn.

The three inner stages — matrix (re)sizing, distance-row recompute, table
projection — are overridable hooks (:meth:`_resize_matrices`,
:meth:`_recompute_rows`, :meth:`_project_tables`): the multiprocess
:class:`~repro.parallel.sharded.ShardedRoutingService` reuses every damage
-tracking decision here and swaps only those stages for shared-memory
fan-outs, which is what keeps it bit-identical by construction.

Long-horizon memory control: joins grow the id space monotonically (a
leave keeps its id slot), so the n×n matrices only ever grow.
:meth:`memory_stats` reports the live matrix footprint and the dormant
(degree-0) id count — also stamped on every :class:`ServeReport` — and
:meth:`compact` renumbers the live ids densely, shedding the dormant rows
and columns in one refresh.

``python -m repro serve`` soaks the service from the shell;
``benchmarks/test_bench_routing.py`` records the incremental-vs-recompute
speedup as ``BENCH_routing.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from .. import obs
from ..errors import NodeNotFound, ParameterError
from ..graph import Graph, batched_bfs
from ..routing.tables import _FAR, project_table_row
from .events import ADD, LEAVE, EdgeEvent, NodeEvent
from .maintainer import SpannerMaintainer

__all__ = ["RoutingService", "ServeDelta", "ServeReport", "MemoryStats"]


@dataclass(frozen=True)
class ServeDelta:
    """One tick's net effect, as the delta feed publishes it.

    The subscription payload for downstream replicas (the distributed
    actor tier subscribes here): everything needed to advance a remote
    copy of (G, H) from tick ``seq − 1`` to tick ``seq`` without seeing
    the event stream itself.  Deltas are *net* — in-tick flaps cancel,
    and they stay net even when the repair was a full rebuild
    (``rebuilt`` is advisory: the receiver may resync bigger structures,
    but applying the deltas alone is already exact).  Matches the
    :class:`~repro.distributed.wire.LsaUpdate` payload field-for-field,
    which is what keeps the wire schema a projection of this one.
    """

    seq: int  # 1-based, contiguous per service instance
    events: int  # events submitted in the tick
    changed: bool
    rebuilt: bool
    g_added: "tuple[tuple[int, int], ...]" = ()
    g_removed: "tuple[tuple[int, int], ...]" = ()
    h_added: "tuple[tuple[int, int], ...]" = ()
    h_removed: "tuple[tuple[int, int], ...]" = ()
    nodes_joined: "tuple[int, ...]" = ()
    num_nodes: int = 0  # id-space size after the tick


@dataclass(frozen=True)
class ServeReport:
    """What one :meth:`RoutingService.apply`/``apply_batch`` call did."""

    events: int  # events submitted
    changed: bool  # False when nothing (graph, H, tables) moved
    refreshed: bool  # True when the full-refresh fallback fired
    dirty_rows: int  # H-distance rows recomputed (BFS runs)
    dirty_tables: int  # per-source tables re-argmin'd
    entries_updated: int  # table cells whose next hop actually changed
    seconds: float  # time spent inside apply/apply_batch proper
    matrix_bytes: int = 0  # live D+T footprint after the call
    dormant_ids: int = 0  # degree-0 id slots (compaction candidates)
    wall_seconds: float = 0.0  # full per-tick wall clock incl. freeze/publish


@dataclass(frozen=True)
class MemoryStats:
    """Serving-matrix footprint (see :meth:`RoutingService.memory_stats`)."""

    nodes: int  # current id-space size n (matrix dimension)
    dormant: int  # ids with no incident G edge (left nodes, empty slots)
    dist_bytes: int  # D matrix footprint
    table_bytes: int  # T matrix footprint

    @property
    def total_bytes(self) -> int:
        return self.dist_bytes + self.table_bytes


class RoutingService:
    """Serve next-hop routing tables that stay exact under churn.

    Parameters mirror :class:`~repro.dynamic.maintainer.SpannerMaintainer`
    (construction selection + ``rebuild_fraction``); the service owns its
    maintainer and must be driven exclusively through :meth:`apply` /
    :meth:`apply_batch`.

    State is two dense int32 matrices: ``D[w, v] = d_H(w, v)`` (−1 for
    unreachable) and ``T[u, v] =`` next hop of *u* toward *v* (−1 for
    unroutable or ``v == u``).  :meth:`table` projects a row of T into the
    dict shape :func:`~repro.routing.tables.routing_table` returns.
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        k: "int | None" = None,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        self._ctor = dict(method=method, k=k, epsilon=epsilon, r=r)
        self.maintainer = SpannerMaintainer(
            g, method, k=k, epsilon=epsilon, r=r, rebuild_fraction=rebuild_fraction
        )
        self.events_applied = 0
        self.rows_recomputed = 0
        self.tables_recomputed = 0
        self.entries_updated = 0
        self.full_refreshes = 0
        self.compactions = 0
        self._subscribers: "list" = []
        self.feed_seq = 0  # seq of the latest published ServeDelta
        self._mem_cache: "tuple | None" = None  # (graph, version, MemoryStats)
        self._dist = np.empty((0, 0), dtype=np.int32)
        self._tables = np.empty((0, 0), dtype=np.int32)
        self.refresh()
        # Counters measure *serving* work: zero out the initial population.
        self.rows_recomputed = 0
        self.tables_recomputed = 0
        self.entries_updated = 0
        self.full_refreshes = 0

    # ------------------------------------------------------------------ #
    # read side
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> Graph:
        """The live topology G (read-only — drive churn through apply)."""
        return self.maintainer.graph

    @property
    def advertised(self) -> Graph:
        """The live advertised sub-graph H (the maintained spanner)."""
        return self.maintainer.spanner.graph

    @property
    def num_nodes(self) -> int:
        """Current id-space size n (the serving matrices' dimension)."""
        return self.maintainer.graph.num_nodes

    def distance(self, u: int, v: int) -> "int | None":
        """The served H-distance ``d_H(u, v)`` (None when unreachable).

        Read straight off the maintained D matrix — with
        :meth:`next_hop` this is everything
        :func:`~repro.routing.greedy_routing.route_served` needs to
        forward packets and track the per-hop potential without a BFS.
        """
        g = self.graph
        g._check(u)
        if not (0 <= v < g.num_nodes):
            raise NodeNotFound(v, g.num_nodes)
        d = int(self._dist[u, v])
        return d if d >= 0 else None

    def table(self, u: int) -> dict:
        """Node *u*'s next-hop table, in :func:`routing_table`'s dict shape."""
        self.graph._check(u)
        row = self._tables[u]
        return {int(v): int(row[v]) for v in np.flatnonzero(row >= 0)}

    def next_hop(self, u: int, v: int) -> "int | None":
        """The served next hop of *u* toward *v* (None when unroutable)."""
        g = self.graph
        g._check(u)
        if u == v:
            raise ParameterError("source equals target")
        if not (0 <= v < g.num_nodes):
            raise NodeNotFound(v, g.num_nodes)
        hop = int(self._tables[u, v])
        return hop if hop >= 0 else None

    def memory_stats(self) -> MemoryStats:
        """Current matrix footprint + dormant-id count.

        The O(n) dormant scan is memoized on ``Graph.version``, so the
        per-event report stamping costs one scan per *mutating* event and
        nothing for no-ops or repeated reads.
        """
        g = self.maintainer.graph
        cached = self._mem_cache
        if cached is not None and cached[0] is g and cached[1] == g.version:
            return cached[2]
        stats = MemoryStats(
            nodes=g.num_nodes,
            dormant=sum(not adj for adj in g._adj),
            dist_bytes=self._matrix_bytes(self._dist),
            table_bytes=self._matrix_bytes(self._tables),
        )
        self._mem_cache = (g, g.version, stats)
        return stats

    def _matrix_bytes(self, matrix: "np.ndarray") -> int:
        """Real footprint of one serving matrix (logical bytes here; the
        sharded service overrides with the shared blocks' capacity)."""
        return int(matrix.nbytes)

    # ------------------------------------------------------------------ #
    # delta feed (the distributed tier subscribes here)
    # ------------------------------------------------------------------ #

    def subscribe(self, callback):
        """Register *callback* to receive a :class:`ServeDelta` per tick.

        Called synchronously after each :meth:`apply`/:meth:`apply_batch`
        — the service's own tables are already updated when the callback
        runs, so a subscriber that mirrors the deltas can immediately
        compare its replica against the serial truth.  Returns *callback*
        so ``service.subscribe(fn)`` works as a registration expression.
        """
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback) -> None:
        self._subscribers.remove(callback)

    def _publish(
        self,
        events: int,
        changed: bool,
        rebuilt: bool,
        g_added: "tuple[tuple[int, int], ...]",
        g_removed: "tuple[tuple[int, int], ...]",
        h_added: "tuple[tuple[int, int], ...]",
        h_removed: "tuple[tuple[int, int], ...]",
        nodes_joined: "tuple[int, ...]",
    ) -> None:
        if not self._subscribers:
            return
        self.feed_seq += 1
        delta = ServeDelta(
            seq=self.feed_seq,
            events=events,
            changed=changed,
            rebuilt=rebuilt,
            g_added=g_added,
            g_removed=g_removed,
            h_added=h_added,
            h_removed=h_removed,
            nodes_joined=nodes_joined,
            num_nodes=self.num_nodes,
        )
        for callback in list(self._subscribers):
            callback(delta)

    def _event_g_delta(
        self, event: "EdgeEvent | NodeEvent"
    ) -> "tuple[tuple, tuple, tuple]":
        """Net (g_added, g_removed, nodes_joined) *event* will cause.

        Evaluated pre-application (a leave's severed star is only
        readable before the maintainer applies it); edges in the
        canonical sorted shape the batch reports use.
        """
        if isinstance(event, NodeEvent):
            if event.kind == LEAVE:
                star = tuple(
                    tuple(sorted((event.node, w)))
                    for w in sorted(self.maintainer.graph.neighbors(event.node))
                )
                return (), star, ()
            return (), (), (event.node,)
        edge = tuple(sorted((event.u, event.v)))
        if event.kind == ADD:
            return (edge,), (), ()
        return (), (edge,), ()

    # ------------------------------------------------------------------ #
    # write side
    # ------------------------------------------------------------------ #

    def apply(self, event: "EdgeEvent | NodeEvent") -> ServeReport:
        """Apply one event; repair spanner, distance rows and tables."""
        sw = obs.Stopwatch()
        star_changed = self._star_damage(event)
        g_added, g_removed, joined = self._event_g_delta(event)
        report = self.maintainer.apply(event)
        self.events_applied += 1
        if not report.changed:
            out = self._report(1, False, (False, 0, 0, 0), sw)
            self._publish(1, False, False, (), (), (), (), ())
            return out
        stats = self._ingest(report.h_added, report.h_removed, star_changed, report.rebuilt)
        out = self._report(1, True, stats, sw)
        self._publish(
            1, True, report.rebuilt, g_added, g_removed,
            report.h_added, report.h_removed, joined,
        )
        return out

    def apply_batch(self, events: "Sequence[EdgeEvent | NodeEvent]") -> ServeReport:
        """Apply one tick of events with a single coalesced repair."""
        sw = obs.Stopwatch()
        events = list(events)
        try:
            report = self.maintainer.apply_batch(events)
        except Exception:
            # A malformed mid-batch event made the maintainer rebuild over
            # the partially-applied tick; resync (and resize) the matrices
            # to the rebuilt spanner before surfacing the error.
            self.refresh()
            raise
        self.events_applied += len(events)
        if not report.changed:
            out = self._report(len(events), False, (False, 0, 0, 0), sw)
            self._publish(len(events), False, False, (), (), (), (), ())
            return out
        star_changed = {x for e in (*report.g_added, *report.g_removed) for x in e}
        stats = self._ingest(report.h_added, report.h_removed, star_changed, report.rebuilt)
        out = self._report(len(events), True, stats, sw)
        self._publish(
            len(events), True, report.rebuilt, report.g_added, report.g_removed,
            report.h_added, report.h_removed, report.nodes_joined,
        )
        return out

    def _report(
        self, events: int, changed: bool, stats: "tuple[bool, int, int, int]", sw: obs.Stopwatch
    ) -> ServeReport:
        mem = self.memory_stats()
        refreshed, dirty_rows, dirty_tables, entries = stats
        return ServeReport(
            events=events,
            changed=changed,
            refreshed=refreshed,
            dirty_rows=dirty_rows,
            dirty_tables=dirty_tables,
            entries_updated=entries,
            seconds=sw.elapsed(),
            matrix_bytes=mem.total_bytes,
            dormant_ids=mem.dormant,
        )

    def apply_stream(
        self, events: "Iterable[EdgeEvent | NodeEvent]", tick: int = 1
    ) -> "list[ServeReport]":
        """Apply a stream, singly (``tick=1``) or in coalesced ticks.

        Each report's ``wall_seconds`` is the full per-tick wall clock —
        unlike ``seconds`` it includes work a subclass does around the
        ``apply`` proper (matrix freezing, shared-memory publishing), so
        ``wall_seconds >= seconds`` always.
        """
        if tick < 1:
            raise ParameterError(f"tick must be ≥ 1, got {tick}")
        events = list(events)
        reports: "list[ServeReport]" = []
        if tick == 1:
            ticks: "list[list[EdgeEvent | NodeEvent]]" = [[ev] for ev in events]
        else:
            ticks = [list(events[lo : lo + tick]) for lo in range(0, len(events), tick)]
        for batch in ticks:
            with obs.span("serving.tick") as sp:
                report = self.apply(batch[0]) if tick == 1 else self.apply_batch(batch)
            reports.append(replace(report, wall_seconds=sp.seconds))
        return reports

    def refresh(self) -> None:
        """Recompute every distance row and table from scratch (fallback).

        Re-projects in place so ``entries_updated`` keeps counting only
        cells whose next hop actually changed, refresh or not.
        """
        n = self.maintainer.graph.num_nodes
        self._resize_matrices(n)
        with obs.span("serving.recompute_rows"):
            self._recompute_rows(range(n), track=False)
        with obs.span("serving.project_tables"):
            self._project_tables({u: None for u in range(n)})
        obs.inc("serve.full_refreshes")
        self.full_refreshes += 1
        self.rows_recomputed += n
        self.tables_recomputed += n

    def compact(self) -> "dict[int, int]":
        """Renumber live ids densely, dropping dormant (degree-0) slots.

        Long-horizon node churn grows the id space monotonically (leaves
        keep their slot), so the n×n matrices grow without bound unless the
        dormant ids are reclaimed.  ``compact()`` remaps the ``deg > 0``
        nodes onto ``0..k-1`` (preserving relative order), rebuilds the
        maintainer on the remapped topology and refreshes the matrices at
        the smaller dimension.  Returns the ``{old_id: new_id}`` mapping —
        **callers must translate any node ids they held**; cumulative
        counters survive, but ``entries_updated`` deltas across a compact
        compare renumbered cells and are only indicative.

        The spanner is rebuilt from scratch on the renumbered graph (ids
        participate in tie-breaks, so the old trees need not survive the
        renumbering); served tables again match :func:`routing_table`
        bit-for-bit — the property tests assert it.
        """
        g = self.maintainer.graph
        keep = [u for u in g.nodes() if g.neighbors(u)]
        mapping = {old: new for new, old in enumerate(keep)}
        if len(keep) == g.num_nodes:
            return mapping  # nothing dormant: no-op
        new_g = Graph(len(keep), ((mapping[u], mapping[v]) for u, v in g.edges()))
        old = self.maintainer
        self.maintainer = SpannerMaintainer(
            new_g, rebuild_fraction=old.rebuild_fraction, **self._ctor
        )
        # Cumulative counters continue across the swap (the fresh build
        # itself is accounted by the refresh below, like any fallback).
        self.maintainer.events_applied = old.events_applied
        self.maintainer.batches_applied = old.batches_applied
        self.maintainer.incremental_repairs = old.incremental_repairs
        self.maintainer.full_rebuilds = old.full_rebuilds
        self.maintainer.trees_recomputed = old.trees_recomputed
        self.compactions += 1
        self.refresh()
        return mapping

    # ------------------------------------------------------------------ #
    # overridable stages (the sharded service swaps these)
    # ------------------------------------------------------------------ #

    def _resize_matrices(self, n: int) -> None:
        """Bring D and T to shape ``(n, n)``, keeping overlapping content
        and padding fresh cells with −1 (new ids are unreachable until
        their rows are recomputed)."""
        old = self._dist.shape[0]
        if n == old:
            return
        k = min(old, n)
        dist = np.full((n, n), -1, dtype=np.int32)
        dist[:k, :k] = self._dist[:k, :k]
        self._dist = dist
        tables = np.full((n, n), -1, dtype=np.int32)
        tables[:k, :k] = self._tables[:k, :k]
        self._tables = tables

    def _recompute_rows(self, order: Iterable[int], track: bool = True) -> "dict[int, np.ndarray]":
        """BFS-recompute the given D rows on the freshly frozen H.

        Returns ``{row: changed-destination mask}`` for rows that actually
        moved (empty when *track* is false — the refresh path needs no
        damage propagation).
        """
        order = list(order)
        if not order:
            return {}
        obs.inc("serve.rows_recomputed", len(order))
        h = self.advertised.freeze()
        changed: "dict[int, np.ndarray]" = {}
        for s, new_row in batched_bfs(h, order, arrays=True):
            if track:
                mask = new_row != self._dist[s]
                if mask.any():
                    changed[s] = mask
            self._dist[s] = new_row
        return changed

    def _project_tables(self, damage: "dict[int, np.ndarray | None]") -> int:
        """Re-argmin the damaged table rows (``None`` mask = all columns).

        Returns how many tables were actually touched; adds every changed
        cell to ``entries_updated``.
        """
        g = self.maintainer.graph
        touched = 0
        for u, mask in damage.items():
            cols = None if mask is None else np.flatnonzero(mask)
            if cols is not None and cols.size == 0:
                continue
            nbrs = sorted(g.neighbors(u))
            self.entries_updated += project_table_row(self._dist, self._tables, nbrs, u, cols)
            touched += 1
        obs.inc("serve.tables_reprojected", touched)
        return touched

    # ------------------------------------------------------------------ #
    # incremental machinery
    # ------------------------------------------------------------------ #

    def _star_damage(self, event: "EdgeEvent | NodeEvent") -> set[int]:
        """Sources whose G-neighborhood this event edits (pre-application).

        A leave severs every incident G edge, so the leaver *and all its
        former neighbors* lose an argmin candidate — even when H never
        carried those edges and no distance row moves.
        """
        if isinstance(event, NodeEvent):
            if event.kind == LEAVE:
                return {event.node, *self.maintainer.graph.neighbors(event.node)}
            return set()  # a joined node is covered as a fresh row/table
        return {event.u, event.v}

    def _ingest(
        self,
        h_added: "tuple[tuple[int, int], ...]",
        h_removed: "tuple[tuple[int, int], ...]",
        star_changed: set[int],
        rebuilt: bool,
    ) -> "tuple[bool, int, int, int]":
        """Fold one repair's deltas into the matrices.

        Returns ``(refreshed, dirty_rows, dirty_tables, entries_updated)``.
        """
        g = self.maintainer.graph
        n = g.num_nodes
        old_dim = self._dist.shape[0]
        if n != old_dim:  # node churn grew the id space: pad with -1
            self._resize_matrices(n)
        if rebuilt:  # global churn: the maintainer rebuilt, so do we
            before = self.entries_updated
            self.refresh()
            return True, n, n, self.entries_updated - before
        new_nodes = range(old_dim, n)
        dirty_rows = self._dirty_rows(h_added, h_removed)
        dirty_rows.update(new_nodes)
        if dirty_rows:
            with obs.span("serving.recompute_rows"):
                changed_cols = self._recompute_rows(sorted(dirty_rows))
        else:
            changed_cols = {}
        self.rows_recomputed += len(dirty_rows)
        # A table moves only if its argmin inputs did: a neighbor's row
        # changed, or its own G-star changed (None mask = all destinations).
        damage: "dict[int, np.ndarray | None]" = {u: None for u in star_changed}
        for v in new_nodes:
            damage[v] = None
        for w, mask in changed_cols.items():
            for u in g.neighbors(w):
                current = damage.get(u, False)
                if current is None:
                    continue
                if current is False:
                    damage[u] = mask.copy()
                else:
                    current |= mask
        entries_before = self.entries_updated
        with obs.span("serving.project_tables"):
            tables_touched = self._project_tables(damage)
        self.tables_recomputed += tables_touched
        return False, len(dirty_rows), tables_touched, self.entries_updated - entries_before

    def _dirty_rows(
        self,
        h_added: "tuple[tuple[int, int], ...]",
        h_removed: "tuple[tuple[int, int], ...]",
    ) -> set[int]:
        """Sources whose H-BFS row may have changed, from the old matrix.

        Certified complement — a row failing every test below kept all its
        distances.  Inserted edges shrink row *w* only when they shortcut
        it (``|D[w,x] − D[w,y]| > 1`` with unreachable = ∞).  A removed
        edge stretches row *w* only when it was *tight*
        (``D[w,x] + 1 = D[w,y]``) **and** the farther endpoint has no
        surviving equally-tight parent: any shortest path that crossed
        ``xy`` reroutes through an alternative parent ``z`` with
        ``D[w,z] + 1 = D[w,y]`` and ``zy`` still in H, level by level, so
        the whole row is preserved (the alternative-parent induction of
        dynamic SSSP).  The joint evaluation on the *old* matrix is exact:
        rows passing the deletion tests keep their distances through all
        deletions, making the insertion test's baseline valid.
        """
        d = self._dist
        n = d.shape[0]
        if n == 0 or (not h_added and not h_removed):
            return set()
        h = self.advertised  # post-repair H: alternatives must survive
        dirty = np.zeros(n, dtype=bool)
        for x, y in h_removed:
            dx = d[:, x].astype(np.int64)
            dy = d[:, y].astype(np.int64)
            for near, far, far_node in ((dx, dy, y), (dy, dx, x)):
                tight = (near >= 0) & (near + 1 == far)
                if not tight.any():
                    continue
                alts = sorted(h.neighbors(far_node))
                if alts:
                    block = d[:, alts].astype(np.int64)
                    rescued = ((block >= 0) & (block + 1 == far[:, None])).any(axis=1)
                    tight &= ~rescued
                dirty |= tight
            # Defensive: mixed reachability should be impossible for an old
            # H edge; treat it as dirty rather than provably clean.
            dirty |= (dx < 0) != (dy < 0)
        for x, y in h_added:
            dx = np.where(d[:, x] < 0, _FAR, d[:, x]).astype(np.int64)
            dy = np.where(d[:, y] < 0, _FAR, d[:, y]).astype(np.int64)
            # The new edge shortcuts w's view of one endpoint → row shrinks.
            dirty |= np.abs(dx - dy) > 1
        return {int(w) for w in np.flatnonzero(dirty)}
