"""Incremental remote-spanner maintenance over an event stream.

Every construction in the paper is a union of per-node trees, and every
tree ``T_u`` is a deterministic function of the *induced ball*
``B_G(u, R)`` for a construction-specific locality radius R
(:func:`locality_radius`): Algorithm 4/5 never look past the 2-ball,
Algorithm 2 past the r-ball, Algorithm 1 past ``max(r, r−1+β)``.  So when
the edge ``ab`` is inserted or deleted, only roots whose R-ball contains
the edge — equivalently ``min(d(u,a), d(u,b)) ≤ R``, measured in the old
*or* the new graph (deletions grow distances, insertions shrink them) —
can see their tree change.  That **dirty ball** is found with two bounded
multi-source BFS runs (one on the pre-event CSR snapshot, one on the
post-event patched snapshot), and only its trees are recomputed; everyone
else's tree is provably bit-identical, so the maintained spanner equals a
from-scratch build after every event (the property suite asserts exactly
this, tree-for-tree).

Node churn rides the same machinery: a :class:`~repro.dynamic.events.\
NodeEvent` leave is the simultaneous deletion of every incident edge (the
ball is seeded with the node and its former neighbors), and a join adds an
isolated node whose only dirty root is itself.  :meth:`SpannerMaintainer.\
apply_batch` coalesces a whole tick of events into **one** dirty region:
the net edge diff of the tick seeds one old-snapshot and one new-snapshot
bounded BFS, and each dirty root is recomputed once — events that cancel
within the tick (a link flapping down and back up) cost nothing.

The union is kept exact under recomputation with per-edge reference
counts: an edge leaves the spanner only when the last tree contributing it
does.  Every repair also reports the *net spanner delta* (``h_added`` /
``h_removed``) so layers stacked on top — the routing tables of
:mod:`repro.dynamic.serving` — can localize their own damage.  When churn
is global (the dirty region exceeds ``rebuild_fraction · n``) the
maintainer falls back to one full rebuild — the same escape hatch a router
implementation would take on a topology reset.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from .. import obs
from ..core.domtree_greedy import dom_tree_greedy
from ..core.domtree_kcover import dom_tree_kcover
from ..core.domtree_kmis import dom_tree_kmis
from ..core.domtree_mis import dom_tree_mis
from ..core.remote_spanner import (
    RemoteSpanner,
    StretchGuarantee,
    build_from_trees,
    effective_epsilon,
    epsilon_to_radius,
)
from ..errors import ParameterError
from ..graph import Graph, canonical_edge, multi_source_distances
from .events import ADD, JOIN, EdgeEvent, NodeEvent, apply_event

__all__ = [
    "CONSTRUCTION_NAMES",
    "BatchReport",
    "EventReport",
    "SpannerMaintainer",
    "locality_radius",
    "resolve_construction",
    "wire_delta",
]

#: Constructions the maintainer knows how to keep valid incrementally.
CONSTRUCTION_NAMES: "tuple[str, ...]" = ("kcover", "kmis", "mis", "greedy")


@dataclass(frozen=True)
class _Construction:
    """A resolved construction: tree factory + guarantee + locality radius."""

    label: str
    tree_fn: object  # Callable[[Graph, int], DomTree]
    guarantee: StretchGuarantee
    radius: int


def resolve_construction(
    method: str = "kcover",
    *,
    k: "int | None" = None,
    epsilon: "float | None" = None,
    r: "int | None" = None,
) -> _Construction:
    """Resolve a construction name to its tree factory and locality radius.

    ``kcover``/``kmis`` are the Theorem 2/3 builders (2-ball local);
    ``mis``/``greedy`` are the Theorem 1 builders, parameterized by *r*
    directly or by *epsilon* through Proposition 1 (``r = ⌈1/ε⌉ + 1``,
    default ε = 0.5).  ``k`` defaults per method — 1 for ``kcover``
    (valid range ``k ≥ 1``), 2 for ``kmis`` (valid range ``k ≥ 2``:
    Algorithm 5's trees are k-connecting for ``k ≥ 2`` only) — and an
    explicit out-of-range value raises :class:`~repro.errors.\
ParameterError` instead of being silently rewritten.
    """
    if method == "kcover":
        kk = 1 if k is None else k
        if kk < 1:
            raise ParameterError(f"kcover needs k ≥ 1, got {kk}")
        return _Construction(
            label=f"kcover(k={kk})",
            tree_fn=lambda g, u: dom_tree_kcover(g, u, kk),
            guarantee=StretchGuarantee(alpha=1.0, beta=0.0, k=kk),
            radius=2,
        )
    if method == "kmis":
        kk = 2 if k is None else k
        if kk < 2:
            raise ParameterError(f"kmis needs k ≥ 2, got {kk}")
        return _Construction(
            label=f"kmis(k={kk})",
            tree_fn=lambda g, u: dom_tree_kmis(g, u, kk),
            guarantee=StretchGuarantee(alpha=2.0, beta=-1.0, k=kk),
            radius=2,
        )
    if method in ("mis", "greedy"):
        if r is None:
            r = epsilon_to_radius(0.5 if epsilon is None else epsilon)
        if r < 2:
            raise ParameterError(f"r must be ≥ 2, got {r}")
        eps_eff = effective_epsilon(r)
        guarantee = StretchGuarantee(alpha=1.0 + eps_eff, beta=1.0 - 2.0 * eps_eff, k=1)
        if method == "mis":
            return _Construction(
                label=f"mis(r={r})",
                tree_fn=lambda g, u: dom_tree_mis(g, u, r),
                guarantee=guarantee,
                radius=r,
            )
        return _Construction(
            label=f"greedy(r={r}, beta=1)",
            tree_fn=lambda g, u: dom_tree_greedy(g, u, r, 1),
            guarantee=guarantee,
            radius=max(r, r - 1 + 1),
        )
    raise ParameterError(f"unknown method {method!r} (want one of {CONSTRUCTION_NAMES})")


def locality_radius(
    method: str = "kcover",
    *,
    k: "int | None" = None,
    epsilon: "float | None" = None,
    r: "int | None" = None,
) -> int:
    """The radius R such that ``T_u`` depends only on the induced R-ball."""
    return resolve_construction(method, k=k, epsilon=epsilon, r=r).radius


@dataclass(frozen=True)
class EventReport:
    """What one :meth:`SpannerMaintainer.apply` call did."""

    event: "EdgeEvent | NodeEvent"
    dirty: int  # roots whose tree was recomputed (n when rebuilt)
    rebuilt: bool  # True when the full-rebuild fallback fired
    changed: bool  # False for a no-op event (graph already in target state)
    seconds: float
    #: Net spanner delta: edges that entered / left H in this repair.
    h_added: "tuple[tuple[int, int], ...]" = ()
    h_removed: "tuple[tuple[int, int], ...]" = ()


@dataclass(frozen=True)
class BatchReport:
    """What one :meth:`SpannerMaintainer.apply_batch` call did.

    The batch is summarized by its *net* effect: ``g_added``/``g_removed``
    are the topology edges whose presence differs between the tick's start
    and end (in-tick flaps cancel), ``nodes_joined`` the fresh ids, and
    ``h_added``/``h_removed`` the net spanner delta — everything a serving
    layer needs to localize its own recomputation.
    """

    events: int  # events submitted in the tick
    applied: int  # events that actually changed the graph
    g_added: "tuple[tuple[int, int], ...]" = ()
    g_removed: "tuple[tuple[int, int], ...]" = ()
    nodes_joined: "tuple[int, ...]" = ()
    dirty: int = 0
    rebuilt: bool = False
    changed: bool = False
    seconds: float = 0.0
    h_added: "tuple[tuple[int, int], ...]" = ()
    h_removed: "tuple[tuple[int, int], ...]" = ()


class SpannerMaintainer:
    """Hold a remote-spanner valid across an event stream.

    Parameters
    ----------
    g:
        Initial topology.  The maintainer owns a private copy — callers
        replay events through :meth:`apply` / :meth:`apply_batch`, never by
        mutating *g*.
    method, k, epsilon, r:
        Construction selection (see :func:`resolve_construction`).
    rebuild_fraction:
        Dirty-region size (as a fraction of n) beyond which incremental
        repair is abandoned for one full rebuild.

    The live spanner is exposed as :attr:`spanner` (graph + trees +
    guarantee, same shape as the static builders return).
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        k: "int | None" = None,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        if not (0.0 < rebuild_fraction <= 1.0):
            raise ParameterError(
                f"rebuild_fraction must be in (0, 1], got {rebuild_fraction}"
            )
        self._construction = resolve_construction(method, k=k, epsilon=epsilon, r=r)
        self.graph = g.copy()
        self.rebuild_fraction = rebuild_fraction
        self.events_applied = 0
        self.batches_applied = 0
        self.incremental_repairs = 0
        self.full_rebuilds = 0
        self.trees_recomputed = 0
        self._rebuild()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def spanner(self) -> RemoteSpanner:
        """The maintained spanner (live objects — treat as read-only)."""
        return RemoteSpanner(
            graph=self._h,
            trees=self._trees,
            guarantee=self._construction.guarantee,
            method=self._construction.label,
        )

    @property
    def radius(self) -> int:
        """The dirty-ball radius R of the active construction."""
        return self._construction.radius

    def rebuilt_from_scratch(self) -> RemoteSpanner:
        """A fresh from-scratch build on the current graph (for checking)."""
        return build_from_trees(
            self.graph.copy(),
            self._construction.tree_fn,
            self._construction.guarantee,
            self._construction.label,
        )

    def _rebuild(self) -> None:
        rs = build_from_trees(
            self.graph,
            self._construction.tree_fn,
            self._construction.guarantee,
            self._construction.label,
        )
        self._trees = dict(rs.trees)
        self._h = rs.graph
        self._edge_refs = Counter()
        for tree in self._trees.values():
            self._edge_refs.update(tree.edges())

    # ------------------------------------------------------------------ #
    # event application
    # ------------------------------------------------------------------ #

    def apply(self, event: "EdgeEvent | NodeEvent") -> EventReport:
        """Apply one event and repair the spanner's dirty region."""
        sw = obs.Stopwatch()
        if isinstance(event, NodeEvent):
            return self._apply_node(event, sw)
        g = self.graph
        present = g.has_edge(event.u, event.v)
        if (event.kind == ADD) == present:  # already in the target state
            self.events_applied += 1
            return EventReport(
                event,
                dirty=0,
                rebuilt=False,
                changed=False,
                seconds=sw.elapsed(),
            )
        seeds = (event.u, event.v)
        # Roots seeing the edge through *old* distances (deletion may then
        # push them out of range — they must still be repaired)...
        dirty = self._ball(g.freeze(), seeds)
        apply_event(g, event)
        # ... and through *new* distances (insertion pulls new roots in).
        dirty |= self._ball(g.freeze(), seeds)  # delta-patched: 2 rows changed
        self.events_applied += 1
        rebuilt, h_added, h_removed = self._repair(dirty)
        return EventReport(
            event,
            dirty=g.num_nodes if rebuilt else len(dirty),
            rebuilt=rebuilt,
            changed=True,
            seconds=sw.elapsed(),
            h_added=h_added,
            h_removed=h_removed,
        )

    def _apply_node(self, event: NodeEvent, sw: obs.Stopwatch) -> EventReport:
        """Node churn through the :meth:`Graph.add_node`/``remove_node`` mutators."""
        g = self.graph
        if event.kind == JOIN:
            apply_event(g, event)  # validates the dense-id contract
            self._h.add_node()
            self.events_applied += 1
            # The newcomer is isolated: no existing R-ball gains it, so the
            # only dirty root is the new node itself (its trivial tree).
            rebuilt, h_added, h_removed = self._repair({event.node})
            return EventReport(
                event,
                dirty=g.num_nodes if rebuilt else 1,
                rebuilt=rebuilt,
                changed=True,
                seconds=sw.elapsed(),
                h_added=h_added,
                h_removed=h_removed,
            )
        former = sorted(g.neighbors(event.node))
        if not former:  # leave of an already isolated node: no-op
            self.events_applied += 1
            return EventReport(
                event,
                dirty=0,
                rebuilt=False,
                changed=False,
                seconds=sw.elapsed(),
            )
        # A leave deletes every incident edge at once; the dirty region is
        # the union of the per-edge balls, i.e. one bounded BFS seeded with
        # the node and all its former neighbors, on both snapshots.
        seeds = (event.node, *former)
        dirty = self._ball(g.freeze(), seeds)
        g.remove_node(event.node)
        dirty |= self._ball(g.freeze(), seeds)
        self.events_applied += 1
        rebuilt, h_added, h_removed = self._repair(dirty)
        return EventReport(
            event,
            dirty=g.num_nodes if rebuilt else len(dirty),
            rebuilt=rebuilt,
            changed=True,
            seconds=sw.elapsed(),
            h_added=h_added,
            h_removed=h_removed,
        )

    def apply_batch(self, events: "Sequence[EdgeEvent | NodeEvent]") -> BatchReport:
        """Apply one tick's events with a single coalesced repair.

        The tick is replayed onto the graph first, tracking each touched
        edge's presence at tick start vs end; the *net* diff (flaps cancel)
        seeds one old-snapshot and one new-snapshot bounded BFS, and each
        dirty root is recomputed exactly once — instead of per-event ball
        detection and tree churn.  No-op events inside the tick are
        tolerated (the per-event stream contract is the caller's business);
        a join with a non-dense id is always an error.
        """
        sw = obs.Stopwatch()
        events = list(events)
        g = self.graph
        old_n = g.num_nodes
        old_csr = g.freeze() if events else None
        touched: "dict[tuple[int, int], bool]" = {}
        joined: list[int] = []
        applied = 0
        try:
            for ev in events:
                if isinstance(ev, NodeEvent):
                    if ev.kind == JOIN:
                        apply_event(g, ev)  # validates the dense-id contract
                        joined.append(ev.node)
                        applied += 1
                    else:
                        former = list(g.neighbors(ev.node))
                        for w in former:
                            touched.setdefault(canonical_edge(ev.node, w), True)
                        if g.remove_node(ev.node):
                            applied += 1
                else:
                    if ev.edge not in touched:
                        touched[ev.edge] = g.has_edge(*ev.edge)
                    if apply_event(g, ev, strict=False):
                        applied += 1
        except Exception:
            # A malformed mid-batch event (non-dense join id, out-of-range
            # endpoint) already mutated the graph; restore the spanner ==
            # from-scratch invariant over whatever got applied, then let
            # the caller see the error.
            obs.inc("maintainer.full_rebuilds")
            self._rebuild()
            self.full_rebuilds += 1
            raise
        self.events_applied += len(events)
        self.batches_applied += 1
        for _ in joined:
            self._h.add_node()
        g_added = tuple(sorted(e for e, was in touched.items() if not was and g.has_edge(*e)))
        g_removed = tuple(sorted(e for e, was in touched.items() if was and not g.has_edge(*e)))
        if not g_added and not g_removed and not joined:
            return BatchReport(
                events=len(events),
                applied=applied,
                seconds=sw.elapsed(),
            )
        seeds_new = {x for e in (*g_added, *g_removed) for x in e}
        seeds_old = {x for x in seeds_new if x < old_n}
        dirty = self._ball(old_csr, seeds_old) if seeds_old else set()
        if seeds_new:
            dirty |= self._ball(g.freeze(), seeds_new)
        dirty |= set(joined)
        rebuilt, h_added, h_removed = self._repair(dirty)
        return BatchReport(
            events=len(events),
            applied=applied,
            g_added=g_added,
            g_removed=g_removed,
            nodes_joined=tuple(joined),
            dirty=g.num_nodes if rebuilt else len(dirty),
            rebuilt=rebuilt,
            changed=True,
            seconds=sw.elapsed(),
            h_added=h_added,
            h_removed=h_removed,
        )

    def apply_stream(
        self, events: "Sequence[EdgeEvent | NodeEvent] | Iterable[EdgeEvent | NodeEvent]"
    ) -> "list[EventReport]":
        """Apply a whole stream event by event; returns the per-event reports."""
        return [self.apply(ev) for ev in events]

    # ------------------------------------------------------------------ #
    # repair machinery
    # ------------------------------------------------------------------ #

    def _ball(self, snapshot, seeds: Iterable[int]) -> set[int]:
        """``{u : d(u, seeds) ≤ R}`` on a (frozen) snapshot."""
        with obs.span("maintainer.ball"):
            dist = multi_source_distances(snapshot, seeds, cutoff=self._construction.radius)
            return {u for u, d in enumerate(dist) if d >= 0}

    def _repair(
        self, dirty: set[int]
    ) -> "tuple[bool, tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]":
        """Recompute the dirty roots' trees; returns (rebuilt, ΔH⁺, ΔH⁻).

        The spanner delta is *net* over the whole repair: an edge dropped
        by one root's old tree and re-contributed by another's new tree in
        the same repair cancels out.
        """
        g = self.graph
        obs.observe("maintainer.dirty_ball", len(dirty), obs.COUNT_BOUNDS)
        if len(dirty) > self.rebuild_fraction * g.num_nodes:
            obs.inc("maintainer.full_rebuilds")
            old_edges = self._h.edge_set()
            self._rebuild()
            new_edges = self._h.edge_set()
            self.full_rebuilds += 1
            self.trees_recomputed += g.num_nodes
            return (
                True,
                tuple(sorted(new_edges - old_edges)),
                tuple(sorted(old_edges - new_edges)),
            )
        tree_fn = self._construction.tree_fn
        refs = self._edge_refs
        h = self._h
        h_added: set[tuple[int, int]] = set()
        h_removed: set[tuple[int, int]] = set()
        for u in sorted(dirty):
            old_tree = self._trees.get(u)  # a joined node has no old tree
            new_tree = tree_fn(g, u)
            self._trees[u] = new_tree
            if old_tree is not None:
                for e in old_tree.edges():
                    refs[e] -= 1
                    if refs[e] == 0:
                        del refs[e]
                        h.remove_edge(*e)
                        if e in h_added:
                            h_added.discard(e)
                        else:
                            h_removed.add(e)
            for e in new_tree.edges():
                refs[e] += 1
                if refs[e] == 1:
                    h.add_edge(*e)
                    if e in h_removed:
                        h_removed.discard(e)
                    else:
                        h_added.add(e)
        obs.inc("maintainer.incremental_repairs")
        self.incremental_repairs += 1
        self.trees_recomputed += len(dirty)
        return False, tuple(sorted(h_added)), tuple(sorted(h_removed))


def wire_delta(
    report: "EventReport | BatchReport",
    seq: int,
    *,
    num_nodes: int,
    origin: int = 0,
    leave_star: "tuple[tuple[int, int], ...]" = (),
) -> dict:
    """Project a repair report onto the distributed wire schema.

    Returns exactly the payload fields of
    :class:`repro.distributed.wire.LsaUpdate` (as a plain dict — this
    module stays import-free of the distributed tier): net ΔG, ΔH, the
    joined ids, the post-tick id-space size and the rebuild flag.  Net
    deltas are correct *even for rebuilds* — ``_repair`` diffs the old
    and new spanner edge sets either way — which is why the actor tier
    can feed on deltas alone and never needs a full re-flood after a
    rebuild.

    :class:`BatchReport` carries its net ΔG; an :class:`EventReport`
    does not, so the single-event G delta is derived from the event —
    a leave's severed star is gone by reporting time, so the caller
    passes it in as *leave_star* (pre-application).
    """
    if isinstance(report, BatchReport):
        return {
            "origin": origin,
            "seq": seq,
            "g_added": report.g_added,
            "g_removed": report.g_removed,
            "h_added": report.h_added,
            "h_removed": report.h_removed,
            "nodes_joined": report.nodes_joined,
            "num_nodes": num_nodes,
            "rebuilt": report.rebuilt,
        }
    event = report.event
    g_added: "tuple[tuple[int, int], ...]" = ()
    g_removed: "tuple[tuple[int, int], ...]" = ()
    joined: "tuple[int, ...]" = ()
    if report.changed:
        if isinstance(event, NodeEvent):
            if event.kind == JOIN:
                joined = (event.node,)
            else:
                g_removed = tuple(sorted(canonical_edge(*e) for e in leave_star))
        elif event.kind == ADD:
            g_added = (canonical_edge(event.u, event.v),)
        else:
            g_removed = (canonical_edge(event.u, event.v),)
    return {
        "origin": origin,
        "seq": seq,
        "g_added": g_added,
        "g_removed": g_removed,
        "h_added": report.h_added,
        "h_removed": report.h_removed,
        "nodes_joined": joined,
        "num_nodes": num_nodes,
        "rebuilt": report.rebuilt,
    }
