"""Incremental remote-spanner maintenance over an edge-event stream.

Every construction in the paper is a union of per-node trees, and every
tree ``T_u`` is a deterministic function of the *induced ball*
``B_G(u, R)`` for a construction-specific locality radius R
(:func:`locality_radius`): Algorithm 4/5 never look past the 2-ball,
Algorithm 2 past the r-ball, Algorithm 1 past ``max(r, r−1+β)``.  So when
the edge ``ab`` is inserted or deleted, only roots whose R-ball contains
the edge — equivalently ``min(d(u,a), d(u,b)) ≤ R``, measured in the old
*or* the new graph (deletions grow distances, insertions shrink them) —
can see their tree change.  That **dirty ball** is found with two bounded
multi-source BFS runs (one on the pre-event CSR snapshot, one on the
post-event patched snapshot), and only its trees are recomputed; everyone
else's tree is provably bit-identical, so the maintained spanner equals a
from-scratch build after every event (the property suite asserts exactly
this, tree-for-tree).

The union is kept exact under recomputation with per-edge reference
counts: an edge leaves the spanner only when the last tree contributing it
does.  When churn is global (the dirty ball exceeds
``rebuild_fraction · n``) the maintainer falls back to one full rebuild —
the same escape hatch a router implementation would take on a topology
reset.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.domtree_greedy import dom_tree_greedy
from ..core.domtree_kcover import dom_tree_kcover
from ..core.domtree_kmis import dom_tree_kmis
from ..core.domtree_mis import dom_tree_mis
from ..core.remote_spanner import (
    RemoteSpanner,
    StretchGuarantee,
    build_from_trees,
    effective_epsilon,
    epsilon_to_radius,
)
from ..errors import ParameterError
from ..graph import Graph, multi_source_distances
from .events import ADD, EdgeEvent, apply_event

__all__ = [
    "CONSTRUCTION_NAMES",
    "EventReport",
    "SpannerMaintainer",
    "locality_radius",
    "resolve_construction",
]

#: Constructions the maintainer knows how to keep valid incrementally.
CONSTRUCTION_NAMES: "tuple[str, ...]" = ("kcover", "kmis", "mis", "greedy")


@dataclass(frozen=True)
class _Construction:
    """A resolved construction: tree factory + guarantee + locality radius."""

    label: str
    tree_fn: object  # Callable[[Graph, int], DomTree]
    guarantee: StretchGuarantee
    radius: int


def resolve_construction(
    method: str = "kcover",
    *,
    k: int = 1,
    epsilon: "float | None" = None,
    r: "int | None" = None,
) -> _Construction:
    """Resolve a construction name to its tree factory and locality radius.

    ``kcover``/``kmis`` are the Theorem 2/3 builders (2-ball local);
    ``mis``/``greedy`` are the Theorem 1 builders, parameterized by *r*
    directly or by *epsilon* through Proposition 1 (``r = ⌈1/ε⌉ + 1``,
    default ε = 0.5).
    """
    if method == "kcover":
        if k < 1:
            raise ParameterError(f"k must be ≥ 1, got {k}")
        return _Construction(
            label=f"kcover(k={k})",
            tree_fn=lambda g, u: dom_tree_kcover(g, u, k),
            guarantee=StretchGuarantee(alpha=1.0, beta=0.0, k=k),
            radius=2,
        )
    if method == "kmis":
        kk = 2 if k == 1 else k
        return _Construction(
            label=f"kmis(k={kk})",
            tree_fn=lambda g, u: dom_tree_kmis(g, u, kk),
            guarantee=StretchGuarantee(alpha=2.0, beta=-1.0, k=kk),
            radius=2,
        )
    if method in ("mis", "greedy"):
        if r is None:
            r = epsilon_to_radius(0.5 if epsilon is None else epsilon)
        if r < 2:
            raise ParameterError(f"r must be ≥ 2, got {r}")
        eps_eff = effective_epsilon(r)
        guarantee = StretchGuarantee(alpha=1.0 + eps_eff, beta=1.0 - 2.0 * eps_eff, k=1)
        if method == "mis":
            return _Construction(
                label=f"mis(r={r})",
                tree_fn=lambda g, u: dom_tree_mis(g, u, r),
                guarantee=guarantee,
                radius=r,
            )
        return _Construction(
            label=f"greedy(r={r}, beta=1)",
            tree_fn=lambda g, u: dom_tree_greedy(g, u, r, 1),
            guarantee=guarantee,
            radius=max(r, r - 1 + 1),
        )
    raise ParameterError(f"unknown method {method!r} (want one of {CONSTRUCTION_NAMES})")


def locality_radius(
    method: str = "kcover",
    *,
    k: int = 1,
    epsilon: "float | None" = None,
    r: "int | None" = None,
) -> int:
    """The radius R such that ``T_u`` depends only on the induced R-ball."""
    return resolve_construction(method, k=k, epsilon=epsilon, r=r).radius


@dataclass(frozen=True)
class EventReport:
    """What one :meth:`SpannerMaintainer.apply` call did."""

    event: EdgeEvent
    dirty: int  # roots whose tree was recomputed (n when rebuilt)
    rebuilt: bool  # True when the full-rebuild fallback fired
    changed: bool  # False for a no-op event (edge already in target state)
    seconds: float


class SpannerMaintainer:
    """Hold a remote-spanner valid across an edge-event stream.

    Parameters
    ----------
    g:
        Initial topology.  The maintainer owns a private copy — callers
        replay events through :meth:`apply`, never by mutating *g*.
    method, k, epsilon, r:
        Construction selection (see :func:`resolve_construction`).
    rebuild_fraction:
        Dirty-ball size (as a fraction of n) beyond which incremental
        repair is abandoned for one full rebuild.

    The live spanner is exposed as :attr:`spanner` (graph + trees +
    guarantee, same shape as the static builders return).
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        k: int = 1,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        if not (0.0 < rebuild_fraction <= 1.0):
            raise ParameterError(
                f"rebuild_fraction must be in (0, 1], got {rebuild_fraction}"
            )
        self._construction = resolve_construction(method, k=k, epsilon=epsilon, r=r)
        self.graph = g.copy()
        self.rebuild_fraction = rebuild_fraction
        self.events_applied = 0
        self.incremental_repairs = 0
        self.full_rebuilds = 0
        self.trees_recomputed = 0
        self._rebuild()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def spanner(self) -> RemoteSpanner:
        """The maintained spanner (live objects — treat as read-only)."""
        return RemoteSpanner(
            graph=self._h,
            trees=self._trees,
            guarantee=self._construction.guarantee,
            method=self._construction.label,
        )

    @property
    def radius(self) -> int:
        """The dirty-ball radius R of the active construction."""
        return self._construction.radius

    def rebuilt_from_scratch(self) -> RemoteSpanner:
        """A fresh from-scratch build on the current graph (for checking)."""
        return build_from_trees(
            self.graph.copy(),
            self._construction.tree_fn,
            self._construction.guarantee,
            self._construction.label,
        )

    def _rebuild(self) -> None:
        rs = build_from_trees(
            self.graph,
            self._construction.tree_fn,
            self._construction.guarantee,
            self._construction.label,
        )
        self._trees = dict(rs.trees)
        self._h = rs.graph
        self._edge_refs = Counter()
        for tree in self._trees.values():
            self._edge_refs.update(tree.edges())

    # ------------------------------------------------------------------ #
    # event application
    # ------------------------------------------------------------------ #

    def apply(self, event: EdgeEvent) -> EventReport:
        """Apply one edge event and repair the spanner's dirty ball."""
        t0 = time.perf_counter()
        g = self.graph
        present = g.has_edge(event.u, event.v)
        if (event.kind == ADD) == present:  # already in the target state
            return EventReport(event, dirty=0, rebuilt=False, changed=False, seconds=0.0)
        radius = self._construction.radius
        # Roots seeing the edge through *old* distances (deletion may then
        # push them out of range — they must still be repaired)...
        g.freeze()
        dirty = self._ball(event, radius)
        apply_event(g, event)
        # ... and through *new* distances (insertion pulls new roots in).
        g.freeze()  # delta-patched: only two adjacency rows changed
        dirty.update(self._ball(event, radius))
        self.events_applied += 1
        if len(dirty) > self.rebuild_fraction * g.num_nodes:
            self._rebuild()
            self.full_rebuilds += 1
            self.trees_recomputed += g.num_nodes
            return EventReport(
                event,
                dirty=g.num_nodes,
                rebuilt=True,
                changed=True,
                seconds=time.perf_counter() - t0,
            )
        tree_fn = self._construction.tree_fn
        refs = self._edge_refs
        h = self._h
        for u in sorted(dirty):
            old_tree = self._trees[u]
            new_tree = tree_fn(g, u)
            self._trees[u] = new_tree
            for e in old_tree.edges():
                refs[e] -= 1
                if refs[e] == 0:
                    del refs[e]
                    h.remove_edge(*e)
            for e in new_tree.edges():
                refs[e] += 1
                if refs[e] == 1:
                    h.add_edge(*e)
        self.incremental_repairs += 1
        self.trees_recomputed += len(dirty)
        return EventReport(
            event,
            dirty=len(dirty),
            rebuilt=False,
            changed=True,
            seconds=time.perf_counter() - t0,
        )

    def apply_stream(self, events: "Sequence[EdgeEvent] | Iterable[EdgeEvent]") -> "list[EventReport]":
        """Apply a whole stream; returns the per-event reports."""
        return [self.apply(ev) for ev in events]

    def _ball(self, event: EdgeEvent, radius: int) -> set[int]:
        """``{u : min(d(u,a), d(u,b)) ≤ radius}`` on the current graph."""
        dist = multi_source_distances(self.graph, (event.u, event.v), cutoff=radius)
        return {u for u, d in enumerate(dist) if d >= 0}
