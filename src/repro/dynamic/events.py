"""Event streams: the input model of the dynamic-graph subsystem.

A *scenario* is an initial :class:`~repro.graph.Graph` plus a finite list of
events — :class:`EdgeEvent` inserts/deletes and :class:`NodeEvent`
joins/leaves — replaying the events onto the initial graph yields the
scenario's ``final`` graph (an invariant the tests pin down).  Four
generators cover the churn regimes a link-state network actually sees:

* :func:`mobility_scenario` — UDG node mobility: points drift by reflected
  Gaussian steps inside their square, and each tick emits the edge diff of
  the two unit-disk graphs (radio links appearing/disappearing as nodes
  move);
* :func:`failure_recovery_scenario` — random link failure and recovery on a
  fixed topology (flapping links, the classic OSPF churn source);
* :func:`growth_scenario` — incremental growth: nodes of a target UDG are
  revealed one at a time, each arrival inserting its edges to the nodes
  already present;
* :func:`node_churn_scenario` — node arrival/departure: radios power off
  (a :class:`NodeEvent` leave severs every incident link, the id slot
  stays, matching :meth:`Graph.remove_node <repro.graph.graph.Graph.\
remove_node>`) and new radios power on at fresh dense ids (a join followed
  by the edge inserts wiring it into the unit-disk graph).

Two *fault* scenarios (registered separately, :data:`FAULT_SCENARIO_NAMES`
— the chaos tooling's corpus, not the standard churn regimes):

* :func:`regional_outage_scenario` — a geometric ball of nodes around a
  seeded epicenter powers off at once (the localized blackout / jammer
  case), then the region repopulates with fresh radios at the same
  positions;
* :func:`partition_heal_scenario` — every link crossing the median-x line
  of the deployment square fails (the network splits in two), then heals.

All randomness is seeded through :mod:`repro.rng`, so a ``(scenario, n,
seed)`` triple names a bit-for-bit reproducible stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import GraphError, ParameterError
from ..geometry import unit_disk_graph, uniform_points
from ..graph import Graph, canonical_edge
from ..rng import derive_seed, ensure_rng

__all__ = [
    "EdgeEvent",
    "NodeEvent",
    "Scenario",
    "apply_event",
    "apply_events",
    "mobility_scenario",
    "failure_recovery_scenario",
    "growth_scenario",
    "node_churn_scenario",
    "regional_outage_scenario",
    "partition_heal_scenario",
    "make_scenario",
    "SCENARIO_NAMES",
    "FAULT_SCENARIO_NAMES",
]

ADD = "add"
REMOVE = "remove"
JOIN = "join"
LEAVE = "leave"


@dataclass(frozen=True)
class EdgeEvent:
    """One topology edit: insert or delete the undirected edge ``uv``.

    Stored in canonical ``u < v`` orientation; construct via :meth:`add` /
    :meth:`remove` (or the constructor, which normalizes).
    """

    kind: str
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.kind not in (ADD, REMOVE):
            raise ParameterError(f"unknown event kind {self.kind!r} (want 'add' or 'remove')")
        if self.u == self.v:
            raise ParameterError(f"self-loop event {self.u}-{self.v} not allowed")
        if self.u > self.v:
            a, b = canonical_edge(self.u, self.v)
            object.__setattr__(self, "u", a)
            object.__setattr__(self, "v", b)

    @classmethod
    def add(cls, u: int, v: int) -> "EdgeEvent":
        return cls(ADD, u, v)

    @classmethod
    def remove(cls, u: int, v: int) -> "EdgeEvent":
        return cls(REMOVE, u, v)

    @property
    def edge(self) -> "tuple[int, int]":
        return (self.u, self.v)

    def inverse(self) -> "EdgeEvent":
        """The event undoing this one."""
        return EdgeEvent(REMOVE if self.kind == ADD else ADD, self.u, self.v)


@dataclass(frozen=True)
class NodeEvent:
    """One node-churn edit: a node joins or leaves the topology.

    ``join`` appends the node with the next dense id (the event's ``node``
    must equal the graph's current node count, matching
    :meth:`Graph.add_node <repro.graph.graph.Graph.add_node>`); ``leave``
    severs every incident link but keeps the id slot (matching
    :meth:`Graph.remove_node <repro.graph.graph.Graph.remove_node>`), so
    bookkeeping indexed by node id stays valid across churn.  Edges wiring
    a joined node in are separate :class:`EdgeEvent` inserts following the
    join in the stream.
    """

    kind: str
    node: int

    def __post_init__(self) -> None:
        if self.kind not in (JOIN, LEAVE):
            raise ParameterError(f"unknown event kind {self.kind!r} (want 'join' or 'leave')")
        if self.node < 0:
            raise ParameterError(f"node id must be non-negative, got {self.node}")

    @classmethod
    def join(cls, node: int) -> "NodeEvent":
        return cls(JOIN, node)

    @classmethod
    def leave(cls, node: int) -> "NodeEvent":
        return cls(LEAVE, node)


def apply_event(g: Graph, event: "EdgeEvent | NodeEvent", strict: bool = True) -> bool:
    """Apply one event to *g* in place; returns whether the graph changed.

    ``strict`` (the scenario-replay contract) raises on a no-op — inserting
    a present edge, deleting an absent one, or a leave of an already
    isolated node means the stream and the graph have diverged.  A join
    whose id is not the graph's current node count is always an error
    (dense ids join at the end).
    """
    if isinstance(event, NodeEvent):
        if event.kind == JOIN:
            if event.node != g.num_nodes:
                raise GraphError(
                    f"join event for node {event.node} but graph has "
                    f"{g.num_nodes} nodes (dense ids join at the end)"
                )
            g.add_node()
            return True
        changed = g.remove_node(event.node) > 0
        if strict and not changed:
            raise GraphError(f"event {event} is a no-op on the current graph")
        return changed
    changed = (
        g.add_edge(event.u, event.v) if event.kind == ADD else g.remove_edge(event.u, event.v)
    )
    if strict and not changed:
        raise GraphError(f"event {event} is a no-op on the current graph")
    return changed


def apply_events(g: Graph, events: "Iterable[EdgeEvent | NodeEvent]", strict: bool = True) -> int:
    """Replay *events* onto *g* in place; returns how many changed the graph."""
    return sum(1 for ev in events if apply_event(g, ev, strict=strict))


@dataclass(frozen=True)
class Scenario:
    """A churn scenario: initial graph + event stream (+ metadata).

    ``final`` is the graph after the whole stream — generators produce it
    independently, so ``replayed == final`` is a meaningful self-check.
    """

    name: str
    initial: Graph
    events: "tuple[EdgeEvent | NodeEvent, ...]"
    final: Graph
    params: dict = field(default_factory=dict)

    @property
    def num_events(self) -> int:
        return len(self.events)

    def replay(self) -> Graph:
        """The final graph, recomputed by replaying events onto a copy."""
        g = self.initial.copy()
        apply_events(g, self.events)
        return g

    def prefixes(self, every: int = 1) -> "Iterable[tuple[int, Graph]]":
        """Yield ``(events_applied, graph)`` after every *every*-th event."""
        if every < 1:
            raise ParameterError(f"checkpoint stride must be ≥ 1, got {every}")
        g = self.initial.copy()
        for i, ev in enumerate(self.events, start=1):
            apply_event(g, ev)
            if i % every == 0 or i == len(self.events):
                yield i, g

    def ticks(self, size: int) -> "Iterable[tuple[EdgeEvent | NodeEvent, ...]]":
        """Partition the stream into consecutive chunks of ≤ *size* events.

        The tick boundaries the batched consumers share —
        :meth:`RoutingService.apply_batch <repro.dynamic.serving.\
RoutingService.apply_batch>` soaks and the traffic workloads of
        :mod:`repro.dynamic.traffic` interleave on exactly these chunks,
        so their views of "the graph after tick i" coincide.
        """
        if size < 1:
            raise ParameterError(f"tick size must be ≥ 1, got {size}")
        for lo in range(0, len(self.events), size):
            yield self.events[lo : lo + size]


def _udg_diff(old: Graph, new: Graph) -> "list[EdgeEvent]":
    """Deterministic edge diff, deletions first then insertions (sorted)."""
    old_e, new_e = old.edge_set(), new.edge_set()
    events = [EdgeEvent(REMOVE, u, v) for u, v in sorted(old_e - new_e)]
    events.extend(EdgeEvent(ADD, u, v) for u, v in sorted(new_e - old_e))
    return events


def mobility_scenario(
    n: int,
    num_events: int,
    target_degree: float = 12.0,
    step_size: float = 0.15,
    seed: int = 0,
) -> Scenario:
    """UDG node mobility: Gaussian drift, reflected at the square's walls.

    Each tick moves every point by ``N(0, step_size²)`` per axis (radio
    radius 1), rebuilds the unit-disk graph and emits the edge diff; ticks
    repeat until at least *num_events* events accumulated (the stream is
    truncated to exactly *num_events*, so the recorded ``final`` graph is
    the truncated replay, not necessarily a full tick boundary).
    """
    if n < 2:
        raise ParameterError(f"mobility needs n ≥ 2 nodes, got {n}")
    if num_events < 1:
        raise ParameterError(f"need at least one event, got {num_events}")
    if step_size <= 0:
        raise ParameterError(f"step size must be > 0, got {step_size}")
    from ..experiments.runner import side_for_degree

    side = side_for_degree(n, target_degree)
    rng = ensure_rng(derive_seed(seed, "mobility", n, num_events))
    points = uniform_points(n, side, dim=2, seed=rng)
    initial = unit_disk_graph(points, radius=1.0)
    current = initial.copy()
    events: list[EdgeEvent] = []
    while len(events) < num_events:
        points = points + rng.normal(0.0, step_size, size=points.shape)
        # Reflect into [0, side]² (one bounce is enough for sane step sizes).
        points = np.where(points < 0.0, -points, points)
        points = np.where(points > side, 2.0 * side - points, points)
        moved = unit_disk_graph(points, radius=1.0)
        events.extend(_udg_diff(current, moved))
        current = moved
    events = events[:num_events]
    final = initial.copy()
    apply_events(final, events)
    return Scenario(
        name="mobility",
        initial=initial,
        events=tuple(events),
        final=final,
        params={"n": n, "target_degree": target_degree, "step_size": step_size, "seed": seed},
    )


def failure_recovery_scenario(
    n: int,
    num_events: int,
    target_degree: float = 12.0,
    fail_prob: float = 0.55,
    seed: int = 0,
) -> Scenario:
    """Random link failure/recovery on a fixed UDG topology.

    Each event flips one link: with probability *fail_prob* a uniformly
    random live edge fails, otherwise a uniformly random failed edge
    recovers (failing when nothing is down, recovering when nothing is up).
    Low *fail_prob* churn keeps the graph near its initial state — the
    regime the incremental maintainer is benchmarked in.
    """
    if num_events < 1:
        raise ParameterError(f"need at least one event, got {num_events}")
    if not (0.0 < fail_prob < 1.0):
        raise ParameterError(f"fail_prob must be in (0, 1), got {fail_prob}")
    from ..experiments.runner import side_for_degree

    rng = ensure_rng(derive_seed(seed, "failure", n, num_events))
    side = side_for_degree(n, target_degree)
    points = uniform_points(n, side, dim=2, seed=rng)
    initial = unit_disk_graph(points, radius=1.0)
    if initial.num_edges == 0:
        raise GraphError("failure scenario needs at least one initial edge")
    live = sorted(initial.edges())
    down: list[tuple[int, int]] = []
    events: list[EdgeEvent] = []
    for _ in range(num_events):
        fail = down == [] or (live != [] and rng.random() < fail_prob)
        pool = live if fail else down
        idx = int(rng.integers(len(pool)))
        pool[idx], pool[-1] = pool[-1], pool[idx]  # swap-pop: O(1) removal
        edge = pool.pop()
        (down if fail else live).append(edge)
        events.append(EdgeEvent(REMOVE if fail else ADD, *edge))
    final = initial.copy()
    apply_events(final, events)
    return Scenario(
        name="failure",
        initial=initial,
        events=tuple(events),
        final=final,
        params={"n": n, "target_degree": target_degree, "fail_prob": fail_prob, "seed": seed},
    )


def growth_scenario(
    n: int,
    num_events: "int | None" = None,
    target_degree: float = 12.0,
    seed: int = 0,
) -> Scenario:
    """Incremental growth: reveal a target UDG node by node.

    Nodes arrive in a random order; each arrival inserts the target graph's
    edges from the newcomer to all previously arrived nodes (sorted, so the
    stream is deterministic given the seed).  The initial graph is the
    empty graph on the full node set — dense ids are allocated up front,
    matching the library's fixed-``V(G)`` convention.  *num_events*
    truncates the stream (default: the full reveal).
    """
    if n < 2:
        raise ParameterError(f"growth needs n ≥ 2 nodes, got {n}")
    from ..experiments.runner import side_for_degree

    rng = ensure_rng(derive_seed(seed, "growth", n))
    side = side_for_degree(n, target_degree)
    points = uniform_points(n, side, dim=2, seed=rng)
    target = unit_disk_graph(points, radius=1.0)
    arrival = [int(x) for x in rng.permutation(n)]
    arrived: set[int] = set()
    events: list[EdgeEvent] = []
    for node in arrival:
        nbrs = sorted(w for w in target.neighbors(node) if w in arrived)
        events.extend(EdgeEvent(ADD, node, w) for w in nbrs)
        arrived.add(node)
    if num_events is not None:
        if num_events < 1:
            raise ParameterError(f"need at least one event, got {num_events}")
        events = events[:num_events]
    initial = Graph(n)
    final = initial.copy()
    apply_events(final, events)
    return Scenario(
        name="growth",
        initial=initial,
        events=tuple(events),
        final=final,
        params={"n": n, "target_degree": target_degree, "seed": seed},
    )


def node_churn_scenario(
    n: int,
    num_events: int,
    target_degree: float = 12.0,
    leave_prob: float = 0.45,
    seed: int = 0,
) -> Scenario:
    """Node arrival/departure on a UDG: radios power off and on.

    Each step either makes a uniformly random *linked* node leave (one
    :class:`NodeEvent` — its incident links all drop, the id slot stays
    dormant), with probability *leave_prob*, or powers a new radio on at a
    uniform position: a join event with the next dense id followed by the
    :class:`EdgeEvent` inserts wiring it to every present node within
    radio range (sorted, so the stream is deterministic).  The stream is
    truncated to exactly *num_events* events, so a trailing join may land
    with only part of its links — a consistent (if unlucky) topology.
    """
    if n < 2:
        raise ParameterError(f"node churn needs n ≥ 2 nodes, got {n}")
    if num_events < 1:
        raise ParameterError(f"need at least one event, got {num_events}")
    if not (0.0 < leave_prob < 1.0):
        raise ParameterError(f"leave_prob must be in (0, 1), got {leave_prob}")
    from ..experiments.runner import side_for_degree

    rng = ensure_rng(derive_seed(seed, "nodechurn", n, num_events))
    side = side_for_degree(n, target_degree)
    points = uniform_points(n, side, dim=2, seed=rng)
    initial = unit_disk_graph(points, radius=1.0)
    current = initial.copy()
    positions = [points[i] for i in range(n)]
    present = set(range(n))
    events: "list[EdgeEvent | NodeEvent]" = []
    while len(events) < num_events:
        linked = sorted(u for u in present if current.degree(u) > 0)
        if linked and rng.random() < leave_prob:
            u = linked[int(rng.integers(len(linked)))]
            events.append(NodeEvent.leave(u))
            present.discard(u)
            current.remove_node(u)
        else:
            p = rng.uniform(0.0, side, size=2)
            new_id = current.add_node()
            positions.append(p)
            present.add(new_id)
            events.append(NodeEvent.join(new_id))
            for w in sorted(present - {new_id}):
                if float(np.linalg.norm(positions[w] - p)) <= 1.0:
                    events.append(EdgeEvent.add(new_id, w))
                    current.add_edge(new_id, w)
    events = events[:num_events]
    final = initial.copy()
    apply_events(final, events)
    return Scenario(
        name="nodechurn",
        initial=initial,
        events=tuple(events),
        final=final,
        params={"n": n, "target_degree": target_degree, "leave_prob": leave_prob, "seed": seed},
    )


def regional_outage_scenario(
    n: int,
    num_events: "int | None" = None,
    target_degree: float = 12.0,
    ball_fraction: float = 0.25,
    seed: int = 0,
) -> Scenario:
    """A geometric ball of radios blacks out at once, then repopulates.

    A seeded epicenter node is chosen and the ``ceil(ball_fraction · n)``
    nodes nearest to it (the epicenter included) power off in id order —
    one :class:`NodeEvent` leave each, skipping nodes already isolated by
    earlier leaves.  Recovery follows: for every position that went dark, a
    fresh radio powers on there at the next dense id (join + sorted edge
    inserts to everything in radio range), in the kill order — the region
    comes back, the dead id slots stay dormant.  *num_events* truncates the
    stream mid-outage or mid-recovery (default: the full cycle).
    """
    if n < 2:
        raise ParameterError(f"regional outage needs n ≥ 2 nodes, got {n}")
    if not (0.0 < ball_fraction <= 1.0):
        raise ParameterError(f"ball_fraction must be in (0, 1], got {ball_fraction}")
    from ..experiments.runner import side_for_degree

    rng = ensure_rng(derive_seed(seed, "outage", n))
    side = side_for_degree(n, target_degree)
    points = uniform_points(n, side, dim=2, seed=rng)
    initial = unit_disk_graph(points, radius=1.0)
    epicenter = int(rng.integers(n))
    k = max(1, int(np.ceil(ball_fraction * n)))
    dists = np.linalg.norm(points - points[epicenter], axis=1)
    # k nearest nodes to the epicenter; distance ties break by id.
    ball = sorted(int(i) for i in np.lexsort((np.arange(n), dists))[:k])
    current = initial.copy()
    positions = [points[i] for i in range(n)]
    present = set(range(n))
    events: "list[EdgeEvent | NodeEvent]" = []
    killed: list[int] = []
    for u in ball:
        killed.append(u)
        present.discard(u)
        if current.degree(u) > 0:  # a leave of an isolated node is a no-op
            events.append(NodeEvent.leave(u))
            current.remove_node(u)
    for u in killed:
        p = positions[u]
        new_id = current.add_node()
        positions.append(p)
        present.add(new_id)
        events.append(NodeEvent.join(new_id))
        for w in sorted(present - {new_id}):
            if float(np.linalg.norm(positions[w] - p)) <= 1.0:
                events.append(EdgeEvent.add(new_id, w))
                current.add_edge(new_id, w)
    if num_events is not None:
        if num_events < 1:
            raise ParameterError(f"need at least one event, got {num_events}")
        events = events[:num_events]
    final = initial.copy()
    apply_events(final, events)
    return Scenario(
        name="outage",
        initial=initial,
        events=tuple(events),
        final=final,
        params={
            "n": n,
            "target_degree": target_degree,
            "ball_fraction": ball_fraction,
            "epicenter": epicenter,
            "seed": seed,
        },
    )


def partition_heal_scenario(
    n: int,
    num_events: "int | None" = None,
    target_degree: float = 12.0,
    seed: int = 0,
) -> Scenario:
    """The network splits along the median-x line, then heals.

    Every UDG link whose endpoints straddle the median x-coordinate of the
    deployment fails (sorted removals — the backbone cut), leaving two
    halves that cannot reach each other; then the same links recover in the
    same order.  *num_events* truncates the stream (default: cut + heal).
    """
    if n < 2:
        raise ParameterError(f"partition needs n ≥ 2 nodes, got {n}")
    from ..experiments.runner import side_for_degree

    rng = ensure_rng(derive_seed(seed, "partition", n))
    side = side_for_degree(n, target_degree)
    points = uniform_points(n, side, dim=2, seed=rng)
    initial = unit_disk_graph(points, radius=1.0)
    median_x = float(np.median(points[:, 0]))
    crossing = sorted(
        (u, v)
        for u, v in initial.edges()
        if (points[u][0] <= median_x) != (points[v][0] <= median_x)
    )
    if not crossing:
        raise GraphError("partition scenario found no links crossing the median line")
    events: list[EdgeEvent] = [EdgeEvent.remove(u, v) for u, v in crossing]
    events.extend(EdgeEvent.add(u, v) for u, v in crossing)
    if num_events is not None:
        if num_events < 1:
            raise ParameterError(f"need at least one event, got {num_events}")
        events = events[:num_events]
    final = initial.copy()
    apply_events(final, events)
    return Scenario(
        name="partition",
        initial=initial,
        events=tuple(events),
        final=final,
        params={"n": n, "target_degree": target_degree, "median_x": median_x, "seed": seed},
    )


#: Scenario registry for the CLI / bench dispatchers.
SCENARIO_NAMES: "tuple[str, ...]" = ("mobility", "failure", "growth", "nodechurn")

#: Fault scenarios — the chaos tooling's corpus (``python -m repro chaos``).
#: Registered separately so the standard churn dispatchers stay unchanged.
FAULT_SCENARIO_NAMES: "tuple[str, ...]" = ("outage", "partition")


def make_scenario(
    name: str,
    n: int,
    num_events: int,
    seed: int = 0,
    **kwargs,
) -> Scenario:
    """Build a named scenario (:data:`SCENARIO_NAMES` or
    :data:`FAULT_SCENARIO_NAMES`)."""
    if name == "mobility":
        return mobility_scenario(n, num_events, seed=seed, **kwargs)
    if name == "failure":
        return failure_recovery_scenario(n, num_events, seed=seed, **kwargs)
    if name == "growth":
        return growth_scenario(n, num_events, seed=seed, **kwargs)
    if name == "nodechurn":
        return node_churn_scenario(n, num_events, seed=seed, **kwargs)
    if name == "outage":
        return regional_outage_scenario(n, num_events, seed=seed, **kwargs)
    if name == "partition":
        return partition_heal_scenario(n, num_events, seed=seed, **kwargs)
    raise ParameterError(
        f"unknown scenario {name!r} (want one of {SCENARIO_NAMES + FAULT_SCENARIO_NAMES})"
    )
