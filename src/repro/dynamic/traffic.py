"""Traffic workloads: seeded route-request streams interleaved with churn.

The north-star workload is *query* traffic — millions of ``route(s, t)``
requests hitting the served tables — not repairs.  This module models it:
a :class:`TrafficWorkload` walks a churn :class:`~repro.dynamic.events.\
Scenario` in ticks and, after each tick's events, emits a batch of
``(source, target)`` requests drawn from one of three request models every
real routing deployment sees:

* ``uniform`` — any live node talks to any other, uniformly (the
  stress-test floor: no cache or hotspot structure to exploit);
* ``zipf`` — destinations follow a Zipf law over a fixed hidden hotspot
  ranking (a few servers/sinks absorb most traffic; the ranking persists
  across ticks, so hot destinations stay hot while churn moves the
  topology under them — newly joined nodes enter the ranking cold);
* ``locality`` — targets are drawn from the source's bounded G-ball
  (radius ``locality_radius``), the geographic-locality regime of mesh
  and ad-hoc networks, falling back to a uniform target when the ball is
  empty.

Requests reference only *live* nodes (degree > 0 at the tick's graph), so
every query is answerable by a node that actually exists — dormant id
slots left by leaves are never dialed.  All randomness derives from
:mod:`repro.rng`: a ``(kind, scenario, queries_per_tick, tick, seed)``
tuple names a bit-for-bit reproducible request stream, and the tick
partition is exactly :meth:`Scenario.ticks <repro.dynamic.events.\
Scenario.ticks>` — replaying every tick's events reproduces
``scenario.final`` (self-checked at generation time).

``python -m repro traffic`` soaks a :class:`~repro.dynamic.serving.\
RoutingService` with a workload from the shell;
``benchmarks/test_bench_queries.py`` records the served-vs-per-hop-BFS
query throughput as ``BENCH_queries.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .. import obs
from ..errors import ParameterError
from ..graph import Graph, ball
from ..rng import derive_seed, ensure_rng
from .events import EdgeEvent, NodeEvent, Scenario, apply_events

__all__ = [
    "TrafficTick",
    "TrafficWorkload",
    "QueryBatchReport",
    "serve_queries",
    "make_workload",
    "WORKLOAD_NAMES",
]

#: Histogram buckets for per-request hop counts (spanner journeys are
#: short; the overflow bucket catches pathological detours).
HOP_BOUNDS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)

#: Request-model registry for the CLI / bench dispatchers.
WORKLOAD_NAMES: "tuple[str, ...]" = ("uniform", "zipf", "locality")


@dataclass(frozen=True)
class TrafficTick:
    """One serving interval: churn applied first, then requests served."""

    events: "tuple[EdgeEvent | NodeEvent, ...]"  # may be empty (tick 0)
    queries: "tuple[tuple[int, int], ...]"  # (source, target) requests


@dataclass(frozen=True)
class TrafficWorkload:
    """A request stream interleaved with a churn scenario's ticks.

    ``ticks[0]`` carries no events (requests against the initial graph);
    every later tick's events are a consecutive chunk of
    ``scenario.events``, so concatenating them reproduces the scenario's
    stream exactly.
    """

    kind: str
    scenario: Scenario
    ticks: "tuple[TrafficTick, ...]"
    params: dict = field(default_factory=dict)

    @property
    def num_queries(self) -> int:
        return sum(len(t.queries) for t in self.ticks)

    @property
    def num_events(self) -> int:
        return sum(len(t.events) for t in self.ticks)

    def queries(self) -> "Iterable[tuple[int, int]]":
        """Every request of the workload, in serving order."""
        for t in self.ticks:
            yield from t.queries


@dataclass(frozen=True)
class QueryBatchReport:
    """What one :func:`serve_queries` batch did."""

    served: int
    delivered: int
    hops_total: int
    seconds: float

    @property
    def mean_hops(self) -> float:
        return self.hops_total / self.delivered if self.delivered else 0.0

    @property
    def qps(self) -> float:
        return self.served / self.seconds if self.seconds > 0 else float("inf")


def serve_queries(
    endpoint, queries: "Iterable[tuple[int, int]]", *, hop_fallback=None
) -> QueryBatchReport:
    """Serve a batch of route requests off *endpoint*, instrumented.

    *endpoint* is anything :func:`~repro.routing.greedy_routing.\
route_served` accepts (a :class:`~repro.dynamic.serving.RoutingService`,
    a :class:`~repro.parallel.sharded.RouteReader`, ...).  When
    observability is on, each request feeds the ``traffic.request.us``
    latency and ``traffic.hops`` histograms (plus a
    ``traffic.unroutable`` counter); with ``REPRO_OBS=off`` the loop is
    the bare serving loop — this shared helper is what the overhead
    benchmark measures.  ``hop_fallback`` is forwarded to
    :func:`~repro.routing.greedy_routing.route_served` (the chaos soak
    passes ``True`` so dormant/stale table entries degrade to committed
    -distance hops instead of dropping the packet).
    """
    from ..routing.greedy_routing import route_served

    on = obs.enabled()
    registry = obs.metrics()
    served = delivered = hops_total = 0
    sw_batch = obs.Stopwatch()
    sw = obs.Stopwatch()
    for s, t in queries:
        if on:
            sw.restart()
        res = route_served(endpoint, s, t, hop_fallback=hop_fallback)
        served += 1
        if res.delivered:
            delivered += 1
            hops_total += res.hops
            if on:
                registry.observe("traffic.request.us", sw.elapsed() * 1e6)
                registry.observe("traffic.hops", res.hops, HOP_BOUNDS)
        elif on:
            registry.observe("traffic.request.us", sw.elapsed() * 1e6)
            registry.inc("traffic.unroutable")
    if on:
        registry.inc("traffic.requests", served)
    return QueryBatchReport(served, delivered, hops_total, sw_batch.elapsed())


def _zipf_weights(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    w = ranks ** (-exponent)
    return w / w.sum()


def _sample_queries(
    kind: str,
    g: Graph,
    rng: "np.random.Generator",
    count: int,
    *,
    ranking: "list[int]",
    rank_of: "dict[int, int]",
    zipf_exponent: float,
    locality_radius: int,
) -> "tuple[tuple[int, int], ...]":
    """*count* requests over the live (degree > 0) nodes of the tick's graph."""
    live = [u for u in g.nodes() if g.degree(u) > 0]
    if len(live) < 2:
        return ()
    live_set = set(live)
    out: "list[tuple[int, int]]" = []
    if kind == "zipf":
        # Keep the hotspot ranking total: joiners enter at the cold tail,
        # in id order, so the hidden popularity of survivors never shifts.
        for u in live:
            if u not in rank_of:
                rank_of[u] = len(ranking)
                ranking.append(u)
        live_by_rank = sorted(live, key=rank_of.__getitem__)
        weights = _zipf_weights(len(live_by_rank), zipf_exponent)
        targets = rng.choice(len(live_by_rank), size=count, p=weights)
    for i in range(count):
        if kind == "uniform":
            s, t = (int(x) for x in rng.choice(len(live), size=2, replace=False))
            out.append((live[s], live[t]))
        elif kind == "zipf":
            t = live_by_rank[int(targets[i])]
            s = t
            while s == t:
                s = live[int(rng.integers(len(live)))]
            out.append((s, t))
        else:  # locality
            s = live[int(rng.integers(len(live)))]
            nearby = sorted((ball(g, s, locality_radius) - {s}) & live_set)
            if nearby:
                t = nearby[int(rng.integers(len(nearby)))]
            else:  # isolated pocket: fall back to a uniform target
                t = s
                while t == s:
                    t = live[int(rng.integers(len(live)))]
            out.append((s, t))
    return tuple(out)


def make_workload(
    kind: str,
    scenario: Scenario,
    *,
    queries_per_tick: int = 50,
    tick: int = 5,
    seed: int = 0,
    zipf_exponent: float = 1.3,
    locality_radius: int = 3,
    flash_crowd_at: "tuple[int, ...] | None" = None,
) -> TrafficWorkload:
    """Build a named request stream over *scenario*'s churn ticks.

    ``queries_per_tick`` requests are sampled after every ``tick``-sized
    chunk of events (plus one leading batch against the initial graph).
    See :data:`WORKLOAD_NAMES` for the request models.

    ``flash_crowd_at`` (``zipf`` only) names tick indices — 0 is the
    leading batch — at which the hidden hotspot ranking is permuted by a
    seeded shuffle: overnight, *different* destinations are hot.  The jump
    is the traffic-side fault the chaos corpus soaks under: the serving
    tables are suddenly queried on rows that were cold for the whole run.
    """
    if kind not in WORKLOAD_NAMES:
        raise ParameterError(f"unknown workload {kind!r} (want one of {WORKLOAD_NAMES})")
    if queries_per_tick < 1:
        raise ParameterError(f"need at least one query per tick, got {queries_per_tick}")
    if zipf_exponent <= 0:
        raise ParameterError(f"zipf exponent must be > 0, got {zipf_exponent}")
    if locality_radius < 1:
        raise ParameterError(f"locality radius must be ≥ 1, got {locality_radius}")
    flash_ticks = frozenset(flash_crowd_at or ())
    if flash_ticks:
        if kind != "zipf":
            raise ParameterError("flash_crowd_at only applies to the zipf workload")
        if any(not isinstance(i, int) or isinstance(i, bool) or i < 0 for i in flash_ticks):
            raise ParameterError(f"flash_crowd_at wants non-negative tick indices, got {flash_crowd_at!r}")
    rng = ensure_rng(
        derive_seed(seed, "traffic", kind, scenario.name, queries_per_tick, tick)
    )
    g = scenario.initial.copy()
    ranking: "list[int]" = []
    rank_of: "dict[int, int]" = {}

    def flash_crowd() -> None:
        # Seeded hotspot jump: permute the hidden ranking wholesale.  The
        # live set is folded in first so a flash before any zipf sample
        # still has a population to re-rank.
        for u in sorted(u for u in g.nodes() if g.degree(u) > 0):
            if u not in rank_of:
                rank_of[u] = len(ranking)
                ranking.append(u)
        ranking[:] = [ranking[int(j)] for j in rng.permutation(len(ranking))]
        for r, u in enumerate(ranking):
            rank_of[u] = r

    def sample() -> "tuple[tuple[int, int], ...]":
        return _sample_queries(
            kind,
            g,
            rng,
            queries_per_tick,
            ranking=ranking,
            rank_of=rank_of,
            zipf_exponent=zipf_exponent,
            locality_radius=locality_radius,
        )

    if 0 in flash_ticks:
        flash_crowd()
    ticks = [TrafficTick(events=(), queries=sample())]
    for i, chunk in enumerate(scenario.ticks(tick), start=1):
        apply_events(g, chunk)
        if i in flash_ticks:
            flash_crowd()
        ticks.append(TrafficTick(events=tuple(chunk), queries=sample()))
    if g != scenario.final:  # pragma: no cover - generator self-check
        raise ParameterError("tick replay diverged from the scenario's final graph")
    return TrafficWorkload(
        kind=kind,
        scenario=scenario,
        ticks=tuple(ticks),
        params={
            "queries_per_tick": queries_per_tick,
            "tick": tick,
            "seed": seed,
            "zipf_exponent": zipf_exponent,
            "locality_radius": locality_radius,
            "flash_crowd_at": tuple(sorted(flash_ticks)),
        },
    )
