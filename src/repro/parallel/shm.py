"""Shared-memory transport: CSR snapshots and dense matrices across processes.

The worker pool's data plane.  Graph snapshots and the serving matrices are
far too large to pickle per task, so they live in
:mod:`multiprocessing.shared_memory` blocks that every worker maps once:

* :class:`SharedCSR` — a :class:`~repro.graph.csr.CSRGraph` exported as two
  blocks (``int64`` row offsets, ``int32`` neighbor ids).  Workers attach
  with **zero copies** (:func:`attach_csr`, surfaced as
  :meth:`CSRGraph.attach <repro.graph.csr.CSRGraph.attach>`); re-publishing
  after a delta re-freeze ships **only the dirty row spans** when row sizes
  are unchanged, or the suffix from the first resized row otherwise —
  never more than the snapshot, usually a few cache lines.
* :class:`SharedMatrix` — a dense int32 matrix (the serving layer's
  ``D``/``T``) with capacity headroom so node churn can grow ``n`` without
  reallocating; parent and workers read and write the *same* bytes, so
  "sending a row" to a worker costs nothing.
* **Concurrent readers** — a matrix created with ``versioned=True`` carries
  one seqlock-style version counter per row: writers bracket every row
  write with :meth:`begin_row_write <AttachedMatrix.begin_row_write>` /
  :meth:`end_row_write <AttachedMatrix.end_row_write>` (odd = write in
  progress), and :meth:`AttachedMatrix.read_row` /
  :meth:`~AttachedMatrix.read_cell` retry until they capture a row whose
  version was even and unchanged across the copy — so a reader process can
  serve lookups *while* shard workers repair, and only ever observes row
  states the writers actually committed (never a torn half-write).

  .. note:: Pure Python offers no cross-process memory fence, so the
     protocol relies on the platform's total-store-order guarantee (x86 /
     x86-64: stores become visible in program order) plus CPython's own
     synchronization around the eval loop.  On weakly-ordered CPUs
     (aarch64) the counter stores could in principle be observed out of
     order with the row data; deployments there should treat the torn-read
     property suite as the arbiter on the actual target hardware.
* :class:`SharedDirectory` — a tiny fixed-size control block publishing
  the current matrix handles under the same seqlock discipline, so a
  detached reader can follow resizes/reallocations without talking to the
  owning process.

Both owners allocate **capacity slack** (~25%) and reallocate into fresh
blocks only when outgrown; every publish bumps a ``version`` so the pool's
control plane (:mod:`repro.parallel.pool`) can tell workers to re-wrap
their views.  Block lifetime: the creating process ``unlink``s (POSIX
semantics keep existing mappings valid), attachers only ``close``.

CPython ≤ 3.12 registers *attached* segments with the resource tracker,
which would unlink them when the attaching worker exits (bpo-39959);
:func:`_attach_block` unregisters the attachment to keep ownership with
the creator.
"""

from __future__ import annotations

import pickle
import secrets
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from .. import faults as _faults
from .. import obs, tuning
from ..analysis import sanitize as _sanitize
from ..errors import ParameterError, TornReadError
from ..graph.csr import CSRGraph

__all__ = [
    "SharedCSR",
    "SharedCSRHandle",
    "SharedMatrix",
    "SharedMatrixHandle",
    "SharedDirectory",
    "AttachedDirectory",
    "PublishStats",
    "attach_csr",
    "AttachedCSR",
    "AttachedMatrix",
]

_PTR_DTYPE = np.int64
_IDX_DTYPE = np.intc
_MAT_DTYPE = np.int32
_VER_DTYPE = np.int64


def _max_tries() -> int:
    """Retry budget for seqlock reads (the ``read_retries`` tuning knob,
    ``REPRO_READ_RETRIES``) — generous enough to ride out any live writer
    (writers hold a row for microseconds; the reader yields the CPU while
    spinning), small enough to surface a dead writer within seconds."""
    return tuning.get().read_retries


def _spin(attempt: int) -> None:
    """Back off inside a seqlock retry loop without starving the writer.

    The first few retries busy-spin (the writer is mid-row), then the
    reader yields its timeslice, then parks briefly — essential on
    single-core hosts where reader and writer time-share one CPU.
    """
    if attempt >= 1024:
        time.sleep(0.0001)
    elif attempt >= 16:
        time.sleep(0)


def _headroom(size: int) -> int:
    """Capacity with ~25% slack (at least a small fixed floor)."""
    return max(64, size + (size >> 2))


#: Immediate-retry budget for transient shm allocation/attach failures
#: (momentary EMFILE, a name collision, an injected ``shm.alloc`` /
#: ``shm.attach`` fault).  A real ENOENT on attach propagates untried —
#: the owner unlinked the block, and the reader refresh protocol depends
#: on seeing that promptly.
_TRANSIENT_TRIES = 3


def _create_block(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh named block; the short random suffix keeps names collision-free.

    Transient allocation failures are retried with a fresh name up to
    :data:`_TRANSIENT_TRIES` times before giving up.
    """
    block = failure = None
    for _ in range(_TRANSIENT_TRIES):
        name = f"repro-{secrets.token_hex(6)}"
        try:
            if _faults.active:
                _faults.on_shm_create(name)  # simulated allocation failure (OSError)
            block = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 1))
        except OSError as exc:
            failure = exc
            continue
        break
    if block is None:
        raise failure
    if _sanitize.active:
        # Leak tracking: deregister on unlink (instance attribute shadows
        # the method), so whatever survives at pool close is a leak.
        _sanitize.note_segment_create(name)
        original_unlink = block.unlink

        def _tracked_unlink(_orig=original_unlink, _name=name):
            _sanitize.note_segment_unlink(_name)
            _orig()

        block.unlink = _tracked_unlink  # type: ignore[method-assign]
    return block


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Open an existing block without adopting ownership of its lifetime.

    CPython ≤ 3.12 registers attachments with the (shared) resource
    tracker exactly like creations (bpo-39959), which would double-book
    the block and unlink it under the owner.  Suppressing registration for
    the attach (the 3.13 ``track=False`` semantics) keeps the creator the
    sole owner; worker processes are single-threaded, so the temporary
    patch cannot race.

    Transient failures are retried up to :data:`_TRANSIENT_TRIES` times;
    ``FileNotFoundError`` is excluded — the owner unlinked the block, and
    retrying would only delay the caller's stale-handle recovery.
    """
    from multiprocessing import resource_tracker

    failure = None
    for _ in range(_TRANSIENT_TRIES):
        try:
            if _faults.active:
                _faults.on_shm_attach(name)  # simulated attach failure (OSError)
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
        except FileNotFoundError:
            raise
        except OSError as exc:
            failure = exc
    raise failure


@dataclass(frozen=True)
class PublishStats:
    """What one :meth:`SharedCSR.publish` shipped."""

    bytes_written: int
    rows_rewritten: int  # -1 means "suffix copy" (row sizes changed)
    reallocated: bool
    version: int


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable coordinates of a :class:`SharedCSR` (what workers attach)."""

    indptr_name: str
    indices_name: str
    n: int
    num_indices: int
    capacity_nodes: int
    capacity_indices: int
    version: int


@dataclass(frozen=True)
class SharedMatrixHandle:
    """Picklable coordinates of a :class:`SharedMatrix`."""

    name: str
    rows: int
    cols: int
    capacity_rows: int
    capacity_cols: int
    version: int
    versions_name: "str | None" = None  # per-row seqlock block, when versioned


class SharedCSR:
    """Parent-side owner of a CSR snapshot living in shared memory.

    Create via :meth:`CSRGraph.share`.  ``publish(new_csr, dirty_rows=...)``
    updates the blocks in place (delta when possible) and bumps
    ``version``; when the new snapshot outgrows the capacity the blocks are
    reallocated under fresh names (``reallocated=True`` in the returned
    stats — the pool then rebroadcasts the handle).  Call :meth:`close`
    (idempotent) to free the blocks; the owner also unlinks on GC as a
    safety net.
    """

    def __init__(
        self,
        csr: CSRGraph,
        *,
        capacity_nodes: "int | None" = None,
        capacity_indices: "int | None" = None,
    ) -> None:
        np_indptr, np_indices = csr.numpy_arrays()
        n, m2 = csr.num_nodes, len(np_indices)
        cap_n = _headroom(n) if capacity_nodes is None else capacity_nodes
        cap_i = _headroom(m2) if capacity_indices is None else capacity_indices
        if cap_n < n or cap_i < m2:
            raise ParameterError(
                f"capacity ({cap_n} nodes / {cap_i} indices) below snapshot "
                f"size ({n} / {m2})"
            )
        self._shm_indptr = _create_block((cap_n + 1) * np.dtype(_PTR_DTYPE).itemsize)
        self._shm_indices = _create_block(cap_i * np.dtype(_IDX_DTYPE).itemsize)
        self._cap_n, self._cap_i = cap_n, cap_i
        self._closed = False
        self.version = 0
        self._write_full(np_indptr, np_indices)
        self.n, self.num_indices = n, m2

    # -- views over the blocks ----------------------------------------- #

    def _ptr_view(self, count: int) -> np.ndarray:
        return np.ndarray((count,), dtype=_PTR_DTYPE, buffer=self._shm_indptr.buf)

    def _idx_view(self, count: int) -> np.ndarray:
        return np.ndarray((count,), dtype=_IDX_DTYPE, buffer=self._shm_indices.buf)

    @property
    def handle(self) -> SharedCSRHandle:
        return SharedCSRHandle(
            indptr_name=self._shm_indptr.name,
            indices_name=self._shm_indices.name,
            n=self.n,
            num_indices=self.num_indices,
            capacity_nodes=self._cap_n,
            capacity_indices=self._cap_i,
            version=self.version,
        )

    def graph(self) -> CSRGraph:
        """A zero-copy :class:`CSRGraph` over the parent's own mapping."""
        return CSRGraph._wrap_views(
            self.n, self._ptr_view(self.n + 1), self._idx_view(self.num_indices)
        )

    # -- publishing ----------------------------------------------------- #

    def _write_full(self, np_indptr: np.ndarray, np_indices: np.ndarray) -> int:
        self._ptr_view(len(np_indptr))[:] = np_indptr
        if len(np_indices):
            self._idx_view(len(np_indices))[:] = np_indices
        return np_indptr.nbytes + np_indices.nbytes

    def publish(self, csr: CSRGraph, dirty_rows: Iterable[int] | None = None) -> PublishStats:
        """Ship snapshot *csr* into the blocks; delta when *dirty_rows* given.

        *dirty_rows* is the caller's certificate that every other row is
        byte-identical to the currently published snapshot (exactly the set
        a delta re-freeze patched).  With it, unchanged-degree updates
        write only the dirty rows' index spans; degree-changing updates
        write the indptr plus the index suffix from the first dirty row
        (everything behind it shifted).  Without it, the whole snapshot is
        rewritten.  Growing past capacity reallocates fresh blocks
        (``reallocated=True`` — attachment handles change).
        """
        self._ensure_open()
        np_indptr, np_indices = csr.numpy_arrays()
        n, m2 = csr.num_nodes, len(np_indices)
        if n > self._cap_n or m2 > self._cap_i:
            old_ptr, old_idx = self._shm_indptr, self._shm_indices
            self._cap_n = max(_headroom(n), self._cap_n)
            self._cap_i = max(_headroom(m2), self._cap_i)
            self._shm_indptr = _create_block((self._cap_n + 1) * np.dtype(_PTR_DTYPE).itemsize)
            self._shm_indices = _create_block(self._cap_i * np.dtype(_IDX_DTYPE).itemsize)
            written = self._write_full(np_indptr, np_indices)
            self.n, self.num_indices = n, m2
            self.version += 1
            for shm in (old_ptr, old_idx):  # mappings stay valid until closed
                shm.close()
                shm.unlink()
            return PublishStats(written, -1, True, self.version)
        old_n = self.n
        dirty = None if dirty_rows is None else sorted({int(u) for u in dirty_rows})
        self.n, self.num_indices = n, m2
        self.version += 1
        if dirty is not None and (not dirty or dirty[0] < 0 or dirty[-1] >= n):
            dirty = None if dirty else []
        if dirty == [] and n == old_n:  # certified no-op: nothing moved
            return PublishStats(0, 0, False, self.version)
        if not dirty or n != old_n:
            return PublishStats(self._write_full(np_indptr, np_indices), -1, False, self.version)
        ptr = self._ptr_view(n + 1)
        idx = self._idx_view(self._cap_i)
        if np.array_equal(ptr, np_indptr):  # degrees unchanged: true row delta
            written = 0
            for u in dirty:
                lo, hi = int(np_indptr[u]), int(np_indptr[u + 1])
                if hi > lo:
                    idx[lo:hi] = np_indices[lo:hi]
                    written += (hi - lo) * np.dtype(_IDX_DTYPE).itemsize
            return PublishStats(written, len(dirty), False, self.version)
        first = dirty[0]
        start = min(int(ptr[first]), int(np_indptr[first]))
        ptr[first:] = np_indptr[first:]
        if m2 > start:
            idx[start:m2] = np_indices[start:m2]
        written = (n + 1 - first) * np.dtype(_PTR_DTYPE).itemsize
        written += max(m2 - start, 0) * np.dtype(_IDX_DTYPE).itemsize
        return PublishStats(written, -1, False, self.version)

    # -- lifetime -------------------------------------------------------- #

    def _ensure_open(self) -> None:
        if self._closed:
            raise ParameterError("SharedCSR is closed")

    def close(self) -> None:
        """Free both blocks (idempotent; attached workers keep their maps)."""
        if self._closed:
            return
        self._closed = True
        for shm in (self._shm_indptr, self._shm_indices):
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class AttachedCSR:
    """Worker-side attachment of a :class:`SharedCSR`.

    Keeps the mapped blocks open and re-wraps the :class:`CSRGraph` view
    when the publisher announces a new version (:meth:`refresh`).  If the
    announced handle names different blocks (the publisher reallocated),
    the old maps are closed and the new ones attached.
    """

    graph: CSRGraph | None

    def __init__(self, handle: SharedCSRHandle) -> None:
        self._handle = handle
        self._shm_indptr = _attach_block(handle.indptr_name)
        self._shm_indices = _attach_block(handle.indices_name)
        self._wrap()

    def _wrap(self) -> None:
        h = self._handle
        indptr = np.ndarray((h.n + 1,), dtype=_PTR_DTYPE, buffer=self._shm_indptr.buf)
        indices = np.ndarray((h.num_indices,), dtype=_IDX_DTYPE, buffer=self._shm_indices.buf)
        self.graph = CSRGraph._wrap_views(h.n, indptr, indices)

    @property
    def version(self) -> int:
        return self._handle.version

    def refresh(self, handle: SharedCSRHandle) -> None:
        if handle.indptr_name != self._handle.indptr_name:
            self.close()
            self._shm_indptr = _attach_block(handle.indptr_name)
            self._shm_indices = _attach_block(handle.indices_name)
        self._handle = handle
        self._wrap()

    def close(self) -> None:
        self.graph = None
        for shm in (self._shm_indptr, self._shm_indices):
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover - exports/teardown
                pass


def attach_csr(handle: "SharedCSRHandle | AttachedCSR") -> CSRGraph:
    """One-shot zero-copy attach (the :meth:`CSRGraph.attach` entry point).

    Accepts a :class:`SharedCSRHandle` or an :class:`AttachedCSR`.  The
    returned graph aliases the shared buffers; with a bare handle the
    attachment is pinned on the graph object so the mapping outlives it.
    """
    if not isinstance(handle, (AttachedCSR, SharedCSRHandle)):
        raise ParameterError(
            f"attach needs a SharedCSRHandle or AttachedCSR, got {type(handle).__name__}"
        )
    attachment = handle if isinstance(handle, AttachedCSR) else AttachedCSR(handle)
    g = attachment.graph
    if g is None:  # pragma: no cover - only after an explicit close()
        raise ParameterError("AttachedCSR is closed")
    if attachment is not handle:
        g._pin = attachment  # pin the fresh mapping to the graph's lifetime
    return g


class SharedMatrix:
    """Parent-side owner of a dense int32 matrix in shared memory.

    The logical shape is ``(rows, cols)`` inside a ``(cap_rows, cap_cols)``
    allocation, so growth within capacity is free (bump the shape, fill the
    fresh border).  ``resize`` reallocates when outgrown, preserving the
    overlapping content; both cases bump ``version`` for the control plane.

    ``versioned=True`` adds one int64 seqlock counter per row (a second
    shared block) so writer processes can publish row updates that
    concurrent readers observe atomically — see the module docstring and
    :meth:`AttachedMatrix.read_row`.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        capacity_rows: "int | None" = None,
        capacity_cols: "int | None" = None,
        fill: "int | None" = None,
        versioned: bool = False,
    ) -> None:
        self._cap_r = _headroom(rows) if capacity_rows is None else capacity_rows
        self._cap_c = _headroom(cols) if capacity_cols is None else capacity_cols
        if self._cap_r < rows or self._cap_c < cols:
            raise ParameterError("matrix capacity below initial shape")
        itemsize = np.dtype(_MAT_DTYPE).itemsize
        self._shm = _create_block(self._cap_r * self._cap_c * itemsize)
        self._shm_ver = (
            _create_block(self._cap_r * np.dtype(_VER_DTYPE).itemsize) if versioned else None
        )
        ver = self.row_versions
        if ver is not None:
            ver[:] = 0
        self.rows, self.cols = rows, cols
        self.version = 0
        self._closed = False
        self.fill = fill  # remembered: repair_torn_rows resets rows to it
        if fill is not None:
            self.array[:] = fill

    @property
    def handle(self) -> SharedMatrixHandle:
        return SharedMatrixHandle(
            name=self._shm.name,
            rows=self.rows,
            cols=self.cols,
            capacity_rows=self._cap_r,
            capacity_cols=self._cap_c,
            version=self.version,
            versions_name=None if self._shm_ver is None else self._shm_ver.name,
        )

    @property
    def row_versions(self) -> "np.ndarray | None":
        """The per-row seqlock counters (None when not versioned)."""
        if self._shm_ver is None:
            return None
        return np.ndarray((self._cap_r,), dtype=_VER_DTYPE, buffer=self._shm_ver.buf)

    def begin_row_write(self, u: int) -> None:
        """Mark row *u* as mid-write (odd version); no-op when unversioned."""
        ver = self.row_versions
        if ver is not None:
            if _sanitize.active:
                _sanitize.note_begin_row_write(self._shm_ver.name, u)
            ver[u] += 1
            if _faults.active:
                _faults.on_begin_row_write(u)  # crash site: row now odd

    def end_row_write(self, u: int) -> None:
        """Commit row *u* (even version again); no-op when unversioned."""
        ver = self.row_versions
        if ver is not None:
            if _sanitize.active:
                _sanitize.note_end_row_write(self._shm_ver.name, u)
            ver[u] += 1

    @property
    def array(self) -> np.ndarray:
        """The live ``(rows, cols)`` view (writes are visible to workers)."""
        base = np.ndarray((self._cap_r, self._cap_c), dtype=_MAT_DTYPE, buffer=self._shm.buf)
        return base[: self.rows, : self.cols]

    @property
    def capacity_bytes(self) -> int:
        """Bytes actually reserved (capacity, not logical shape)."""
        return self._cap_r * self._cap_c * np.dtype(_MAT_DTYPE).itemsize

    def resize(self, rows: int, cols: int, *, fill: "int | None" = None) -> bool:
        """Change the logical shape; returns ``True`` when blocks moved.

        Within capacity this costs one border fill.  Beyond it, fresh
        blocks are allocated and the overlapping content copied.  *fill*
        initializes any newly exposed cells (also on shrink-then-grow).
        """
        if self._closed:
            raise ParameterError("SharedMatrix is closed")
        if fill is not None:
            self.fill = fill
        old_rows, old_cols = self.rows, self.cols
        reallocated = rows > self._cap_r or cols > self._cap_c
        if reallocated:
            old_shm, old_view = self._shm, self.array
            old_ver_shm, old_ver = self._shm_ver, self.row_versions
            old_cap_r = self._cap_r
            self._cap_r = max(_headroom(rows), self._cap_r)
            self._cap_c = max(_headroom(cols), self._cap_c)
            itemsize = np.dtype(_MAT_DTYPE).itemsize
            self._shm = _create_block(self._cap_r * self._cap_c * itemsize)
            if old_ver_shm is not None:
                # Carry the counters over so attached readers comparing
                # versions across the swap never see them move backwards.
                self._shm_ver = _create_block(self._cap_r * np.dtype(_VER_DTYPE).itemsize)
                new_ver = self.row_versions
                assert new_ver is not None and old_ver is not None
                new_ver[:] = 0
                new_ver[:old_cap_r] = old_ver
            self.rows, self.cols = rows, cols
            if fill is not None:
                self.array[:] = fill
            keep_r, keep_c = min(old_rows, rows), min(old_cols, cols)
            self.array[:keep_r, :keep_c] = old_view[:keep_r, :keep_c]
            del old_view  # drop the buffer export so the mmap can close
            del old_ver
            old_shm.close()
            old_shm.unlink()
            if old_ver_shm is not None:
                old_ver_shm.close()
                old_ver_shm.unlink()
        else:
            self.rows, self.cols = rows, cols
            if fill is not None:
                a = self.array
                if rows > old_rows:
                    a[old_rows:, :] = fill
                if cols > old_cols:
                    a[:, old_cols:] = fill
        self.version += 1
        return reallocated

    def repair_torn_rows(self) -> "list[int]":
        """Commit every row a dead writer left mid-write; returns their ids.

        A worker that crashed between ``begin_row_write`` and
        ``end_row_write`` leaves the row version odd forever: readers spin
        to :class:`~repro.errors.TornReadError`, and the half-written
        content must never be served.  The supervisor calls this after
        respawning: each odd row is overwritten with the matrix *fill* (a
        committed-looking dormant state) **while the version is still
        odd** — concurrent seqlock readers discard anything captured
        mid-write — and only then committed.  The retried task rewrites
        the real content afterwards.
        """
        ver = self.row_versions
        if ver is None:
            return []
        fill = 0 if self.fill is None else self.fill
        arr = self.array
        repaired = []
        for u in range(self.rows):
            if int(ver[u]) & 1:
                arr[u, :] = fill
                ver[u] += 1  # commit: even again, content is the fill state
                repaired.append(u)
        return repaired

    def close(self) -> None:
        if self._closed:
            return
        if _sanitize.active and self._shm_ver is not None:
            _sanitize.note_matrix_close(self._shm_ver.name)
        self._closed = True
        blocks = [self._shm] if self._shm_ver is None else [self._shm, self._shm_ver]
        for shm in blocks:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class AttachedMatrix:
    """Worker/reader-side attachment of a :class:`SharedMatrix`.

    Writers (shard workers) bracket row updates with
    :meth:`begin_row_write`/:meth:`end_row_write`; readers in other
    processes use :meth:`read_row`/:meth:`read_cell`, which follow the
    seqlock protocol — capture the row version (retry while odd), copy the
    data, re-check the version, retry on any movement.  ``torn_retries``
    counts how many captures had to be retried (i.e. torn states that were
    *observed and discarded*, never returned).
    """

    _arr: np.ndarray
    _ver: "np.ndarray | None"

    def __init__(self, handle: SharedMatrixHandle) -> None:
        self._handle = handle
        self._shm = _attach_block(handle.name)
        self._shm_ver = (
            _attach_block(handle.versions_name) if handle.versions_name else None
        )
        self.torn_retries = 0
        self._rewrap()

    def _rewrap(self) -> None:
        h = self._handle
        base = np.ndarray(
            (h.capacity_rows, h.capacity_cols), dtype=_MAT_DTYPE, buffer=self._shm.buf
        )
        self._arr = base[: h.rows, : h.cols]
        self._ver = (
            None
            if self._shm_ver is None
            else np.ndarray((h.capacity_rows,), dtype=_VER_DTYPE, buffer=self._shm_ver.buf)
        )

    @property
    def array(self) -> np.ndarray:
        return self._arr

    @property
    def rows(self) -> int:
        return self._handle.rows

    @property
    def cols(self) -> int:
        return self._handle.cols

    @property
    def versions(self) -> "np.ndarray | None":
        """The per-row seqlock counters (None when the matrix is unversioned)."""
        return self._ver

    def begin_row_write(self, u: int) -> None:
        """Mark row *u* mid-write (odd); no-op when unversioned."""
        if self._ver is not None:
            if _sanitize.active:
                _sanitize.note_begin_row_write(self._handle.versions_name, u)
            self._ver[u] += 1
            if _faults.active:
                _faults.on_begin_row_write(u)  # crash site: row now odd

    def end_row_write(self, u: int) -> None:
        """Commit row *u* (even again); no-op when unversioned."""
        if self._ver is not None:
            if _sanitize.active:
                _sanitize.note_end_row_write(self._handle.versions_name, u)
            self._ver[u] += 1

    def read_row(self, u: int, cols: "np.ndarray | None" = None) -> np.ndarray:
        """A stable private copy of row *u* (optionally only *cols*).

        Seqlock read: the returned array is bit-identical to a state some
        writer committed — a concurrent half-written row is retried, never
        returned.  Unversioned matrices copy without the protocol (their
        callers guarantee no concurrent writers).
        """
        ver = self._ver
        if ver is None:
            return np.array(self._arr[u] if cols is None else self._arr[u, cols])
        for attempt in range(_max_tries()):
            v0 = int(ver[u])
            if v0 & 1:
                self.torn_retries += 1
                obs.inc("seqlock.retry_busy")
                _spin(attempt)
                continue
            row = np.array(self._arr[u] if cols is None else self._arr[u, cols])
            if int(ver[u]) == v0:
                return row
            self.torn_retries += 1
            obs.inc("seqlock.retry_torn")
            _spin(attempt)
        raise TornReadError(f"row {u} never stabilized (writer died mid-write?)")

    def read_cell(self, u: int, v: int) -> int:
        """A stable read of one cell, under the same seqlock protocol."""
        ver = self._ver
        if ver is None:
            return int(self._arr[u, v])
        for attempt in range(_max_tries()):
            v0 = int(ver[u])
            if v0 & 1:
                self.torn_retries += 1
                obs.inc("seqlock.retry_busy")
                _spin(attempt)
                continue
            value = int(self._arr[u, v])
            if int(ver[u]) == v0:
                return value
            self.torn_retries += 1
            obs.inc("seqlock.retry_torn")
            _spin(attempt)
        raise TornReadError(f"cell ({u}, {v}) never stabilized (writer died mid-write?)")

    def refresh(self, handle: SharedMatrixHandle) -> None:
        if handle.name != self._handle.name:
            # Attach the new blocks *before* releasing the old ones: if the
            # new names are already gone (we raced a newer reallocation),
            # the attachment stays consistent with its previous handle and
            # the caller can re-read the directory and retry.
            new_shm = _attach_block(handle.name)
            new_ver = _attach_block(handle.versions_name) if handle.versions_name else None
            self.close()
            self._shm, self._shm_ver = new_shm, new_ver
        self._handle = handle
        self._rewrap()

    def close(self) -> None:
        # Drop buffer exports before unmapping (a closed attachment must
        # never be read again, hence the deliberate type violation).
        self._arr = self._ver = None  # type: ignore[assignment]
        blocks = [self._shm] if self._shm_ver is None else [self._shm, self._shm_ver]
        for shm in blocks:
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover - exports/teardown
                pass


class SharedDirectory:
    """A tiny seqlock-published control block naming the live shared state.

    The owning service :meth:`post`\\ s a small picklable payload (the
    current :class:`SharedMatrixHandle`\\ s) after every mutation; detached
    reader processes poll :meth:`AttachedDirectory.generation` and re-read
    the payload only when it moved — which is how readers follow matrix
    resizes and reallocations without any channel to the owner.
    """

    _SIZE = 4096  # plenty for a pickled pair of handles
    _HEADER = 16  # int64 generation + int64 payload length

    def __init__(self) -> None:
        self._shm = _create_block(self._SIZE)
        self._closed = False
        self._header()[:] = 0

    def _header(self) -> np.ndarray:
        return np.ndarray((2,), dtype=np.int64, buffer=self._shm.buf)

    @property
    def name(self) -> str:
        """The block name — the picklable address readers attach to."""
        return self._shm.name

    def post(self, payload: object) -> int:
        """Publish *payload* (pickled) atomically; returns the generation."""
        if self._closed:
            raise ParameterError("SharedDirectory is closed")
        data = pickle.dumps(payload)
        if len(data) > self._SIZE - self._HEADER:
            raise ParameterError(
                f"directory payload of {len(data)} bytes exceeds the "
                f"{self._SIZE - self._HEADER}-byte block"
            )
        hdr = self._header()
        hdr[0] += 1  # odd: write in progress
        self._shm.buf[self._HEADER : self._HEADER + len(data)] = data
        hdr[1] = len(data)
        hdr[0] += 1  # even: committed
        return int(hdr[0])

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class AttachedDirectory:
    """Reader-side attachment of a :class:`SharedDirectory`."""

    def __init__(self, name: str) -> None:
        self._shm = _attach_block(name)

    def generation(self) -> int:
        """The current publish generation (cheap: one int64 load)."""
        return int(np.ndarray((2,), dtype=np.int64, buffer=self._shm.buf)[0])

    def read(self) -> "tuple[object, int]":
        """The latest committed payload and its generation (seqlock read)."""
        hdr = np.ndarray((2,), dtype=np.int64, buffer=self._shm.buf)
        for attempt in range(_max_tries()):
            g0 = int(hdr[0])
            if g0 & 1:
                _spin(attempt)
                continue
            length = int(hdr[1])
            data = bytes(self._shm.buf[SharedDirectory._HEADER : SharedDirectory._HEADER + length])
            if int(hdr[0]) == g0:
                return pickle.loads(data), g0
            _spin(attempt)
        raise TornReadError("directory never stabilized (owner died mid-post?)")

    def close(self) -> None:
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - exports/teardown
            pass
