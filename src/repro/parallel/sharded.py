"""Sharded routing service: the serving layer fanned out over a worker pool.

:class:`ShardedRoutingService` partitions the n H-distance rows (and the n
next-hop tables) across the W workers of a :class:`~repro.parallel.pool.\
WorkerPool` by ``owner(u) = u % W`` — stable under id growth, balanced
under churn.  Both serving matrices and both graph snapshots (H for the
BFS rows, G for the argmin stars) live in shared memory
(:mod:`repro.parallel.shm`), so the per-event protocol exchanges only
summaries:

1. the parent runs the damage analysis of the base class unchanged
   (dirty-row certification against the old matrix, star damage, table
   damage masks) — it reads the same shared ``D`` the workers write;
2. dirty rows fan out **shard-local**: each worker BFS-recomputes only the
   rows it owns, writes them straight into shared ``D``, and sends back
   just ``(row id, packed changed-destination mask)`` for rows that moved;
3. damaged tables fan out shard-local the same way, each worker
   re-argmin-ing its own table rows in shared ``T`` via the exact kernel
   (:func:`~repro.routing.tables.project_table_row`) the serial service
   uses, returning only changed-entry counts.

Because every stage reuses the serial implementation's math on the same
bytes, the served tables are **bit-identical** to
:class:`~repro.dynamic.serving.RoutingService` after every event — the
property suite in ``tests/parallel/test_sharded.py`` asserts it for
W ∈ {1, 2, 4} across all four churn scenarios and every construction.

Snapshot publishing is delta-aware: the service accumulates the rows whose
H/G adjacency changed since the last publish (the maintainer's net spanner
delta, the event's star damage) and ships only those spans
(:meth:`SharedCSR.publish <repro.parallel.shm.SharedCSR.publish>`).  A
full refresh (fallback, compaction, mid-batch error resync) clears the
hints and republishes wholesale.

The pool outlives events and survives restarts: published objects are
replayed to respawned workers, so :meth:`WorkerPool.restart <repro.\
parallel.pool.WorkerPool.restart>` (or a worker crash) mid-stream is
transparent.  Close the service (context manager) to free the workers and
the shared blocks.

**Concurrent reads.**  The shared D/T matrices are created *versioned*
(one seqlock counter per row, :mod:`repro.parallel.shm`), and after every
apply/refresh the service posts the current matrix handles to a
:class:`~repro.parallel.shm.SharedDirectory`.  Any process holding
:meth:`ShardedRoutingService.reader_handle` can construct a
:class:`RouteReader` over the same bytes and serve ``next_hop`` /
``table`` / ``route`` lookups *while the shard workers repair*: writers
bracket each row write with the version counters, readers retry a moved
row, so every observed row is bit-identical to a state the service
actually committed — the torn-read property suite in
``tests/parallel/test_torn_reads.py`` pins exactly that.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..dynamic.serving import RoutingService
from ..errors import NodeNotFound, ParameterError, TornReadError
from ..graph import Graph
from .pool import WorkerPool
from .shm import AttachedDirectory, AttachedMatrix, SharedDirectory

__all__ = ["ShardedRoutingService", "RouteReader"]

_EMPTY = np.empty((0, 0), dtype=np.int32)

#: Shared-object names used by one service on its pool.
_H, _G, _DIST, _TABLES = "serve:h", "serve:g", "serve:dist", "serve:tables"


class ShardedRoutingService(RoutingService):
    """A :class:`RoutingService` whose repair stages run on a worker pool.

    Parameters
    ----------
    g, method, k, epsilon, r, rebuild_fraction:
        Exactly as :class:`~repro.dynamic.serving.RoutingService`.
    workers:
        Pool size spec (int, ``"auto"`` or ``None``) — ignored when *pool*
        is given.
    start_method:
        Forwarded to :class:`~repro.parallel.pool.WorkerPool` (``fork`` /
        ``spawn`` / ``forkserver``).
    pool:
        An existing pool to run on; the service then does **not** close it
        (but does publish its shared objects there — one service per pool).
    seed:
        Root for the workers' :mod:`repro.rng` streams.
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        workers="auto",
        start_method: "str | None" = None,
        pool: "WorkerPool | None" = None,
        seed: int = 0,
        k: "int | None" = None,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        if pool is not None:
            self._pool, self._owns_pool = pool, False
        else:
            self._pool = WorkerPool(workers, start_method=start_method, seed=seed)
            self._owns_pool = True
        self._hints: "dict[str, set[int]]" = {}
        self._shared_ready = False
        self._closed = False
        self._directory = SharedDirectory()
        super().__init__(
            g, method, k=k, epsilon=epsilon, r=r, rebuild_fraction=rebuild_fraction
        )

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> int:
        """Number of shards (= pool workers)."""
        return self._pool.workers

    def owner(self, u: int) -> int:
        """The shard owning row/table *u* (stable as the id space grows)."""
        return u % self._pool.workers

    def reader_handle(self) -> str:
        """The directory address concurrent readers attach to.

        A plain string — pass it to any process (fork or spawn) and build
        a :class:`RouteReader` there; the reader then follows every matrix
        resize/reallocation through the directory on its own.
        """
        return self._directory.name

    def metrics(self) -> dict:
        """Merged per-shard observability snapshots (see
        :meth:`WorkerPool.metrics <repro.parallel.pool.WorkerPool.metrics>`);
        callable while serving and after :meth:`close`."""
        return self._pool.metrics()

    def close(self) -> None:
        """Release the shared matrices (and the pool, when owned)."""
        if self._closed:
            return
        self._closed = True
        self._dist = self._tables = _EMPTY  # drop buffer exports first
        self._directory.close()
        if self._owns_pool:
            self._pool.close()
        else:
            for name in (_H, _G, _DIST, _TABLES):
                self._pool.drop(name)

    def __enter__(self) -> "ShardedRoutingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _matrix_bytes(self, matrix) -> int:
        # Report the shared blocks' *capacity* — the memory actually
        # reserved (headroom and high-water growth included), not the
        # logical view the serial service would report.
        if not self._shared_ready:
            return int(matrix.nbytes)
        name = _DIST if matrix is self._dist else _TABLES
        return self._pool.matrix_owner(name).capacity_bytes

    def _note_hint(self, name: str, rows: "set[int]") -> None:
        """Accumulate a delta-publish certificate until the next publish."""
        hint = self._hints.get(name)
        if hint is None:
            self._hints[name] = set(rows)
        else:
            hint.update(rows)

    def _shard(self, items) -> "tuple[list, list[int]]":
        """Group *items* (ints or ``(u, ...)`` pairs) by owning worker."""
        w = self._pool.workers
        buckets: "list[list]" = [[] for _ in range(w)]
        for item in items:
            u = item if isinstance(item, int) else item[0]
            buckets[u % w].append(item)
        payload_items, to = [], []
        for wid, bucket in enumerate(buckets):
            if bucket:
                payload_items.append(bucket)
                to.append(wid)
        return payload_items, to

    # ------------------------------------------------------------------ #
    # overridden stages
    # ------------------------------------------------------------------ #

    def _resize_matrices(self, n: int) -> None:
        if self._shared_ready and self._dist.shape[0] == n:
            return
        had_shared = self._shared_ready
        old_names = (
            (
                self._pool.matrix_owner(_DIST).handle.name,
                self._pool.matrix_owner(_TABLES).handle.name,
            )
            if had_shared
            else None
        )
        self._dist = self._tables = _EMPTY  # release exports before resize
        self._dist = self._pool.matrix(_DIST, n, n, fill=-1, versioned=True)
        self._tables = self._pool.matrix(_TABLES, n, n, fill=-1, versioned=True)
        self._shared_ready = True
        new_names = (
            self._pool.matrix_owner(_DIST).handle.name,
            self._pool.matrix_owner(_TABLES).handle.name,
        )
        if old_names != new_names:
            # The resize reallocated — the old blocks are unlinked, so the
            # directory must stop naming them *now* (not at event end):
            # otherwise a reader attaching mid-event dials a freed block,
            # and a failed apply would leave the stale names posted
            # forever.  The copied-plus-−1-padding state it exposes is a
            # committed state (the serial service passes through it too).
            self._publish_directory()

    def _recompute_rows(self, order, track: bool = True) -> "dict[int, np.ndarray]":
        order = list(order)
        if not order:
            return {}
        h = self.advertised.freeze()
        self._pool.publish_csr(_H, h, dirty_rows=self._hints.pop(_H, None))
        buckets, to = self._shard(order)
        payloads = [(_H, _DIST, bucket) for bucket in buckets]
        results = self._pool.run("serve_rows", payloads, to=to)
        if not track:
            return {}
        n = self._dist.shape[1]
        changed: "dict[int, np.ndarray]" = {}
        for chunk in results:
            for s, packed in chunk:
                mask = np.unpackbits(np.frombuffer(packed, dtype=np.uint8), count=n)
                changed[s] = mask.astype(bool)
        return changed

    def _project_tables(self, damage: "dict[int, np.ndarray | None]") -> int:
        jobs = []
        for u, mask in damage.items():
            if mask is None:
                jobs.append((u, None))
            elif mask.any():
                jobs.append((u, np.packbits(mask).tobytes()))
        if not jobs:
            return 0
        g_csr = self.graph.freeze()
        self._pool.publish_csr(_G, g_csr, dirty_rows=self._hints.pop(_G, None))
        buckets, to = self._shard(jobs)
        payloads = [(_G, _DIST, _TABLES, bucket) for bucket in buckets]
        self.entries_updated += sum(self._pool.run("serve_tables", payloads, to=to))
        return len(jobs)

    # ------------------------------------------------------------------ #
    # hint bookkeeping around the base machinery
    # ------------------------------------------------------------------ #

    def _ingest(self, h_added, h_removed, star_changed, rebuilt):
        old_dim = self._dist.shape[0]
        n = self.maintainer.graph.num_nodes
        new_rows = set(range(old_dim, n))
        self._note_hint(_H, {x for e in (*h_added, *h_removed) for x in e} | new_rows)
        self._note_hint(_G, set(star_changed) | new_rows)
        return super()._ingest(h_added, h_removed, star_changed, rebuilt)

    def refresh(self) -> None:
        # Unknown delta (init, fallback, error resync, compaction): drop the
        # certificates so both snapshots republish wholesale.
        self._hints.clear()
        super().refresh()
        self._publish_directory()

    # ------------------------------------------------------------------ #
    # concurrent-read directory
    # ------------------------------------------------------------------ #

    def _publish_directory(self) -> None:
        """Post the current matrix handles for detached readers.

        Posted only at *quiescent* points — after a completed apply, batch,
        refresh or compaction — so a reader that re-syncs mid-event keeps
        reading the previous committed shape; individual row updates within
        an event are covered by the per-row seqlock counters instead.
        """
        if not self._shared_ready or self._closed:
            return
        with obs.span("sharded.publish_directory"):
            self._directory.post(
                (self._pool.matrix_owner(_DIST).handle, self._pool.matrix_owner(_TABLES).handle)
            )

    def apply(self, event):
        report = super().apply(event)
        self._publish_directory()
        return report

    def apply_batch(self, events):
        # The mid-batch error path refreshes (and therefore republishes)
        # before the exception surfaces, so readers never see the resync gap.
        report = super().apply_batch(events)
        self._publish_directory()
        return report


class RouteReader:
    """Read-only serving endpoint over a :class:`ShardedRoutingService`.

    Construct from :meth:`ShardedRoutingService.reader_handle` in *any*
    process.  The reader attaches the shared D/T matrices and answers
    :meth:`next_hop`, :meth:`distance`, :meth:`table` — and, through
    :func:`~repro.routing.greedy_routing.route_served`, whole packet
    journeys — while the service's shard workers repair concurrently:

    * every row/cell read follows the seqlock protocol, so the observed
      bytes are always a state the writers committed (``torn_retries``
      counts discarded capture attempts — retried, never returned);
    * before every lookup the reader polls the service's directory
      generation (one int64 load) and re-wraps its views when the service
      resized or reallocated, so node churn is followed automatically;
    * between directory posts the reader serves the *previous* committed
      state — lookups never block on an in-flight repair.

    Readers hold no locks and write nothing: any number of them may run
    against one service.  Close the reader before the service goes away to
    release the mappings promptly (a closed service's blocks stay readable
    until detached, POSIX semantics).
    """

    def __init__(self, directory: str) -> None:
        self._dir = AttachedDirectory(directory)
        self._gen = -1
        self._dist: "AttachedMatrix | None" = None
        self._tables: "AttachedMatrix | None" = None
        self._sync()

    def _sync(self) -> None:
        """Re-wrap the matrix views when the service posted a new state.

        A posted handle can go stale in the instant between the service
        unlinking a reallocated block and reposting (or if we raced a
        newer reallocation): attaching then raises ``FileNotFoundError``.
        The directory is re-read and the attach retried — the service
        reposts immediately after every reallocation, so the window is
        transient by construction.
        """
        gen = self._dir.generation()
        if gen == self._gen:
            return
        for attempt in range(64):
            (dist_handle, tables_handle), gen = self._dir.read()
            try:
                if self._dist is None:
                    dist = AttachedMatrix(dist_handle)
                    try:
                        tables = AttachedMatrix(tables_handle)
                    except FileNotFoundError:
                        dist.close()
                        raise
                    self._dist, self._tables = dist, tables
                else:
                    self._dist.refresh(dist_handle)
                    self._tables.refresh(tables_handle)
            except FileNotFoundError:
                time.sleep(0.001 * min(attempt + 1, 10))
                continue
            self._gen = gen
            return
        raise TornReadError("directory kept naming freed blocks (service died mid-resize?)")

    @property
    def num_nodes(self) -> int:
        """Current id-space size n, per the latest directory post."""
        self._sync()
        return self._tables.rows

    @property
    def torn_retries(self) -> int:
        """Seqlock captures discarded so far (torn states observed, retried)."""
        total = 0
        for attached in (self._dist, self._tables):
            if attached is not None:
                total += attached.torn_retries
        return total

    def _check_pair(self, u: int, v: int) -> None:
        if u == v:
            raise ParameterError("source equals target")
        n = self._tables.rows
        for node in (u, v):
            if not (0 <= node < n):
                raise NodeNotFound(node, n)

    def next_hop(self, u: int, v: int) -> "int | None":
        """The served next hop of *u* toward *v* (None when unroutable)."""
        self._sync()
        self._check_pair(u, v)
        hop = self._tables.read_cell(u, v)
        return hop if hop >= 0 else None

    def distance(self, u: int, v: int) -> "int | None":
        """The served H-distance ``d_H(u, v)`` (None when unreachable)."""
        self._sync()
        n = self._dist.rows
        for node in (u, v):
            if not (0 <= node < n):
                raise NodeNotFound(node, n)
        d = self._dist.read_cell(u, v)
        return d if d >= 0 else None

    def table(self, u: int) -> dict:
        """Node *u*'s next-hop table, in :func:`routing_table`'s dict shape."""
        row = self.table_row(u)
        return {int(v): int(row[v]) for v in np.flatnonzero(row >= 0)}

    def table_row(self, u: int) -> np.ndarray:
        """A stable private copy of T's row *u* (the raw −1-padded array)."""
        self._sync()
        if not (0 <= u < self._tables.rows):
            raise NodeNotFound(u, self._tables.rows)
        return self._tables.read_row(u)

    def distance_row(self, u: int) -> np.ndarray:
        """A stable private copy of D's row *u* (−1 for unreachable)."""
        self._sync()
        if not (0 <= u < self._dist.rows):
            raise NodeNotFound(u, self._dist.rows)
        return self._dist.read_row(u)

    def close(self) -> None:
        for attached in (self._dist, self._tables):
            if attached is not None:
                attached.close()
        self._dir.close()

    def __enter__(self) -> "RouteReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
