"""Sharded routing service: the serving layer fanned out over a worker pool.

:class:`ShardedRoutingService` partitions the n H-distance rows (and the n
next-hop tables) across the W workers of a :class:`~repro.parallel.pool.\
WorkerPool` by ``owner(u) = u % W`` — stable under id growth, balanced
under churn.  Both serving matrices and both graph snapshots (H for the
BFS rows, G for the argmin stars) live in shared memory
(:mod:`repro.parallel.shm`), so the per-event protocol exchanges only
summaries:

1. the parent runs the damage analysis of the base class unchanged
   (dirty-row certification against the old matrix, star damage, table
   damage masks) — it reads the same shared ``D`` the workers write;
2. dirty rows fan out **shard-local**: each worker BFS-recomputes only the
   rows it owns, writes them straight into shared ``D``, and sends back
   just ``(row id, packed changed-destination mask)`` for rows that moved;
3. damaged tables fan out shard-local the same way, each worker
   re-argmin-ing its own table rows in shared ``T`` via the exact kernel
   (:func:`~repro.routing.tables.project_table_row`) the serial service
   uses, returning only changed-entry counts.

Because every stage reuses the serial implementation's math on the same
bytes, the served tables are **bit-identical** to
:class:`~repro.dynamic.serving.RoutingService` after every event — the
property suite in ``tests/parallel/test_sharded.py`` asserts it for
W ∈ {1, 2, 4} across all four churn scenarios and every construction.

Snapshot publishing is delta-aware: the service accumulates the rows whose
H/G adjacency changed since the last publish (the maintainer's net spanner
delta, the event's star damage) and ships only those spans
(:meth:`SharedCSR.publish <repro.parallel.shm.SharedCSR.publish>`).  A
full refresh (fallback, compaction, mid-batch error resync) clears the
hints and republishes wholesale.

The pool outlives events and survives restarts: published objects are
replayed to respawned workers, so :meth:`WorkerPool.restart <repro.\
parallel.pool.WorkerPool.restart>` (or a worker crash) mid-stream is
transparent.  Close the service (context manager) to free the workers and
the shared blocks.
"""

from __future__ import annotations

import numpy as np

from ..dynamic.serving import RoutingService
from ..graph import Graph
from .pool import WorkerPool

__all__ = ["ShardedRoutingService"]

_EMPTY = np.empty((0, 0), dtype=np.int32)

#: Shared-object names used by one service on its pool.
_H, _G, _DIST, _TABLES = "serve:h", "serve:g", "serve:dist", "serve:tables"


class ShardedRoutingService(RoutingService):
    """A :class:`RoutingService` whose repair stages run on a worker pool.

    Parameters
    ----------
    g, method, k, epsilon, r, rebuild_fraction:
        Exactly as :class:`~repro.dynamic.serving.RoutingService`.
    workers:
        Pool size spec (int, ``"auto"`` or ``None``) — ignored when *pool*
        is given.
    start_method:
        Forwarded to :class:`~repro.parallel.pool.WorkerPool` (``fork`` /
        ``spawn`` / ``forkserver``).
    pool:
        An existing pool to run on; the service then does **not** close it
        (but does publish its shared objects there — one service per pool).
    seed:
        Root for the workers' :mod:`repro.rng` streams.
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        workers="auto",
        start_method: "str | None" = None,
        pool: "WorkerPool | None" = None,
        seed: int = 0,
        k: "int | None" = None,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        if pool is not None:
            self._pool, self._owns_pool = pool, False
        else:
            self._pool = WorkerPool(workers, start_method=start_method, seed=seed)
            self._owns_pool = True
        self._hints: "dict[str, set[int]]" = {}
        self._shared_ready = False
        self._closed = False
        super().__init__(
            g, method, k=k, epsilon=epsilon, r=r, rebuild_fraction=rebuild_fraction
        )

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> int:
        """Number of shards (= pool workers)."""
        return self._pool.workers

    def owner(self, u: int) -> int:
        """The shard owning row/table *u* (stable as the id space grows)."""
        return u % self._pool.workers

    def close(self) -> None:
        """Release the shared matrices (and the pool, when owned)."""
        if self._closed:
            return
        self._closed = True
        self._dist = self._tables = _EMPTY  # drop buffer exports first
        if self._owns_pool:
            self._pool.close()
        else:
            for name in (_H, _G, _DIST, _TABLES):
                self._pool.drop(name)

    def __enter__(self) -> "ShardedRoutingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _matrix_bytes(self, matrix) -> int:
        # Report the shared blocks' *capacity* — the memory actually
        # reserved (headroom and high-water growth included), not the
        # logical view the serial service would report.
        if not self._shared_ready:
            return int(matrix.nbytes)
        name = _DIST if matrix is self._dist else _TABLES
        return self._pool.matrix_owner(name).capacity_bytes

    def _note_hint(self, name: str, rows: "set[int]") -> None:
        """Accumulate a delta-publish certificate until the next publish."""
        hint = self._hints.get(name)
        if hint is None:
            self._hints[name] = set(rows)
        else:
            hint.update(rows)

    def _shard(self, items) -> "tuple[list, list[int]]":
        """Group *items* (ints or ``(u, ...)`` pairs) by owning worker."""
        w = self._pool.workers
        buckets: "list[list]" = [[] for _ in range(w)]
        for item in items:
            u = item if isinstance(item, int) else item[0]
            buckets[u % w].append(item)
        payload_items, to = [], []
        for wid, bucket in enumerate(buckets):
            if bucket:
                payload_items.append(bucket)
                to.append(wid)
        return payload_items, to

    # ------------------------------------------------------------------ #
    # overridden stages
    # ------------------------------------------------------------------ #

    def _resize_matrices(self, n: int) -> None:
        if self._shared_ready and self._dist.shape[0] == n:
            return
        self._dist = self._tables = _EMPTY  # release exports before resize
        self._dist = self._pool.matrix(_DIST, n, n, fill=-1)
        self._tables = self._pool.matrix(_TABLES, n, n, fill=-1)
        self._shared_ready = True

    def _recompute_rows(self, order, track: bool = True) -> "dict[int, np.ndarray]":
        order = list(order)
        if not order:
            return {}
        h = self.advertised.freeze()
        self._pool.publish_csr(_H, h, dirty_rows=self._hints.pop(_H, None))
        buckets, to = self._shard(order)
        payloads = [(_H, _DIST, bucket) for bucket in buckets]
        results = self._pool.run("serve_rows", payloads, to=to)
        if not track:
            return {}
        n = self._dist.shape[1]
        changed: "dict[int, np.ndarray]" = {}
        for chunk in results:
            for s, packed in chunk:
                mask = np.unpackbits(np.frombuffer(packed, dtype=np.uint8), count=n)
                changed[s] = mask.astype(bool)
        return changed

    def _project_tables(self, damage: "dict[int, np.ndarray | None]") -> int:
        jobs = []
        for u, mask in damage.items():
            if mask is None:
                jobs.append((u, None))
            elif mask.any():
                jobs.append((u, np.packbits(mask).tobytes()))
        if not jobs:
            return 0
        g_csr = self.graph.freeze()
        self._pool.publish_csr(_G, g_csr, dirty_rows=self._hints.pop(_G, None))
        buckets, to = self._shard(jobs)
        payloads = [(_G, _DIST, _TABLES, bucket) for bucket in buckets]
        self.entries_updated += sum(self._pool.run("serve_tables", payloads, to=to))
        return len(jobs)

    # ------------------------------------------------------------------ #
    # hint bookkeeping around the base machinery
    # ------------------------------------------------------------------ #

    def _ingest(self, h_added, h_removed, star_changed, rebuilt):
        old_dim = self._dist.shape[0]
        n = self.maintainer.graph.num_nodes
        new_rows = set(range(old_dim, n))
        self._note_hint(_H, {x for e in (*h_added, *h_removed) for x in e} | new_rows)
        self._note_hint(_G, set(star_changed) | new_rows)
        return super()._ingest(h_added, h_removed, star_changed, rebuilt)

    def refresh(self) -> None:
        # Unknown delta (init, fallback, error resync, compaction): drop the
        # certificates so both snapshots republish wholesale.
        self._hints.clear()
        super().refresh()
