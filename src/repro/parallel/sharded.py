"""Sharded routing service: the serving layer fanned out over a worker pool.

:class:`ShardedRoutingService` partitions the n H-distance rows (and the n
next-hop tables) across the W workers of a :class:`~repro.parallel.pool.\
WorkerPool` by ``owner(u) = u % W`` — stable under id growth, balanced
under churn.  Both serving matrices and both graph snapshots (H for the
BFS rows, G for the argmin stars) live in shared memory
(:mod:`repro.parallel.shm`), so the per-event protocol exchanges only
summaries:

1. the parent runs the damage analysis of the base class unchanged
   (dirty-row certification against the old matrix, star damage, table
   damage masks) — it reads the same shared ``D`` the workers write;
2. dirty rows fan out **shard-local**: each worker BFS-recomputes only the
   rows it owns, writes them straight into shared ``D``, and sends back
   just ``(row id, packed changed-destination mask)`` for rows that moved;
3. damaged tables fan out shard-local the same way, each worker
   re-argmin-ing its own table rows in shared ``T`` via the exact kernel
   (:func:`~repro.routing.tables.project_table_row`) the serial service
   uses, returning only changed-entry counts.

Because every stage reuses the serial implementation's math on the same
bytes, the served tables are **bit-identical** to
:class:`~repro.dynamic.serving.RoutingService` after every event — the
property suite in ``tests/parallel/test_sharded.py`` asserts it for
W ∈ {1, 2, 4} across all four churn scenarios and every construction.

Snapshot publishing is delta-aware: the service accumulates the rows whose
H/G adjacency changed since the last publish (the maintainer's net spanner
delta, the event's star damage) and ships only those spans
(:meth:`SharedCSR.publish <repro.parallel.shm.SharedCSR.publish>`).  A
full refresh (fallback, compaction, mid-batch error resync) clears the
hints and republishes wholesale.

The pool outlives events and survives restarts: published objects are
replayed to respawned workers, so :meth:`WorkerPool.restart <repro.\
parallel.pool.WorkerPool.restart>` (or a worker crash) mid-stream is
transparent.  Close the service (context manager) to free the workers and
the shared blocks.

**Concurrent reads.**  The shared D/T matrices are created *versioned*
(one seqlock counter per row, :mod:`repro.parallel.shm`), and after every
apply/refresh the service posts the current matrix handles to a
:class:`~repro.parallel.shm.SharedDirectory`.  Any process holding
:meth:`ShardedRoutingService.reader_handle` can construct a
:class:`RouteReader` over the same bytes and serve ``next_hop`` /
``table`` / ``route`` lookups *while the shard workers repair*: writers
bracket each row write with the version counters, readers retry a moved
row, so every observed row is bit-identical to a state the service
actually committed — the torn-read property suite in
``tests/parallel/test_torn_reads.py`` pins exactly that.
"""

from __future__ import annotations

import time

import numpy as np

from .. import obs
from ..dynamic.serving import RoutingService
from ..errors import NodeNotFound, ParameterError, TornReadError
from ..graph import Graph
from .pool import WorkerPool
from .shm import AttachedDirectory, AttachedMatrix, SharedDirectory

__all__ = ["ShardedRoutingService", "RouteReader"]

_EMPTY = np.empty((0, 0), dtype=np.int32)

#: Shared-object names used by one service on its pool.
_H, _G, _DIST, _TABLES = "serve:h", "serve:g", "serve:dist", "serve:tables"
_STAMPS = "serve:stamps"

#: How many times a full table re-projection is retried when workers keep
#: crashing *during the retry itself* before the error surfaces.
_REPROJECT_ATTEMPTS = 3


class ShardedRoutingService(RoutingService):
    """A :class:`RoutingService` whose repair stages run on a worker pool.

    Parameters
    ----------
    g, method, k, epsilon, r, rebuild_fraction:
        Exactly as :class:`~repro.dynamic.serving.RoutingService`.
    workers:
        Pool size spec (int, ``"auto"`` or ``None``) — ignored when *pool*
        is given.
    start_method:
        Forwarded to :class:`~repro.parallel.pool.WorkerPool` (``fork`` /
        ``spawn`` / ``forkserver``).
    pool:
        An existing pool to run on; the service then does **not** close it
        (but does publish its shared objects there — one service per pool).
    seed:
        Root for the workers' :mod:`repro.rng` streams.
    """

    def __init__(
        self,
        g: Graph,
        method: str = "kcover",
        *,
        workers="auto",
        start_method: "str | None" = None,
        pool: "WorkerPool | None" = None,
        seed: int = 0,
        task_timeout: float = 300.0,
        k: "int | None" = None,
        epsilon: "float | None" = None,
        r: "int | None" = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        if pool is not None:
            self._pool, self._owns_pool = pool, False
        else:
            self._pool = WorkerPool(
                workers, start_method=start_method, seed=seed, task_timeout=task_timeout
            )
            self._owns_pool = True
        self._hints: "dict[str, set[int]]" = {}
        self._shared_ready = False
        self._closed = False
        self._directory = SharedDirectory()
        #: Completed-state counter, posted with every directory payload.
        #: A repair in flight posts ``pending = generation + 1`` first, so
        #: readers can bound how far behind the served rows are.
        self.generation = 0
        self._stamps = _EMPTY
        super().__init__(
            g, method, k=k, epsilon=epsilon, r=r, rebuild_fraction=rebuild_fraction
        )

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> int:
        """Number of shards (= pool workers)."""
        return self._pool.workers

    def owner(self, u: int) -> int:
        """The shard owning row/table *u* (stable as the id space grows)."""
        return u % self._pool.workers

    @property
    def pool_health(self):
        """Supervision counters of the pool (:class:`~repro.parallel.pool.\
PoolHealth`): respawns, retries, wedge restarts, torn rows repaired, ..."""
        return self._pool.health

    def reader_handle(self) -> str:
        """The directory address concurrent readers attach to.

        A plain string — pass it to any process (fork or spawn) and build
        a :class:`RouteReader` there; the reader then follows every matrix
        resize/reallocation through the directory on its own.
        """
        return self._directory.name

    def metrics(self) -> dict:
        """Merged per-shard observability snapshots (see
        :meth:`WorkerPool.metrics <repro.parallel.pool.WorkerPool.metrics>`);
        callable while serving and after :meth:`close`."""
        return self._pool.metrics()

    def close(self) -> None:
        """Release the shared matrices (and the pool, when owned)."""
        if self._closed:
            return
        self._closed = True
        self._dist = self._tables = self._stamps = _EMPTY  # drop exports first
        self._directory.close()
        if self._owns_pool:
            self._pool.close()
        else:
            for name in (_H, _G, _DIST, _TABLES, _STAMPS):
                self._pool.drop(name)

    def __enter__(self) -> "ShardedRoutingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _matrix_bytes(self, matrix) -> int:
        # Report the shared blocks' *capacity* — the memory actually
        # reserved (headroom and high-water growth included), not the
        # logical view the serial service would report.
        if not self._shared_ready:
            return int(matrix.nbytes)
        name = _DIST if matrix is self._dist else _TABLES
        return self._pool.matrix_owner(name).capacity_bytes

    def _note_hint(self, name: str, rows: "set[int]") -> None:
        """Accumulate a delta-publish certificate until the next publish."""
        hint = self._hints.get(name)
        if hint is None:
            self._hints[name] = set(rows)
        else:
            hint.update(rows)

    def _shard(self, items) -> "tuple[list, list[int]]":
        """Group *items* (ints or ``(u, ...)`` pairs) by owning worker."""
        w = self._pool.workers
        buckets: "list[list]" = [[] for _ in range(w)]
        for item in items:
            u = item if isinstance(item, int) else item[0]
            buckets[u % w].append(item)
        payload_items, to = [], []
        for wid, bucket in enumerate(buckets):
            if bucket:
                payload_items.append(bucket)
                to.append(wid)
        return payload_items, to

    # ------------------------------------------------------------------ #
    # overridden stages
    # ------------------------------------------------------------------ #

    def _resize_matrices(self, n: int) -> None:
        if self._shared_ready and self._dist.shape[0] == n:
            return
        had_shared = self._shared_ready
        old_names = (
            (
                self._pool.matrix_owner(_DIST).handle.name,
                self._pool.matrix_owner(_TABLES).handle.name,
                self._pool.matrix_owner(_STAMPS).handle.name,
            )
            if had_shared
            else None
        )
        self._dist = self._tables = self._stamps = _EMPTY  # release exports
        self._dist = self._pool.matrix(_DIST, n, n, fill=-1, versioned=True)
        self._tables = self._pool.matrix(_TABLES, n, n, fill=-1, versioned=True)
        # Per-row freshness stamps for bounded-stale readers: written only
        # by the parent at quiescent points, so they stay unversioned.
        self._stamps = self._pool.matrix(_STAMPS, n, 1, fill=0)
        self._shared_ready = True
        new_names = (
            self._pool.matrix_owner(_DIST).handle.name,
            self._pool.matrix_owner(_TABLES).handle.name,
            self._pool.matrix_owner(_STAMPS).handle.name,
        )
        if old_names != new_names:
            # The resize reallocated — the old blocks are unlinked, so the
            # directory must stop naming them *now* (not at event end):
            # otherwise a reader attaching mid-event dials a freed block,
            # and a failed apply would leave the stale names posted
            # forever.  The copied-plus-−1-padding state it exposes is a
            # committed state (the serial service passes through it too).
            self._publish_directory()

    def _recompute_rows(self, order, track: bool = True) -> "dict[int, np.ndarray]":
        order = list(order)
        if not order:
            return {}
        h = self.advertised.freeze()
        self._pool.publish_csr(_H, h, dirty_rows=self._hints.pop(_H, None))
        buckets, to = self._shard(order)
        payloads = [(_H, _DIST, bucket) for bucket in buckets]
        respawns = self._pool.health.respawns
        results = self._pool.run("serve_rows", payloads, to=to)
        if not track:
            return {}
        n = self._dist.shape[1]
        if self._pool.health.respawns != respawns:
            # A worker died mid-stage.  The retried tasks recomputed every
            # requested row correctly, but their changed-destination masks
            # diff against whatever the crashed attempt already committed —
            # they can *understate* the damage.  Treat every recomputed row
            # as fully changed so the table projection over-repairs; the
            # result stays bit-identical, only this event costs more.
            obs.inc("sharded.crash_full_damage")
            return {int(s): np.ones(n, dtype=bool) for s in order}
        changed: "dict[int, np.ndarray]" = {}
        for chunk in results:
            for s, packed in chunk:
                mask = np.unpackbits(np.frombuffer(packed, dtype=np.uint8), count=n)
                changed[s] = mask.astype(bool)
        return changed

    def _project_tables(self, damage: "dict[int, np.ndarray | None]") -> int:
        jobs = []
        for u, mask in damage.items():
            if mask is None:
                jobs.append((u, None))
            elif mask.any():
                jobs.append((u, np.packbits(mask).tobytes()))
        if not jobs:
            return 0
        g_csr = self.graph.freeze()
        self._pool.publish_csr(_G, g_csr, dirty_rows=self._hints.pop(_G, None))
        buckets, to = self._shard(jobs)
        payloads = [(_G, _DIST, _TABLES, bucket) for bucket in buckets]
        respawns = self._pool.health.respawns
        self.entries_updated += sum(self._pool.run("serve_tables", payloads, to=to))
        for _ in range(_REPROJECT_ATTEMPTS):
            if self._pool.health.respawns == respawns:
                break
            # A crash mid-projection tears the table row being written; the
            # pool repairs it to all −1 before retrying, but the retried job
            # honours its original column mask — unmasked columns would stay
            # −1.  Re-project every damaged table in full to restore them.
            obs.inc("sharded.crash_full_reproject")
            respawns = self._pool.health.respawns
            buckets, to = self._shard([(u, None) for u, _ in jobs])
            payloads = [(_G, _DIST, _TABLES, bucket) for bucket in buckets]
            self._pool.run("serve_tables", payloads, to=to)
        return len(jobs)

    # ------------------------------------------------------------------ #
    # hint bookkeeping around the base machinery
    # ------------------------------------------------------------------ #

    def _ingest(self, h_added, h_removed, star_changed, rebuilt):
        old_dim = self._dist.shape[0]
        n = self.maintainer.graph.num_nodes
        new_rows = set(range(old_dim, n))
        self._note_hint(_H, {x for e in (*h_added, *h_removed) for x in e} | new_rows)
        self._note_hint(_G, set(star_changed) | new_rows)
        return super()._ingest(h_added, h_removed, star_changed, rebuilt)

    def refresh(self) -> None:
        # Unknown delta (init, fallback, error resync, compaction): drop the
        # certificates so both snapshots republish wholesale.
        self._hints.clear()
        super().refresh()
        self._publish_directory()

    # ------------------------------------------------------------------ #
    # concurrent-read directory
    # ------------------------------------------------------------------ #

    def _payload(self, pending: int) -> tuple:
        return (
            self._pool.matrix_owner(_DIST).handle,
            self._pool.matrix_owner(_TABLES).handle,
            self._pool.matrix_owner(_STAMPS).handle,
            self.generation,
            pending,
        )

    def _publish_directory(self) -> None:
        """Post the current matrix handles for detached readers.

        Posted only at *quiescent* points — after a completed apply, batch,
        refresh or compaction — so a reader that re-syncs mid-event keeps
        reading the previous committed shape; individual row updates within
        an event are covered by the per-row seqlock counters instead.  Each
        post advances :attr:`generation` and stamps every row with it: the
        whole matrix *is* that committed state, so every row is current.
        """
        if not self._shared_ready or self._closed:
            return
        with obs.span("sharded.publish_directory"):
            self.generation += 1
            self._stamps[:, 0] = self.generation
            self._directory.post(self._payload(self.generation))

    def _post_degraded(self) -> None:
        """Mark a repair as started: the payload's *pending* generation now
        exceeds every row stamp by one.  If the repair completes, the next
        :meth:`_publish_directory` closes the gap; if the service crashes or
        wedges mid-repair, readers keep serving the last committed state at
        a measurable staleness of 1 — the hook ``max_staleness=`` bounds.
        """
        if not self._shared_ready or self._closed:
            return
        self._directory.post(self._payload(self.generation + 1))

    def apply(self, event):
        self._post_degraded()
        report = super().apply(event)
        self._publish_directory()
        return report

    def apply_batch(self, events):
        # The mid-batch error path refreshes (and therefore republishes)
        # before the exception surfaces, so readers never see the resync gap.
        self._post_degraded()
        report = super().apply_batch(events)
        self._publish_directory()
        return report


class RouteReader:
    """Read-only serving endpoint over a :class:`ShardedRoutingService`.

    Construct from :meth:`ShardedRoutingService.reader_handle` in *any*
    process.  The reader attaches the shared D/T matrices and answers
    :meth:`next_hop`, :meth:`distance`, :meth:`table` — and, through
    :func:`~repro.routing.greedy_routing.route_served`, whole packet
    journeys — while the service's shard workers repair concurrently:

    * every row/cell read follows the seqlock protocol, so the observed
      bytes are always a state the writers committed (``torn_retries``
      counts discarded capture attempts — retried, never returned);
    * before every lookup the reader polls the service's directory
      generation (one int64 load) and re-wraps its views when the service
      resized or reallocated, so node churn is followed automatically;
    * between directory posts the reader serves the *previous* committed
      state — lookups never block on an in-flight repair.

    Readers hold no locks and write nothing: any number of them may run
    against one service.  Close the reader before the service goes away to
    release the mappings promptly (a closed service's blocks stay readable
    until detached, POSIX semantics).

    **Bounded staleness.**  Every directory payload carries the service's
    committed generation, the generation of the repair currently in flight
    (``pending``), and a per-row stamp matrix marking the generation each
    row was last committed at.  ``max_staleness=k`` makes :meth:`next_hop`
    and :meth:`distance` answer ``None`` for any row more than *k*
    committed generations behind the newest started repair — ``0`` refuses
    everything mid-repair, ``None`` (default) serves whatever committed
    state is available.  :meth:`hop_fallback` then recovers a usable hop
    from the committed distance rows alone (see its docstring), which is
    how :func:`~repro.routing.greedy_routing.route_served` keeps routing
    around dormant or stale table entries.
    """

    def __init__(self, directory: str, *, max_staleness: "int | None" = None) -> None:
        if max_staleness is not None and (
            isinstance(max_staleness, bool) or not isinstance(max_staleness, int) or max_staleness < 0
        ):
            raise ParameterError(f"max_staleness must be a non-negative int, got {max_staleness!r}")
        self.max_staleness = max_staleness
        self._dir = AttachedDirectory(directory)
        self._gen = -1
        self._committed = 0
        self._pending = 0
        self._dist: "AttachedMatrix | None" = None
        self._tables: "AttachedMatrix | None" = None
        self._stamps: "AttachedMatrix | None" = None
        self._sync()

    def _sync(self) -> None:
        """Re-wrap the matrix views when the service posted a new state.

        A posted handle can go stale in the instant between the service
        unlinking a reallocated block and reposting (or if we raced a
        newer reallocation): attaching then raises ``FileNotFoundError``.
        The directory is re-read and the attach retried — the service
        reposts immediately after every reallocation, so the window is
        transient by construction.
        """
        gen = self._dir.generation()
        if gen == self._gen:
            return
        for attempt in range(64):
            payload, gen = self._dir.read()
            if len(payload) == 2:
                # Bare (dist, tables) payload — a directory posted outside
                # ShardedRoutingService.  No stamps means no staleness
                # protocol: every row counts as committed-and-current.
                dist_h, tables_h = payload
                stamps_h, committed, pending = None, 0, 0
            else:
                dist_h, tables_h, stamps_h, committed, pending = payload
            try:
                if self._dist is None:
                    fresh: "list[AttachedMatrix]" = []
                    try:
                        for handle in (dist_h, tables_h, stamps_h):
                            if handle is not None:
                                fresh.append(AttachedMatrix(handle))
                    except FileNotFoundError:
                        for attached in fresh:
                            attached.close()
                        raise
                    self._dist, self._tables = fresh[0], fresh[1]
                    self._stamps = fresh[2] if len(fresh) > 2 else None
                else:
                    self._dist.refresh(dist_h)
                    self._tables.refresh(tables_h)
                    if self._stamps is not None and stamps_h is not None:
                        self._stamps.refresh(stamps_h)
            except FileNotFoundError:
                time.sleep(0.001 * min(attempt + 1, 10))
                continue
            self._gen = gen
            self._committed, self._pending = int(committed), int(pending)
            return
        raise TornReadError("directory kept naming freed blocks (service died mid-resize?)")

    @property
    def num_nodes(self) -> int:
        """Current id-space size n, per the latest directory post."""
        self._sync()
        return self._tables.rows

    @property
    def torn_retries(self) -> int:
        """Seqlock captures discarded so far (torn states observed, retried)."""
        total = 0
        for attached in (self._dist, self._tables):
            if attached is not None:
                total += attached.torn_retries
        return total

    @property
    def generation(self) -> int:
        """The service generation of the last committed state we serve."""
        self._sync()
        return self._committed

    def staleness(self, u: int) -> int:
        """How many committed generations row *u* lags the newest repair.

        ``0`` when quiescent; ``pending − stamp`` while a repair is in
        flight (or died mid-flight) — the quantity ``max_staleness=``
        bounds.
        """
        self._sync()
        if self._stamps is None:  # bare directory: no staleness protocol
            if not (0 <= u < self._tables.rows):
                raise NodeNotFound(u, self._tables.rows)
            return 0
        if not (0 <= u < self._stamps.rows):
            raise NodeNotFound(u, self._stamps.rows)
        return max(0, self._pending - int(self._stamps.read_cell(u, 0)))

    def _too_stale(self, u: int) -> bool:
        # Callers have already synced; rows beyond the stamp matrix (a
        # resize race) count as never committed.
        if self.max_staleness is None or self._stamps is None:
            return False
        stamp = int(self._stamps.read_cell(u, 0)) if u < self._stamps.rows else 0
        return self._pending - stamp > self.max_staleness

    def _check_pair(self, u: int, v: int) -> None:
        if u == v:
            raise ParameterError("source equals target")
        n = self._tables.rows
        for node in (u, v):
            if not (0 <= node < n):
                raise NodeNotFound(node, n)

    def next_hop(self, u: int, v: int) -> "int | None":
        """The served next hop of *u* toward *v* (None when unroutable).

        Also ``None`` when row *u* violates the reader's staleness bound —
        callers degrade to :meth:`hop_fallback` (or drop the packet).
        """
        self._sync()
        self._check_pair(u, v)
        if self._too_stale(u):
            obs.inc("reader.stale_refusals")
            return None
        try:
            hop = self._tables.read_cell(u, v)
        except TornReadError:
            # Writer died mid-write and its row awaits repair: degrade to
            # "unroutable" rather than crash the serving path — the caller
            # falls back or drops the packet, and a resync heals the row.
            obs.inc("reader.torn_refusals")
            return None
        return hop if hop >= 0 else None

    def distance(self, u: int, v: int) -> "int | None":
        """The served H-distance ``d_H(u, v)`` (None when unreachable)."""
        self._sync()
        n = self._dist.rows
        for node in (u, v):
            if not (0 <= node < n):
                raise NodeNotFound(node, n)
        if self._too_stale(u):
            obs.inc("reader.stale_refusals")
            return None
        try:
            d = self._dist.read_cell(u, v)
        except TornReadError:
            obs.inc("reader.torn_refusals")
            return None
        return d if d >= 0 else None

    def hop_fallback(self, u: int, v: int) -> "int | None":
        """A degraded next hop for *u* toward *v* from committed D rows.

        Used when the table entry is dormant (−1-repaired after a crash) or
        refused as too stale.  Works entirely on seqlock-committed distance
        rows: the H-neighbors of *u* are exactly the ``D[u, ·] == 1``
        entries (H is a subgraph, so each is a real edge of some committed
        state), and the hop chosen is the smallest-id neighbor strictly
        closer to *v* per *v*'s committed row.  Strict progress makes every
        fallback journey loop-free against a fixed state; under concurrent
        repair the caller's hop budget bounds the walk instead.  Returns
        ``None`` when no certified-closer neighbor exists (then the packet
        is genuinely undeliverable from the served state).
        """
        self._sync()
        self._check_pair(u, v)
        try:
            row_u = self._dist.read_row(u)
            row_v = self._dist.read_row(v)
        except TornReadError:
            # Either endpoint's row is torn (writer died mid-write): no
            # committed evidence to certify progress from, so refuse.
            obs.inc("reader.torn_refusals")
            return None
        here = int(row_v[u])
        if here < 0:  # v's committed row doesn't reach u: no certified progress
            return None
        nbrs = np.flatnonzero(row_u == 1)
        if nbrs.size == 0:
            return None
        dists = row_v[nbrs]
        closer = (dists >= 0) & (dists < here)
        if not closer.any():
            return None
        # argmin returns the first minimum; nbrs ascends, so ties break to
        # the smallest node id — deterministic across runs and readers.
        candidates = nbrs[closer]
        return int(candidates[np.argmin(dists[closer])])

    def table(self, u: int) -> dict:
        """Node *u*'s next-hop table, in :func:`routing_table`'s dict shape."""
        row = self.table_row(u)
        return {int(v): int(row[v]) for v in np.flatnonzero(row >= 0)}

    def table_row(self, u: int) -> np.ndarray:
        """A stable private copy of T's row *u* (the raw −1-padded array)."""
        self._sync()
        if not (0 <= u < self._tables.rows):
            raise NodeNotFound(u, self._tables.rows)
        return self._tables.read_row(u)

    def distance_row(self, u: int) -> np.ndarray:
        """A stable private copy of D's row *u* (−1 for unreachable)."""
        self._sync()
        if not (0 <= u < self._dist.rows):
            raise NodeNotFound(u, self._dist.rows)
        return self._dist.read_row(u)

    def close(self) -> None:
        for attached in (self._dist, self._tables, self._stamps):
            if attached is not None:
                attached.close()
        self._dir.close()

    def __enter__(self) -> "RouteReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
