"""One-shot fan-out helpers behind the ``workers=`` dispatch.

:func:`maybe_parallel_bfs` backs the ``workers=`` parameter of
:func:`~repro.graph.traversal.batched_bfs` (and through it batched APSP
and the routing-table kernel): publish the CSR snapshot to a pool, scatter
source chunks, let each worker write its distance rows into one shared
output matrix, and hand the caller a private copy.

Engagement rules mirror the ``backend="auto"`` philosophy: an explicit
int or pool always engages (the caller asked); ``"auto"`` engages only
when the graph clears ``tuning.parallel_min_nodes`` and there are enough
sources to amortize the fan-out, and resolves to 1 (serial) on single-core
hosts.  A transient pool is spun up and torn down per call — pass a
long-lived :class:`~repro.parallel.pool.WorkerPool` to amortize process
start-up across calls.
"""

from __future__ import annotations

import numpy as np

from .. import tuning
from .pool import WorkerPool, resolve_workers

__all__ = ["maybe_parallel_bfs", "parallel_tree_edges"]

#: Shared-object names used by the one-shot helpers.
_G, _OUT = "bfs:g", "bfs:out"


def _chunks(items: list, pieces: int) -> "list[list]":
    """Split *items* into at most *pieces* contiguous, near-equal chunks."""
    pieces = max(1, min(pieces, len(items)))
    size, extra = divmod(len(items), pieces)
    out, lo = [], 0
    for i in range(pieces):
        hi = lo + size + (1 if i < extra else 0)
        out.append(items[lo:hi])
        lo = hi
    return out


def maybe_parallel_bfs(csr, sources: "list[int]", cutoff: "int | None", workers) -> "np.ndarray | None":
    """Distance rows for *sources* via a worker pool, or ``None`` (= stay serial).

    Returns a private ``(len(sources), n)`` int32 array whose i-th row is
    ``bfs_distances(csr, sources[i], cutoff)`` — computed by the very same
    batched engine, just in worker processes over shared memory.
    """
    if not sources:
        return None
    if isinstance(workers, WorkerPool):
        # An explicitly supplied pool is used even at W=1 (the caller is
        # amortizing start-up; results are identical either way).
        pool, transient = workers, False
    else:
        w = resolve_workers(workers)
        if w <= 1:
            return None
        if workers == "auto" and (
            csr.num_nodes < tuning.get().parallel_min_nodes or len(sources) < 2 * w
        ):
            return None
        pool, transient = WorkerPool(w), True
    out = None
    try:
        pool.publish_csr(_G, csr)
        out = pool.matrix(_OUT, len(sources), csr.num_nodes)
        payloads = []
        slot = 0
        for chunk in _chunks(list(sources), pool.workers * 4):
            payloads.append((_G, _OUT, chunk, list(range(slot, slot + len(chunk))), cutoff))
            slot += len(chunk)
        pool.run("bfs_rows", payloads)
        return out.copy()
    finally:
        out = None  # release the buffer export before any unlink
        if transient:
            pool.close()


def parallel_tree_edges(
    g, method: str, kwargs: dict, workers, *, roots=None
) -> "dict[int, tuple]":
    """Build every root's dominating tree on a pool; returns ``{root: edges}``.

    The parallel-construction primitive (Censor-Hillel et al.'s theme):
    workers attach the shared CSR of *g*, resolve the construction locally
    and return only the tree edge lists.  Used by ``python -m repro churn
    --workers N`` to verify the maintained spanner against a from-scratch
    build without a serial rebuild.  Returns ``None``-never; with
    ``workers`` resolving to 1 the single worker still builds everything
    (degraded but exact).
    """
    csr = g.freeze() if hasattr(g, "freeze") else g
    roots = list(range(csr.num_nodes)) if roots is None else list(roots)
    if isinstance(workers, WorkerPool):
        pool, transient = workers, False
    else:
        pool, transient = WorkerPool(resolve_workers(workers)), True
    try:
        pool.publish_csr(_G, csr)
        payloads = [
            (_G, method, kwargs, chunk) for chunk in _chunks(roots, pool.workers * 2)
        ]
        results = pool.run("tree_edges", payloads)
        return {u: edges for chunk in results for u, edges in chunk}
    finally:
        if transient:
            pool.close()
