"""Parallel subsystem: shared-memory snapshots, worker pools, sharded serving.

The single-process serving stack (PRs 1–3) left every hot path on one
core.  This package adds the multi-core layer the ROADMAP's "sharded
serving" item calls for, in three tiers:

* :mod:`repro.parallel.shm` — **data plane**: CSR snapshots
  (:meth:`CSRGraph.share <repro.graph.csr.CSRGraph.share>` /
  :meth:`CSRGraph.attach <repro.graph.csr.CSRGraph.attach>`) and dense
  serving matrices in :mod:`multiprocessing.shared_memory`, with
  delta publishing (only dirty row spans cross the bus) and capacity
  headroom for churn;
* :mod:`repro.parallel.pool` — **control plane**: :class:`WorkerPool`,
  W persistent fork/spawn-safe processes attached to the published
  objects, fed small task messages (:data:`~repro.parallel.pool.TASKS`),
  seeded via :mod:`repro.rng`, restart-transparent;
* :mod:`repro.parallel.sharded` — **the serving application**:
  :class:`ShardedRoutingService`, the incremental routing tables of
  :class:`~repro.dynamic.serving.RoutingService` with rows and tables
  partitioned ``u % W`` across shards — property-tested bit-identical to
  the serial service after every event — plus :class:`RouteReader`, a
  read-only query endpoint any process can attach over the seqlock
  -versioned shared matrices to serve ``next_hop``/``route`` lookups
  *while* the shards repair (torn-read-free, property-tested).

One-shot fan-outs (:mod:`repro.parallel.fanout`) back the ``workers=``
parameter of :func:`~repro.graph.traversal.batched_bfs`, the APSP helpers
and :func:`~repro.routing.tables.routing_table`.

``benchmarks/test_bench_parallel.py`` records the W = 1, 2, 4 repair
-throughput curve and the publish costs as ``BENCH_parallel.json``
(degrading to a W = 1 measurement on single-core runners).

With ``REPRO_SANITIZE=1`` the runtime protocol sanitizer
(:mod:`repro.analysis.sanitize`) installs before any shared state is
touched — the import below runs in ``spawn`` workers too, since the task
registry forces this package onto their import path.  The fault
-injection plane (:mod:`repro.faults`, ``REPRO_FAULTS=1`` +
``REPRO_FAULT_PLAN=...``) arms itself through the same import hook, so a
seeded chaos plan survives both start methods.
"""

from ..analysis.sanitize import maybe_install_from_env as _maybe_install_sanitizer
from ..faults import maybe_install_from_env as _maybe_install_faults

_maybe_install_sanitizer()
_maybe_install_faults()

from .pool import TASKS, WorkerError, WorkerPool, resolve_workers  # noqa: E402
from .shm import (
    AttachedCSR,
    AttachedDirectory,
    AttachedMatrix,
    PublishStats,
    SharedCSR,
    SharedCSRHandle,
    SharedDirectory,
    SharedMatrix,
    SharedMatrixHandle,
    attach_csr,
)
from .fanout import maybe_parallel_bfs, parallel_tree_edges
from .sharded import RouteReader, ShardedRoutingService

__all__ = [
    "TASKS",
    "WorkerError",
    "WorkerPool",
    "resolve_workers",
    "AttachedCSR",
    "AttachedDirectory",
    "AttachedMatrix",
    "PublishStats",
    "SharedCSR",
    "SharedCSRHandle",
    "SharedDirectory",
    "SharedMatrix",
    "SharedMatrixHandle",
    "attach_csr",
    "maybe_parallel_bfs",
    "parallel_tree_edges",
    "RouteReader",
    "ShardedRoutingService",
]
