"""Persistent worker pool: the control plane of the parallel subsystem.

:class:`WorkerPool` keeps W long-lived processes attached to the shared
-memory objects of :mod:`repro.parallel.shm` and feeds them small task
messages; all bulk data (CSR snapshots, distance/table matrices) moves
through shared memory, so a task costs one queue round-trip regardless of
graph size.  The design follows the message-passing model of the related
distributed-construction literature: partition the sources, exchange only
summaries.

* **Publishing** — ``publish_csr(name, csr, dirty_rows=...)`` exports or
  delta-updates a named snapshot; ``matrix(name, rows, cols)`` allocates a
  named shared matrix.  Every published object is rebroadcast to freshly
  (re)started workers, which makes :meth:`restart` (and crash recovery)
  transparent to callers.
* **Dispatch** — ``run(fn, payloads)`` scatters payloads round-robin (or
  to explicit worker ids, for shard-owned state) and gathers the results;
  task functions are entries of the module-level :data:`TASKS` registry
  (importable top-level functions, which is what makes the pool safe under
  both ``fork`` and ``spawn`` start methods).
* **Seeding** — each worker derives its stream via
  :func:`repro.rng.derive_seed`, so randomized tasks stay reproducible
  per ``(pool seed, worker id)``.

``workers="auto"`` resolves from the CPU count (and the
``tuning.parallel_min_nodes`` gate, applied by callers such as
:func:`~repro.graph.traversal.batched_bfs`); a single-core host resolves
to one worker, which keeps every code path exercised while adding no
parallelism — the graceful-degradation mode the benchmark gate records on
such runners.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from .. import faults as _faults
from .. import obs, tuning
from ..analysis import sanitize as _sanitize
from ..errors import ParameterError, ReproError
from ..rng import derive_seed, ensure_rng
from .shm import AttachedCSR, AttachedMatrix, PublishStats, SharedCSR, SharedMatrix

__all__ = ["WorkerPool", "WorkerError", "PoolHealth", "resolve_workers", "TASKS"]


class WorkerError(ReproError):
    """A task raised inside a worker; carries the remote traceback."""


@dataclass
class PoolHealth:
    """Cumulative supervision report of one :class:`WorkerPool`.

    Every field is also surfaced as a ``pool.supervision.*`` counter in
    :mod:`repro.obs`; this object is the caller-facing aggregate (e.g.
    :class:`~repro.parallel.sharded.ShardedRoutingService` compares
    ``respawns`` across a dispatch to detect that crash recovery ran).
    """

    respawns: int = 0
    retries: int = 0
    wedge_restarts: int = 0
    backoff_seconds: float = 0.0
    quarantined: int = 0
    torn_rows_repaired: int = 0
    #: worker id -> exitcode observed at its most recent death.
    last_exitcodes: "dict[int, int | None]" = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "respawns": self.respawns,
            "retries": self.retries,
            "wedge_restarts": self.wedge_restarts,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "quarantined": self.quarantined,
            "torn_rows_repaired": self.torn_rows_repaired,
            "last_exitcodes": dict(self.last_exitcodes),
        }


def resolve_workers(workers, *, cpu_count: "int | None" = None) -> int:
    """Resolve a ``workers`` spec to a concrete count.

    ``None``/``1`` → 1 (serial), ``"auto"`` →
    ``min(tuning.auto_max_workers, cpu_count)``, an int is validated and
    passed through.  A :class:`WorkerPool` instance resolves to its own
    size.
    """
    if workers is None:
        return 1
    if isinstance(workers, WorkerPool):
        return workers.workers
    if workers == "auto":
        cpus = os.cpu_count() or 1 if cpu_count is None else cpu_count
        return max(1, min(tuning.get().auto_max_workers, cpus))
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ParameterError(f"workers must be an int, 'auto', None or a WorkerPool, got {workers!r}")
    if workers < 1:
        raise ParameterError(f"workers must be ≥ 1, got {workers}")
    return workers


# --------------------------------------------------------------------- #
# worker-side task functions
# --------------------------------------------------------------------- #


class _WorkerState:
    """Per-worker context: attachments, identity, seeded rng."""

    def __init__(self, worker_id: int, num_workers: int, seed: int) -> None:
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.rng = ensure_rng(derive_seed(seed, "worker", worker_id))
        self.csrs: dict[str, AttachedCSR] = {}
        self.matrices: dict[str, AttachedMatrix] = {}
        self._thawed: dict = {}  # (name, version) -> mutable Graph

    def csr(self, name: str):
        return self.csrs[name].graph

    def matrix(self, name: str) -> np.ndarray:
        return self.matrices[name].array

    def thawed(self, name: str):
        """A mutable :class:`Graph` twin of snapshot *name* (cached per version)."""
        key = (name, self.csrs[name].version)
        g = self._thawed.get(key)
        if g is None:
            self._thawed = {k: v for k, v in self._thawed.items() if k[0] != name}
            self._thawed[key] = g = self.csrs[name].graph.to_graph()
        return g

    def close(self) -> None:
        for a in self.csrs.values():
            a.close()
        for a in self.matrices.values():
            a.close()
        self.csrs.clear()
        self.matrices.clear()
        self._thawed.clear()


def _task_echo(state: _WorkerState, payload):
    """Liveness/identity probe used by the tests."""
    return (state.worker_id, os.getpid(), payload)


def _task_bfs_rows(state: _WorkerState, payload):
    """Multi-source BFS rows into a shared output matrix.

    ``payload = (graph, out, sources, slots, cutoff)`` — run the batched
    engine on the attached snapshot and write row *slots[i]* of the shared
    *out* matrix with the distances from ``sources[i]``.
    """
    from ..graph.traversal import batched_bfs

    graph, out, sources, slots, cutoff = payload
    g = state.csr(graph)
    attached = state.matrices[out]
    dest = attached.array
    slot_of = dict(zip(sources, slots))
    for s, row in batched_bfs(g, sources, cutoff, arrays=True):
        slot = slot_of[s]
        attached.begin_row_write(slot)
        try:
            dest[slot] = row
        finally:
            attached.end_row_write(slot)
    return len(sources)


def _task_serve_rows(state: _WorkerState, payload):
    """Recompute H-distance rows of the shared serving matrix.

    ``payload = (h, dist, sources)`` — for each source (a row this worker's
    shard owns) recompute the BFS row on the attached H snapshot, diff it
    against the current shared row, overwrite it, and report
    ``(source, packed-change-mask)`` for rows that actually moved — the
    only bytes that cross the queue.  On a versioned matrix each row write
    is bracketed by the seqlock counters, so concurrent readers
    (:class:`~repro.parallel.sharded.RouteReader`) never observe a torn row.
    """
    from ..graph.traversal import batched_bfs

    h_name, dist_name, sources = payload
    obs.inc("serve.rows_recomputed", len(sources))
    with obs.span("pool.shard_repair"):
        h = state.csr(h_name)
        attached = state.matrices[dist_name]
        dist = attached.array
        changed = []
        for s, row in batched_bfs(h, sources, arrays=True):
            mask = row != dist[s]
            if mask.any():
                changed.append((s, np.packbits(mask).tobytes()))
                attached.begin_row_write(s)
                try:
                    dist[s] = row
                finally:
                    attached.end_row_write(s)
        return changed


def _task_serve_tables(state: _WorkerState, payload):
    """Re-project next-hop table rows this worker's shard owns.

    ``payload = (g, dist, tables, jobs)`` with ``jobs = [(u, packed-mask |
    None)]`` — identical math to the serial service: argmin over the
    G-neighbors' shared distance rows, restricted to the changed
    destinations.  Returns the number of table entries that changed.
    """
    from ..routing.tables import project_table_row

    g_name, dist_name, tab_name, jobs = payload
    obs.inc("serve.tables_reprojected", len(jobs))
    g = state.csr(g_name)
    dist = state.matrix(dist_name)
    attached = state.matrices[tab_name]
    tables = attached.array
    n = dist.shape[1]
    entries_changed = 0
    for u, packed in jobs:
        if packed is None:
            cols = None
        else:
            mask = np.unpackbits(np.frombuffer(packed, dtype=np.uint8), count=n).astype(bool)
            cols = np.flatnonzero(mask)
        nbrs = g.neighbors_csr(u).tolist()  # sorted ascending == sorted(N_G(u))
        attached.begin_row_write(u)
        try:
            entries_changed += project_table_row(dist, tables, nbrs, u, cols)
        finally:
            attached.end_row_write(u)
    return entries_changed


def _task_tree_edges(state: _WorkerState, payload):
    """Build dominating trees for a chunk of roots (parallel construction).

    ``payload = (graph, method, kwargs, roots)`` — resolves the
    construction in-process and returns each root's tree edge tuple; the
    parent unions them into the spanner (used by the ``churn --workers``
    parallel verification).
    """
    from ..dynamic.maintainer import resolve_construction

    graph, method, kwargs, roots = payload
    construction = resolve_construction(method, **kwargs)
    g = state.thawed(graph)
    out = []
    for u in roots:
        tree = construction.tree_fn(g, u)
        out.append((u, tuple(sorted(tree.edges()))))
    return out


def _task_crash_in_write(state: _WorkerState, payload):
    """Fault injection: raise *inside* a seqlock write bracket.

    ``payload = (matrix, row)`` — opens the bracket on *row* and raises.
    Exercises the crash path the try/finally brackets in the serve tasks
    protect against: the ``finally`` must restore the row version to even
    so concurrent readers terminate instead of spinning.  Lives in the
    production registry (not the test module) so ``spawn`` workers can
    resolve it after re-import.
    """
    name, row = payload
    attached = state.matrices[name]
    attached.begin_row_write(row)
    try:
        raise RuntimeError(f"injected crash inside row {row} write bracket")
    finally:
        attached.end_row_write(row)


def _task_sanitize_nested_begin(state: _WorkerState, payload):
    """Fault injection: open a seqlock bracket *twice* on the same row.

    ``payload = (matrix, row)`` — the nested ``begin_row_write`` is the
    violation the static pass provably cannot see (it happens across two
    dynamic activations of correct-looking code), so the sanitizer suite
    uses this task to assert the runtime layer fires inside real worker
    processes, under both ``fork`` and ``spawn``.  Returns ``(active,
    raised, kinds)`` — whether the sanitizer was installed in this
    process, the raise-mode error message (or None), and the recorded
    violation kinds.  Lives in the production registry so ``spawn``
    workers can resolve it after re-import.
    """
    name, row = payload
    attached = state.matrices[name]
    caught = None
    attached.begin_row_write(row)
    try:
        # Nested begin: flips the row version even mid-write, so a reader
        # would accept a torn row.  Deliberate protocol violation under
        # test; the arithmetic below rebalances the counter.
        attached.begin_row_write(row)  # reprolint: disable=RL001
    except _sanitize.SanitizeError as exc:
        caught = str(exc)
    finally:
        attached.end_row_write(row)
        if caught is None:
            # The nested begin actually incremented (record mode / off):
            # a second end restores the even version for later readers.
            attached.end_row_write(row)
    kinds = [v.kind for v in _sanitize.violations()]
    _sanitize.clear_violations()
    return (_sanitize.active, caught, kinds)


def _task_obs_snapshot(state: _WorkerState, payload):
    """Ship-and-reset this worker's metrics registry (exact-once shipping:
    every observation leaves the worker exactly once, either here or in the
    final snapshot sent on graceful stop)."""
    return obs.snapshot_and_reset()


def _task_obs_record(state: _WorkerState, payload):
    """Record observations directly into this worker's registry.

    ``payload = [(kind, name, value), ...]`` with kind ``inc`` / ``gauge``
    / ``observe``.  Writes are ungated (registry-level) so the
    cross-process merge property tests are independent of the obs knob.
    """
    registry = obs.metrics()
    for kind, name, value in payload:
        if kind == "inc":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.gauge(name, value)
        else:
            registry.observe(name, value)
    return len(payload)


#: Registry of functions a task message may name.  Top-level functions
#: only — the registry is rebuilt by import in every worker, so entries
#: survive both ``fork`` and ``spawn``.
TASKS = {
    "echo": _task_echo,
    "bfs_rows": _task_bfs_rows,
    "serve_rows": _task_serve_rows,
    "serve_tables": _task_serve_tables,
    "tree_edges": _task_tree_edges,
    "crash_in_write": _task_crash_in_write,
    "sanitize_nested_begin": _task_sanitize_nested_begin,
    "obs_snapshot": _task_obs_snapshot,
    "obs_record": _task_obs_record,
}

#: Reserved pseudo task id for the final metrics snapshot a worker ships
#: on graceful stop (real task ids count up from 0; errors outside a task
#: already use -1).
_OBS_TASK_ID = -2


def _segment_names(owner) -> "list[str]":
    """Block names an owner's picklable handle points at (leak check)."""
    import dataclasses

    handle = owner.handle
    return [
        value
        for f in dataclasses.fields(handle)
        for value in (getattr(handle, f.name),)
        if isinstance(value, str) and (f.name == "name" or f.name.endswith("_name"))
    ]


def _worker_main(
    worker_id: int, num_workers: int, seed: int, incarnation: int, task_q, result_q
) -> None:
    """Worker process entry point: attach, loop, answer, clean up."""
    state = _WorkerState(worker_id, num_workers, seed)
    # Fork inherits the parent's live registry (and tracer) — a shard's
    # metrics must start empty or parent-side counts would be double
    # -merged; worker trace events are never shipped, so don't collect.
    obs.reset()
    obs.tracer().stop()
    if _sanitize.active:
        # Same reasoning: inherited bracket/segment state describes the
        # parent's actions, not this process's.
        _sanitize.worker_reset()
    if _faults.active:
        # Re-seed the fault stream per (worker id, incarnation) so chaos
        # runs replay bit-identically under fork and spawn alike, and
        # respawned workers are exempt from fresh-only rules.
        _faults.worker_reset(worker_id, incarnation)
    try:
        while True:
            msg = task_q.get()
            kind = msg[0]
            try:
                if kind == "stop":
                    # Last act: ship whatever this worker observed since
                    # its previous snapshot, so graceful stops (including
                    # restart()) lose no metrics.
                    result_q.put((worker_id, _OBS_TASK_ID, True, obs.snapshot_and_reset()))
                    break
                if kind == "csr":
                    _, name, handle = msg
                    if name in state.csrs:
                        state.csrs[name].refresh(handle)
                    else:
                        state.csrs[name] = AttachedCSR(handle)
                elif kind == "matrix":
                    _, name, handle = msg
                    if name in state.matrices:
                        state.matrices[name].refresh(handle)
                    else:
                        state.matrices[name] = AttachedMatrix(handle)
                elif kind == "drop":
                    _, name = msg
                    for book in (state.csrs, state.matrices):
                        if name in book:
                            book.pop(name).close()
                elif kind == "task":
                    _, task_id, fn, payload = msg
                    if _faults.active:
                        _faults.on_task_start(fn)  # crash / wedge sites
                    result = TASKS[fn](state, payload)
                    if _faults.active:
                        action, lag = _faults.on_result(fn)
                        if action == "drop":
                            continue  # the supervisor's wedge path retries
                        if action == "delay":
                            time.sleep(lag)
                    result_q.put((worker_id, task_id, True, result))
            except BaseException:  # reprolint: disable=RL006 -- crash barrier: the
                # traceback crosses the queue and the parent re-raises it as
                # WorkerError; swallowing nothing, converting everything.
                task_id = msg[1] if kind == "task" else -1
                result_q.put((worker_id, task_id, False, traceback.format_exc()))
    finally:
        state.close()


# --------------------------------------------------------------------- #
# parent-side pool
# --------------------------------------------------------------------- #


class WorkerPool:
    """W persistent worker processes sharing memory with this process.

    Parameters
    ----------
    workers:
        ``"auto"``, an int ≥ 1, or ``None`` (resolves to 1).
    start_method:
        ``"fork"`` (default where available — instant start), ``"spawn"``
        (portable, re-imports the package) or ``"forkserver"``.
    seed:
        Root of the per-worker :mod:`repro.rng` streams.
    task_timeout:
        Seconds to wait for any single gather before declaring workers
        wedged (dead workers are detected sooner).
    supervise:
        Self-healing (default on): a dead or wedged worker is respawned
        with exponential backoff, its published objects replayed, torn
        seqlock rows repaired, and its unanswered tasks re-dispatched —
        all inside :meth:`run`, invisible to the caller.  A task that
        kills *poison_threshold* workers in a row is quarantined (fails
        loudly instead of respawn-looping), and a run spends at most
        *max_respawns* respawns before giving up.  With ``supervise=
        False`` failures raise :class:`WorkerError` immediately (the
        error names each dead worker's exitcode and whether a task was
        in flight); either way the pool auto-resets, so the *next*
        :meth:`run` starts fresh workers — no caller dance required.
        Cumulative counters live in :attr:`health`.

    Workers start lazily on the first :meth:`run`; published objects are
    replayed to workers on every (re)start, so :meth:`restart` — or a
    worker crash — never loses shared state.  Use as a context manager or
    call :meth:`close`, which also frees every published shared-memory
    block.
    """

    def __init__(
        self,
        workers="auto",
        *,
        start_method: "str | None" = None,
        seed: int = 0,
        task_timeout: float = 300.0,
        supervise: bool = True,
        max_respawns: int = 8,
        poison_threshold: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self.workers = resolve_workers(workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self.seed = seed
        self.task_timeout = task_timeout
        self.supervise = supervise
        self.max_respawns = max_respawns
        self.poison_threshold = poison_threshold
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.health = PoolHealth()
        self._incarnations = [0] * self.workers  # respawn count per worker id
        self._ctx = multiprocessing.get_context(start_method)
        self._procs: list = []
        self._task_qs: list = []
        self._result_q = None
        self._shared: dict[str, tuple[str, object]] = {}  # name -> (kind, owner)
        self._next_task_id = 0
        self._closed = False
        self._worker_obs: dict[int, dict] = {}  # wid -> merged shipped snapshots

    # -- lifecycle ------------------------------------------------------ #

    @property
    def alive(self) -> bool:
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def _ensure_started(self) -> None:
        if self._closed:
            raise ParameterError("WorkerPool is closed")
        if self.alive:
            return
        if self._procs:  # a worker died (or was torn down): restart cleanly
            self._stop_workers(graceful=False)
        if _sanitize.active:
            _sanitize.note_pool_start(id(self))
        self._result_q = self._ctx.Queue()
        self._task_qs = [self._ctx.Queue() for _ in range(self.workers)]
        self._procs = []
        for wid in range(self.workers):
            p = self._ctx.Process(
                target=_worker_main,
                args=(
                    wid,
                    self.workers,
                    self.seed,
                    self._incarnations[wid],
                    self._task_qs[wid],
                    self._result_q,
                ),
                daemon=True,
            )
            p.start()
            self._procs.append(p)
        # Replay every published object so fresh workers see current state.
        for name, (kind, owner) in self._shared.items():
            self._broadcast((kind, name, owner.handle))

    def _broadcast(self, msg) -> None:
        for q in self._task_qs:
            q.put(msg)

    def restart(self) -> None:
        """Stop the worker processes; the next task transparently respawns
        them and replays all published shared objects."""
        obs.inc("pool.restarts")
        self._stop_workers(graceful=True)

    def _respawn_worker(self, wid: int) -> None:
        """Replace one dead/wedged worker in place, replaying shared state.

        The worker keeps its id (shard-owned dispatch stays valid) and
        gets a fresh task queue — whatever the dead process left undrained
        is re-sent by the supervisor or re-broadcast here.
        """
        proc = self._procs[wid]
        self.health.last_exitcodes[wid] = proc.exitcode
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        old_q = self._task_qs[wid]
        try:
            old_q.close()
            old_q.cancel_join_thread()
        except (OSError, ValueError):  # pragma: no cover - queue gone
            pass
        self._task_qs[wid] = self._ctx.Queue()
        self._incarnations[wid] += 1
        p = self._ctx.Process(
            target=_worker_main,
            args=(
                wid,
                self.workers,
                self.seed,
                self._incarnations[wid],
                self._task_qs[wid],
                self._result_q,
            ),
            daemon=True,
        )
        p.start()
        self._procs[wid] = p
        for name, (kind, owner) in self._shared.items():
            self._task_qs[wid].put((kind, name, owner.handle))
        self.health.respawns += 1
        obs.inc("pool.supervision.respawns")

    def _repair_shared(self) -> None:
        """Mend seqlock rows a dead writer left mid-write (see
        :meth:`SharedMatrix.repair_torn_rows
        <repro.parallel.shm.SharedMatrix.repair_torn_rows>`)."""
        for _name, (kind, owner) in self._shared.items():
            if kind == "matrix":
                repaired = owner.repair_torn_rows()
                if repaired:
                    self.health.torn_rows_repaired += len(repaired)
                    obs.inc("pool.supervision.torn_rows_repaired", len(repaired))

    def _stop_workers(self, graceful: bool) -> None:
        stopped = set()
        if graceful:
            for wid, q in enumerate(self._task_qs):
                try:
                    q.put(("stop",))
                    stopped.add(wid)
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
        deadline = time.monotonic() + (5.0 if graceful else 0.5)
        for p in self._procs:
            p.join(timeout=max(0.0, deadline - time.monotonic()))
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
                stopped.clear()  # a wedged worker may never have shipped
        self._drain_final_snapshots(stopped)
        for q in (*self._task_qs, *( [self._result_q] if self._result_q else [] )):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):  # pragma: no cover - already closed
                pass
        self._procs, self._task_qs, self._result_q = [], [], None

    def _drain_final_snapshots(self, expected: set) -> None:
        """Absorb the final metric snapshots stopped workers shipped.

        Bounded wait (the ``drain_timeout`` tuning knob,
        ``REPRO_DRAIN_TIMEOUT``): each gracefully-stopped worker sends
        exactly one ``_OBS_TASK_ID`` message before exiting, but its
        queue feeder may still be flushing as ``join`` returns.
        """
        if self._result_q is None:
            return
        expected = set(expected)
        deadline = time.monotonic() + tuning.get().drain_timeout
        while True:
            try:
                wid, task_id, ok, res = self._result_q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                if not expected or time.monotonic() > deadline:
                    break
                time.sleep(0.01)
                continue
            if ok and task_id == _OBS_TASK_ID:
                if _sanitize.active:
                    _sanitize.note_final_snapshot(id(self), wid)
                self._absorb_obs(wid, res)
                expected.discard(wid)

    def _absorb_obs(self, wid: int, snap: dict) -> None:
        have = self._worker_obs.get(wid)
        self._worker_obs[wid] = snap if have is None else obs.merge_snapshots(have, snap)

    def metrics(self) -> dict:
        """Collect and merge every worker's observability registry.

        Live workers are snapshotted (and reset) over the task channel;
        snapshots shipped earlier (graceful stops, restarts) are already
        folded in.  Returns ``{"shards": {wid: snapshot}, "merged":
        snapshot}`` — exact merges, see :mod:`repro.obs.metrics`.
        """
        if self.alive:
            snaps = self.run("obs_snapshot", [None] * self.workers, to=list(range(self.workers)))
            for wid, snap in enumerate(snaps):
                self._absorb_obs(wid, snap)
        shards = {wid: self._worker_obs[wid] for wid in sorted(self._worker_obs)}
        merged = obs.merge_snapshots(*shards.values()) if shards else obs.empty_snapshot()
        return {"shards": shards, "merged": merged}

    def close(self) -> None:
        """Stop the workers and free every published shared-memory block."""
        if self._closed:
            return
        self._stop_workers(graceful=True)
        published = (
            [seg for (_k, owner) in self._shared.values() for seg in _segment_names(owner)]
            if _sanitize.active
            else []
        )
        for _name, (_kind, owner) in self._shared.items():
            owner.close()
        self._shared.clear()
        self._closed = True
        for seg in published:
            if _sanitize.segment_open(seg):
                _sanitize.report_pool_leak(seg)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- shared objects -------------------------------------------------- #

    def publish_csr(self, name: str, csr, dirty_rows=None) -> PublishStats:
        """Export or delta-update snapshot *name*; broadcasts to workers."""
        if self._closed:
            raise ParameterError("WorkerPool is closed")
        entry = self._shared.get(name)
        if entry is None:
            owner = SharedCSR(csr)
            self._shared[name] = ("csr", owner)
            stats = PublishStats(0, -1, True, owner.version)
        else:
            kind, owner = entry
            if kind != "csr":
                raise ParameterError(f"shared object {name!r} is a {kind}, not a csr")
            stats = owner.publish(csr, dirty_rows=dirty_rows)
        if stats.reallocated or dirty_rows is None:
            obs.inc("pool.publish.full", 1)
            obs.inc("pool.publish.full_bytes", stats.bytes_written)
        else:
            obs.inc("pool.publish.delta", 1)
            obs.inc("pool.publish.delta_bytes", stats.bytes_written)
        if self._procs:
            self._broadcast(("csr", name, owner.handle))
        return stats

    def matrix(
        self,
        name: str,
        rows: int,
        cols: int,
        *,
        fill: "int | None" = None,
        versioned: bool = False,
    ) -> np.ndarray:
        """Create (or resize) shared matrix *name*; returns the live view.

        An existing matrix is resized only when the requested shape
        differs; *fill* initializes fresh cells.  ``versioned`` (creation
        only) adds the per-row seqlock counters concurrent readers need.
        The returned numpy view aliases the workers' — drop it before the
        next resize.
        """
        if self._closed:
            raise ParameterError("WorkerPool is closed")
        entry = self._shared.get(name)
        if entry is None:
            owner = SharedMatrix(rows, cols, fill=fill, versioned=versioned)
            self._shared[name] = ("matrix", owner)
        else:
            kind, owner = entry
            if kind != "matrix":
                raise ParameterError(f"shared object {name!r} is a {kind}, not a matrix")
            if (owner.rows, owner.cols) != (rows, cols):
                owner.resize(rows, cols, fill=fill)
        if self._procs:
            self._broadcast(("matrix", name, owner.handle))
        return owner.array

    def matrix_owner(self, name: str) -> SharedMatrix:
        kind, owner = self._shared[name]
        if kind != "matrix":
            raise ParameterError(f"shared object {name!r} is a {kind}, not a matrix")
        return owner

    def drop(self, name: str) -> None:
        """Unpublish *name*: workers unmap it, the parent frees the blocks."""
        entry = self._shared.pop(name, None)
        if entry is None:
            return
        if self._procs:
            self._broadcast(("drop", name))
        entry[1].close()

    # -- dispatch --------------------------------------------------------- #

    def _death_report(self, wids, outstanding) -> str:
        """Human-readable account of dead/wedged workers: exitcode plus
        whether (and how many) tasks were in flight on each."""
        parts = []
        for wid in wids:
            proc = self._procs[wid] if wid < len(self._procs) else None
            code = proc.exitcode if proc is not None else None
            inflight = sum(1 for _slot, w in outstanding.values() if w == wid)
            state = "wedged (alive, unresponsive)" if code is None else f"exitcode {code}"
            flight = f"{inflight} task(s) in flight" if inflight else "no task in flight"
            parts.append(f"worker {wid}: {state}, {flight}")
        return "; ".join(parts)

    def run(self, fn: str, payloads, *, to=None) -> list:
        """Scatter *payloads* to the workers and gather results in order.

        ``to`` optionally names the worker id per payload (shard-owned
        dispatch); default is round-robin.  Raises :class:`WorkerError`
        with the remote traceback if any task fails.  Dead and wedged
        workers are detected instead of hanging; with :attr:`supervise`
        on (the default) they are respawned and their tasks retried —
        see the class docstring — and only budget exhaustion or a poison
        task surfaces as :class:`WorkerError`.
        """
        if fn not in TASKS:
            raise ParameterError(f"unknown task {fn!r} (want one of {sorted(TASKS)})")
        payloads = list(payloads)
        if not payloads:
            return []
        obs.inc("pool.tasks", len(payloads))
        self._ensure_started()
        if to is None:
            to = [i % self.workers for i in range(len(payloads))]
        elif len(to) != len(payloads):
            raise ParameterError("`to` must match payloads in length")
        for wid in to:
            if not (0 <= wid < self.workers):
                raise ParameterError(f"worker id {wid} out of range (pool size {self.workers})")
        outstanding: "dict[int, tuple[int, int]]" = {}  # task id -> (slot, wid)
        kills: "dict[int, int]" = {}  # slot -> consecutive workers it killed

        def dispatch(slot: int, wid: int) -> None:
            task_id = self._next_task_id
            self._next_task_id += 1
            outstanding[task_id] = (slot, wid)
            self._task_qs[wid].put(("task", task_id, fn, payloads[slot]))

        def fail(wids, message: str) -> "WorkerError":
            # Auto-reset before raising: the next run() restarts fresh
            # workers and replays shared state — no caller dance needed.
            report = self._death_report(wids, outstanding)
            self._stop_workers(graceful=False)
            return WorkerError(f"{message} [{report}]")

        def recover(wids, *, wedged: bool) -> None:
            nonlocal deadline, respawned
            if not self.supervise:
                kind = (
                    f"wedged: no result within {self.task_timeout}s"
                    if wedged
                    else "died mid-task"
                )
                raise fail(wids, f"worker(s) {kind} (supervision disabled)") from None
            redo = sorted(tid for tid, (_slot, w) in outstanding.items() if w in wids)
            # Poison accounting: the earliest unanswered task per worker
            # is the one it was (most likely) executing when it died.
            for wid in wids:
                mine = [tid for tid in redo if outstanding[tid][1] == wid]
                if not mine:
                    continue
                slot = outstanding[min(mine)][0]
                kills[slot] = kills.get(slot, 0) + 1
                if kills[slot] >= self.poison_threshold:
                    self.health.quarantined += 1
                    obs.inc("pool.supervision.quarantined")
                    raise fail(
                        wids,
                        f"poison task: {fn!r} payload {slot} killed "
                        f"{kills[slot]} workers in a row — quarantined "
                        "instead of respawn-looping",
                    ) from None
            if respawned + len(wids) > self.max_respawns:
                raise fail(
                    wids, f"respawn budget exhausted ({self.max_respawns} per run)"
                ) from None
            backoff = 0.0
            if respawned:
                backoff = min(self.backoff_cap, self.backoff_base * (2 ** (respawned - 1)))
                time.sleep(backoff)
                self.health.backoff_seconds += backoff
                obs.observe("pool.supervision.backoff_s", backoff)
            for wid in wids:
                self._respawn_worker(wid)
            respawned += len(wids)
            if wedged:
                self.health.wedge_restarts += len(wids)
                obs.inc("pool.supervision.wedge_restarts", len(wids))
            # The dead writer is gone for sure now: mend any row it left
            # mid-write before the retries recompute it.
            self._repair_shared()
            for tid in redo:
                slot, wid = outstanding.pop(tid)
                dispatch(slot, wid)
                self.health.retries += 1
                obs.inc("pool.supervision.retries")
            deadline = time.monotonic() + self.task_timeout

        for slot, wid in enumerate(to):
            dispatch(slot, wid)
        results = [None] * len(payloads)
        deadline = time.monotonic() + self.task_timeout
        respawned = 0
        with obs.span("pool.run"):
            while outstanding:
                try:
                    wid, task_id, ok, res = self._result_q.get(timeout=0.1)
                except queue_mod.Empty:
                    dead = [w for w, p in enumerate(self._procs) if not p.is_alive()]
                    if dead:
                        recover(dead, wedged=False)
                        continue
                    if time.monotonic() > deadline:
                        wedged = sorted({w for _slot, w in outstanding.values()})
                        recover(wedged, wedged=True)
                    continue
                if ok and task_id == _OBS_TASK_ID:  # final snapshot of a
                    if _sanitize.active:  # worker stopped earlier
                        _sanitize.note_final_snapshot(id(self), wid)
                    self._absorb_obs(wid, res)
                    continue
                if not ok:
                    raise WorkerError(f"task failed in worker {wid}:\n{res}")
                if task_id in outstanding:  # ignore strays from a prior failed gather
                    slot, _wid = outstanding.pop(task_id)
                    results[slot] = res
        return results
