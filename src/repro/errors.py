"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Construction algorithms raise the more specific
subclasses below when their preconditions (documented in the paper) are
violated, e.g. asking for a dominating tree of an out-of-range radius or
requesting ``k`` disjoint paths between nodes that are not ``k``-connected
when the caller demanded feasibility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """Structural problem with a graph (unknown node, self loop, ...)."""


class NodeNotFound(GraphError):
    """A node id outside ``range(n)`` was passed to a graph operation."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node!r} not in graph with {n} nodes")
        self.node = node
        self.n = n


class NotASubgraphError(GraphError):
    """An operation required ``H`` to be a sub-graph of ``G`` and it is not."""


class ParameterError(ReproError):
    """An algorithm parameter is outside its documented valid range."""


class InfeasibleError(ReproError):
    """A requested combinatorial object does not exist.

    Raised e.g. when ``k`` internally-disjoint paths between ``s`` and ``t``
    are requested with ``strict=True`` but the pair is not ``k``-connected
    (the paper writes :math:`d^k_G(s,t) = \\infty` for this situation).
    """


class ProtocolError(ReproError):
    """A distributed protocol was driven in an unsupported way."""


class TornReadError(ReproError):
    """A seqlock-protected shared-memory read could not stabilize.

    Concurrent readers retry while a writer holds a row (odd version) or
    moved it mid-read; exhausting the retry budget means the writer is
    gone — in practice a worker died mid-write, leaving the row version
    permanently odd.
    """
