"""Analysis utilities: power-law fits, trial statistics, ASCII tables/plots."""

from .powerlaw import PowerLawFit, fit_power_law, fit_power_law_with_log
from .stats import TrialSummary, summarize
from .tables import format_cell, render_table
from .plot import ascii_loglog, ascii_series

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "fit_power_law_with_log",
    "TrialSummary",
    "summarize",
    "format_cell",
    "render_table",
    "ascii_loglog",
    "ascii_series",
]
