"""Power-law exponent fitting for the scaling experiments.

The paper's quantitative claims are asymptotic exponents: edge counts of
``O(n^{4/3} log n)`` on random unit disk graphs (Th. 2), ``O(k^{2/3} ...)``
in k, ``O(ε^{-(p+1)} n)`` in ε, ``O(r^{p+1})`` tree sizes (Prop. 3).  The
benches verify *shape*, so the estimator of record is a least-squares slope
in log-log space, optionally with a ``log`` correction factor divided out
first (for the ``n^{4/3} log n`` form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ParameterError

__all__ = ["PowerLawFit", "fit_power_law", "fit_power_law_with_log"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y ≈ c · x^exponent`` by log-log least squares."""

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.prefactor * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = a·log x + b``; needs ≥ 2 points, y > 0."""
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if xs_arr.size != ys_arr.size or xs_arr.size < 2:
        raise ParameterError("need at least two (x, y) points of equal count")
    if np.any(xs_arr <= 0) or np.any(ys_arr <= 0):
        raise ParameterError("power-law fitting requires strictly positive data")
    lx, ly = np.log(xs_arr), np.log(ys_arr)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(slope), prefactor=float(np.exp(intercept)), r_squared=r2)


def fit_power_law_with_log(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ c · x^a · log x`` by dividing out the log factor first.

    Matches the ``O(k^{2/3} n^{4/3} log n)`` shape of Theorem 2: the
    returned exponent estimates *a* with the logarithmic correction already
    accounted for.  Requires all x > 1 so ``log x > 0``.
    """
    xs_arr = np.asarray(xs, dtype=float)
    ys_arr = np.asarray(ys, dtype=float)
    if np.any(xs_arr <= 1):
        raise ParameterError("log-corrected fit requires x > 1")
    return fit_power_law(xs_arr, ys_arr / np.log(xs_arr))
