"""The AST-local reprolint rules (``RL001``–``RL007``, ``RL012``, ``RL013``).

Each rule encodes one protocol of the concurrency / reproducibility
layers; the docstring of each class states the invariant, why it matters,
and what a compliant site looks like.  Rules yield raw findings — the
engine handles ``# reprolint: disable=RLxxx`` suppressions.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import FileContext, Finding, Rule, register

__all__ = [
    "SeqlockBracketRule",
    "RngDisciplineRule",
    "ShmLifecycleRule",
    "TuningConstantsRule",
    "WorkerTaskSafetyRule",
    "ExceptionHygieneRule",
    "TimingDisciplineRule",
    "FaultHookConfinementRule",
    "AsyncBlockingCallRule",
]


def _stmt_lists(tree: ast.AST) -> Iterator["list[ast.stmt]"]:
    """Every statement list in *tree* (bodies, else-branches, finally-blocks)."""
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


def _method_call(node: ast.AST, name: str) -> "ast.Call | None":
    """*node* as a ``<recv>.name(...)`` call, else ``None``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == name
    ):
        return node
    return None


@register
class SeqlockBracketRule(Rule):
    """RL001 — seqlock write brackets must be balanced on *all* paths.

    The shared-matrix seqlock protocol (``repro/parallel/shm.py``) flips a
    per-row version counter odd in ``begin_row_write`` and even again in
    ``end_row_write``.  If an exception escapes between the two, the counter
    stays odd forever and every concurrent reader spins until
    ``TornReadError``.  The only construct Python guarantees to run the
    closing half under is ``try/finally``, so the rule demands::

        attached.begin_row_write(u)
        try:
            attached.array[u] = row      # the guarded write
        finally:
            attached.end_row_write(u)

    Three checks: (a) every ``begin_row_write`` statement is immediately
    followed by a ``try`` whose ``finally`` calls the matching
    ``end_row_write``; (b) every ``end_row_write`` call sits inside some
    ``finally`` block; (c) inside a function that opens brackets, writes to
    the versioned array (``x.array[...] = ...`` or an alias bound from
    ``x.array``) happen inside a bracket's ``try`` body.
    """

    code = "RL001"
    name = "seqlock-bracket"
    description = "begin_row_write must be balanced by end_row_write via try/finally"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # The protocol primitives themselves (shm.py) define and document
        # the counter flips; they cannot bracket themselves.
        skip: "set[int]" = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name in (
                "begin_row_write",
                "end_row_write",
            ):
                skip.update(id(sub) for sub in ast.walk(node))

        yield from self._check_begin_bracketed(ctx, skip)
        yield from self._check_end_in_finally(ctx, skip)
        yield from self._check_writes_bracketed(ctx, skip)

    # -- (a) begin immediately followed by try/finally with matching end --- #

    def _check_begin_bracketed(self, ctx: FileContext, skip: "set[int]") -> Iterator[Finding]:
        for block in _stmt_lists(ctx.tree):
            for i, stmt in enumerate(block):
                if id(stmt) in skip or not isinstance(stmt, ast.Expr):
                    continue
                begin = _method_call(stmt.value, "begin_row_write")
                if begin is None:
                    continue
                nxt = block[i + 1] if i + 1 < len(block) else None
                if isinstance(nxt, ast.Try) and self._finally_ends(nxt, begin):
                    continue
                yield self.finding(
                    ctx,
                    stmt,
                    "begin_row_write is not immediately followed by a try/finally "
                    "calling the matching end_row_write — a raise here leaves the "
                    "row version odd and readers spin to TornReadError",
                )

    @staticmethod
    def _finally_ends(try_node: ast.Try, begin: ast.Call) -> bool:
        want_recv = ast.unparse(begin.func.value)  # type: ignore[attr-defined]
        want_args = [ast.unparse(a) for a in begin.args]
        for stmt in try_node.finalbody:
            for node in ast.walk(stmt):
                end = _method_call(node, "end_row_write")
                if (
                    end is not None
                    and isinstance(end.func, ast.Attribute)
                    and ast.unparse(end.func.value) == want_recv
                    and [ast.unparse(a) for a in end.args] == want_args
                ):
                    return True
        return False

    # -- (b) every end_row_write lives in a finally block ------------------ #

    def _check_end_in_finally(self, ctx: FileContext, skip: "set[int]") -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if id(node) in skip:
                continue
            end = _method_call(node, "end_row_write")
            if end is None or not self._is_call_expr(ctx, end):
                continue
            if not self._in_finally(ctx, end):
                yield self.finding(
                    ctx,
                    end,
                    "end_row_write outside a finally block — it is skipped when "
                    "the guarded write raises",
                )

    @staticmethod
    def _is_call_expr(ctx: FileContext, call: ast.Call) -> bool:
        # Only statement-position calls count; `x.end_row_write` referenced
        # as a value (e.g. passed around) is out of protocol scope.
        return isinstance(ctx.parent(call), ast.Expr)

    @staticmethod
    def _in_finally(ctx: FileContext, node: ast.AST) -> bool:
        child: ast.AST = node
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.Try) and any(
                child is stmt or id(child) in {id(s) for s in ast.walk(stmt)}
                for stmt in anc.finalbody
            ):
                return True
            child = anc
        return False

    # -- (c) versioned-array writes happen inside a bracket ---------------- #

    def _check_writes_bracketed(self, ctx: FileContext, skip: "set[int]") -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if id(func) in skip:
                continue
            has_bracket = any(
                _method_call(n, "begin_row_write") is not None for n in ast.walk(func)
            )
            if not has_bracket:
                continue
            aliases = {
                tgt.id
                for stmt in ast.walk(func)
                if isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Attribute)
                and stmt.value.attr == "array"
                for tgt in stmt.targets
                if isinstance(tgt, ast.Name)
            }
            for stmt in ast.walk(func):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for tgt in targets:
                    if not isinstance(tgt, ast.Subscript):
                        continue
                    base = tgt.value
                    is_versioned = (isinstance(base, ast.Name) and base.id in aliases) or (
                        isinstance(base, ast.Attribute) and base.attr == "array"
                    )
                    if is_versioned and not self._in_bracket_try(ctx, stmt):
                        yield self.finding(
                            ctx,
                            stmt,
                            "write to a versioned shared array outside a seqlock "
                            "bracket (begin_row_write / try / finally: end_row_write)",
                        )

    @staticmethod
    def _in_bracket_try(ctx: FileContext, node: ast.AST) -> bool:
        child: ast.AST = node
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.Try):
                in_body = any(
                    child is stmt or id(child) in {id(s) for s in ast.walk(stmt)}
                    for stmt in anc.body
                )
                has_end = any(
                    _method_call(n, "end_row_write") is not None
                    for stmt in anc.finalbody
                    for n in ast.walk(stmt)
                )
                if in_body and has_end:
                    return True
            child = anc
        return False


@register
class RngDisciplineRule(Rule):
    """RL002 — raw RNG construction is confined to :mod:`repro.rng`.

    Reproducibility of the experiment tables rests on every random stream
    being derived from an explicit seed through ``ensure_rng`` /
    ``derive_seed`` / ``spawn``.  A stray ``np.random.default_rng()`` or
    module-level ``random.shuffle`` silently forks an unseeded stream and
    the benchmark numbers stop being bit-reproducible.  Only
    ``src/repro/rng.py`` may touch the raw constructors.
    """

    code = "RL002"
    name = "rng-discipline"
    description = "raw np.random/random construction only inside repro/rng.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_module("repro/rng.py"):
            return
        random_mods: "set[str]" = set()  # names bound to the `random` module
        numpy_mods: "set[str]" = set()  # names bound to `numpy`
        np_random_mods: "set[str]" = set()  # names bound to `numpy.random`
        direct: "set[str]" = set()  # names imported from random/numpy.random

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_mods.add(bound)
                    elif alias.name == "numpy":
                        numpy_mods.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname is not None:
                            np_random_mods.add(alias.asname)
                        else:
                            numpy_mods.add("numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    direct.update(a.asname or a.name for a in node.names)
                elif node.module == "numpy.random":
                    direct.update(a.asname or a.name for a in node.names)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_mods.add(alias.asname or alias.name)

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            hit: "str | None" = None
            if isinstance(func, ast.Name) and func.id in direct:
                hit = func.id
            elif isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name) and base.id in random_mods | np_random_mods:
                    hit = f"{base.id}.{func.attr}"
                elif (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in numpy_mods
                ):
                    hit = f"{base.value.id}.random.{func.attr}"
            if hit is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"raw RNG call {hit}(...) outside repro/rng.py — thread a seed "
                    "through repro.rng.ensure_rng/derive_seed/spawn instead",
                )


@register
class ShmLifecycleRule(Rule):
    """RL003 — shared-memory lifecycle stays inside the shm module.

    ``repro/parallel/shm.py`` owns the create/attach/close/unlink pairing
    (including the bpo-39959 resource-tracker workaround) and the ``_pin``
    protocol that keeps an attachment alive as long as numpy views into it
    exist.  A ``SharedMemory(...)`` constructed anywhere else bypasses that
    pairing and leaks segments (or unlinks ones still in use); poking
    ``_wrap_views``/``_pin`` from outside breaks the pinning contract.
    """

    code = "RL003"
    name = "shm-lifecycle"
    description = "SharedMemory construction and _pin/_wrap_views only in shm.py/csr.py"

    _SHM_MODULE = "repro/parallel/shm.py"
    _PIN_MODULES = ("repro/parallel/shm.py", "repro/graph/csr.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_shm = ctx.in_module(self._SHM_MODULE)
        in_pin = ctx.in_module(*self._PIN_MODULES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and not in_shm:
                func = node.func
                named_shm = (isinstance(func, ast.Name) and func.id == "SharedMemory") or (
                    isinstance(func, ast.Attribute) and func.attr == "SharedMemory"
                )
                if named_shm:
                    yield self.finding(
                        ctx,
                        node,
                        "direct SharedMemory(...) outside repro/parallel/shm.py — "
                        "use SharedCSR/SharedMatrix/attach_* so close/unlink pairing "
                        "and pinning are handled",
                    )
            if isinstance(node, ast.Attribute) and not in_pin:
                if node.attr in ("_wrap_views", "_pin"):
                    yield self.finding(
                        ctx,
                        node,
                        f"access to {node.attr} outside the shm/csr pinning "
                        "implementation — attachments must be pinned only via "
                        "attach_csr/attach_matrix",
                    )


@register
class TuningConstantsRule(Rule):
    """RL004 — dispatch thresholds live in :mod:`repro.tuning`, not inline.

    Backend/parallel/batch dispatch decisions (set-vs-CSR crossover, worker
    fan-out gate, batch chunk size) are hardware-dependent.  Inlining the
    threshold as a numeric literal in the dispatch module makes it
    untunable — no ``REPRO_*`` env var, no ``tuning.overridden`` in tests,
    no ``python -m repro tune`` recalibration.  The rule fires inside the
    dispatch modules on (a) module-level ALL-CAPS threshold constants and
    (b) comparisons of ``num_nodes``/``cpu_count`` against an int literal.
    """

    code = "RL004"
    name = "tuning-constants"
    description = "dispatch thresholds must come from repro.tuning, not literals"

    #: Modules that make backend/parallel/batch dispatch decisions.
    _DISPATCH_MODULES = (
        "repro/graph/traversal.py",
        "repro/graph/distances.py",
        "repro/routing/tables.py",
        "repro/parallel/pool.py",
        "repro/parallel/fanout.py",
    )

    _NAME_RE = re.compile(r"(CHUNK|MIN|MAX|BATCH|WORKERS|NODES|FRONTIER|THRESHOLD)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_module(*self._DISPATCH_MODULES):
            return
        # (a) module-level ALL-CAPS threshold constants.
        for stmt in ctx.tree.body:
            target: "ast.expr | None" = None
            value: "ast.expr | None" = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id.isupper()
                and self._NAME_RE.search(target.id)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
                and value.value >= 2
            ):
                yield self.finding(
                    ctx,
                    stmt,
                    f"inlined dispatch constant {target.id} = {value.value} — move it "
                    "to a repro.tuning knob with a REPRO_* env var",
                )
        # (b) literal thresholds compared against num_nodes / cpu_count.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            literals = [
                s
                for s in sides
                if isinstance(s, ast.Constant)
                and isinstance(s.value, int)
                and not isinstance(s.value, bool)
                and s.value >= 2
            ]
            gated = any(
                not isinstance(s, ast.Constant)
                and re.search(r"num_nodes|cpu_count", ast.unparse(s))
                for s in sides
            )
            for lit in literals:
                if gated:
                    yield self.finding(
                        ctx,
                        lit,
                        f"dispatch gate compares num_nodes/cpu_count against inline "
                        f"literal {lit.value} — read the threshold from repro.tuning",
                    )


@register
class WorkerTaskSafetyRule(Rule):
    """RL005 — worker entry points must survive a ``spawn`` re-import.

    Under the ``spawn`` start method a worker process re-imports the module
    and looks the task function up *by qualified name*; lambdas, nested
    functions, and bound methods either fail to pickle or rebind to the
    wrong object.  Everything registered in ``TASKS`` and every
    ``Process(target=...)`` must therefore be a module-level function.
    """

    code = "RL005"
    name = "worker-task-safety"
    description = "TASKS entries and Process targets must be module-level functions"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_defs = {
            stmt.name
            for stmt in ctx.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested_defs = {
            node.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name not in module_defs
        }

        def vet(value: ast.expr, where: str) -> Iterator[Finding]:
            if isinstance(value, ast.Lambda):
                yield self.finding(
                    ctx, value, f"lambda used as {where} — not picklable under spawn"
                )
            elif isinstance(value, ast.Name):
                if value.id in nested_defs:
                    yield self.finding(
                        ctx,
                        value,
                        f"nested function {value.id!r} used as {where} — spawn "
                        "workers re-import by qualified name; hoist it to module "
                        "level",
                    )
            elif not isinstance(value, (ast.Constant, ast.Attribute)):
                # Attribute (e.g. module.func) resolves at import time and is
                # fine; anything structurally weirder is worth a look.
                yield self.finding(
                    ctx,
                    value,
                    f"{where} is not a plain module-level function reference",
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if (
                        isinstance(tgt, ast.Name)
                        and tgt.id == "TASKS"
                        and isinstance(node.value, ast.Dict)
                    ):
                        for v in node.value.values:
                            if v is not None:
                                yield from vet(v, "a TASKS entry")
                    elif (
                        isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "TASKS"
                    ):
                        yield from vet(node.value, "a TASKS entry")
            elif isinstance(node, ast.Call):
                func_name = ast.unparse(node.func)
                if func_name == "Process" or func_name.endswith(".Process"):
                    for kw in node.keywords:
                        if kw.arg == "target":
                            yield from vet(kw.value, "a Process target")


@register
class ExceptionHygieneRule(Rule):
    """RL006 — no silent broad ``except`` in the library and benchmarks.

    A swallowed exception in a worker loop turns a crash into a hang (the
    parent waits forever for a result); in a reader it turns a torn read
    into a wrong answer.  Broad handlers (bare ``except``, ``Exception``,
    ``BaseException``) are allowed only when they re-raise (including
    wrapping in ``WorkerError``/``TornReadError``) or inside ``__del__``
    (where exceptions during interpreter teardown must not escape).
    Anything else needs a narrowed exception type or a justified
    ``# reprolint: disable=RL006`` with a reason.
    """

    code = "RL006"
    name = "exception-hygiene"
    description = "no silent bare/broad except outside __del__ unless it re-raises"

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            func = ctx.enclosing_function(node)
            if func is not None and func.name == "__del__":
                continue  # GC safety net: nothing may escape a finalizer
            if any(isinstance(sub, ast.Raise) for stmt in node.body for sub in ast.walk(stmt)):
                continue  # re-raises (possibly wrapped in WorkerError & co.)
            label = "bare except" if node.type is None else f"except {ast.unparse(node.type)}"
            yield self.finding(
                ctx,
                node,
                f"{label} swallows errors silently — narrow the exception type, "
                "re-raise (optionally wrapped in WorkerError/TornReadError), or "
                "justify with an inline suppression",
            )

    def _is_broad(self, type_node: "ast.expr | None") -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Attribute):
            return type_node.attr in self._BROAD
        return False


@register
class TimingDisciplineRule(Rule):
    """RL007 — bare ``perf_counter`` timing is confined to ``repro/obs/``.

    Scattered ``t0 = time.perf_counter()`` sites produce timings that die
    in local variables: they cannot be merged across worker processes,
    exported to a ``--metrics`` snapshot, or traced.  All wall-clock
    measurement goes through :mod:`repro.obs` — ``Stopwatch`` for elapsed
    regions, ``span(name)`` when the timing should reach the metrics tree
    and the tracer, ``time_best`` for calibration/benchmark minima.  Only
    the ``repro/obs/`` package itself (the primitives' home) may call
    ``time.perf_counter`` / ``perf_counter_ns`` directly; deadline
    arithmetic on ``time.monotonic`` is not timing and stays allowed.
    """

    code = "RL007"
    name = "timing-discipline"
    description = (
        "bare time.perf_counter() outside repro/obs/ "
        "(use obs.Stopwatch / obs.span / obs.time_best)"
    )

    _CLOCKS = ("perf_counter", "perf_counter_ns")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "/repro/obs/" in f"/{ctx.posix_path}":
            return  # the primitives' home — the one place allowed to call it
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                called = func.attr
            elif isinstance(func, ast.Name):
                called = func.id
            else:
                continue
            if called in self._CLOCKS:
                yield self.finding(
                    ctx,
                    node,
                    f"bare {called}() timing outside repro/obs — use "
                    "obs.Stopwatch/span (metrics-tree timing) or "
                    "obs.time_best (benchmark minima)",
                )


@register
class FaultHookConfinementRule(Rule):
    """RL012 — fault-hook installation is confined to ``repro/faults/``.

    ``faults.install(plan)`` swaps the process-global hook state that
    every worker task start, result send, row write, and shm call routes
    through.  An ad-hoc install buried in library code would arm faults
    outside the documented protocol (``REPRO_FAULTS`` gate + plan spec),
    silently survive into child processes, and make a "quiet" run lie.
    Everyone outside the fault plane arms through the environment —
    ``arm_env`` + ``maybe_install_from_env`` (which respects an existing
    plan) — and disarms with ``uninstall``; those entry points, plus the
    read-only hooks (``on_*``, ``worker_reset``, ``fired``,
    ``current_plan``), stay allowed everywhere.
    """

    code = "RL012"
    name = "fault-hook-confinement"
    description = (
        "faults.install(...) or faults.active mutation outside repro/faults/ "
        "(arm via arm_env + maybe_install_from_env)"
    )

    _PACKAGE = "/repro/faults/"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if self._PACKAGE in f"/{ctx.posix_path}":
            return  # the fault plane's home owns its own state
        aliases = {"faults"}  # conventional name; refined by the imports below
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro" or (node.module or "").endswith(".faults"):
                    for alias in node.names:
                        if node.module == "repro" and alias.name != "faults":
                            continue
                        if node.module != "repro" and alias.name == "install":
                            yield self.finding(
                                ctx,
                                node,
                                "importing faults.install outside repro/faults/ — "
                                "arm through arm_env + maybe_install_from_env",
                            )
                            continue
                        if node.module != "repro":
                            continue
                        aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.faults":
                        aliases.add(alias.asname or "repro.faults")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "install"
                    and self._names_faults(func.value, aliases)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "faults.install(...) outside repro/faults/ — arm through "
                        "the environment (arm_env + maybe_install_from_env) so "
                        "fork and spawn workers agree on the plan",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "active"
                        and self._names_faults(target.value, aliases)
                    ):
                        yield self.finding(
                            ctx,
                            target,
                            "assignment to faults.active outside repro/faults/ — "
                            "hook state changes only through install/uninstall",
                        )

    @staticmethod
    def _names_faults(value: ast.AST, aliases: "set[str]") -> bool:
        if isinstance(value, ast.Name):
            return value.id in aliases
        if isinstance(value, ast.Attribute):  # repro.faults.install(...)
            parts = []
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                parts.append(value.id)
                return ".".join(reversed(parts)) in aliases
        return False


@register
class AsyncBlockingCallRule(Rule):
    """RL013 — coroutines in ``repro/distributed/`` must not block the loop.

    The actor tier multiplexes every shard actor, the stream router, and
    the inbox pumps on *one* event loop.  A single blocking call inside a
    coroutine — ``time.sleep``, a sync ``queue.Queue.get``/``put``, a raw
    ``socket.recv`` — stalls all of them at once: HELLO beacons stop,
    neighbor timeouts fire spuriously, and the quiescence detector reads
    a frozen transport as converged.  Inside ``async def`` under
    ``repro/distributed/`` the rule therefore forbids:

    * ``time.sleep(...)`` (module-alias and ``from time import sleep``
      aware) — use ``await asyncio.sleep(...)``;
    * non-awaited ``.get(...)``/``.put(...)`` on a queue-named receiver
      (``queue`` substring, bare ``q``, or a ``*_q`` suffix) — use
      ``asyncio.Queue`` and await it, or the ``_nowait`` variants
      (``dict.get`` on ordinary names is untouched);
    * non-awaited ``.recv``/``.recvfrom``/``.recv_into`` — use asyncio
      streams (``StreamReader``/``StreamWriter``).

    Nested ``def`` bodies are exempt (they run off-loop, e.g. as executor
    targets), as is everything outside the package: the rest of the
    codebase is synchronous by design and RL013 has nothing to say there.
    """

    code = "RL013"
    name = "async-blocking-call"
    description = (
        "blocking call (time.sleep / sync queue get/put / socket recv) "
        "inside async def under repro/distributed/"
    )

    _PACKAGE = "/repro/distributed/"
    _QUEUE_OPS = frozenset({"get", "put"})
    _SOCKET_OPS = frozenset({"recv", "recvfrom", "recv_into"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if self._PACKAGE not in f"/{ctx.posix_path}":
            return  # only the actor tier runs an event loop worth guarding
        time_aliases = {"time"}
        sleep_names: "set[str]" = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_names.add(alias.asname or "sleep")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node, time_aliases, sleep_names)

    def _check_coroutine(
        self,
        ctx: FileContext,
        coro: ast.AsyncFunctionDef,
        time_aliases: "set[str]",
        sleep_names: "set[str]",
    ) -> Iterator[Finding]:
        nodes = list(self._own_nodes(coro))
        awaited = {id(n.value) for n in nodes if isinstance(n, ast.Await)}
        for node in nodes:
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in sleep_names:
                yield self.finding(
                    ctx,
                    node,
                    f"time.sleep() blocks the event loop inside async "
                    f"{coro.name}() — await asyncio.sleep() instead",
                )
            elif not isinstance(func, ast.Attribute):
                continue
            elif (
                func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"time.sleep() blocks the event loop inside async "
                    f"{coro.name}() — await asyncio.sleep() instead",
                )
            elif func.attr in self._QUEUE_OPS and self._queueish(func.value):
                yield self.finding(
                    ctx,
                    node,
                    f"sync queue .{func.attr}() inside async {coro.name}() — "
                    "use asyncio.Queue and await it (or the _nowait variant)",
                )
            elif func.attr in self._SOCKET_OPS:
                yield self.finding(
                    ctx,
                    node,
                    f"blocking socket .{func.attr}() inside async {coro.name}() "
                    "— use asyncio streams (StreamReader/StreamWriter)",
                )

    @staticmethod
    def _own_nodes(coro: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes in *coro*'s own body, skipping nested function defs."""
        stack: "list[ast.AST]" = list(coro.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _queueish(value: ast.AST) -> bool:
        """Receiver names that mean a queue, so ``dict.get`` stays clean."""
        if isinstance(value, ast.Name):
            name = value.id
        elif isinstance(value, ast.Attribute):
            name = value.attr
        else:
            return False
        low = name.lower()
        return "queue" in low or low == "q" or low.endswith("_q")
