"""reprolint — project-specific AST lint rules (``python -m repro lint``).

Public surface: the engine (:class:`Finding`, :class:`Rule`,
:func:`lint_paths`, …) plus the rule classes in
:mod:`repro.analysis.lint.rules`.  Importing this package registers every
rule in :data:`REGISTRY`.
"""

from .engine import (
    REGISTRY as REGISTRY,
    FileContext as FileContext,
    Finding as Finding,
    Rule as Rule,
    default_rules as default_rules,
    iter_python_files as iter_python_files,
    lint_file as lint_file,
    lint_paths as lint_paths,
    parse_suppressions as parse_suppressions,
    register as register,
)
from . import rules as rules
