"""reprolint — the AST engine behind ``python -m repro lint``.

The concurrency and reproducibility layers of this repository rest on
hand-maintained *protocols* rather than language-enforced invariants:
seqlock write brackets around shared-matrix rows, pinned shared-memory
attachments, seeds that flow through :mod:`repro.rng`, worker tasks that
must survive a ``spawn`` re-import.  Nothing in Python stops a refactor
from quietly violating them — and a violated protocol does not fail a
unit test, it deadlocks a reader three PRs later.  reprolint encodes each
protocol as a static-analysis rule over the AST, so the check gate
(``scripts/check.sh`` step [5/5]) fails the moment a violation is
*written*, not the day it is *scheduled*.

Architecture
------------
* :class:`Rule` — one invariant; subclasses implement ``check(ctx)`` and
  register themselves in :data:`REGISTRY` via the :func:`register`
  decorator (the AST-local codes ``RL001``–``RL007`` and ``RL012`` live
  in :mod:`repro.analysis.lint.rules`; the interprocedural codes
  ``RL008``–``RL011`` live in :mod:`repro.analysis.deep` and run under
  ``python -m repro lint --deep``).
* :class:`FileContext` — one parsed file: source, AST, a lazily built
  parent map (for ancestor queries like "is this statement inside a
  ``finally`` block?"), and the parsed suppression comments.
* :func:`lint_paths` / :func:`lint_file` — walk files, run every rule,
  drop suppressed findings, return a sorted :class:`Finding` list.

Suppressions
------------
A finding is silenced by a ``# reprolint: disable=RL001`` comment on the
same *logical* line (several codes may be comma-separated; a bare
``# reprolint: disable`` silences every rule on that line).  For a
statement wrapped over several physical lines the comment may sit on any
of them — including the closing paren — and applies to the whole span,
because findings anchor to the statement's first line while formatters
push trailing comments to the last.  A comment on its own line scopes to
that line only.  Suppressions are deliberately line-scoped — a protocol
exemption should be visible exactly where it applies, next to the
justification comment.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator

from ...errors import ParameterError

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "REGISTRY",
    "register",
    "default_rules",
    "parse_suppressions",
    "iter_python_files",
    "lint_file",
    "lint_paths",
]

#: Rule code reserved for files the engine cannot parse at all.
PARSE_ERROR_CODE = "RL000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?:\s*=\s*(RL\d{3}(?:\s*,\s*RL\d{3})*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location (sortable by location).

    ``suppressed`` is ``False`` for every finding the default pass returns;
    the JSON output (``lint --format json`` → ``keep_suppressed=True``)
    also carries the findings an inline comment silenced, flagged.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False

    def format(self) -> str:
        """The canonical one-line report: ``path:line:col: RLxxx message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: Token types that neither carry code nor terminate a logical line —
#: seeing one of these never starts or ends a suppression span.
_NEUTRAL_TOKENS = frozenset(
    {
        tokenize.NL,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
        tokenize.ENCODING,
    }
)


def parse_suppressions(source: str) -> "dict[int, frozenset[str] | None]":
    """Map physical line number → suppressed rule codes (``None`` = all).

    Comments are found with :mod:`tokenize`, so a ``# reprolint:`` inside a
    string literal never counts as a suppression.  A suppression trailing
    *any* physical line of a multi-line statement applies to the whole
    logical line (every physical line of the span) — so a disable on the
    closing paren of a wrapped call silences the finding reported at the
    call's first line.  A comment on a line of its own scopes to exactly
    that line.
    """
    out: "dict[int, frozenset[str] | None]" = {}

    def add(line: int, codes: "frozenset[str] | None") -> None:
        have = out.get(line, frozenset())
        out[line] = None if (codes is None or have is None) else have | codes

    pending: "list[frozenset[str] | None]" = []  # comments inside the current span
    logical_start: "int | None" = None  # first row of the open logical line
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.search(tok.string)
                if match is None:
                    continue
                codes = match.group(1)
                parsed = (
                    None
                    if codes is None
                    else frozenset(c.strip() for c in codes.split(","))
                )
                if logical_start is None:
                    add(tok.start[0], parsed)  # own-line comment: that line only
                else:
                    pending.append(parsed)  # defer until the span's extent is known
            elif tok.type == tokenize.NEWLINE:  # end of a logical line
                if logical_start is not None:
                    for parsed in pending:
                        for line in range(logical_start, tok.start[0] + 1):
                            add(line, parsed)
                pending.clear()
                logical_start = None
            elif tok.type not in _NEUTRAL_TOKENS:
                if logical_start is None:
                    logical_start = tok.start[0]
    except tokenize.TokenError:
        # A malformed tail (unterminated string) already surfaces as a
        # parse-error finding; suppressions seen so far still apply.
        pass
    return out


class FileContext:
    """One file under analysis: source, AST, parents, suppressions."""

    def __init__(self, path: "Path | str", source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = parse_suppressions(source)
        self._parents: "dict[int, ast.AST] | None" = None

    @property
    def posix_path(self) -> str:
        """Forward-slash path used by rules for module scoping."""
        return self.path.as_posix()

    def in_module(self, *suffixes: str) -> bool:
        """True when this file is one of the named modules (path suffix match)."""
        return any(self.posix_path.endswith(suffix) for suffix in suffixes)

    @property
    def parent_map(self) -> "dict[int, ast.AST]":
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[id(child)] = parent
        return self._parents

    def parent(self, node: ast.AST) -> "ast.AST | None":
        return self.parent_map.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def is_suppressed(self, rule: str, line: int) -> bool:
        if line not in self.suppressions:
            return False
        codes = self.suppressions[line]
        return codes is None or rule in codes


class Rule:
    """Base class for one lint rule; subclasses set the class attributes.

    ``code`` is the stable ``RLxxx`` identifier used in reports and
    suppressions; ``name`` a short slug; ``description`` the one-line
    summary shown by ``python -m repro lint --list-rules``.  ``check``
    yields findings — suppression filtering is the engine's job, not the
    rule's.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )


#: code -> rule class; populated by the :func:`register` decorator.
REGISTRY: "dict[str, type[Rule]]" = {}


def register(cls: "type[Rule]") -> "type[Rule]":
    """Class decorator adding a rule to :data:`REGISTRY` (code must be unique)."""
    if not cls.code or not re.fullmatch(r"RL\d{3}", cls.code):
        raise ParameterError(f"rule {cls.__name__} needs a code matching RLxxx")
    if cls.code in REGISTRY:
        raise ParameterError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls
    return cls


def default_rules() -> "list[Rule]":
    """Fresh instances of every registered rule, sorted by code."""
    from . import rules as _rules  # noqa: F401  (import populates REGISTRY)

    return [REGISTRY[code]() for code in sorted(REGISTRY)]


def iter_python_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    """Yield ``.py`` files under *paths* (files or directories), sorted.

    Hidden directories and ``__pycache__`` are skipped; a missing path is a
    :class:`~repro.errors.ParameterError` — the check gate should never
    silently lint nothing.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.relative_to(path).parts
                if any(p.startswith(".") or p == "__pycache__" for p in parts):
                    continue
                yield sub
        else:
            raise ParameterError(f"lint path does not exist: {path}")


def lint_file(
    path: "Path | str",
    rules: "Iterable[Rule] | None" = None,
    *,
    source: "str | None" = None,
    keep_suppressed: bool = False,
) -> "list[Finding]":
    """Run *rules* (default: all registered) over one file.

    *source* overrides the file content — used by the fixture tests to lint
    a snippet *as if* it lived at *path* (several rules scope by module).
    With *keep_suppressed* the findings an inline comment silenced are
    returned too, marked ``suppressed=True`` (the JSON output wants them);
    by default they are dropped.
    """
    file_path = Path(path)
    text = file_path.read_text(encoding="utf-8") if source is None else source
    try:
        ctx = FileContext(file_path, text)
    except SyntaxError as exc:
        return [
            Finding(
                path=str(file_path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    active = default_rules() if rules is None else list(rules)
    findings: "list[Finding]" = []
    for rule in active:
        for f in rule.check(ctx):
            if not ctx.is_suppressed(f.rule, f.line):
                findings.append(f)
            elif keep_suppressed:
                findings.append(replace(f, suppressed=True))
    return sorted(findings)


def lint_paths(
    paths: Iterable["Path | str"],
    rules: "Iterable[Rule] | None" = None,
    *,
    keep_suppressed: bool = False,
) -> "list[Finding]":
    """Run the rules over every Python file under *paths*; sorted findings."""
    active = default_rules() if rules is None else list(rules)
    findings: "list[Finding]" = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, active, keep_suppressed=keep_suppressed))
    return sorted(findings)
