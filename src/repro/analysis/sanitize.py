"""Runtime protocol sanitizer — the dynamic twin of ``lint --deep``.

The interprocedural rules (:mod:`repro.analysis.deep`) prove what they
can statically; everything the over-approximation cannot decide (which
concrete object a ``self`` attribute holds, whether two processes really
interleave, whether a segment outlives its pool) is checked *here*, at
runtime, TSan-style.  Set ``REPRO_SANITIZE=1`` and the hooks compiled
into :mod:`repro.parallel` start feeding three state machines:

* **seqlock brackets** — per (versions-segment, row) nesting depth:
  a second ``begin_row_write`` on an open row, an ``end_row_write``
  without a begin, or a matrix closed with a row still open is a
  violation (``seqlock.nested_begin`` / ``seqlock.unmatched_end`` /
  ``seqlock.open_at_close``);
* **shm segments** — every segment created by this process is tracked
  until its ``unlink``; :func:`open_segments` / :func:`segment_open`
  let the pool assert nothing leaked at close (``shm.leak_at_pool_close``
  is reported by the pool hook itself);
* **snapshot shipping** — each worker's final observability snapshot
  must be absorbed exactly once per pool start
  (``obs.double_final_snapshot``).

Two modes: ``raise`` (default — first violation raises
:class:`SanitizeError` at the violating call site) and ``record``
(``REPRO_SANITIZE=record`` — violations accumulate for
:func:`violations`, which the mutation suite uses to assert the
sanitizer *would* have fired).  Worker processes inherit the
installation: ``fork`` copies the flag, ``spawn`` re-imports
:mod:`repro.parallel` whose import hook calls
:func:`maybe_install_from_env` — and :func:`worker_reset` clears
inherited per-process state at worker startup.

The hooks are written to cost one module-attribute load when disabled
(``if not sanitize.active: return``), so leaving the import wiring in
production paths is free; the ``BENCH_parallel`` bars do not move.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..errors import ReproError

__all__ = [
    "SanitizeError",
    "Violation",
    "active",
    "assert_no_leaks",
    "clear_violations",
    "enabled_in_env",
    "install",
    "installed_mode",
    "maybe_install_from_env",
    "note_begin_row_write",
    "note_end_row_write",
    "note_final_snapshot",
    "note_matrix_close",
    "note_pool_start",
    "note_segment_create",
    "note_segment_unlink",
    "open_segments",
    "segment_open",
    "suspended",
    "uninstall",
    "violations",
    "worker_reset",
]


class SanitizeError(ReproError):
    """A protocol violation caught by the runtime sanitizer."""


@dataclass(frozen=True)
class Violation:
    """One recorded violation: a stable ``kind`` slug + human message."""

    kind: str
    message: str


#: Cheap guard the hooks in repro.parallel check before paying anything.
active: bool = False

_mode: str = "raise"
_violations: "list[Violation]" = []
#: (versions segment name, row) -> bracket depth (1 == write in progress).
_brackets: "dict[tuple[str, int], int]" = {}
#: shm segment names created by this process and not yet unlinked.
_segments: "set[str]" = set()
#: pool id -> worker ids whose final snapshot was already absorbed.
_pool_finals: "dict[int, set[int]]" = {}

_FALSEY = frozenset({"", "0", "off", "false", "no"})


def enabled_in_env(environ: "os._Environ[str] | dict[str, str] | None" = None) -> "str | None":
    """The sanitizer mode ``REPRO_SANITIZE`` asks for, or ``None`` (off)."""
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_SANITIZE", "").strip().lower()
    if raw in _FALSEY:
        return None
    return "record" if raw == "record" else "raise"


def install(mode: str = "raise") -> None:
    """Turn the sanitizer on (``mode``: ``"raise"`` or ``"record"``)."""
    global active, _mode
    if mode not in ("raise", "record"):
        raise ValueError(f"unknown sanitizer mode: {mode!r}")
    _mode = mode
    active = True


def uninstall() -> None:
    """Turn the sanitizer off and drop all per-process state."""
    global active
    active = False
    _violations.clear()
    _brackets.clear()
    _segments.clear()
    _pool_finals.clear()


def installed_mode() -> "str | None":
    return _mode if active else None


def maybe_install_from_env() -> None:
    """Install iff ``REPRO_SANITIZE`` says so (import-time hook).

    Called when :mod:`repro.parallel` is imported, which makes ``spawn``
    workers self-installing: the child re-imports the package before it
    touches any shared state.
    """
    mode = enabled_in_env()
    if mode is not None and not active:
        install(mode)


def worker_reset() -> None:
    """Drop state inherited across ``fork`` at worker startup.

    A forked worker inherits the parent's bracket/segment/snapshot maps;
    none of them describe *this* process's actions, so a worker must
    start from a clean slate or parent-side activity shows up as
    phantom violations.
    """
    _violations.clear()
    _brackets.clear()
    _segments.clear()
    _pool_finals.clear()


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable the sanitizer (fault-injection tests use this
    to set up a deliberately broken state without tripping the hooks)."""
    global active
    was = active
    active = False
    try:
        yield
    finally:
        active = was


def violations() -> "list[Violation]":
    return list(_violations)


def clear_violations() -> None:
    _violations.clear()


def _report(kind: str, message: str) -> None:
    _violations.append(Violation(kind, message))
    if _mode == "raise":
        raise SanitizeError(f"[{kind}] {message}")


# --------------------------------------------------------------------- #
# seqlock bracket state machine
# --------------------------------------------------------------------- #


def note_begin_row_write(block: str, row: int) -> None:
    """A ``begin_row_write`` on row *row* of the versions segment *block*."""
    key = (block, int(row))
    depth = _brackets.get(key, 0)
    _brackets[key] = depth + 1
    if depth != 0:
        _report(
            "seqlock.nested_begin",
            f"begin_row_write({row}) on {block} while the row is already "
            f"mid-write (depth {depth}) — the version counter goes even "
            "and readers accept a torn row",
        )


def note_end_row_write(block: str, row: int) -> None:
    key = (block, int(row))
    depth = _brackets.get(key, 0)
    if depth <= 0:
        _brackets.pop(key, None)
        _report(
            "seqlock.unmatched_end",
            f"end_row_write({row}) on {block} without a matching "
            "begin_row_write — the version counter goes odd and readers "
            "spin to TornReadError",
        )
        return
    if depth == 1:
        _brackets.pop(key)
    else:
        _brackets[key] = depth - 1


def note_matrix_close(block: str) -> None:
    """The matrix backing versions segment *block* is closing."""
    open_rows = sorted(row for (b, row), d in _brackets.items() if b == block and d > 0)
    for row in open_rows:
        _brackets.pop((block, row), None)
    if open_rows:
        _report(
            "seqlock.open_at_close",
            f"matrix {block} closed with row(s) {open_rows} still "
            "mid-write — concurrent readers of the surviving segment "
            "spin forever",
        )


def open_brackets() -> "dict[tuple[str, int], int]":
    return dict(_brackets)


# --------------------------------------------------------------------- #
# shm segment leak tracking
# --------------------------------------------------------------------- #


def note_segment_create(name: str) -> None:
    _segments.add(name)


def note_segment_unlink(name: str) -> None:
    _segments.discard(name)


def open_segments() -> "set[str]":
    """Segments this process created and has not yet unlinked."""
    return set(_segments)


def segment_open(name: str) -> bool:
    return name in _segments


def assert_no_leaks() -> None:
    """Report every still-open segment (test teardown helper)."""
    for name in sorted(_segments):
        _report(
            "shm.leak",
            f"shared-memory segment {name} was created but never unlinked",
        )


def report_pool_leak(name: str) -> None:
    """The pool found segment *name* still open after its own close()."""
    _report(
        "shm.leak_at_pool_close",
        f"shared-memory segment {name} still open after WorkerPool.close() "
        "— an owner matrix/CSR outlived the pool that published it",
    )


# --------------------------------------------------------------------- #
# exact-once snapshot shipping
# --------------------------------------------------------------------- #


def note_pool_start(pool_id: int) -> None:
    """A pool's workers (re)started: final snapshots are expected anew."""
    _pool_finals[pool_id] = set()


def note_final_snapshot(pool_id: int, worker_id: int) -> None:
    """Worker *worker_id*'s final obs snapshot was absorbed by *pool_id*."""
    shipped = _pool_finals.setdefault(pool_id, set())
    if worker_id in shipped:
        _report(
            "obs.double_final_snapshot",
            f"worker {worker_id} final snapshot absorbed twice by pool "
            f"{pool_id} — counters would double-merge",
        )
    shipped.add(worker_id)
